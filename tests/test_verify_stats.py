"""Tests for the pure-numpy statistical machinery in repro.verify.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.verify.stats import (
    TestResult,
    bonferroni,
    chi2_homogeneity,
    chi2_sf,
    ks_2samp,
    pool_small_cells,
)


class TestChi2Sf:
    def test_known_critical_values(self):
        # Classic table values: P(X² > x | df) = alpha.
        assert chi2_sf(3.841459, 1) == pytest.approx(0.05, abs=1e-6)
        assert chi2_sf(5.991465, 2) == pytest.approx(0.05, abs=1e-6)
        assert chi2_sf(18.307038, 10) == pytest.approx(0.05, abs=1e-6)
        assert chi2_sf(118.136, 90) == pytest.approx(0.025, abs=1e-4)

    def test_df2_closed_form(self):
        # With 2 degrees of freedom the survival function is exp(-x/2).
        for x in (0.5, 1.0, 3.0, 10.0, 40.0):
            assert chi2_sf(x, 2) == pytest.approx(math.exp(-x / 2), rel=1e-10)

    def test_boundaries(self):
        assert chi2_sf(0.0, 5) == 1.0
        assert chi2_sf(-1.0, 5) == 1.0
        assert 0.0 <= chi2_sf(1e4, 3) <= 1e-12

    def test_rejects_bad_df(self):
        with pytest.raises(ValueError):
            chi2_sf(1.0, 0)

    def test_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = float(rng.uniform(0.01, 200.0))
            df = int(rng.integers(1, 120))
            assert chi2_sf(x, df) == pytest.approx(
                float(stats.chi2.sf(x, df)), rel=1e-8, abs=1e-12
            )


class TestKs2Samp:
    def test_identical_samples(self):
        a = np.arange(50, dtype=float)
        result = ks_2samp(a, a.copy())
        assert result.statistic == 0.0
        assert result.p_value == pytest.approx(1.0)

    def test_disjoint_samples(self):
        result = ks_2samp(np.arange(50.0), np.arange(100.0, 150.0))
        assert result.statistic == 1.0
        assert result.p_value < 1e-6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_2samp(np.array([]), np.arange(5.0))

    def test_matches_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = rng.normal(size=int(rng.integers(20, 200)))
            b = rng.normal(loc=rng.uniform(0, 1), size=int(rng.integers(20, 200)))
            ours = ks_2samp(a, b)
            ref = stats.ks_2samp(a, b, method="asymp")
            assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
            # Different asymptotic approximations; agreement is loose but
            # must never flip a confident verdict.
            assert ours.p_value == pytest.approx(ref.pvalue, abs=0.05)


class TestPooling:
    def test_no_pooling_when_all_large(self):
        a = np.full(5, 100.0)
        b = np.full(5, 100.0)
        pa, pb = pool_small_cells(a, b)
        assert len(pa) == 5
        assert pa.sum() == a.sum() and pb.sum() == b.sum()

    def test_small_cells_merged(self):
        a = np.array([100.0, 1.0, 1.0, 1.0, 100.0])
        b = np.array([100.0, 0.0, 1.0, 2.0, 100.0])
        pa, pb = pool_small_cells(a, b)
        assert len(pa) < 5
        assert pa.sum() == a.sum() and pb.sum() == b.sum()
        # Every pooled cell's expected count clears the threshold.
        share = min(pa.sum(), pb.sum()) / (pa.sum() + pb.sum())
        assert ((pa + pb) * share >= 5.0 - 1e-9).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pool_small_cells(np.ones(3), np.ones(4))


class TestChi2Homogeneity:
    def test_same_distribution_accepts(self):
        rng = np.random.default_rng(7)
        p = np.array([0.5, 0.3, 0.15, 0.05])
        a = np.bincount(rng.choice(4, 4000, p=p), minlength=4)
        b = np.bincount(rng.choice(4, 4000, p=p), minlength=4)
        assert chi2_homogeneity(a, b).p_value > 0.01

    def test_different_distribution_rejects(self):
        rng = np.random.default_rng(7)
        a = np.bincount(rng.choice(4, 4000, p=[0.5, 0.3, 0.15, 0.05]), minlength=4)
        b = np.bincount(rng.choice(4, 4000, p=[0.25, 0.25, 0.25, 0.25]), minlength=4)
        assert chi2_homogeneity(a, b).p_value < 1e-6

    def test_empty_both(self):
        result = chi2_homogeneity(np.zeros(4), np.zeros(4))
        assert result == TestResult(statistic=0.0, p_value=1.0, dof=0)

    def test_one_empty(self):
        result = chi2_homogeneity(np.array([10.0, 10.0]), np.zeros(2))
        assert result.p_value == 0.0

    def test_false_positive_rate(self):
        # Under H0 the test must reject at ~alpha, not wildly above:
        # the whole verification suite's flake budget depends on this.
        rng = np.random.default_rng(11)
        p = np.full(10, 0.1)
        rejections = 0
        runs = 300
        for _ in range(runs):
            a = np.bincount(rng.choice(10, 500, p=p), minlength=10)
            b = np.bincount(rng.choice(10, 500, p=p), minlength=10)
            if chi2_homogeneity(a, b).p_value < 0.05:
                rejections += 1
        assert rejections / runs < 0.10


class TestBonferroni:
    def test_scales_and_clips(self):
        assert bonferroni(0.01, 5) == pytest.approx(0.05)
        assert bonferroni(0.5, 9) == 1.0

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            bonferroni(0.5, 0)


# ----------------------------------------------------------------------
# Serving-mode statistical equivalence (PR 6)
# ----------------------------------------------------------------------
class TestServingEquivalence:
    """Super-batch *serving* holds to the same distributional contract
    as training-time super-batching: for every ``OptimizationConfig``
    knob combination, fusing a window of heterogeneous per-request seed
    sets into one ``run_superbatch`` launch sequence and splitting the
    results back out must leave each request's per-edge sampling
    marginals indistinguishable from sampling that request individually
    (the per-request oracle path)."""

    def test_superbatch_serving_matches_per_request_sampling(self, verify_graph):
        from repro.core import new_rng
        from repro.verify import check_serving_equivalence

        def sage_layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            sample_A = sub_A.individual_sample(K)
            return sample_A, sample_A.row()

        n = verify_graph.shape[0]
        rng = new_rng(5)
        # A heterogeneous serving window: request sizes 3..12, like the
        # max_seeds_per_request streams the composer actually fuses.
        seed_sets = [
            rng.choice(n, size, replace=False) for size in (3, 12, 5, 8)
        ]
        report = check_serving_equivalence(
            sage_layer,
            verify_graph,
            seed_sets,
            constants={"K": 4},
            trials=60,
            alpha=0.01,
            seed=0,
        )
        assert report.num_tests == 8  # the full OptimizationConfig grid
        assert len(report.variants) == 8
        labels = {v.name for v in report.variants}
        assert labels == {
            f"serve-C{c}D{d}B{b}"
            for c in (0, 1) for d in (0, 1) for b in (0, 1)
        }
        assert report.passed, report.summary()

    def test_rejects_empty_request_window(self, verify_graph):
        from repro.errors import GSamplerError
        from repro.verify import check_serving_equivalence

        def sage_layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            sample_A = sub_A.individual_sample(K)
            return sample_A, sample_A.row()

        with pytest.raises(GSamplerError):
            check_serving_equivalence(
                sage_layer, verify_graph, [], constants={"K": 4}
            )
