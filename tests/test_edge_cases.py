"""Robustness tests: degenerate graphs, empty frontiers, hostile inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core import new_rng
from repro.core.matrix import Matrix, from_edges
from repro.device import ExecutionContext, V100
from repro.sampler import compile_sampler
from repro.sparse import COO, convert


def sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


class TestDegenerateGraphs:
    def test_single_node_self_loop(self):
        graph = from_edges([0], [0], 1)
        sampler = compile_sampler(sage_layer, graph, np.array([0]),
                                  constants={"K": 2})
        sample, nxt = sampler.run(np.array([0]), rng=new_rng(0))
        assert sample.nnz == 1
        np.testing.assert_array_equal(nxt, [0])

    def test_edgeless_graph(self):
        empty = Matrix(convert(COO([], [], None, (10, 10)), "csc"),
                       is_base_graph=True)
        sampler = compile_sampler(sage_layer, empty, np.arange(3),
                                  constants={"K": 2})
        sample, nxt = sampler.run(np.arange(3), rng=new_rng(0))
        assert sample.nnz == 0
        assert len(nxt) == 0

    def test_star_graph_hub_sampling(self):
        # All edges point at node 0: sampling node 0's in-neighbors must
        # respect the fanout; every other frontier is a dead end.
        n = 50
        graph = from_edges(np.arange(1, n), np.zeros(n - 1, dtype=int), n)
        sampler = compile_sampler(sage_layer, graph, np.arange(5),
                                  constants={"K": 3})
        sample, nxt = sampler.run(np.arange(5), rng=new_rng(1))
        assert sample.nnz == 3  # only column 0 has candidates
        assert set(nxt) <= set(range(1, n))

    def test_dangling_frontier_chain_terminates(self):
        # A path graph sampled from its source end dries out.
        graph = from_edges([0, 1, 2], [1, 2, 3], 5)
        algo = make_algorithm("graphsage", fanouts=(2, 2, 2, 2))
        pipe = algo.build(graph, np.array([3]))
        sample = pipe.sample_batch(np.array([3]), rng=new_rng(2))
        # Layers stop when the frontier dries up at node 0.
        assert 0 < len(sample.layers) <= 4


class TestEmptyFrontiers:
    def test_empty_frontier_batch(self, small_graph):
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(4), constants={"K": 2}
        )
        sample, nxt = sampler.run(
            np.array([], dtype=np.int64), rng=new_rng(0)
        )
        assert sample.shape[1] == 0
        assert sample.nnz == 0
        assert len(nxt) == 0

    def test_walk_from_dead_ends(self):
        # Nodes with no in-edges strand their walkers immediately.
        graph = from_edges([0], [1], 4)
        algo = make_algorithm("deepwalk", walk_length=3)
        pipe = algo.build(graph, np.array([2, 3]))
        out = pipe.sample_batch(np.array([2, 3]), rng=new_rng(0))
        assert np.all(out.trace[1:] == -1)


class TestHostileInputs:
    def test_duplicate_frontiers_supported(self, small_graph):
        f = np.array([5, 5, 5, 9])
        sampler = compile_sampler(sage_layer, small_graph, f, constants={"K": 2})
        sample, _ = sampler.run(f, rng=new_rng(0))
        assert sample.shape[1] == 4
        np.testing.assert_array_equal(sample.column(), f)

    def test_extreme_edge_weights(self):
        weights = np.array([1e-30, 1e30, 1.0, 1.0], dtype=np.float32)
        graph = from_edges([0, 1, 2, 3], [4, 4, 4, 4], 5, weights=weights)
        sub = graph[:, np.array([4])]
        # Biased sampling must strongly prefer the giant weight.
        hits = 0
        rng = new_rng(1)
        for _ in range(50):
            out = sub.individual_sample(1, rng=rng)
            hits += int(out.get("csc").rows[0] == 1)
        assert hits > 45

    def test_all_zero_bias_samples_nothing(self, small_graph):
        sub = small_graph[:, np.arange(5)]
        zero = sub * 0.0
        out = sub.individual_sample(3, zero, rng=new_rng(0))
        assert out.nnz == 0

    def test_layerwise_k_larger_than_candidates(self, small_graph):
        sub = small_graph[:, np.arange(3)]
        out = sub.collective_sample(10_000, rng=new_rng(0))
        # At most the occupied rows can be selected.
        assert out.shape[0] <= small_graph.shape[0]
        assert out.nnz == sub.nnz

    def test_epoch_with_batch_larger_than_seed_set(self, small_graph):
        from repro.core import minibatches

        batches = minibatches(np.arange(10), 1000, shuffle=False)
        assert len(batches) == 1 and len(batches[0]) == 10


class TestContextIsolation:
    def test_parallel_contexts_do_not_interfere(self, small_graph):
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 2}
        )
        ctx_a, ctx_b = ExecutionContext(V100), ExecutionContext(V100)
        sampler.run(np.arange(8), ctx=ctx_a, rng=new_rng(0))
        before_b = ctx_b.launch_count()
        assert before_b == 0
        sampler.run(np.arange(8), ctx=ctx_b, rng=new_rng(0))
        assert ctx_a.launch_count() == ctx_b.launch_count()

    def test_base_graph_not_mutated_by_sampling(self, small_graph):
        nnz_before = small_graph.nnz
        vals_before = small_graph.values.copy()
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 2}
        )
        for seed in range(5):
            sampler.run(np.arange(8), rng=new_rng(seed))
        assert small_graph.nnz == nnz_before
        np.testing.assert_array_equal(small_graph.values, vals_before)
