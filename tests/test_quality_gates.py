"""Repository-wide quality gates: docstrings, exports, and split-device
training behavior."""

from __future__ import annotations

import importlib
import pkgutil

import numpy as np
import pytest

import repro


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        yield importlib.import_module(module_info.name)


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        missing = [
            m.__name__
            for m in _walk_modules()
            if not (m.__doc__ or "").strip() and not m.__name__.endswith("__main__")
        ]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        import inspect

        undocumented = []
        for module in _walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestSplitDeviceTraining:
    def test_cpu_sampling_gpu_training_fraction(self):
        """The Table 1 protocol: CPU sampling with GPU training must push
        the sampling fraction far above the all-GPU setup."""
        from repro.algorithms import make_algorithm
        from repro.datasets import load_dataset
        from repro.device import CPU, V100
        from repro.learning import GraphSAGEModel, Trainer

        ds = load_dataset("pd", scale=0.1)
        rng = np.random.default_rng(0)

        def run(sample_device):
            pipe = make_algorithm("graphsage", fanouts=(4, 4)).build(
                ds.graph, ds.train_ids[:64]
            )
            model = GraphSAGEModel(
                ds.features.shape[1], 16, ds.num_classes, num_layers=2,
                rng=np.random.default_rng(0),
            )
            trainer = Trainer(
                pipe, model, ds, device=sample_device, train_device=V100,
                batch_size=64,
            )
            return trainer.train(1, max_batches_per_epoch=4).sampling_fraction

        assert run(CPU) > run(V100)
        assert run(CPU) > 0.8
