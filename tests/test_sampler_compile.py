"""Compiler front-door tests: configs, pass logs, output structures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.device import ExecutionContext, V100
from repro.errors import TraceError
from repro.sampler import OptimizationConfig, _unflatten, compile_sampler


def sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


class TestOptimizationConfig:
    def test_default_enables_everything(self):
        config = OptimizationConfig()
        assert config.computation and config.layout and config.superbatch

    def test_plain_disables_everything(self):
        config = OptimizationConfig.plain()
        assert not (config.computation or config.layout or config.superbatch)


class TestUnflatten:
    def test_roundtrips_nested_structure(self):
        structure = (("leaf", "leaf"), "leaf")
        assert _unflatten(structure, [1, 2, 3]) == ((1, 2), 3)
        assert _unflatten("leaf", [7]) == 7

    def test_too_few_outputs_rejected(self):
        with pytest.raises(TraceError, match="not enough outputs"):
            _unflatten(("leaf", "leaf"), [1])

    def test_leftover_outputs_rejected(self):
        # Extra flat values mean the IR's output list drifted from the
        # traced return shape -- must never pass silently.
        with pytest.raises(TraceError, match="2 traced output"):
            _unflatten(("leaf", "leaf"), [1, 2, 3, 4])
        with pytest.raises(TraceError, match="left unconsumed"):
            _unflatten("leaf", [1, 2])


class TestCompile:
    def test_full_config_fuses(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(4), constants={"K": 2}
        )
        assert "extract_select_fusion" in s.pass_log
        assert "layout_selection" in s.pass_log
        assert any(n.op == "fused_extract_select" for n in s.ir.nodes())

    def test_plain_config_leaves_ir_untouched(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(4), constants={"K": 2},
            config=OptimizationConfig.plain(),
        )
        ops = [n.op for n in s.ir.nodes()]
        assert "slice_cols" in ops and "individual_sample" in ops
        assert s.pass_log in ([], ["layout_greedy"])

    def test_computation_only(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(4), constants={"K": 2},
            config=OptimizationConfig(computation=True, layout=False,
                                      superbatch=False),
        )
        assert any(n.op == "fused_extract_select" for n in s.ir.nodes())
        assert "layout_selection" not in s.pass_log

    def test_run_returns_trace_structure(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(4), constants={"K": 2}
        )
        result = s.run(np.arange(4), rng=new_rng(0))
        assert isinstance(result, tuple) and len(result) == 2

    def test_nested_structure_roundtrip(self, small_graph):
        def layer(A, frontiers, K):
            s = A[:, frontiers].individual_sample(K)
            return (s, (s.row(), s.column()))

        c = compile_sampler(layer, small_graph, np.arange(4), constants={"K": 2})
        matrix, (rows, cols) = c.run(np.arange(4), rng=new_rng(0))
        assert matrix.nnz <= 8
        np.testing.assert_array_equal(cols, np.arange(4))

    def test_runs_are_independent_draws(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(50), constants={"K": 1}
        )
        m1, _ = s.run(np.arange(50), rng=new_rng(1))
        m2, _ = s.run(np.arange(50), rng=new_rng(2))
        r1 = m1.to_coo_arrays()[0]
        r2 = m2.to_coo_arrays()[0]
        assert not np.array_equal(r1, r2)

    def test_memory_accounted_and_released(self, small_graph):
        s = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )
        ctx = ExecutionContext(V100)
        s.run(np.arange(8), ctx=ctx, rng=new_rng(0))
        assert ctx.memory.peak_bytes > 0
        assert ctx.memory.live_bytes == 0  # everything freed after the run

    def test_fusion_reduces_simulated_time(self, small_graph):
        seeds = np.arange(64)
        full = compile_sampler(
            sage_layer, small_graph, seeds, constants={"K": 5}
        )
        plain = compile_sampler(
            sage_layer, small_graph, seeds, constants={"K": 5},
            config=OptimizationConfig.plain(),
        )
        ctx_full, ctx_plain = ExecutionContext(V100), ExecutionContext(V100)
        full.run(seeds, ctx=ctx_full, rng=new_rng(0))
        plain.run(seeds, ctx=ctx_plain, rng=new_rng(0))
        assert ctx_full.elapsed < ctx_plain.elapsed
        assert ctx_full.memory.peak_bytes < ctx_plain.memory.peak_bytes
