"""Integration tests spanning the whole stack: datasets -> algorithms ->
compiled execution -> training, across device models and placements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BENCHMARKED, make_algorithm
from repro.baselines import make_system
from repro.core import GraphSample, new_rng
from repro.datasets import load_dataset
from repro.device import CPU, ExecutionContext, T4, V100
from repro.learning import GraphSAGEModel, Trainer, to_dgl_graph


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.1)


@pytest.fixture(scope="module")
def pp():
    return load_dataset("pp", scale=0.25)


@pytest.mark.parametrize("name", BENCHMARKED)
def test_benchmarked_algorithms_on_catalog_dataset(pd, name):
    """Each paper-benchmarked algorithm runs on a catalog dataset and
    produces edges drawn from the graph."""
    algo = make_algorithm(name)
    features = pd.features if name in ("asgcn", "pass") else None
    pipe = algo.build(pd.graph, pd.train_ids[:64], features=features)
    ctx = ExecutionContext(V100)
    out = pipe.sample_batch(pd.train_ids[:64], ctx=ctx, rng=new_rng(0))
    assert ctx.elapsed > 0
    assert ctx.launch_count() > 0


def test_uva_dataset_charges_pcie(pp):
    """Host-resident graphs must generate PCIe (UVA) traffic."""
    pipe = make_algorithm("graphsage").build(pp.graph, pp.train_ids[:64])
    ctx = ExecutionContext(V100, graph_on_device=False)
    pipe.sample_batch(pp.train_ids[:64], ctx=ctx, rng=new_rng(1))
    assert sum(l.uva_bytes for l in ctx.launches) > 0
    resident = ExecutionContext(V100, graph_on_device=True)
    pipe.sample_batch(pp.train_ids[:64], ctx=resident, rng=new_rng(1))
    assert sum(l.uva_bytes for l in resident.launches) == 0


def test_t4_slower_than_v100(pd):
    pipe = make_algorithm("ladies", layer_width=64).build(
        pd.graph, pd.train_ids[:128]
    )
    t4_ctx, v100_ctx = ExecutionContext(T4), ExecutionContext(V100)
    pipe.sample_batch(pd.train_ids[:128], ctx=t4_ctx, rng=new_rng(2))
    pipe.sample_batch(pd.train_ids[:128], ctx=v100_ctx, rng=new_rng(2))
    assert t4_ctx.elapsed > v100_ctx.elapsed


def test_cpu_much_slower_than_gpu_end_to_end(pd):
    pipe = make_algorithm("graphsage").build(pd.graph, pd.train_ids[:128])
    cpu_ctx, gpu_ctx = ExecutionContext(CPU), ExecutionContext(V100)
    pipe.sample_batch(pd.train_ids[:128], ctx=cpu_ctx, rng=new_rng(3))
    pipe.sample_batch(pd.train_ids[:128], ctx=gpu_ctx, rng=new_rng(3))
    assert cpu_ctx.elapsed > 20 * gpu_ctx.elapsed


def test_sample_to_dgl_block_to_training(pd):
    """The interop path: sample -> DGL-style block -> aggregate."""
    pipe = make_algorithm("graphsage", fanouts=(4,)).build(
        pd.graph, pd.train_ids[:32]
    )
    sample = pipe.sample_batch(pd.train_ids[:32], rng=new_rng(4))
    block = to_dgl_graph(sample.layers[0].matrix)
    # Mean-aggregate features through the block, PyTorch-style.
    agg = np.zeros((len(block.dst_nodes), pd.features.shape[1]))
    np.add.at(agg, block.edges_dst, pd.features[block.src_nodes[block.edges_src]])
    assert np.isfinite(agg).all()


def test_full_training_pipeline_with_superbatch_sampling(pd):
    """Super-batched sampling feeds the same trainer without changes."""
    algo = make_algorithm("graphsage", fanouts=(4, 4))
    pipe = algo.build(pd.graph, pd.train_ids[:64])
    batches = [pd.train_ids[:64], pd.train_ids[64:128]]
    ctx = ExecutionContext(V100)
    samples = pipe.sample_superbatch(batches, ctx=ctx, rng=new_rng(5))
    assert len(samples) == 2
    rng = np.random.default_rng(0)
    model = GraphSAGEModel(
        pd.features.shape[1], 16, pd.num_classes, num_layers=2, rng=rng
    )
    for sample, batch in zip(samples, batches):
        assert isinstance(sample, GraphSample)
        logits = model.forward(sample, pd.features)
        assert logits.shape == (len(batch), pd.num_classes)


def test_cross_system_samples_equally_valid(pd):
    """Baselines produce samples with the same structural guarantees."""
    seeds = pd.train_ids[:32]
    for system_name in ("gsampler", "dgl-gpu", "skywalker"):
        system = make_system(system_name)
        pipe = system.build_pipeline("graphsage", pd, seeds)
        out = pipe.sample_batch(seeds, ctx=ExecutionContext(V100), rng=new_rng(6))
        layer = out.layers[0]
        assert layer.num_edges <= 5 * len(seeds)
        assert set(np.unique(layer.matrix.to_coo_arrays()[1])) <= set(
            seeds.tolist()
        )


def test_epoch_over_every_dataset():
    """One sampling epoch on each catalog stand-in completes."""
    from repro.bench import run_sampling_epoch
    from repro.baselines import GSamplerSystem

    for name in ("lj", "pd", "pp", "fs"):
        ds = load_dataset(name, scale=0.1)
        stats = run_sampling_epoch(
            GSamplerSystem(), "graphsage", ds, device=V100,
            batch_size=256, max_batches=2,
        )
        assert stats.sim_seconds > 0, name
