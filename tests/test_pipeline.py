"""Pipelined epoch executor: queue semantics, feature cache, parity.

Covers the three contracts the pipelined path must keep:

* queue timelines overlap correctly (makespan, dependencies, and the
  untouched serial path);
* the degree-ordered feature cache obeys the memory budget and its hit
  rate grows with the cache ratio;
* serial and pipelined training are bit-identical in everything except
  the simulated clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import FeatureCache
from repro.cache.feature_cache import CacheStats
from repro.core import new_rng
from repro.datasets import load_dataset
from repro.device import CPU, ExecutionContext, MemoryPool, V100
from repro.errors import DeviceError, ShapeError
from repro.learning import GraphSAGEModel
from repro.learning.trainer import Trainer
from repro.pipeline import PipelinedTrainer, run_pipeline_cell


# ----------------------------------------------------------------------
# Multi-queue ExecutionContext semantics
# ----------------------------------------------------------------------
class TestQueueSemantics:
    def test_serial_path_sums_as_before(self):
        ctx = ExecutionContext(V100)
        ctx.record("a", flops=1e9)
        first = ctx.elapsed
        ctx.record("b", flops=1e9)
        assert ctx.elapsed == pytest.approx(2 * first)
        assert all(l.queue == "default" for l in ctx.launches)
        assert ctx.launches[1].sim_start == pytest.approx(first)

    def test_two_queues_overlap_to_makespan(self):
        ctx = ExecutionContext(V100)
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
        with ctx.on_queue("compute"):
            ctx.record("b", flops=1e9)
        per_kernel = ctx.queue("sample").busy_seconds
        # Both kernels start at t=0 on their own queue: the epoch clock
        # is the max of the two ends, not their sum.
        assert ctx.elapsed == pytest.approx(per_kernel)
        assert ctx.busy_seconds == pytest.approx(2 * per_kernel)

    def test_same_queue_serializes(self):
        ctx = ExecutionContext(V100)
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
            ctx.record("b", flops=1e9)
        assert ctx.elapsed == pytest.approx(ctx.queue("sample").busy_seconds)
        assert ctx.launches[1].sim_start == pytest.approx(
            ctx.launches[0].sim_end
        )

    def test_not_before_defers_queue(self):
        ctx = ExecutionContext(V100)
        with ctx.on_queue("transfer", not_before=1.5):
            ctx.record("a", flops=1e9)
        assert ctx.launches[0].sim_start == pytest.approx(1.5)
        assert ctx.elapsed == pytest.approx(
            1.5 + ctx.queue("transfer").busy_seconds
        )

    def test_reset_clears_queues(self):
        ctx = ExecutionContext(V100)
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
        ctx.reset()
        assert ctx.elapsed == 0.0
        assert ctx.busy_seconds == 0.0
        assert ctx.queue_stats() == {}


class TestQueueValidation:
    """Declared-queue strictness and event-time sanity (serving hardening)."""

    def test_unknown_declared_queue_raises(self):
        ctx = ExecutionContext(V100, queues=("sample", "transfer"))
        with pytest.raises(DeviceError, match="unknown queue 'trnsfer'"):
            ctx.queue("trnsfer")
        with pytest.raises(DeviceError, match="declares queues"):
            with ctx.on_queue("compute"):
                pass

    def test_declared_queues_precreated_and_usable(self):
        ctx = ExecutionContext(V100, queues=("sample",))
        assert "sample" in ctx.queue_stats()
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
        assert ctx.queue("sample").launches == 1

    def test_lazy_context_still_creates_on_demand(self):
        ctx = ExecutionContext(V100)  # no declaration: PR 3 behaviour
        assert ctx.queue("anything").name == "anything"

    def test_default_name_reserved(self):
        with pytest.raises(DeviceError, match="reserved"):
            ExecutionContext(V100, queues=("default",))
        ctx = ExecutionContext(V100)
        with pytest.raises(DeviceError, match="reserved"):
            with ctx.on_queue("default"):
                pass

    def test_empty_queue_name_rejected(self):
        ctx = ExecutionContext(V100)
        with pytest.raises(DeviceError, match="non-empty"):
            ctx.queue("  ")

    def test_negative_not_before_raises(self):
        ctx = ExecutionContext(V100)
        with pytest.raises(DeviceError, match="start at 0"):
            with ctx.on_queue("transfer", not_before=-1e-6):
                pass
        with pytest.raises(DeviceError):
            ctx.queue("transfer").sync_to(float("nan"))

    def test_past_event_time_is_noop(self):
        # Waiting on an event that already fired is legal (the
        # cudaStreamWaitEvent contract), not an error.
        ctx = ExecutionContext(V100)
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
        ready = ctx.queue("sample").ready
        with ctx.on_queue("sample", not_before=ready / 2):
            ctx.record("b", flops=1e9)
        assert ctx.launches[1].sim_start == pytest.approx(ready)

    def test_reset_recreates_declared_queues(self):
        ctx = ExecutionContext(V100, queues=("sample",))
        with ctx.on_queue("sample"):
            ctx.record("a", flops=1e9)
        ctx.reset()
        assert ctx.queue_stats().keys() == {"sample"}
        assert ctx.queue("sample").ready == 0.0
        with pytest.raises(DeviceError):
            ctx.queue("other")


# ----------------------------------------------------------------------
# Feature cache
# ----------------------------------------------------------------------
def _features(n=100, f=16):
    return np.ones((n, f), dtype=np.float32)


class TestFeatureCache:
    def test_caches_hottest_rows(self):
        scores = np.arange(100, dtype=np.float64)
        cache = FeatureCache(
            _features(), scores, ratio=0.10, pool=MemoryPool()
        )
        np.testing.assert_array_equal(cache.cached_ids, np.arange(90, 100))
        hits, misses = cache.split(np.array([0, 1, 95, 99]))
        assert (hits, misses) == (2, 2)

    def test_hit_rate_monotone_in_ratio(self):
        rng = new_rng(0)
        scores = rng.random(100)
        nodes = rng.integers(0, 100, 500)
        rates = []
        for ratio in (0.0, 0.1, 0.3, 0.6, 1.0):
            cache = FeatureCache(
                _features(), scores, ratio=ratio, pool=MemoryPool()
            )
            cache.record_gather(nodes)
            rates.append(cache.epoch_stats().hit_rate)
        assert rates == sorted(rates)
        assert rates[0] == 0.0 and rates[-1] == 1.0

    def test_budget_evicts_cold_tail(self):
        # 100 rows x 64 bytes = 6400 bytes wanted; a 2 KiB pool forces
        # halving down to a prefix that fits.
        pool = MemoryPool(capacity=2048)
        scores = np.arange(100, dtype=np.float64)
        cache = FeatureCache(_features(), scores, ratio=1.0, pool=pool)
        assert 0 < cache.cached_rows < 100
        assert pool.live_bytes <= 2048
        stats = cache.epoch_stats()
        assert stats.evicted_rows == 100 - cache.cached_rows
        # The rows that survive are the hottest prefix, not a random set.
        np.testing.assert_array_equal(
            cache.cached_ids, np.arange(100 - cache.cached_rows, 100)
        )

    def test_budget_refusal_leaves_pool_untouched(self):
        pool = MemoryPool(capacity=256)  # below one 512-byte granule
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.5, pool=pool
        )
        assert cache.cached_rows == 0
        assert pool.live_bytes == 0
        cache.record_gather(np.arange(50))
        assert cache.epoch_stats().hit_rate == 0.0

    def test_release_returns_bytes(self):
        pool = MemoryPool()
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.2, pool=pool
        )
        assert pool.live_bytes > 0
        cache.release()
        assert pool.live_bytes == 0
        assert cache.split(np.arange(100))[0] == 0
        cache.release()  # idempotent

    def test_ratio_validated(self):
        with pytest.raises(ShapeError):
            FeatureCache(
                _features(), np.arange(100.0), ratio=1.5, pool=MemoryPool()
            )

    def test_split_empty_gather_is_noop(self):
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.2, pool=MemoryPool()
        )
        # The bare [] literal is float64 — split must not fancy-index
        # the residency mask with it.
        assert cache.split(np.asarray([])) == (0, 0)
        assert cache.record_gather(np.asarray([], dtype=np.int64)) == (0, 0)
        assert cache.epoch_stats().hit_rate == 0.0

    def test_split_duplicates_count_per_occurrence(self):
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.1, pool=MemoryPool()
        )
        hot = cache.cached_ids[0]
        hits, misses = cache.split(np.array([hot, hot, hot, 0, 0]))
        assert (hits, misses) == (3, 2)

    def test_all_miss_after_eviction(self):
        # A pool too small for even one granule refuses the cache; every
        # later gather — including of the would-be hottest rows — misses.
        pool = MemoryPool(capacity=256)
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.5, pool=pool
        )
        assert cache.cached_rows == 0
        hits, misses = cache.split(np.arange(90, 100))
        assert (hits, misses) == (0, 10)
        cache.release()  # releasing a refused cache stays a no-op
        assert pool.live_bytes == 0

    def test_hit_rate_zero_lookups(self):
        stats = CacheStats(
            cached_rows=10, requested_rows=10, cached_bytes=640,
            hits=0, misses=0,
        )
        assert stats.hit_rate == 0.0  # no division-by-zero
        cache = FeatureCache(
            _features(), np.arange(100.0), ratio=0.2, pool=MemoryPool()
        )
        assert cache.epoch_stats().hit_rate == 0.0

    def test_trainer_charges_only_misses_over_pcie(self):
        ds = load_dataset("pp", scale=0.1)  # host-resident features
        pool = MemoryPool()
        cache = FeatureCache.from_dataset(ds, ratio=0.5, pool=pool)
        row_bytes = ds.features.shape[1] * 4
        cold = np.setdiff1d(
            np.arange(ds.features.shape[0]), cache.cached_ids
        )
        nodes = np.concatenate([cache.cached_ids[:32], cold[:32]])
        hits, misses = cache.split(nodes)
        assert hits > 0 and misses > 0

        class FakeSample:
            all_nodes = nodes
            seeds = nodes

        model = GraphSAGEModel(
            ds.features.shape[1], 8, ds.num_classes, num_layers=2,
            rng=np.random.default_rng(0),
        )
        trainer = Trainer(
            pipeline=None, model=model, dataset=ds, device=V100, batch_size=64
        )
        ctx = ExecutionContext(V100, graph_on_device=ds.graph_on_device)
        trainer._gather_features(FakeSample, ctx, cache)
        launch = ctx.launches[-1]
        assert launch.bytes_read == len(nodes) * row_bytes
        assert launch.uva_bytes == misses * row_bytes


# ----------------------------------------------------------------------
# Serial vs pipelined training parity (S4)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pd_cell():
    ds = load_dataset("pd", scale=0.25)
    return run_pipeline_cell(
        "graphsage", ds, device=V100, epochs=2, batch_size=256, max_batches=4
    )


class TestPipelinedParity:
    def test_losses_and_accuracy_bit_identical(self, pd_cell):
        serial, pipelined = pd_cell
        assert serial.final_loss == pipelined.final_loss
        assert serial.accuracy_history == pipelined.accuracy_history
        assert serial.final_accuracy == pipelined.final_accuracy

    def test_pipelining_reduces_epoch_time(self, pd_cell):
        serial, pipelined = pd_cell
        # Acceptance bar: >= 20% simulated-epoch-time reduction on the
        # graphsage/PD/V100 cell at the default cache ratio.
        assert pipelined.total_seconds <= 0.8 * serial.total_seconds

    def test_busy_seconds_conserved(self, pd_cell):
        serial, pipelined = pd_cell
        # Overlap hides time, it must not delete work: per-queue busy
        # totals still sum to at least the pipelined makespan.
        assert pipelined.serialized_seconds >= pipelined.total_seconds
        assert pipelined.overlap_reduction > 0.0

    def test_queue_reports_cover_three_stages(self, pd_cell):
        _, pipelined = pd_cell
        assert {r.queue for r in pipelined.queue_reports} == {
            "sample", "transfer", "compute",
        }

    def test_sampled_outputs_bit_identical_with_queue_routing(self):
        from repro.algorithms import make_algorithm

        ds = load_dataset("pd", scale=0.25)
        algo = make_algorithm("graphsage", fanouts=(5, 10))
        pipeline = algo.build(ds.graph, ds.train_ids[:128])
        batch = ds.train_ids[:128]
        plain = pipeline.sample_batch(
            batch, ctx=ExecutionContext(V100), rng=new_rng(7)
        )
        routed_ctx = ExecutionContext(V100)
        with routed_ctx.on_queue("sample"):
            routed = pipeline.sample_batch(batch, ctx=routed_ctx, rng=new_rng(7))
        np.testing.assert_array_equal(plain.all_nodes, routed.all_nodes)
        for a, b in zip(plain.layers, routed.layers):
            np.testing.assert_array_equal(a.input_nodes, b.input_nodes)
            np.testing.assert_array_equal(a.output_nodes, b.output_nodes)
            np.testing.assert_array_equal(
                a.matrix.get("csc").rows, b.matrix.get("csc").rows
            )
            np.testing.assert_array_equal(
                a.matrix.get("csc").indptr, b.matrix.get("csc").indptr
            )

    def test_prefetch_depth_validated(self):
        ds = load_dataset("pd", scale=0.25)
        from repro.algorithms import make_algorithm

        algo = make_algorithm("graphsage", fanouts=(5, 10))
        model = GraphSAGEModel(
            ds.features.shape[1], 8, ds.num_classes, num_layers=2,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ShapeError):
            PipelinedTrainer(
                algo.build(ds.graph, ds.train_ids[:64]),
                model,
                ds,
                device=V100,
                prefetch_depth=0,
            )

    def test_prefetch_depth_bounds_sampler_lead(self):
        # With depth 1 the sampler must wait for the previous compute;
        # a deeper window can only start sampling earlier, so the epoch
        # makespan is monotone non-increasing in prefetch depth.
        ds = load_dataset("pd", scale=0.25)
        times = []
        for depth in (1, 2, 4):
            _, pipelined = run_pipeline_cell(
                "graphsage",
                ds,
                device=CPU,  # slow sampler: the prefetch window matters
                train_device=V100,
                epochs=1,
                batch_size=256,
                max_batches=4,
                prefetch_depth=depth,
            )
            times.append(pipelined.total_seconds)
        assert times[1] <= times[0]
        assert times[2] <= times[1]

    def test_cache_disabled_at_zero_ratio(self):
        ds = load_dataset("pd", scale=0.25)
        _, pipelined = run_pipeline_cell(
            "graphsage", ds, device=V100, epochs=1, batch_size=256,
            max_batches=2, cache_ratio=0.0,
        )
        assert pipelined.cache_stats is None

    def test_unknown_algorithm_rejected(self):
        ds = load_dataset("pd", scale=0.25)
        with pytest.raises(ShapeError):
            run_pipeline_cell("deepwalk", ds, device=V100)
