"""Batch-composition policies: properties, fuzzing, and the fire-time fix.

The composer contract under test (see ``repro.serve.compose``):

* ``plan`` is pure — it never mutates the pending queue and equal inputs
  produce equal plans;
* draining a queue through repeated plan/pop cycles serves every
  admitted request in **exactly one** batch, for every composer;
* fire times are causality-clamped: never before the sampling queue is
  free, never before the batch's own youngest member arrived, and a
  partial FIFO batch waits out ``max_wait`` from its oldest member;
* no composer exceeds its size invariants (``max_batch`` members for
  fifo/binned, one seed-count bin per binned batch, the window cap for
  superbatch);
* per-request super-batch outputs equal a direct single-request run
  (checked under exhaustive fanouts, where sampling is deterministic
  regardless of the RNG stream);
* the latent fire-time bug is fixed: the legacy formula indexed the
  *global* queue position ``pending[max_batch - 1]``, which is the wrong
  request entirely once composition is non-prefix (heterogeneous-size
  streams under the binned composer).

The fuzz loops run >= 200 seeded random request streams per composer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.device import V100
from repro.errors import ServeError
from repro.serve import (
    COMPOSER_POLICIES,
    FifoComposer,
    Request,
    ServePolicy,
    ServeSimulator,
    SizeBinnedComposer,
    SuperbatchComposer,
    WorkloadSpec,
    clamp_fire,
    make_composer,
)
from repro.serve.compose import seed_bin


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


def _stream(rng, n, *, max_seeds=40, num_nodes=400):
    """A seeded random request stream with heterogeneous seed counts."""
    arrivals = np.sort(rng.random(n) * 1e-3)
    return [
        Request(
            rid=i,
            arrival=float(arrivals[i]),
            seeds=rng.choice(
                num_nodes, int(rng.integers(1, max_seeds + 1)), replace=False
            ),
        )
        for i in range(n)
    ]


def _composer_for(name, rng):
    if name == "superbatch":
        cap = int(rng.integers(1, 24)) if rng.random() < 0.5 else None
        return SuperbatchComposer(max_requests=cap)
    return make_composer(name)


CASES_PER_COMPOSER = 70  # x3 composers >= 200 fuzz cases


# ----------------------------------------------------------------------
# Property / fuzz: the composer contract over random streams
# ----------------------------------------------------------------------
class TestComposerContract:
    @pytest.mark.parametrize("name", COMPOSER_POLICIES)
    def test_fuzz_exactly_once_causality_and_size_caps(self, name):
        for case in range(CASES_PER_COMPOSER):
            rng = np.random.default_rng(1000 * case + hash(name) % 1000)
            composer = _composer_for(name, rng)
            policy = ServePolicy(
                max_batch=int(rng.integers(1, 11)),
                max_wait=float(rng.random() * 1e-3),
                queue_capacity=None,
            )
            pending = _stream(rng, int(rng.integers(1, 40)))
            admitted = sorted(r.rid for r in pending)
            queue_ready = 0.0
            served: list[int] = []
            while pending:
                before = list(pending)
                plan = composer.plan(pending, policy, queue_ready)
                assert plan is not None, f"case {case}: no progress"
                # Purity: no mutation, and equal inputs -> equal plan.
                assert pending == before, f"case {case}: plan mutated queue"
                again = composer.plan(pending, policy, queue_ready)
                assert plan == again, f"case {case}: plan not deterministic"
                # Indices: strictly increasing, in range, unique.
                assert list(plan.indices) == sorted(set(plan.indices))
                assert all(0 <= i < len(pending) for i in plan.indices)
                members = [pending[i] for i in plan.indices]
                # Causality clamp: never before the device is free, never
                # before the batch's own youngest member arrived.
                assert plan.fire >= queue_ready - 1e-15
                assert plan.fire >= max(m.arrival for m in members) - 1e-15
                # Size invariants.
                if name in ("fifo", "binned"):
                    assert len(members) <= policy.max_batch
                    assert not plan.superbatch
                if name == "binned":
                    bins = {seed_bin(m.seeds.size) for m in members}
                    assert len(bins) == 1, f"case {case}: mixed bins {bins}"
                if name == "superbatch":
                    assert plan.superbatch
                    if composer.max_requests is not None:
                        assert len(members) <= composer.max_requests
                served.extend(m.rid for m in members)
                for i in sorted(plan.indices, reverse=True):
                    del pending[i]
                queue_ready = plan.fire + float(rng.random() * 1e-4)
            # Exactly once: every admitted request in exactly one batch.
            assert sorted(served) == admitted, f"case {case}: lost/dup requests"
            assert len(served) == len(admitted)

    @pytest.mark.parametrize("name", COMPOSER_POLICIES)
    def test_empty_queue_plans_nothing(self, name):
        composer = make_composer(name)
        assert composer.plan([], ServePolicy(), 0.0) is None

    def test_fifo_partial_batch_waits_max_wait(self):
        composer = FifoComposer()
        policy = ServePolicy(max_batch=8, max_wait=2e-3)
        pending = _stream(np.random.default_rng(0), 3)
        plan = composer.plan(pending, policy, 0.0)
        assert plan.fire == pytest.approx(pending[0].arrival + policy.max_wait)

    def test_fifo_full_batch_fires_on_youngest_member(self):
        composer = FifoComposer()
        policy = ServePolicy(max_batch=4, max_wait=2e-3)
        pending = _stream(np.random.default_rng(1), 6)
        plan = composer.plan(pending, policy, 0.0)
        assert plan.indices == (0, 1, 2, 3)
        assert plan.fire == pytest.approx(pending[3].arrival)

    def test_clamp_fire_rejects_empty(self):
        with pytest.raises(ServeError):
            clamp_fire([], 0.0, full=True, policy=ServePolicy())


# ----------------------------------------------------------------------
# The latent fire-time bug (regression)
# ----------------------------------------------------------------------
class TestFireTimeRegression:
    def test_binned_fire_time_uses_members_not_global_position(self):
        """The legacy formula read ``pending[max_batch - 1].arrival`` — a
        *global* queue position.  With the binned composer the batch is
        positions 0 and 2 here, so the correct full-batch fire time is
        member 2's arrival; the old global indexing would have charged
        position 1's (a different bin's request that is not in the
        batch at all)."""
        composer = SizeBinnedComposer()
        policy = ServePolicy(max_batch=2, max_wait=5e-3)
        mk = lambda rid, t, n: Request(  # noqa: E731
            rid=rid, arrival=t, seeds=np.arange(n)
        )
        pending = [mk(0, 1e-4, 2), mk(1, 2e-4, 30), mk(2, 4e-4, 3)]
        plan = composer.plan(pending, policy, 0.0)
        assert plan.indices == (0, 2)  # the size-2/3 bin is full
        assert plan.fire == pytest.approx(4e-4)  # member 2, not pending[1]
        assert plan.fire != pytest.approx(2e-4)

    @pytest.mark.parametrize("composer", ["binned", "superbatch"])
    def test_heterogeneous_stream_end_to_end_causality(self, pd, composer):
        """max_seeds_per_request streams through non-prefix composers:
        every completed request starts at or after its arrival and at or
        after every batch-mate's arrival (no causality violation, no
        index errors)."""
        sim = ServeSimulator(
            pd,
            device=V100,
            policy=ServePolicy(max_batch=4, max_wait=5e-4),
            cache_ratio=0.0,
            seed=0,
            composer=composer,
        )
        spec = WorkloadSpec(
            num_requests=96,
            arrival_rate=150_000.0,
            seeds_per_request=2,
            max_seeds_per_request=32,
            seed=3,
        )
        report = sim.run(sim.build_workload(spec))
        assert report.completed == 96
        by_batch: dict[int, list] = {}
        for log in report.logs:
            assert log.start >= log.arrival - 1e-15
            by_batch.setdefault(log.batch_id, []).append(log)
        for logs in by_batch.values():
            fire = logs[0].start
            assert all(log.start == fire for log in logs)
            assert fire >= max(log.arrival for log in logs) - 1e-15


# ----------------------------------------------------------------------
# Per-request super-batch outputs == direct single-request runs
# ----------------------------------------------------------------------
class TestSuperbatchEquality:
    def test_unflattened_outputs_match_direct_runs(self, pd):
        """Under exhaustive fanouts (K >= every degree) sampling keeps
        all neighbors, so results are RNG-independent — the fused
        super-batch's per-request samples must then exactly equal
        direct single-request runs, layer by layer."""
        from repro.algorithms import make_algorithm

        pipe = make_algorithm("graphsage", fanouts=(512, 512)).build(
            pd.graph, pd.train_ids[:64]
        )
        rng = np.random.default_rng(7)
        seed_batches = [
            rng.choice(pd.num_nodes, n, replace=False) for n in (4, 9, 1, 6)
        ]
        fused = pipe.sample_superbatch(
            seed_batches, rng=np.random.default_rng(1)
        )
        assert len(fused) == len(seed_batches)
        for seeds, sample in zip(seed_batches, fused):
            direct = pipe.sample_batch(seeds, rng=np.random.default_rng(2))
            assert len(sample.layers) == len(direct.layers)
            for got, want in zip(sample.layers, direct.layers):
                np.testing.assert_array_equal(got.input_nodes, want.input_nodes)
                np.testing.assert_array_equal(
                    np.sort(got.output_nodes), np.sort(want.output_nodes)
                )
                g_rows, g_cols, _ = got.matrix.to_coo_arrays()
                w_rows, w_cols, _ = want.matrix.to_coo_arrays()
                assert set(zip(g_rows.tolist(), g_cols.tolist())) == set(
                    zip(w_rows.tolist(), w_cols.tolist())
                )

    def test_empty_superbatch_window_is_noop(self, pd):
        from repro.algorithms import make_algorithm

        pipe = make_algorithm("graphsage", fanouts=(4, 4)).build(
            pd.graph, pd.train_ids[:64]
        )
        assert pipe.samplers[0].run_superbatch([]) == []

    def test_choose_superbatch_size_heterogeneous_examples(self, pd):
        from repro.algorithms import make_algorithm

        pipe = make_algorithm("graphsage", fanouts=(4, 4)).build(
            pd.graph, pd.train_ids[:64]
        )
        sampler = pipe.samplers[0]
        mixed = [np.arange(4), np.arange(17), np.arange(2)]
        size = sampler.choose_superbatch_size(
            mixed, memory_budget=1 << 30, max_size=16
        )
        assert 1 <= size <= 16
        # Identical budget, uniform example: the classic call still works.
        uniform = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=1 << 30, max_size=16
        )
        assert 1 <= uniform <= 16


# ----------------------------------------------------------------------
# Construction / validation
# ----------------------------------------------------------------------
class TestMakeComposer:
    def test_names_round_trip(self):
        for name in COMPOSER_POLICIES:
            assert make_composer(name).name == name

    def test_instances_pass_through(self):
        composer = SuperbatchComposer(max_requests=4)
        assert make_composer(composer) is composer

    def test_unknown_name_rejected(self):
        with pytest.raises(ServeError):
            make_composer("lifo")

    def test_window_only_valid_for_superbatch(self):
        assert make_composer("superbatch", max_requests=8).max_requests == 8
        with pytest.raises(ServeError):
            make_composer("fifo", max_requests=8)
        with pytest.raises(ServeError):
            SuperbatchComposer(max_requests=0)

    def test_superbatch_requires_capable_pipeline(self, pd):
        class _NoSuperbatch:
            supports_superbatch = False

        with pytest.raises(ServeError):
            ServeSimulator(
                pd,
                device=V100,
                composer="superbatch",
                pipelines=[_NoSuperbatch(), _NoSuperbatch()],
            )

    def test_seed_bin_boundaries(self):
        assert seed_bin(1) == 1
        assert seed_bin(2) == seed_bin(3) == 2
        assert seed_bin(4) == seed_bin(7) == 3
        assert seed_bin(8) == 4
