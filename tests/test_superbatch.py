"""Super-batch sampling tests (Section 4.4): independence and correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.device import ExecutionContext, V100
from repro.errors import TraceError
from repro.ir.passes.superbatch import SuperBatchPass, needs_block_diagonal
from repro.ir.trace import trace
from repro.ir import superbatch_ops
from repro.sampler import compile_sampler

from tests.conftest import to_dense


def sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


def ladies_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    row_probs = (sub_A ** 2).sum(axis=0)
    sample_A = sub_A.collective_sample(K, row_probs)
    return sample_A, sample_A.row()


class TestRewritePass:
    def test_nodewise_needs_no_rewrite(self, small_graph):
        ir, _ = trace(sage_layer, small_graph, np.arange(4), constants={"K": 2})
        assert not needs_block_diagonal(ir)
        assert not SuperBatchPass().run(ir)

    def test_layerwise_rewritten(self, small_graph):
        ir, _ = trace(ladies_layer, small_graph, np.arange(4), constants={"K": 3})
        assert needs_block_diagonal(ir)
        assert SuperBatchPass().run(ir)
        ops = [n.op for n in ir.nodes()]
        assert "sb_slice_cols" in ops
        assert "sb_collective_sample" in ops
        assert "collective_sample" not in ops
        ir.validate()

    def test_rewrite_is_idempotent(self, small_graph):
        ir, _ = trace(ladies_layer, small_graph, np.arange(4), constants={"K": 3})
        SuperBatchPass().run(ir)
        assert not SuperBatchPass().run(ir)


class TestSegmentedOps:
    def test_sb_slice_cols_block_diagonal(self, small_graph):
        frontiers = np.array([1, 2, 3, 4])
        batch_ptr = np.array([0, 2, 4])
        out = superbatch_ops.sb_slice_cols(small_graph, frontiers, batch_ptr)
        n = small_graph.shape[0]
        assert out.shape == (2 * n, 4)
        dense = to_dense(out)
        # Batch 0's columns only touch row block 0; batch 1's only block 1.
        assert not dense[n:, :2].any()
        assert not dense[:n, 2:].any()
        np.testing.assert_allclose(
            dense[:n, :2], to_dense(small_graph)[:, [1, 2]], rtol=1e-6
        )
        np.testing.assert_allclose(
            dense[n:, 2:], to_dense(small_graph)[:, [3, 4]], rtol=1e-6
        )

    def test_sb_collective_sample_per_batch_budget(self, small_graph):
        frontiers = np.arange(20)
        batch_ptr = np.array([0, 10, 20])
        block = superbatch_ops.sb_slice_cols(small_graph, frontiers, batch_ptr)
        out = superbatch_ops.sb_collective_sample(
            block, 5, batch_ptr, rng=new_rng(0)
        )
        n = small_graph.shape[0]
        assert out.shape[0] == 10  # 5 rows per batch
        # External row ids fold back to original node ids so per-node
        # debias indexing works; the internal structure stays segmented.
        assert out.row_ids.max() < n
        csc = out.get("csc")
        rows_b0 = set(csc.rows[csc.indptr[0] : csc.indptr[10]].tolist())
        rows_b1 = set(csc.rows[csc.indptr[10] : csc.indptr[20]].tolist())
        assert len(rows_b0) <= 5 and len(rows_b1) <= 5
        assert not rows_b0 & rows_b1  # batches stay independent

    def test_split_sample_restores_global_ids(self, small_graph):
        frontiers = np.array([1, 2, 3, 4])
        batch_ptr = np.array([0, 2, 4])
        block = superbatch_ops.sb_slice_cols(small_graph, frontiers, batch_ptr)
        pieces = superbatch_ops.split_sample(
            block, batch_ptr, small_graph.shape[0]
        )
        assert len(pieces) == 2
        for piece, cols in zip(pieces, ([1, 2], [3, 4])):
            np.testing.assert_array_equal(piece.column(), cols)
            assert piece.row_ids.max() < small_graph.shape[0]


class TestRunSuperbatch:
    def test_sage_superbatch_matches_columns(self, small_graph):
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )
        batches = [np.arange(8), np.arange(50, 58), np.arange(100, 108)]
        results = sampler.run_superbatch(batches, rng=new_rng(1))
        assert len(results) == 3
        for (matrix, nxt), batch in zip(results, batches):
            np.testing.assert_array_equal(matrix.column(), batch)
            assert matrix.nnz <= 3 * len(batch)
            # Every sampled edge is a real graph edge.
            rows, cols, _ = matrix.to_coo_arrays()
            dense = to_dense(small_graph)
            assert all(dense[r, c] != 0 for r, c in zip(rows, cols))
            np.testing.assert_array_equal(np.sort(nxt), np.unique(rows))

    def test_ladies_superbatch_independent_batches(self, small_graph):
        sampler = compile_sampler(
            ladies_layer, small_graph, np.arange(16), constants={"K": 6}
        )
        batches = [np.arange(16), np.arange(30, 46)]
        results = sampler.run_superbatch(batches, rng=new_rng(2))
        for (matrix, nxt), batch in zip(results, batches):
            assert matrix.shape[0] <= 6
            np.testing.assert_array_equal(matrix.column(), batch)
            assert len(nxt) <= 6

    def test_superbatch_faster_than_sequential(self, small_graph):
        """The point of super-batching: fewer, fuller launches (Figure 6)."""
        sampler = compile_sampler(
            ladies_layer, small_graph, np.arange(16), constants={"K": 6}
        )
        batches = [np.arange(i, i + 16) for i in range(0, 128, 16)]
        sb_ctx = ExecutionContext(V100)
        sampler.run_superbatch(batches, ctx=sb_ctx, rng=new_rng(3))
        seq_ctx = ExecutionContext(V100)
        for batch in batches:
            sampler.run(batch, ctx=seq_ctx, rng=new_rng(3))
        assert sb_ctx.elapsed < seq_ctx.elapsed
        # The sampling work itself collapses into one launch sequence;
        # only the final per-batch split scales with the batch count.
        sampling_launches = sum(
            1 for l in sb_ctx.launches if l.name.startswith("sb_")
        )
        assert sampling_launches <= 5

    def test_non_pair_contract_rejected(self, small_graph):
        def walk(A, frontiers):
            return A[:, frontiers].individual_sample(1)

        sampler = compile_sampler(walk, small_graph, np.arange(4))
        with pytest.raises(TraceError):
            sampler.run_superbatch([np.arange(4)])

    def test_choose_superbatch_size(self, small_graph):
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )
        size = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=1 << 22, max_size=16
        )
        assert 1 <= size <= 16
        # A tiny budget forces size 1.
        tiny = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=1, max_size=16
        )
        assert tiny == 1

    def test_nested_structure_rejected(self, small_graph):
        # The contract check must reject *nested* tuple structures too,
        # not just single-leaf programs.
        def nested(A, frontiers, K):
            sub_A = A[:, frontiers]
            sample_A = sub_A.individual_sample(K)
            return (sample_A, sample_A.row()), sample_A.row()

        sampler = compile_sampler(
            nested, small_graph, np.arange(4), constants={"K": 2}
        )
        with pytest.raises(TraceError, match="one-layer contract"):
            sampler.run_superbatch([np.arange(4)])


class TestChooseSuperbatchSize:
    @pytest.fixture
    def sampler(self, small_graph):
        return compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )

    def _peak_for(self, sampler, size: int) -> int:
        ctx = ExecutionContext()
        sampler.run_superbatch(
            [np.arange(8)] * size, ctx=ctx, rng=new_rng(0)
        )
        return ctx.memory.peak_bytes

    def test_chosen_size_respects_budget(self, sampler):
        budget = self._peak_for(sampler, 4) + 1
        size = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=budget, max_size=64
        )
        assert self._peak_for(sampler, size) <= budget
        # The search keeps the *largest* fitting probe: doubling busts it.
        assert self._peak_for(sampler, size * 2) > budget

    def test_max_size_cap_wins_over_budget(self, sampler):
        size = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=1 << 40, max_size=8
        )
        assert size == 8

    def test_non_power_of_two_cap(self, sampler):
        # The probe doubles 2, 4, 8, ...; a cap of 12 must still be
        # honored (largest probed size not exceeding it is 8).
        size = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=1 << 40, max_size=12
        )
        assert size == 8

    def test_non_power_of_two_budget(self, sampler):
        # An awkward odd budget between probe peaks picks the probe
        # just below it, never the one above.
        peak2 = self._peak_for(sampler, 2)
        peak4 = self._peak_for(sampler, 4)
        assert peak2 < peak4
        budget = (peak2 + peak4) // 2 + 1
        size = sampler.choose_superbatch_size(
            np.arange(8), memory_budget=budget, max_size=64
        )
        assert size == 2
