"""Multi-tier feature store: tiers, p2p striping, and the cache fixes.

The contracts under test:

* :func:`~repro.cache.feature_cache.admit_rows` pins the *largest*
  fitting row count under a tight budget (binary search), not the
  up-to-2x-smaller halving artifact the old loop produced;
* sharded replicas rank cache admission by owned-shard degree
  (``owned_mask``), so the budget goes to rows the router will send;
* :class:`~repro.cache.tiered.TieredFeatureStore` partitions every node
  into exactly one tier, engages p2p only when the link beats host DRAM
  (NVLink yes, PCIe no), and stripes the pooled device band disjointly
  across replicas;
* ``CacheStats.merged`` skips ``None`` entries and sums the tier
  breakdown; ``release()`` reports zero evicted rows (a voluntary
  teardown is not budget pressure);
* sessions start clean: ``begin_session`` resets the epoch tally, so a
  polluted cache cannot leak counts into the next report;
* acceptance: the full-HBM-budget tiered session is *bit-identical* to
  the flat cache (fingerprint equality); under a capped budget the
  2-replica NVLink tiered+p2p session beats flat on p99 and mean; the
  async-prefetch tiered pipeline beats the synchronous loader at equal
  loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    CacheStats,
    FeatureCache,
    TieredFeatureStore,
    admit_rows,
)
from repro.cache.tiered import (
    REMOTE_TIER,
    TIER_DEVICE,
    TIER_HOST,
    TIER_P2P,
    TIER_REMOTE,
    GatherSplit,
    TierSpec,
)
from repro.datasets import load_dataset
from repro.device import NVLINK, PCIE, V100, MemoryPool, p2p_cheaper_than_host
from repro.errors import ServeError, ShapeError
from repro.pipeline import run_pipeline_cell
from repro.serve import WorkloadSpec, run_cluster_session

#: HBM budget (bytes) that fits ~512 of PD-0.25's 3000 feature rows —
#: well under the working set, so the capped cells exercise every tier.
CAPPED_BUDGET = 64 * 1024


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


def make_store(num_nodes=64, feat=4, budget=None, **kwargs):
    """A small store over descending-hotness features (node 0 hottest)."""
    features = np.zeros((num_nodes, feat), dtype=np.float32)
    scores = np.arange(num_nodes, 0, -1, dtype=np.float64)
    pool = MemoryPool(budget)
    return TieredFeatureStore(features, scores, pool=pool, **kwargs)


# ----------------------------------------------------------------------
# admit_rows: the halving-loop bugfix
# ----------------------------------------------------------------------
class TestAdmitRows:
    def test_full_plan_single_allocation(self):
        pool = MemoryPool(100 * 512)
        rows, alloc = admit_rows(pool, 512, 100, "t")
        assert rows == 100
        assert alloc is not None and alloc.nbytes == 100 * 512

    def test_largest_fitting_not_halving_artifact(self):
        # 73 rows fit.  The old halving loop would have probed
        # 100 -> 50 and pinned 50; binary search must find 73 exactly.
        pool = MemoryPool(73 * 512)
        rows, alloc = admit_rows(pool, 512, 100, "t")
        assert rows == 73
        assert alloc is not None
        assert pool.live_bytes == 73 * 512

    @pytest.mark.parametrize("capacity_rows", [1, 37, 63, 64, 99])
    def test_boundary_is_exact(self, capacity_rows):
        pool = MemoryPool(capacity_rows * 512)
        rows, _ = admit_rows(pool, 512, 100, "t")
        assert rows == capacity_rows

    def test_refusal_leaves_pool_untouched(self):
        pool = MemoryPool(256)  # under one 512-byte row
        rows, alloc = admit_rows(pool, 512, 10, "t")
        assert rows == 0 and alloc is None
        assert pool.live_bytes == 0 and pool.live_allocations == 0

    def test_zero_want(self):
        assert admit_rows(MemoryPool(), 512, 0, "t") == (0, None)


# ----------------------------------------------------------------------
# Sharded-replica cache scoring (owned_mask)
# ----------------------------------------------------------------------
class TestOwnedMaskScoring:
    def test_budget_goes_to_owned_rows(self, pd):
        n = pd.features.shape[0]
        owned = np.zeros(n, dtype=bool)
        owned[n // 2 :] = True  # this replica owns the top-id half
        cache = FeatureCache.from_dataset(
            pd, ratio=0.1, pool=MemoryPool(), owned_mask=owned
        )
        # Plan (10% of nodes) is far smaller than the owned half, so
        # every pinned row must be owned.
        assert cache.cached_rows > 0
        assert owned[cache.cached_ids].all()

    def test_global_ranking_without_mask(self, pd):
        a = FeatureCache.from_dataset(pd, ratio=0.1, pool=MemoryPool())
        b = FeatureCache.from_dataset(
            pd, ratio=0.1, pool=MemoryPool(), owned_mask=None
        )
        assert np.array_equal(a.cached_ids, b.cached_ids)

    def test_mask_shape_checked(self, pd):
        with pytest.raises(ShapeError):
            FeatureCache.from_dataset(
                pd, pool=MemoryPool(), owned_mask=np.ones(3, dtype=bool)
            )


# ----------------------------------------------------------------------
# CacheStats: merged with None entries, release semantics
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_merged_skips_none(self):
        s = CacheStats(
            cached_rows=4,
            requested_rows=8,
            cached_bytes=64,
            hits=10,
            misses=6,
            p2p_hits=1,
            host_hits=2,
            remote_hits=3,
            host_rows=5,
        )
        merged = CacheStats.merged([None, s, None])
        assert merged == s

    def test_merged_all_none(self):
        assert CacheStats.merged([None, None]) is None
        assert CacheStats.merged([]) is None

    def test_merged_sums_tier_breakdown(self):
        a = CacheStats(2, 4, 32, hits=3, misses=3, p2p_hits=1, host_hits=2)
        b = CacheStats(1, 4, 16, hits=1, misses=5, remote_hits=4, host_rows=7)
        m = CacheStats.merged([a, None, b])
        assert (m.hits, m.misses) == (4, 8)
        assert (m.p2p_hits, m.host_hits, m.remote_hits) == (1, 2, 4)
        assert m.host_rows == 7
        assert m.lookups == 12

    def test_release_reads_zero_evicted(self, pd):
        cache = FeatureCache.from_dataset(pd, ratio=0.1, pool=MemoryPool())
        assert cache.epoch_stats().evicted_rows == 0
        cache.release()
        stats = cache.epoch_stats()
        assert stats.evicted_rows == 0
        assert stats.cached_rows == 0 and stats.requested_rows == 0

    def test_tiered_release_reads_zero_evicted(self):
        store = make_store(device_ratio=0.5, host_ratio=0.5)
        store.release()
        stats = store.epoch_stats()
        assert stats.evicted_rows == 0
        # Former device rows fall back to pinned host, not remote.
        assert stats.host_rows == 64

    def test_tier_rate_partitions_lookups(self):
        s = CacheStats(0, 0, 0, hits=5, misses=5, p2p_hits=2, host_hits=2,
                       remote_hits=1)
        total = sum(
            s.tier_rate(t) for t in ("device", "p2p", "host", "remote")
        )
        assert total == pytest.approx(1.0)
        assert s.tier_rate("device") == pytest.approx(0.5)


# ----------------------------------------------------------------------
# TierSpec / GatherSplit
# ----------------------------------------------------------------------
class TestTierSpec:
    def test_fetch_time_latency_plus_bandwidth(self):
        tier = TierSpec(name="t", bandwidth=1e9, latency=1e-4)
        assert tier.fetch_time(0) == 0.0
        assert tier.fetch_time(1e9) == pytest.approx(1e-4 + 1.0)

    def test_validation(self):
        with pytest.raises(ShapeError):
            TierSpec(name="bad", bandwidth=0.0, latency=0.0)
        with pytest.raises(ShapeError):
            TierSpec(name="bad", bandwidth=1e9, latency=-1.0)

    def test_gather_split_total(self):
        assert GatherSplit(1, 2, 3, 4).total == 10


# ----------------------------------------------------------------------
# TieredFeatureStore: tier assignment
# ----------------------------------------------------------------------
class TestTierAssignment:
    def test_every_node_in_exactly_one_tier(self):
        store = make_store(device_ratio=0.25, host_ratio=0.5)
        split = store.split(np.arange(64))
        assert split.total == 64
        assert split.device_rows == 16  # hottest quarter
        assert split.host_rows == 32  # next half
        assert split.remote_rows == 16  # cold tail

    def test_default_host_ratio_leaves_no_remote_tail(self):
        store = make_store(device_ratio=0.25)
        assert store.split(np.arange(64)).remote_rows == 0

    def test_hottest_rows_go_device(self):
        store = make_store(device_ratio=0.25, host_ratio=0.5)
        assert np.array_equal(store.cached_ids, np.arange(16))

    def test_budget_evicts_device_band_to_host(self):
        # Plan 32 rows of 16 bytes; budget fits one 512-byte granule =
        # exactly 32 rows' bytes... so cap below: 8 rows want 512B each.
        store = make_store(
            num_nodes=64, feat=128, budget=4 * 512, device_ratio=0.5
        )
        assert store.cached_rows == 4
        stats = store.epoch_stats()
        assert stats.evicted_rows == 32 - 4
        # Evicted rows are still hot: they land in the host tier.
        assert store.split(np.arange(4, 32)).host_rows == 28

    def test_duplicates_count_per_occurrence(self):
        store = make_store(device_ratio=0.25, host_ratio=0.25)
        split = store.split(np.array([0, 0, 20, 63, 63, 63]))
        assert (split.device_rows, split.host_rows) == (2, 1)
        assert split.remote_rows == 3

    def test_empty_gather_is_noop(self):
        store = make_store()
        assert store.split(np.array([], dtype=np.int64)).total == 0
        assert store.record_gather(np.array([], dtype=np.int64)).total == 0

    def test_record_and_reset_epoch(self):
        store = make_store(device_ratio=0.25, host_ratio=0.5)
        store.record_gather(np.arange(64))
        stats = store.epoch_stats()
        assert (stats.hits, stats.misses) == (16, 48)
        assert (stats.host_hits, stats.remote_hits) == (32, 16)
        store.reset_epoch()
        assert store.epoch_stats().lookups == 0

    def test_ratio_validation(self):
        with pytest.raises(ShapeError):
            make_store(device_ratio=1.5)
        with pytest.raises(ShapeError):
            make_store(host_ratio=-0.1)
        with pytest.raises(ShapeError):
            make_store(replica_id=2, num_replicas=2)


# ----------------------------------------------------------------------
# p2p: decision rule and striping
# ----------------------------------------------------------------------
class TestP2P:
    def test_nvlink_beats_host_pcie_does_not(self):
        assert p2p_cheaper_than_host(NVLINK, V100)
        assert not p2p_cheaper_than_host(PCIE, V100)

    def test_pcie_link_disables_p2p(self):
        store = make_store(
            device_ratio=0.25, link=PCIE, device=V100,
            replica_id=0, num_replicas=2, p2p=True,
        )
        assert not store.p2p_enabled
        assert store.split(np.arange(64)).p2p_rows == 0

    def test_single_replica_disables_p2p(self):
        store = make_store(
            device_ratio=0.25, link=NVLINK, device=V100, p2p=True
        )
        assert not store.p2p_enabled

    def test_stripes_are_disjoint_and_cover_band(self):
        kwargs = dict(
            device_ratio=0.25, host_ratio=0.0, link=NVLINK, device=V100,
            num_replicas=2, p2p=True,
        )
        r0 = make_store(replica_id=0, **kwargs)
        r1 = make_store(replica_id=1, **kwargs)
        assert r0.p2p_enabled and r1.p2p_enabled
        # Pooled band = top 2 * 16 rows, striped round-robin.
        assert np.array_equal(r0.cached_ids, np.arange(0, 32, 2))
        assert np.array_equal(r1.cached_ids, np.arange(1, 32, 2))
        # What r0 serves locally, r1 reaches over the link — and vice
        # versa (the symmetric-admission contract).
        band = np.arange(32)
        s0, s1 = r0.split(band), r1.split(band)
        assert (s0.device_rows, s0.p2p_rows) == (16, 16)
        assert (s1.device_rows, s1.p2p_rows) == (16, 16)
        assert np.array_equal(
            r0._tier[band] == TIER_P2P, r1._tier[band] == TIER_DEVICE
        )

    def test_p2p_band_counts_in_stats(self):
        store = make_store(
            device_ratio=0.25, host_ratio=0.0, link=NVLINK, device=V100,
            replica_id=0, num_replicas=2, p2p=True,
        )
        store.record_gather(np.arange(32))
        stats = store.epoch_stats()
        assert stats.p2p_hits == 16
        assert stats.misses == 16  # p2p rows are not device hits

    def test_p2p_without_tiers_is_a_config_error(self, pd):
        with pytest.raises(ServeError):
            run_cluster_session(
                pd, device=V100, num_replicas=2, link="nvlink", p2p=True
            )


# ----------------------------------------------------------------------
# Session integration: bit-identity, reset, and the capped-budget wins
# ----------------------------------------------------------------------
class TestTieredSessions:
    def test_full_budget_tiered_is_bit_identical_to_flat(self, pd):
        spec = WorkloadSpec(num_requests=96, seed=0)
        _, flat = run_cluster_session(pd, device=V100, spec=spec, seed=0)
        _, tier = run_cluster_session(
            pd, device=V100, spec=spec, seed=0, feature_tiers=True
        )
        assert tier.fingerprint() == flat.fingerprint()
        assert tier.feature_tiers and not flat.feature_tiers

    def test_begin_session_resets_polluted_cache(self, pd):
        spec = WorkloadSpec(num_requests=64, seed=0)
        kwargs = dict(device=V100, spec=spec, seed=0, feature_tiers=True)
        clean_cluster, clean = run_cluster_session(pd, **kwargs)
        from repro.serve.cluster import ClusterSimulator

        dirty_cluster = ClusterSimulator(
            pd, device=V100, seed=0, feature_tiers=True
        )
        for replica in dirty_cluster.replicas:
            replica.cache.record_gather(np.arange(200))
        report = dirty_cluster.run(dirty_cluster.build_workload(spec))
        assert report.cache.lookups == clean.cache.lookups
        assert report.fingerprint() == clean.fingerprint()

    def test_capped_tiered_p2p_beats_flat(self, pd):
        spec = WorkloadSpec(seed=0)
        kwargs = dict(
            device=V100, spec=spec, seed=0, num_replicas=2,
            link="nvlink", hbm_budget=CAPPED_BUDGET,
        )
        _, flat = run_cluster_session(pd, **kwargs)
        _, tier = run_cluster_session(
            pd, feature_tiers=True, p2p=True, **kwargs
        )
        assert tier.p99_ms < flat.p99_ms
        assert tier.mean_ms < flat.mean_ms
        # The win comes from the pooled device band: p2p traffic flowed.
        assert tier.p2p_rows > 0
        assert tier.p2p_bytes == tier.p2p_rows * pd.features.shape[1] * 4
        assert tier.cache.tier_rate("p2p") > 0.0

    def test_tiered_metrics_and_trace(self, pd):
        from repro.profile.spans import Profiler

        profiler = Profiler()
        spec = WorkloadSpec(num_requests=64, seed=0)
        _, report = run_cluster_session(
            pd, device=V100, spec=spec, seed=0, num_replicas=2,
            link="nvlink", feature_tiers=True, p2p=True,
            hbm_budget=CAPPED_BUDGET, profiler=profiler,
        )
        metrics = report.to_metrics()
        rates = [
            metrics[f"tier_{t}_rate"]
            for t in ("device", "p2p", "host", "remote")
        ]
        assert sum(rates) == pytest.approx(1.0)
        assert metrics["p2p_rows"] == float(report.p2p_rows)
        cache_spans = [
            s for s in profiler.spans if s.name.startswith("tiered_cache[")
        ]
        assert len(cache_spans) == 2
        assert all("p2p_hits" in s.attrs for s in cache_spans)

    def test_pipeline_prefetch_beats_synchronous_loader(self, pd):
        kwargs = dict(
            device=V100, seed=0, hbm_budget=CAPPED_BUDGET,
            feature_tiers=True, host_tier_ratio=0.6,
        )
        _, pre = run_pipeline_cell("graphsage", pd, prefetch=True, **kwargs)
        serial, sync = run_pipeline_cell(
            "graphsage", pd, prefetch=False, **kwargs
        )
        # Async prefetch overlaps the tier fetch with compute; the
        # synchronous loader serializes behind it.
        assert pre.total_seconds < sync.total_seconds
        # The clock is the only difference: losses are bit-identical
        # across serial / sync / prefetched runs.
        assert pre.final_loss == sync.final_loss == serial.final_loss
        stats = pre.cache_stats
        assert stats.remote_hits > 0 and stats.host_hits > 0

    def test_pipeline_tiered_loss_matches_flat(self, pd):
        _, flat = run_pipeline_cell("graphsage", pd, device=V100, seed=0)
        _, tier = run_pipeline_cell(
            "graphsage", pd, device=V100, seed=0, feature_tiers=True
        )
        assert tier.final_loss == flat.final_loss
        assert tier.final_accuracy == flat.final_accuracy
