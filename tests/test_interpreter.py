"""Interpreter coverage: every IR operator executes correctly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.device import ExecutionContext, V100
from repro.errors import PassError
from repro.ir.graph import DataFlowGraph
from repro.ir.interpreter import Interpreter
from repro.ir.trace import trace
from repro.sampler import compile_sampler

from tests.conftest import to_dense


def _run(fn, graph, seeds, constants=None, tensors=None, rng_seed=0):
    sampler = compile_sampler(
        fn, graph, seeds, constants=constants, tensors=tensors
    )
    return sampler.run(
        seeds, tensors=tensors, ctx=ExecutionContext(V100), rng=new_rng(rng_seed)
    )


class TestTensorOps:
    def test_reverse_scalar_ops(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            s = sub.sum(axis=1)
            inv = 1.0 / (s + 1.0)       # reverse div + forward add
            flipped = 2.0 - s * 0.0     # reverse sub
            sample = sub.collective_sample(K, (sub ** 2).sum(axis=0))
            return sample, inv + flipped

        sample, vec = _run(layer, small_graph, np.arange(6), {"K": 3})
        sums = small_graph[:, np.arange(6)].sum(axis=1)
        np.testing.assert_allclose(vec, 1.0 / (sums + 1.0) + 2.0, rtol=1e-5)

    def test_softmax_relu_sum(self, small_graph):
        w = np.array([1.0, 2.0, 3.0], dtype=np.float32)

        def layer(A, frontiers, weights):
            s = weights.softmax()
            r = (weights - 2.0).relu()
            total = (s + r).sum()
            sub = A[:, frontiers]
            return sub.individual_sample(2), total * (frontiers * 0 + 1.0)

        _, out = _run(
            layer, small_graph, np.arange(4), tensors={"weights": w}
        )
        e = np.exp(w - w.max())
        expected = (e / e.sum() + np.maximum(w - 2.0, 0)).sum()
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_matrix_scale_by_tensor_element(self, small_graph):
        w = np.array([0.5, 2.0], dtype=np.float32)

        def layer(A, frontiers, weights):
            sub = A[:, frontiers]
            scaled = sub.scale(weights, 1)  # multiply all edges by w[1]
            return scaled, scaled.row()

        scaled, _ = _run(layer, small_graph, np.arange(4), tensors={"weights": w})
        plain = small_graph[:, np.arange(4)]
        np.testing.assert_allclose(
            to_dense(scaled), 2.0 * to_dense(plain), rtol=1e-5
        )

    def test_sddmm_in_ir(self, small_graph, rng):
        feats = rng.random((200, 6)).astype(np.float32)

        def layer(A, frontiers, features):
            sub = A[:, frontiers]
            att = sub.sddmm(features, features[frontiers])
            s = sub.individual_sample(2, att)
            return s, s.row()

        sample, _ = _run(
            layer, small_graph, np.arange(5), tensors={"features": feats}
        )
        assert sample.nnz <= 10


class TestExecutionMachinery:
    def test_unknown_op_raises(self, small_graph):
        ir = DataFlowGraph()
        node = ir.add_node("warp_drive", ())
        ir.outputs = [node.node_id]
        interp = Interpreter(ir, ExecutionContext(V100))
        with pytest.raises(PassError):
            interp.run({}, new_rng(0))

    def test_precomputed_inputs_resolve(self, small_graph):
        def layer(A, frontiers, K):
            deg = A.sum(axis=0)  # hoisted to a precomputed input
            sub = A[:, frontiers]
            s = sub.collective_sample(K, deg + 1.0)
            return s, s.row()

        sampler = compile_sampler(
            layer, small_graph, np.arange(6), constants={"K": 3}
        )
        assert sampler.precomputed
        sample, _ = sampler.run(np.arange(6), rng=new_rng(1))
        assert sample.shape[0] == 3

    def test_layout_stamps_are_honored(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            s = sub.individual_sample(K, sub ** 1.0)
            return s, s.row()

        sampler = compile_sampler(
            layer, small_graph, np.arange(6), constants={"K": 2}
        )
        for node in sampler.ir.nodes():
            if node.op == "slice_cols":
                node.layout = "coo"
        sample, _ = sampler.run(np.arange(6), rng=new_rng(2))
        assert sample.nnz <= 12  # still correct under a forced layout

    def test_tiled_broadcast_for_superbatch_vectors(self):
        ir = DataFlowGraph()
        a = ir.add_node("input_tensor", (), {"name": "a"})
        b = ir.add_node("input_tensor", (), {"name": "b"})
        op = ir.add_node("t_binop", (a.node_id, b.node_id), {"op": "mul"})
        ir.outputs = [op.node_id]
        interp = Interpreter(ir, ExecutionContext(V100))
        (out,) = interp.run(
            {"a": np.arange(6.0), "b": np.array([1.0, 2.0])}, new_rng(0)
        )
        np.testing.assert_allclose(out, np.arange(6.0) * [1, 2, 1, 2, 1, 2])

    def test_intermediates_freed_incrementally(self, small_graph):
        """Peak memory must be below the sum of all intermediates."""
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            a = sub * 2.0
            b = a * 2.0
            c = b * 2.0
            s = sub.individual_sample(K, c)
            return s, s.row()

        sampler = compile_sampler(
            layer, small_graph, np.arange(20), constants={"K": 2},
        )
        ctx = ExecutionContext(V100)
        sampler.run(np.arange(20), ctx=ctx, rng=new_rng(3))
        assert ctx.memory.live_bytes == 0
        total_allocated = sum(
            l.bytes_written for l in ctx.launches
        )
        assert ctx.memory.peak_bytes < max(total_allocated, 1) * 1.5
