"""Algorithm tests: all 15 Table-2 algorithms produce valid samples, plus
per-algorithm semantic invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    BENCHMARKED,
    available_algorithms,
    make_algorithm,
)
from repro.algorithms.seal import drnl_labels
from repro.algorithms.walks import WalkResult, top_k_per_segment
from repro.core import GraphSample, new_rng
from repro.device import ExecutionContext, V100
from repro.errors import GSamplerError

from tests.conftest import to_dense


@pytest.fixture
def features(rng):
    return rng.random((200, 16)).astype(np.float32)


def _build(name, graph, features, **kwargs):
    algo = make_algorithm(name, **kwargs)
    return algo, algo.build(graph, np.arange(16), features=features)


class TestRegistry:
    def test_all_registered(self):
        # 15 Table-2 algorithms plus the LABOR variance-reduced sampler.
        assert len(available_algorithms()) == 16

    def test_benchmarked_subset(self):
        assert set(BENCHMARKED) <= set(available_algorithms())

    def test_unknown_rejected(self):
        with pytest.raises(GSamplerError):
            make_algorithm("pagerank")


@pytest.mark.parametrize("name", sorted(set(available_algorithms()) - {"seal"}))
def test_every_algorithm_samples(name, small_graph, features, rng):
    """Every algorithm produces a structurally valid sample batch."""
    _, pipe = _build(name, small_graph, features)
    ctx = ExecutionContext(V100)
    out = pipe.sample_batch(np.arange(16), ctx=ctx, rng=new_rng(0))
    assert ctx.elapsed > 0
    dense = to_dense(small_graph)
    if isinstance(out, GraphSample):
        assert len(out.layers) >= 1
        for layer in out.layers:
            rows, cols, _ = layer.matrix.to_coo_arrays()
            assert set(np.unique(cols)) <= set(layer.input_nodes.tolist())
    elif isinstance(out, WalkResult):
        # Every consecutive walk pair is a graph edge.
        trace = out.trace
        for t in range(trace.shape[0] - 1):
            for w in range(trace.shape[1]):
                cur, nxt = trace[t, w], trace[t + 1, w]
                if cur >= 0 and nxt >= 0:
                    assert dense[nxt, cur] != 0


class TestGraphSAGE:
    def test_fanout_bounds(self, small_graph, rng):
        _, pipe = _build("graphsage", small_graph, None, fanouts=(3, 5))
        out = pipe.sample_batch(np.arange(10), rng=new_rng(1))
        assert len(out.layers) == 2
        assert out.layers[0].num_edges <= 3 * 10
        assert out.layers[1].num_edges <= 5 * len(out.layers[0].output_nodes)

    def test_edges_come_from_graph(self, small_graph):
        _, pipe = _build("graphsage", small_graph, None, fanouts=(4,))
        out = pipe.sample_batch(np.arange(10), rng=new_rng(2))
        dense = to_dense(small_graph)
        rows, cols, _ = out.layers[0].matrix.to_coo_arrays()
        assert all(dense[r, c] != 0 for r, c in zip(rows, cols))


class TestLADIES:
    def test_layer_width_and_normalization(self, small_graph):
        _, pipe = _build("ladies", small_graph, None, layer_width=8, num_layers=2)
        out = pipe.sample_batch(np.arange(20), rng=new_rng(3))
        for layer in out.layers:
            assert layer.matrix.shape[0] <= 8
            col_sums = layer.matrix.sum(axis=1)
            nonzero = col_sums > 0
            np.testing.assert_allclose(col_sums[nonzero], 1.0, atol=1e-4)


class TestFastGCN:
    def test_degree_bias_prefers_hubs(self, small_graph):
        _, pipe = _build("fastgcn", small_graph, None, layer_width=20,
                         num_layers=1)
        degree = to_dense(small_graph).sum(axis=1)
        hub_hits = 0
        top_half = set(np.argsort(degree)[-100:].tolist())
        for seed in range(10):
            out = pipe.sample_batch(np.arange(30), rng=new_rng(seed))
            selected = out.layers[0].matrix.row()
            hub_hits += sum(1 for n in selected if int(n) in top_half)
        assert hub_hits > 120  # hubs picked far more often than half


class TestWalkAlgorithms:
    def test_deepwalk_trace_shape(self, small_graph):
        _, pipe = _build("deepwalk", small_graph, None, walk_length=12)
        out = pipe.sample_batch(np.arange(30), rng=new_rng(4))
        assert out.trace.shape == (13, 30)
        np.testing.assert_array_equal(out.trace[0], np.arange(30))

    def test_node2vec_return_bias(self, small_graph):
        # p << 1 makes returning to the previous node overwhelmingly
        # likely whenever it is a neighbor.
        _, pipe = _build(
            "node2vec", small_graph, None, walk_length=6, p=1e-6, q=1e6
        )
        out = pipe.sample_batch(np.arange(40), rng=new_rng(5))
        trace = out.trace
        returns = 0
        opportunities = 0
        dense = to_dense(small_graph)
        for w in range(trace.shape[1]):
            for t in range(2, trace.shape[0]):
                prev, cur, nxt = trace[t - 2, w], trace[t - 1, w], trace[t, w]
                if min(prev, cur, nxt) < 0:
                    continue
                if dense[prev, cur] != 0:  # return edge exists
                    opportunities += 1
                    returns += int(nxt == prev)
        assert opportunities > 0
        assert returns / opportunities > 0.8

    def test_graphsaint_induces_subgraph(self, small_graph):
        _, pipe = _build("graphsaint", small_graph, None, walk_length=3)
        out = pipe.sample_batch(np.arange(10), rng=new_rng(6))
        assert out.matrix.shape == (len(out.nodes), len(out.nodes))
        dense = to_dense(small_graph)
        sub = to_dense(out.matrix)
        np.testing.assert_allclose(
            sub, dense[np.ix_(out.nodes, out.nodes)], rtol=1e-5
        )

    def test_pinsage_top_t(self, small_graph):
        _, pipe = _build("pinsage", small_graph, None, top_t=4, num_layers=1)
        out = pipe.sample_batch(np.arange(12), rng=new_rng(7))
        degrees = np.diff(out.layers[0].matrix.get("csc").indptr)
        assert np.all(degrees <= 4)

    def test_hetgnn_type_balance(self, small_graph):
        _, pipe = _build(
            "hetgnn", small_graph, None, num_types=2, k_per_type=3,
            num_layers=1,
        )
        out = pipe.sample_batch(np.arange(12), rng=new_rng(8))
        matrix = out.layers[0].matrix.get("csc")
        types = np.arange(small_graph.shape[0]) % 2
        cols = matrix.expand_cols()
        for c in range(matrix.shape[1]):
            neigh = matrix.rows[cols == c]
            for t in (0, 1):
                assert (types[neigh] == t).sum() <= 3


class TestShaDowAndSEAL:
    def test_shadow_localized_subgraph(self, small_graph):
        _, pipe = _build("shadow", small_graph, None, fanout=3, depth=2)
        out = pipe.sample_batch(np.arange(6), rng=new_rng(9))
        assert set(out.seeds.tolist()) <= set(out.nodes.tolist())
        assert out.matrix.shape == (len(out.nodes), len(out.nodes))

    def test_seal_enclosing_subgraphs(self, small_graph):
        _, pipe = _build("seal", small_graph, None, hops=2, fanout=5)
        pairs = np.array([1, 2, 3, 4])
        out = pipe.sample_batch(pairs, rng=new_rng(10))
        assert len(out) == 2
        for sample, (u, v) in zip(out, [(1, 2), (3, 4)]):
            assert sample.pair == (u, v)
            assert u in sample.nodes and v in sample.nodes
            assert len(sample.drnl_labels) == len(sample.nodes)
            assert np.all(sample.drnl_labels >= 1)

    def test_drnl_label_formula(self):
        du = np.array([0, 1, 1, 2])
        dv = np.array([0, 1, 2, 2])
        labels = drnl_labels(du, dv)
        assert labels[0] == 1
        assert len(set(labels.tolist())) >= 3


class TestBanditAlgorithms:
    def test_weights_update_moves_sampling(self, small_graph):
        algo, pipe = _build("gcn_bs", small_graph, None, fanouts=(3,))
        out = pipe.sample_batch(np.arange(10), rng=new_rng(11))
        before = pipe.edge_weights.copy()
        rewards = [np.ones(layer.num_edges) for layer in out.layers]
        pipe.apply_rewards(out, rewards)
        assert pipe.edge_weights.sum() > before.sum()

    def test_exp3_multiplicative(self, small_graph):
        _, pipe = _build("thanos", small_graph, None, fanouts=(3,))
        out = pipe.sample_batch(np.arange(10), rng=new_rng(12))
        eids = out.layers[0].matrix.edge_ids()
        pipe.apply_rewards(out, [np.full(len(eids), 2.0)])
        touched = pipe.edge_weights[eids]
        assert np.all(touched > 1.0)

    def test_reward_length_checked(self, small_graph):
        _, pipe = _build("gcn_bs", small_graph, None, fanouts=(3,))
        out = pipe.sample_batch(np.arange(10), rng=new_rng(13))
        with pytest.raises(ValueError):
            pipe.apply_rewards(out, [np.ones(1)])


class TestModelDriven:
    def test_pass_excluded_from_superbatch(self, small_graph, features):
        _, pipe = _build("pass", small_graph, features)
        assert not pipe.supports_superbatch

    def test_pass_parameters_change_bias(self, small_graph, features):
        algo, pipe = _build("pass", small_graph, features, fanout=3,
                            num_layers=1)
        out1 = pipe.sample_batch(np.arange(10), rng=new_rng(14))
        algo.apply_gradients(
            np.ones_like(algo.W1), np.ones_like(algo.W2), np.ones(3), lr=1.0
        )
        out2 = pipe.sample_batch(np.arange(10), rng=new_rng(14))
        assert isinstance(out1, GraphSample) and isinstance(out2, GraphSample)

    def test_asgcn_requires_features(self, small_graph):
        algo = make_algorithm("asgcn")
        with pytest.raises(ValueError):
            algo.build(small_graph, np.arange(4))

    def test_asgcn_importance_reweighting(self, small_graph, features):
        _, pipe = _build("asgcn", small_graph, features, layer_width=8,
                         num_layers=1)
        out = pipe.sample_batch(np.arange(20), rng=new_rng(15))
        assert out.layers[0].matrix.shape[0] <= 8


class TestWalkHelpers:
    def test_top_k_per_segment(self):
        seg = np.array([0, 0, 0, 1, 1, 2])
        score = np.array([1.0, 5.0, 3.0, 2.0, 7.0, 1.0])
        keep = top_k_per_segment(seg, score, 2)
        kept = sorted(keep.tolist())
        assert 1 in kept and 2 in kept  # top 2 of segment 0
        assert 0 not in kept
        assert len(kept) == 5
