"""Compaction tests: isolated-node removal and id bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import (
    COO,
    compact_cols,
    compact_rows,
    convert,
    occupied_cols,
    occupied_rows,
)

from tests.conftest import random_coo, to_dense


@pytest.fixture
def sparse_rows_coo():
    """A matrix whose rows 0, 3, 9 are the only occupied ones."""
    return COO(
        rows=[0, 3, 3, 9],
        cols=[1, 0, 2, 1],
        values=[1.0, 2.0, 3.0, 4.0],
        shape=(10, 3),
    )


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
def test_occupied_rows(sparse_rows_coo, layout):
    matrix = convert(sparse_rows_coo, layout)
    np.testing.assert_array_equal(occupied_rows(matrix), [0, 3, 9])


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
def test_occupied_cols(layout):
    coo = COO(rows=[0, 1], cols=[4, 2], values=None, shape=(3, 6))
    matrix = convert(coo, layout)
    np.testing.assert_array_equal(occupied_cols(matrix), [2, 4])


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
def test_compact_rows_removes_isolated(sparse_rows_coo, layout):
    matrix = convert(sparse_rows_coo, layout)
    result = compact_rows(matrix)
    assert result.matrix.shape == (3, 3)
    np.testing.assert_array_equal(result.row_ids, [0, 3, 9])
    dense = to_dense(sparse_rows_coo)
    np.testing.assert_allclose(to_dense(result.matrix), dense[[0, 3, 9]], rtol=1e-6)


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
def test_compact_cols_removes_isolated(layout):
    coo = COO(rows=[0, 1], cols=[4, 2], values=[1.0, 2.0], shape=(3, 6))
    matrix = convert(coo, layout)
    result = compact_cols(matrix)
    assert result.matrix.shape == (3, 2)
    np.testing.assert_array_equal(result.col_ids, [2, 4])
    np.testing.assert_allclose(
        to_dense(result.matrix), to_dense(coo)[:, [2, 4]], rtol=1e-6
    )


def test_compact_with_explicit_keep_rows(sparse_rows_coo):
    result = compact_rows(sparse_rows_coo, keep_rows=np.array([3, 9]))
    assert result.matrix.shape == (2, 3)
    np.testing.assert_allclose(
        to_dense(result.matrix), to_dense(sparse_rows_coo)[[3, 9]], rtol=1e-6
    )


def test_compact_preserves_edge_ids(rng):
    coo = random_coo(rng, rows=30, cols=5, nnz=20)
    coo.edge_ids = np.arange(coo.nnz) + 100
    result = compact_rows(coo)
    assert result.matrix.edge_ids is not None
    assert set(result.matrix.edge_ids) <= set(coo.edge_ids)
    assert result.matrix.nnz == coo.nnz  # compaction drops no edges


def test_compact_empty_matrix():
    empty = COO(rows=[], cols=[], values=None, shape=(5, 4))
    result = compact_rows(empty)
    assert result.matrix.shape == (0, 4)
    assert len(result.row_ids) == 0
