"""PPR tests: power iteration, forward push, and the ShaDow PPR variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core import new_rng
from repro.core.matrix import from_edges
from repro.core.ppr import global_pagerank, push_ppr, topk_ppr_neighbors
from repro.device import ExecutionContext, V100
from repro.errors import ShapeError


@pytest.fixture
def ring_with_hub():
    """A 20-node ring plus a hub that every node points to."""
    n = 21
    hub = 20
    src = list(range(20)) + list(range(20))
    dst = [(i + 1) % 20 for i in range(20)] + [hub] * 20
    # Edges point *into* columns: also give the hub out-edges so the walk
    # from the hub has somewhere to go.
    src += [hub] * 4
    dst += [0, 5, 10, 15]
    return from_edges(src, dst, n), hub


class TestGlobalPagerank:
    def test_sums_to_one(self, small_graph):
        rank = global_pagerank(small_graph)
        assert rank.sum() == pytest.approx(1.0, rel=1e-4)
        assert np.all(rank >= 0)

    def test_hub_gets_highest_rank(self, ring_with_hub):
        graph, hub = ring_with_hub
        rank = global_pagerank(graph)
        assert rank.argmax() == hub

    def test_damping_validated(self, small_graph):
        with pytest.raises(ShapeError):
            global_pagerank(small_graph, damping=1.5)

    def test_charges_the_context(self, small_graph):
        ctx = ExecutionContext(V100)
        global_pagerank(small_graph, ctx=ctx)
        assert ctx.elapsed > 0
        assert any(l.name == "global_pagerank" for l in ctx.launches)


class TestPushPPR:
    def test_mass_conservation(self, small_graph):
        p = push_ppr(small_graph, 3, epsilon=1e-6)
        # Estimates plus leftover residual equal the unit of mass; with a
        # tight epsilon nearly all mass lands in the estimate.
        assert 0.5 < p.sum() <= 1.0 + 1e-5

    def test_source_holds_most_mass(self, small_graph):
        p = push_ppr(small_graph, 7, alpha=0.5, epsilon=1e-6)
        assert p.argmax() == 7

    def test_locality(self, ring_with_hub):
        graph, _hub = ring_with_hub
        p = push_ppr(graph, 0, alpha=0.3, epsilon=1e-5)
        # Ring nodes far from the source (and not the hub's out-targets)
        # receive (almost) nothing.
        assert p[0] > p[10]

    def test_source_validated(self, small_graph):
        with pytest.raises(ShapeError):
            push_ppr(small_graph, 10_000)
        with pytest.raises(ShapeError):
            push_ppr(small_graph, 0, alpha=0.0)

    def test_isolated_source(self):
        graph = from_edges([0], [1], 5)
        p = push_ppr(graph, 3)  # node 3 has no in-edges
        assert p[3] == pytest.approx(1.0)
        assert p.sum() == pytest.approx(1.0)


class TestTopkNeighbors:
    def test_excludes_source_and_bounds_k(self, small_graph):
        top = topk_ppr_neighbors(small_graph, 5, 8)
        assert 5 not in top
        assert len(top) <= 8

    def test_empty_for_isolated_source(self):
        graph = from_edges([0], [1], 5)
        assert len(topk_ppr_neighbors(graph, 3, 4)) == 0


class TestShaDowPPRVariant:
    def test_ppr_bias_builds_localized_subgraph(self, small_graph):
        algo = make_algorithm("shadow", bias="ppr", ppr_k=6)
        pipe = algo.build(small_graph, np.arange(4))
        out = pipe.sample_batch(np.arange(4), rng=new_rng(0))
        assert set(out.seeds.tolist()) <= set(out.nodes.tolist())
        # Pool bounded by seeds + k PPR nodes per seed.
        assert len(out.nodes) <= 4 + 4 * 6
        assert out.matrix.shape == (len(out.nodes), len(out.nodes))

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            make_algorithm("shadow", bias="metis")
