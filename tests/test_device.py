"""Device simulator tests: specs, memory pool, and launch ledger."""

from __future__ import annotations

import pytest

from repro.device import (
    CPU,
    T4,
    V100,
    DeviceSpec,
    ExecutionContext,
    MemoryPool,
    NullContext,
    get_device,
)
from repro.errors import DeviceError, MemoryBudgetError


class TestDeviceSpec:
    def test_registry(self):
        assert get_device("v100") is V100
        assert get_device("T4") is T4
        with pytest.raises(DeviceError):
            get_device("h100")

    def test_t4_matches_paper_ratios(self):
        """The paper states T4 has 30.0% of V100's bandwidth and 51.6% of
        its FLOPs."""
        assert T4.bandwidth / V100.bandwidth == pytest.approx(0.300)
        assert T4.flops / V100.flops == pytest.approx(0.516)

    def test_kernel_time_is_roofline(self):
        # Memory-bound: time follows bytes.
        t_mem = V100.kernel_time(bytes_moved=1e9, flops=1.0, tasks=10**6)
        assert t_mem == pytest.approx(V100.launch_overhead + 1e9 / V100.bandwidth)
        # Compute-bound: time follows flops.
        t_cmp = V100.kernel_time(bytes_moved=1.0, flops=1e12, tasks=10**6)
        assert t_cmp == pytest.approx(V100.launch_overhead + 1e12 / V100.flops)

    def test_occupancy_scales_small_kernels(self):
        busy = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=V100.saturation_tasks)
        starved = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=100)
        assert starved > busy

    def test_occupancy_floor(self):
        assert V100.occupancy(0) == V100.min_occupancy
        assert V100.occupancy(10**9) == 1.0

    def test_divergence_multiplies_time(self):
        # Divergence scales the execution portion, not the fixed launch
        # overhead.
        base = V100.kernel_time(bytes_moved=1e9, flops=0, tasks=10**6)
        diverged = V100.kernel_time(
            bytes_moved=1e9, flops=0, tasks=10**6, divergence=3.0
        )
        overhead = V100.launch_overhead
        assert diverged - overhead == pytest.approx(3.0 * (base - overhead))

    def test_uva_traffic_charged_at_pcie(self):
        resident = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=10**6)
        uva = V100.kernel_time(
            bytes_moved=1e6, flops=0, tasks=10**6, uva_bytes=1e6
        )
        assert uva > resident

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="bad", bandwidth=-1, flops=1, launch_overhead=0,
                saturation_tasks=1, min_occupancy=0.5, memory_capacity=1,
            )

    def test_cpu_much_slower_than_gpu(self):
        """GPU sampling beats CPU by orders of magnitude (paper: up to
        702x end to end)."""
        kwargs = dict(bytes_moved=1e8, flops=1e8, tasks=10**6)
        assert CPU.kernel_time(**kwargs) > 50 * V100.kernel_time(**kwargs)


class TestMemoryPool:
    def test_alloc_free_cycle(self):
        pool = MemoryPool()
        h = pool.alloc(1000, tag="x")
        assert pool.live_bytes == 1024  # rounded to the 512-byte granule
        pool.free(h)
        assert pool.live_bytes == 0
        assert pool.cached_bytes == 1024

    def test_peak_tracking(self):
        pool = MemoryPool()
        handles = [pool.alloc(512) for _ in range(4)]
        assert pool.peak_bytes == 4 * 512
        for h in handles:
            pool.free(h)
        pool.trim()
        assert pool.peak_bytes == 4 * 512  # peak survives frees

    def test_recycling(self):
        pool = MemoryPool()
        pool.free(pool.alloc(512))
        pool.alloc(512)
        assert pool.recycle_count == 1

    def test_double_free_rejected(self):
        pool = MemoryPool()
        h = pool.alloc(100)
        pool.free(h)
        with pytest.raises(DeviceError):
            pool.free(h)

    def test_capacity_enforced(self):
        pool = MemoryPool(capacity=1024)
        pool.alloc(512)
        with pytest.raises(MemoryBudgetError):
            pool.alloc(1024)

    def test_trim_releases_cache_for_capacity(self):
        pool = MemoryPool(capacity=1024)
        pool.free(pool.alloc(512))
        pool.alloc(1024)  # must trim the cached 512 block to fit

    def test_budget_error_leaves_counters_intact(self):
        """A failed allocation must not corrupt the pool (the capacity
        check used to run *after* the cache-bucket mutations)."""
        pool = MemoryPool(capacity=2048)
        keep = pool.alloc(2048)
        before = pool.stats()
        with pytest.raises(MemoryBudgetError):
            pool.alloc(512)
        assert pool.stats() == before
        pool.free(keep)

    def test_recycled_block_is_net_zero_against_capacity(self):
        """Re-allocating a cached size swaps cached for live bytes, so a
        full pool can still recycle — no spurious trim or raise."""
        pool = MemoryPool(capacity=1024)
        a = pool.alloc(512)
        b = pool.alloc(512)
        pool.free(b)
        # live 512 + cached 512 == capacity; a recycled 512 must succeed
        # and must not trim the cache of other sizes.
        c = pool.alloc(512)
        assert pool.recycle_count == 1
        assert pool.live_bytes == 1024 and pool.cached_bytes == 0
        assert pool.peak_bytes == 1024
        pool.free(a)
        pool.free(c)

    def test_recycle_does_not_trim_other_buckets(self):
        pool = MemoryPool(capacity=2048)
        pool.free(pool.alloc(512))
        pool.free(pool.alloc(1024))
        # Footprint is cached 512 + cached 1024 == 1536; recycling the
        # 1024 block would previously trip the capacity pre-check
        # (1536 + 1024 > 2048) and trim the unrelated 512 bucket.
        pool.alloc(1024)
        assert pool.recycle_count == 1
        assert pool.cached_bytes == 512

    def test_zero_count_buckets_are_dropped(self):
        """Exhausted cache buckets must not accumulate (unbounded dict
        growth over long super-batch runs)."""
        pool = MemoryPool()
        for size in (512, 1024, 2048, 4096):
            pool.free(pool.alloc(size))
            pool.alloc(size)
        assert pool._cached == {}
        assert pool.cached_bytes == 0


class TestExecutionContext:
    def test_ledger_accumulates(self):
        ctx = ExecutionContext(V100)
        ctx.record("a", bytes_read=1e6, tasks=1000)
        ctx.record("a", bytes_read=1e6, tasks=1000)
        ctx.record("b", flops=1e9, tasks=1000)
        assert ctx.launch_count() == 3
        assert set(ctx.time_by_kernel()) == {"a", "b"}
        assert ctx.elapsed == pytest.approx(
            sum(l.seconds for l in ctx.launches)
        )

    def test_uva_only_when_graph_on_host(self):
        on_device = ExecutionContext(V100, graph_on_device=True)
        launch = on_device.record("k", bytes_read=1e6, graph_bytes=1e6)
        assert launch.uva_bytes == 0.0
        on_host = ExecutionContext(V100, graph_on_device=False)
        launch = on_host.record("k", bytes_read=1e6, graph_bytes=1e6)
        assert launch.uva_bytes == 1e6

    def test_uva_bytes_clamped_to_bytes_read(self):
        """``uva_bytes = min(graph_bytes, bytes_read)``: a kernel cannot
        pull more over PCIe than it reads in total."""
        ctx = ExecutionContext(V100, graph_on_device=False)
        launch = ctx.record("k", bytes_read=1e6, graph_bytes=5e6)
        assert launch.uva_bytes == 1e6
        partial = ctx.record("k", bytes_read=4e6, graph_bytes=1e6)
        assert partial.uva_bytes == 1e6

    def test_cost_scale_spares_uva_transfers(self):
        """``cost_scale`` models slower *kernels*; PCIe transfer time is
        hardware-bound and must not scale with it."""
        kwargs = dict(bytes_read=1e8, graph_bytes=1e8, tasks=10**6)
        # All traffic is UVA (graph_bytes covers bytes_read), so the two
        # contexts price the launch identically despite cost_scale.
        fast = ExecutionContext(V100, graph_on_device=False)
        slow = ExecutionContext(V100, graph_on_device=False, cost_scale=4.0)
        assert slow.record("k", **kwargs).seconds == pytest.approx(
            fast.record("k", **kwargs).seconds
        )
        # The same launch with the graph on device is pure local traffic
        # and does scale.
        local_fast = ExecutionContext(V100, graph_on_device=True)
        local_slow = ExecutionContext(V100, graph_on_device=True, cost_scale=4.0)
        assert (
            local_slow.record("k", **kwargs).seconds
            > 2.0 * local_fast.record("k", **kwargs).seconds
        )

    def test_cost_scale(self):
        fast = ExecutionContext(V100)
        slow = ExecutionContext(V100, cost_scale=2.0)
        a = fast.record("k", bytes_read=1e9, tasks=10**6)
        b = slow.record("k", bytes_read=1e9, tasks=10**6)
        assert b.seconds > 1.5 * a.seconds

    def test_sm_utilization_weighted_by_occupancy(self):
        ctx = ExecutionContext(V100)
        ctx.record("big", bytes_read=1e9, tasks=10**9)
        assert ctx.sm_utilization() == pytest.approx(100.0)
        small = ExecutionContext(V100)
        small.record("tiny", bytes_read=1e9, tasks=10)
        assert small.sm_utilization() < 10.0

    def test_fixed_seconds(self):
        ctx = ExecutionContext(V100)
        launch = ctx.record("bulk", fixed_seconds=0.5)
        assert launch.seconds > 0.5

    def test_sm_utilization_with_fixed_seconds_only(self):
        """Bulk-API launches (fixed_seconds, no modeled traffic) still
        contribute occupancy-weighted time: a single-task launch sits at
        the occupancy floor, a saturating one at 100%."""
        floor = ExecutionContext(V100)
        floor.record("bulk", fixed_seconds=0.5, tasks=1)
        assert floor.sm_utilization() == pytest.approx(
            100.0 * V100.min_occupancy
        )
        busy = ExecutionContext(V100)
        busy.record("bulk", fixed_seconds=0.5, tasks=V100.saturation_tasks)
        assert busy.sm_utilization() == pytest.approx(100.0)

    def test_reset(self):
        ctx = ExecutionContext(V100)
        ctx.record("k", bytes_read=1.0)
        ctx.reset()
        assert ctx.launch_count() == 0
        assert ctx.elapsed == 0.0

    def test_reset_can_restart_peak_tracking(self):
        """Warmup peaks must not leak into measured memory columns: a
        plain reset() keeps the pool peak, reset(include_peak=True)
        restarts it from the current footprint."""
        ctx = ExecutionContext(V100)
        warm = ctx.memory.alloc(1 << 20)
        ctx.memory.free(warm)
        ctx.memory.trim()
        assert ctx.memory.peak_bytes == 1 << 20
        ctx.reset()
        assert ctx.memory.peak_bytes == 1 << 20  # ledger-only reset
        ctx.reset(include_peak=True)
        assert ctx.memory.peak_bytes == 0
        ctx.memory.alloc(2048)
        assert ctx.memory.peak_bytes == 2048  # measured epoch's own peak

    def test_null_context_records_nothing(self):
        ctx = NullContext()
        ctx.record("k", bytes_read=1e9)
        assert ctx.launch_count() == 0
        assert ctx.elapsed == 0.0
