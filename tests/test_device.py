"""Device simulator tests: specs, memory pool, and launch ledger."""

from __future__ import annotations

import pytest

from repro.device import (
    CPU,
    T4,
    V100,
    DeviceSpec,
    ExecutionContext,
    MemoryPool,
    NullContext,
    get_device,
)
from repro.errors import DeviceError, MemoryBudgetError


class TestDeviceSpec:
    def test_registry(self):
        assert get_device("v100") is V100
        assert get_device("T4") is T4
        with pytest.raises(DeviceError):
            get_device("h100")

    def test_t4_matches_paper_ratios(self):
        """The paper states T4 has 30.0% of V100's bandwidth and 51.6% of
        its FLOPs."""
        assert T4.bandwidth / V100.bandwidth == pytest.approx(0.300)
        assert T4.flops / V100.flops == pytest.approx(0.516)

    def test_kernel_time_is_roofline(self):
        # Memory-bound: time follows bytes.
        t_mem = V100.kernel_time(bytes_moved=1e9, flops=1.0, tasks=10**6)
        assert t_mem == pytest.approx(V100.launch_overhead + 1e9 / V100.bandwidth)
        # Compute-bound: time follows flops.
        t_cmp = V100.kernel_time(bytes_moved=1.0, flops=1e12, tasks=10**6)
        assert t_cmp == pytest.approx(V100.launch_overhead + 1e12 / V100.flops)

    def test_occupancy_scales_small_kernels(self):
        busy = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=V100.saturation_tasks)
        starved = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=100)
        assert starved > busy

    def test_occupancy_floor(self):
        assert V100.occupancy(0) == V100.min_occupancy
        assert V100.occupancy(10**9) == 1.0

    def test_divergence_multiplies_time(self):
        # Divergence scales the execution portion, not the fixed launch
        # overhead.
        base = V100.kernel_time(bytes_moved=1e9, flops=0, tasks=10**6)
        diverged = V100.kernel_time(
            bytes_moved=1e9, flops=0, tasks=10**6, divergence=3.0
        )
        overhead = V100.launch_overhead
        assert diverged - overhead == pytest.approx(3.0 * (base - overhead))

    def test_uva_traffic_charged_at_pcie(self):
        resident = V100.kernel_time(bytes_moved=1e6, flops=0, tasks=10**6)
        uva = V100.kernel_time(
            bytes_moved=1e6, flops=0, tasks=10**6, uva_bytes=1e6
        )
        assert uva > resident

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="bad", bandwidth=-1, flops=1, launch_overhead=0,
                saturation_tasks=1, min_occupancy=0.5, memory_capacity=1,
            )

    def test_cpu_much_slower_than_gpu(self):
        """GPU sampling beats CPU by orders of magnitude (paper: up to
        702x end to end)."""
        kwargs = dict(bytes_moved=1e8, flops=1e8, tasks=10**6)
        assert CPU.kernel_time(**kwargs) > 50 * V100.kernel_time(**kwargs)


class TestMemoryPool:
    def test_alloc_free_cycle(self):
        pool = MemoryPool()
        h = pool.alloc(1000, tag="x")
        assert pool.live_bytes == 1024  # rounded to the 512-byte granule
        pool.free(h)
        assert pool.live_bytes == 0
        assert pool.cached_bytes == 1024

    def test_peak_tracking(self):
        pool = MemoryPool()
        handles = [pool.alloc(512) for _ in range(4)]
        assert pool.peak_bytes == 4 * 512
        for h in handles:
            pool.free(h)
        pool.trim()
        assert pool.peak_bytes == 4 * 512  # peak survives frees

    def test_recycling(self):
        pool = MemoryPool()
        pool.free(pool.alloc(512))
        pool.alloc(512)
        assert pool.recycle_count == 1

    def test_double_free_rejected(self):
        pool = MemoryPool()
        h = pool.alloc(100)
        pool.free(h)
        with pytest.raises(DeviceError):
            pool.free(h)

    def test_capacity_enforced(self):
        pool = MemoryPool(capacity=1024)
        pool.alloc(512)
        with pytest.raises(MemoryBudgetError):
            pool.alloc(1024)

    def test_trim_releases_cache_for_capacity(self):
        pool = MemoryPool(capacity=1024)
        pool.free(pool.alloc(512))
        pool.alloc(1024)  # must trim the cached 512 block to fit


class TestExecutionContext:
    def test_ledger_accumulates(self):
        ctx = ExecutionContext(V100)
        ctx.record("a", bytes_read=1e6, tasks=1000)
        ctx.record("a", bytes_read=1e6, tasks=1000)
        ctx.record("b", flops=1e9, tasks=1000)
        assert ctx.launch_count() == 3
        assert set(ctx.time_by_kernel()) == {"a", "b"}
        assert ctx.elapsed == pytest.approx(
            sum(l.seconds for l in ctx.launches)
        )

    def test_uva_only_when_graph_on_host(self):
        on_device = ExecutionContext(V100, graph_on_device=True)
        launch = on_device.record("k", bytes_read=1e6, graph_bytes=1e6)
        assert launch.uva_bytes == 0.0
        on_host = ExecutionContext(V100, graph_on_device=False)
        launch = on_host.record("k", bytes_read=1e6, graph_bytes=1e6)
        assert launch.uva_bytes == 1e6

    def test_cost_scale(self):
        fast = ExecutionContext(V100)
        slow = ExecutionContext(V100, cost_scale=2.0)
        a = fast.record("k", bytes_read=1e9, tasks=10**6)
        b = slow.record("k", bytes_read=1e9, tasks=10**6)
        assert b.seconds > 1.5 * a.seconds

    def test_sm_utilization_weighted_by_occupancy(self):
        ctx = ExecutionContext(V100)
        ctx.record("big", bytes_read=1e9, tasks=10**9)
        assert ctx.sm_utilization() == pytest.approx(100.0)
        small = ExecutionContext(V100)
        small.record("tiny", bytes_read=1e9, tasks=10)
        assert small.sm_utilization() < 10.0

    def test_fixed_seconds(self):
        ctx = ExecutionContext(V100)
        launch = ctx.record("bulk", fixed_seconds=0.5)
        assert launch.seconds > 0.5

    def test_reset(self):
        ctx = ExecutionContext(V100)
        ctx.record("k", bytes_read=1.0)
        ctx.reset()
        assert ctx.launch_count() == 0
        assert ctx.elapsed == 0.0

    def test_null_context_records_nothing(self):
        ctx = NullContext()
        ctx.record("k", bytes_read=1e9)
        assert ctx.launch_count() == 0
        assert ctx.elapsed == 0.0
