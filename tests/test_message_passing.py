"""Message-passing API tests: Figure 2's two implementations agree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.message_passing import (
    MessagePassingGraph,
    copy_e,
    copy_u,
    dgl_normalize,
    matrix_normalize,
    reduce_max,
    reduce_mean,
    reduce_sum,
    u_mul_e,
)
from repro.device import ExecutionContext, V100
from repro.errors import GSamplerError, ShapeError

from tests.conftest import to_dense


class TestUpdateAll:
    def test_copy_e_sum_matches_dense(self, small_graph):
        g = MessagePassingGraph(small_graph)
        g.update_all(copy_e("w", "m"), reduce_sum("m", "h"))
        dense = to_dense(small_graph)
        np.testing.assert_allclose(
            g.ndata["h"][: small_graph.shape[1]], dense.sum(axis=0), rtol=1e-4
        )

    def test_copy_u_propagates_node_data(self, small_graph):
        g = MessagePassingGraph(small_graph)
        g.ndata["x"] = np.arange(g.num_nodes, dtype=np.float32)
        g.update_all(copy_u("x", "m"), reduce_max("m", "h"))
        dense = to_dense(small_graph)
        for v in range(small_graph.shape[1]):
            srcs = np.flatnonzero(dense[:, v])
            if len(srcs):
                assert g.ndata["h"][v] == srcs.max()

    def test_u_mul_e_mean(self, small_graph):
        g = MessagePassingGraph(small_graph)
        g.ndata["x"] = np.ones(g.num_nodes, dtype=np.float32) * 2
        g.update_all(u_mul_e("x", "w", "m"), reduce_mean("m", "h"))
        dense = to_dense(small_graph)
        for v in range(4):
            w = dense[:, v][dense[:, v] != 0]
            expected = 2 * w.mean() if len(w) else 0.0
            assert g.ndata["h"][v] == pytest.approx(expected, rel=1e-4)

    def test_field_mismatch_rejected(self, small_graph):
        g = MessagePassingGraph(small_graph)
        with pytest.raises(ShapeError):
            g.update_all(copy_e("w", "a"), reduce_sum("b", "h"))

    def test_unknown_field_rejected(self, small_graph):
        g = MessagePassingGraph(small_graph)
        with pytest.raises(GSamplerError):
            g.apply_edges(lambda x: x, "ghost")

    def test_eager_kernels_are_charged(self, small_graph):
        ctx = ExecutionContext(V100)
        g = MessagePassingGraph(small_graph, ctx=ctx)
        g.update_all(copy_e("w", "m"), reduce_sum("m", "h"))
        names = [l.name for l in ctx.launches]
        assert names == ["mp_message", "mp_reduce"]


class TestFigure2:
    def test_both_apis_compute_the_same_bias(self, small_graph):
        g = MessagePassingGraph(small_graph)
        via_mp = dgl_normalize(g)
        via_matrix = matrix_normalize(small_graph)
        np.testing.assert_allclose(
            via_mp[: len(via_matrix)], via_matrix, rtol=1e-4
        )

    def test_matrix_form_is_shorter(self):
        """The paper's programmability claim, measured on real code."""
        import inspect

        def body_lines(fn):
            lines = [
                l.strip()
                for l in inspect.getsource(fn).splitlines()
                if l.strip() and not l.strip().startswith(("#", '"""', "'''"))
            ]
            # Drop def line and docstring contents.
            src = inspect.getsource(fn)
            doc = fn.__doc__ or ""
            return len(
                [
                    l for l in src.replace(doc, "").splitlines()
                    if l.strip() and not l.strip().startswith(("#", '"""', "def "))
                ]
            )

        assert body_lines(matrix_normalize) < body_lines(dgl_normalize)

    def test_message_passing_moves_more_bytes(self, small_graph):
        """Eager message passing materializes the message array; the
        fused matrix form does not — the Figure 5(c) motivation."""
        mp_ctx = ExecutionContext(V100)
        dgl_normalize(MessagePassingGraph(small_graph, ctx=mp_ctx))
        from repro.sparse import fused_map_reduce

        mtx_ctx = ExecutionContext(V100)
        fused_map_reduce(
            small_graph.any_storage(), [("pow", 2.0, None)], "sum", 1, mtx_ctx
        )
        assert mp_ctx.total_bytes() > mtx_ctx.total_bytes()
