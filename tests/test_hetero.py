"""Heterogeneous-graph tests: typed relations, sampling, metapath walks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.core.hetero import HeteroGraph, hetero_from_typed_edges
from repro.core.matrix import Matrix
from repro.errors import GSamplerError, ShapeError
from repro.sparse import COO, convert


def _rel_matrix(src, dst, shape):
    coo = COO(rows=src, cols=dst, values=None, shape=shape)
    return Matrix(convert(coo, "csc"), is_base_graph=True)


@pytest.fixture
def bipartite():
    """Users and items: user-buys-item edges plus item-bought_by-user."""
    buys = _rel_matrix([0, 1, 2, 0], [1, 0, 2, 2], (3, 3))  # user -> item
    bought = _rel_matrix([1, 0, 2, 2], [0, 1, 2, 0], (3, 3))  # item -> user
    return HeteroGraph(
        {"user": 3, "item": 3},
        {
            ("user", "buys", "item"): buys,
            ("item", "bought_by", "user"): bought,
        },
    )


class TestConstruction:
    def test_types_and_relations(self, bipartite):
        assert bipartite.node_types == ["item", "user"]
        assert len(bipartite.edge_types) == 2

    def test_shape_validated_against_node_counts(self):
        bad = _rel_matrix([0], [0], (2, 2))
        with pytest.raises(ShapeError):
            HeteroGraph({"a": 5, "b": 2}, {("a", "x", "b"): bad})

    def test_unknown_node_type_rejected(self):
        m = _rel_matrix([0], [0], (1, 1))
        with pytest.raises(ShapeError):
            HeteroGraph({"a": 1}, {("a", "x", "ghost"): m})

    def test_unknown_relation_lookup(self, bipartite):
        with pytest.raises(GSamplerError):
            bipartite.matrix(("user", "hates", "item"))


class TestTypedSampling:
    def test_relations_into(self, bipartite):
        into_item = bipartite.relations_into("item")
        assert into_item == [("user", "buys", "item")]

    def test_sample_neighbors_per_relation(self, bipartite):
        out = bipartite.sample_neighbors(
            "item", np.array([0, 1, 2]), 2, rng=new_rng(0)
        )
        assert set(out) == {("user", "buys", "item")}
        sampled = out[("user", "buys", "item")]
        assert sampled.shape == (3, 3)
        assert sampled.nnz <= 6

    def test_sample_neighbors_no_relation(self, bipartite):
        graph = HeteroGraph(
            {"user": 3, "item": 3},
            {("user", "buys", "item"): bipartite.matrix(("user", "buys", "item"))},
        )
        with pytest.raises(GSamplerError):
            graph.sample_neighbors("user", np.array([0]), 1)


class TestMetapathWalk:
    def test_walk_alternates_types(self, bipartite):
        # item <- user <- item: follow bought_by then buys.
        path = [("user", "buys", "item"), ("item", "bought_by", "user")]
        trace = bipartite.metapath_walk(path, np.array([0, 1, 2]), rng=new_rng(1))
        assert trace.shape == (3, 3)
        # Step 1 nodes are users who bought the seed item.
        buys = bipartite.matrix(("user", "buys", "item"))
        from tests.conftest import to_dense

        dense = to_dense(buys)
        for w in range(3):
            seed, step1 = trace[0, w], trace[1, w]
            if step1 >= 0:
                assert dense[step1, seed] != 0

    def test_broken_metapath_rejected(self, bipartite):
        path = [("user", "buys", "item"), ("user", "buys", "item")]
        with pytest.raises(ShapeError):
            bipartite.metapath_walk(path, np.array([0]))

    def test_empty_metapath_rejected(self, bipartite):
        with pytest.raises(ShapeError):
            bipartite.metapath_walk([], np.array([0]))


class TestFromTypedEdges:
    def test_split_into_relations(self):
        # 6 nodes, types [0,0,1,1,2,2]; edges crossing types.
        node_types = np.array([0, 0, 1, 1, 2, 2])
        src = np.array([0, 1, 2, 4, 0])
        dst = np.array([2, 3, 4, 1, 1])
        graph = hetero_from_typed_edges(node_types, src, dst)
        assert graph.num_nodes == {"t0": 2, "t1": 2, "t2": 2}
        assert ("t0", "to", "t1") in graph.relations
        assert ("t1", "to", "t2") in graph.relations
        assert ("t2", "to", "t0") in graph.relations
        assert ("t0", "to", "t0") in graph.relations
        # Edge 0->2 becomes local (0 -> 0) in relation t0->t1.
        m = graph.matrix(("t0", "to", "t1"))
        rows, cols, _ = m.to_coo_arrays()
        assert (0, 0) in set(zip(rows.tolist(), cols.tolist()))

    def test_rectangular_shapes(self):
        node_types = np.array([0, 0, 0, 1])  # 3 of t0, 1 of t1
        graph = hetero_from_typed_edges(
            node_types, np.array([0, 1]), np.array([3, 3])
        )
        assert graph.matrix(("t0", "to", "t1")).shape == (3, 1)

    def test_name_count_checked(self):
        with pytest.raises(ShapeError):
            hetero_from_typed_edges(
                np.array([0, 1]), np.array([0]), np.array([1]),
                type_names=["only_one"],
            )

    def test_sampling_workflow_on_lifted_graph(self):
        rng = np.random.default_rng(0)
        n = 120
        node_types = np.arange(n) % 3
        src = rng.integers(0, n, 900)
        dst = rng.integers(0, n, 900)
        graph = hetero_from_typed_edges(node_types, src, dst)
        out = graph.sample_neighbors(
            "t0", np.arange(10), 3, rng=new_rng(2)
        )
        # All three source types feed t0.
        assert len(out) == 3
        for sampled in out.values():
            degrees = np.diff(sampled.get("csc").indptr)
            assert np.all(degrees <= 3)
