"""Optimization-pass tests: DCE, CSE, the three fusions, pre-processing,
layout selection — and end-to-end result equivalence with eager mode."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.device import ExecutionContext, V100
from repro.ir.passes import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
    EdgeMapFusion,
    EdgeMapReduceFusion,
    ExtractSelectFusion,
    LayoutSelectionPass,
    PassManager,
)
from repro.ir.passes.base import Pass
from repro.ir.trace import trace
from repro.sampler import OptimizationConfig, compile_sampler

from tests.conftest import to_dense


def _ops(ir):
    return [n.op for n in ir.nodes()]


def sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


def ladies_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    row_probs = (sub_A ** 2).sum(axis=0)
    sample_A = sub_A.collective_sample(K, row_probs)
    select_probs = row_probs[sample_A.row()]
    sample_A = sample_A.div(select_probs, axis=0)
    sample_A = sample_A.div(sample_A.sum(axis=1), axis=1)
    return sample_A, sample_A.row()


class TestCleanupPasses:
    def test_dce_removes_unused(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            _unused = (sub ** 2).sum(axis=0)  # dead compute
            s = sub.individual_sample(K)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        assert "map_scalar" in _ops(ir)
        DeadCodeElimination().run(ir)
        assert "map_scalar" not in _ops(ir)
        assert "reduce" not in _ops(ir)

    def test_dce_keeps_inputs(self, small_graph):
        def layer(A, frontiers, unused_tensor):
            s = A[:, frontiers].individual_sample(2)
            return s, s.row()

        ir, _ = trace(
            layer, small_graph, np.arange(4),
            tensors={"unused_tensor": np.ones(3)},
        )
        DeadCodeElimination().run(ir)
        assert "input_tensor" in _ops(ir)

    def test_cse_merges_duplicate_slices(self, small_graph):
        def layer(A, frontiers, K):
            sub1 = A[:, frontiers]
            sub2 = A[:, frontiers]  # identical expression
            probs = (sub2 ** 2).sum(axis=0)
            s = sub1.collective_sample(K, probs)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        assert _ops(ir).count("slice_cols") == 2
        CommonSubexpressionElimination().run(ir)
        DeadCodeElimination().run(ir)
        assert _ops(ir).count("slice_cols") == 1

    def test_cse_never_merges_sampling(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            s1 = sub.individual_sample(K)
            s2 = sub.individual_sample(K)  # independent random draw!
            return s1, s2.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        CommonSubexpressionElimination().run(ir)
        assert _ops(ir).count("individual_sample") == 2


class TestFusionPasses:
    def test_extract_select_fusion_applies(self, small_graph):
        ir, _ = trace(sage_layer, small_graph, np.arange(4), constants={"K": 2})
        assert ExtractSelectFusion().run(ir)
        ops = _ops(ir)
        assert "fused_extract_select" in ops
        assert "slice_cols" not in ops
        assert "individual_sample" not in ops

    def test_extract_select_fusion_skips_shared_subgraph(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            degrees = sub.sum(axis=1)  # second consumer of the subgraph
            s = sub.individual_sample(K)
            s = s.div(degrees, axis=1)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        assert not ExtractSelectFusion().run(ir)

    def test_extract_select_fusion_skips_probed_sampling(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            s = sub.individual_sample(K, sub ** 2)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        before = _ops(ir)
        ExtractSelectFusion().run(ir)
        assert _ops(ir) == before

    def test_edge_map_fusion_chains(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            att = ((sub * 2.0 + 1.0) ** 2).relu()
            s = sub.individual_sample(K, att)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        assert EdgeMapFusion().run(ir)
        chain = next(n for n in ir.nodes() if n.op == "fused_map_chain")
        assert [s["op"] for s in chain.attrs["steps"]] == [
            "mul", "add", "pow", "relu",
        ]

    def test_edge_mapreduce_fusion(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            probs = (sub ** 2).sum(axis=0)
            s = sub.collective_sample(K, probs)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 2})
        assert EdgeMapReduceFusion().run(ir)
        fused = next(n for n in ir.nodes() if n.op == "fused_map_reduce")
        assert fused.attrs["reduce_op"] == "sum"
        assert fused.attrs["reduce_axis"] == 0


class TestPreprocess:
    def test_ladies_pow_is_hoisted(self, small_graph):
        sampler = compile_sampler(
            ladies_layer, small_graph, np.arange(8), constants={"K": 4}
        )
        assert len(sampler.precomputed) == 1
        ops = _ops(sampler.ir)
        assert "input_precomputed" in ops
        # The hoisted matrix is A ** 2.
        pre = next(iter(sampler.precomputed.values()))
        np.testing.assert_allclose(
            to_dense(pre), to_dense(small_graph) ** 2, rtol=1e-5
        )

    def test_fastgcn_degree_is_hoisted(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            deg = A.sum(axis=0)
            s = sub.collective_sample(K, deg * deg)
            return s, s.row()

        sampler = compile_sampler(
            layer, small_graph, np.arange(8), constants={"K": 4}
        )
        pre = next(iter(sampler.precomputed.values()))
        np.testing.assert_allclose(
            pre, to_dense(small_graph).sum(axis=1), rtol=1e-4
        )


class TestLayoutSelection:
    def test_structure_ops_get_layouts(self, small_graph):
        ir, _ = trace(sage_layer, small_graph, np.arange(4), constants={"K": 2})
        LayoutSelectionPass().run(ir)
        for node in ir.nodes():
            if node.op in ("slice_cols", "individual_sample"):
                assert node.layout in ("csc", "csr", "coo")

    def test_compute_ops_have_no_layout(self, small_graph):
        ir, _ = trace(ladies_layer, small_graph, np.arange(4), constants={"K": 2})
        LayoutSelectionPass().run(ir)
        for node in ir.nodes():
            if node.op in ("map_scalar", "reduce"):
                assert node.layout is None

    def test_compaction_suppressed_when_reduce_escapes(self, small_graph):
        # LADIES indexes its reduce result by row() ids: compaction of the
        # extract output must be suppressed for safety.
        ir, _ = trace(ladies_layer, small_graph, np.arange(4), constants={"K": 2})
        LayoutSelectionPass().run(ir)
        for node in ir.nodes():
            if node.op == "slice_cols":
                assert not node.compact_rows


class TestPassManagerFixpoint:
    class _AlwaysChanges(Pass):
        """Pathological pass that claims a change on every run — the
        shape of an accidental rewrite/undo oscillation."""

        name = "always_changes"

        def __init__(self) -> None:
            self.runs = 0

        def run(self, ir):
            self.runs += 1
            return True

    def test_terminates_at_max_iterations(self, small_graph):
        ir, _ = trace(sage_layer, small_graph, np.arange(8), constants={"K": 3})
        oscillator = self._AlwaysChanges()
        report = PassManager([oscillator], max_iterations=3).run(ir)
        assert report.iterations == 3
        assert oscillator.runs == 3
        assert report.applied == ["always_changes"] * 3

    def test_stops_early_at_fixpoint(self, small_graph):
        ir, _ = trace(sage_layer, small_graph, np.arange(8), constants={"K": 3})
        # Cleanup passes converge: one changing iteration, one quiescent.
        report = PassManager(
            [DeadCodeElimination(), CommonSubexpressionElimination()],
            max_iterations=8,
        ).run(ir)
        assert report.iterations < 8


class TestEndToEndEquivalence:
    """Optimized execution must produce the same samples as eager mode
    (same RNG stream, same candidate sets, same weights)."""

    @pytest.mark.parametrize("layer,k", [(sage_layer, 3), (ladies_layer, 5)])
    def test_optimized_matches_plain_structure(self, small_graph, layer, k):
        seeds = np.arange(16)
        opt = compile_sampler(
            layer, small_graph, seeds, constants={"K": k}
        )
        plain = compile_sampler(
            layer, small_graph, seeds, constants={"K": k},
            config=OptimizationConfig.plain(),
        )
        m_opt, next_opt = opt.run(seeds, rng=new_rng(0), ctx=ExecutionContext(V100))
        m_plain, next_plain = plain.run(
            seeds, rng=new_rng(0), ctx=ExecutionContext(V100)
        )
        assert m_opt.shape[1] == m_plain.shape[1]
        # Same RNG and same logical sampling: identical edge sets.
        ro, co, vo = m_opt.to_coo_arrays()
        rp, cp, vp = m_plain.to_coo_arrays()
        assert sorted(zip(ro.tolist(), co.tolist())) == sorted(
            zip(rp.tolist(), cp.tolist())
        )
        np.testing.assert_array_equal(np.sort(next_opt), np.sort(next_plain))
