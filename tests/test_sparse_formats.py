"""Unit tests for the sparse storage containers and gather primitive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ShapeError
from repro.sparse import COO, CSC, CSR, gather_ranges
from repro.sparse.formats import edge_ids_or_identity, edge_values

from tests.conftest import random_coo, to_dense


class TestCOO:
    def test_basic_construction(self):
        coo = COO(rows=[0, 1], cols=[1, 2], values=[1.0, 2.0], shape=(3, 3))
        assert coo.nnz == 2
        assert coo.layout == "coo"
        assert coo.shape == (3, 3)

    def test_unweighted_values_are_none(self):
        coo = COO(rows=[0], cols=[0], values=None, shape=(1, 1))
        assert coo.values is None
        np.testing.assert_array_equal(edge_values(coo), [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            COO(rows=[0, 1], cols=[1], values=None, shape=(3, 3))

    def test_values_length_checked(self):
        with pytest.raises(ShapeError):
            COO(rows=[0, 1], cols=[1, 2], values=[1.0], shape=(3, 3))

    def test_out_of_bounds_edge_rejected(self):
        with pytest.raises(ShapeError):
            COO(rows=[5], cols=[0], values=None, shape=(3, 3))

    def test_nbytes_counts_all_arrays(self):
        coo = COO(
            rows=[0, 1], cols=[1, 2], values=[1.0, 2.0], shape=(3, 3),
            edge_ids=[7, 9],
        )
        assert coo.nbytes() == 2 * 8 + 2 * 8 + 2 * 4 + 2 * 8

    def test_edge_ids_identity_default(self):
        coo = COO(rows=[0, 1, 2], cols=[0, 0, 0], values=None, shape=(3, 1))
        np.testing.assert_array_equal(edge_ids_or_identity(coo), [0, 1, 2])


class TestCSR:
    def test_basic_construction(self):
        csr = CSR(indptr=[0, 2, 2, 3], cols=[0, 1, 2], values=None, shape=(3, 3))
        assert csr.nnz == 3
        np.testing.assert_array_equal(csr.row_degrees(), [2, 0, 1])
        np.testing.assert_array_equal(csr.expand_rows(), [0, 0, 2])

    def test_indptr_length_checked(self):
        with pytest.raises(ShapeError):
            CSR(indptr=[0, 3], cols=[0, 1, 2], values=None, shape=(3, 3))

    def test_indptr_monotone_checked(self):
        with pytest.raises(FormatError):
            CSR(indptr=[0, 2, 1, 3], cols=[0, 1, 2], values=None, shape=(3, 3))

    def test_indptr_terminal_checked(self):
        with pytest.raises(FormatError):
            CSR(indptr=[0, 1, 2, 2], cols=[0, 1, 2], values=None, shape=(3, 3))


class TestCSC:
    def test_basic_construction(self):
        csc = CSC(indptr=[0, 1, 3], rows=[2, 0, 1], values=None, shape=(3, 2))
        assert csc.nnz == 3
        np.testing.assert_array_equal(csc.col_degrees(), [1, 2])
        np.testing.assert_array_equal(csc.expand_cols(), [0, 1, 1])

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            CSC(indptr=[0, 1], rows=[0], values=None, shape=(2, 2))


class TestGatherRanges:
    def test_simple(self):
        out = gather_ranges(np.array([0, 5]), np.array([2, 3]))
        np.testing.assert_array_equal(out, [0, 1, 5, 6, 7])

    def test_empty_segments_interleaved(self):
        out = gather_ranges(np.array([3, 9, 1]), np.array([2, 0, 1]))
        np.testing.assert_array_equal(out, [3, 4, 1])

    def test_all_empty(self):
        out = gather_ranges(np.array([1, 2]), np.array([0, 0]))
        assert len(out) == 0

    def test_leading_empty_segment(self):
        out = gather_ranges(np.array([7, 2]), np.array([0, 3]))
        np.testing.assert_array_equal(out, [2, 3, 4])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            gather_ranges(np.array([0]), np.array([1, 2]))

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 6)), max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_reference(self, pairs):
        starts = np.array([p[0] for p in pairs], dtype=np.int64)
        lengths = np.array([p[1] for p in pairs], dtype=np.int64)
        expected = []
        for s, l in pairs:
            expected.extend(range(s, s + l))
        np.testing.assert_array_equal(gather_ranges(starts, lengths), expected)


class TestDenseOracle:
    def test_round_trip_via_dense(self, rng):
        coo = random_coo(rng)
        dense = to_dense(coo)
        assert dense.shape == coo.shape
        assert np.count_nonzero(dense) == coo.nnz
