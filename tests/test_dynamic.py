"""Dynamic graphs: DeltaGraph semantics, streams, serve-while-ingesting.

The contracts under test:

* :class:`DeltaGraph` applies inserts/deletes with deterministic
  matching, tracks live degrees and dirty nodes, and its
  :meth:`compact` is bit-identical to a fresh ``from_edges`` over the
  same canonical edge set — weighted and unweighted bases alike;
* update streams are bit-identical under equal specs;
* zero-ingest dynamic sessions reproduce the pinned static
  fingerprints unchanged (the do-no-harm guarantee);
* ingesting sessions are deterministic run-over-run, report staleness
  consistently, and — past the drift threshold — trigger a bounded
  incremental rebalance that migrates rows over the link;
* a session served over a compacted graph is bit-identical to one
  served over a fresh CSR of the same edge set;
* ``repro.verify``'s dynamic check passes at reduced trials.
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.core.matrix import from_edges
from repro.datasets import load_dataset
from repro.device import V100
from repro.dynamic import (
    DeltaGraph,
    DynamicPolicy,
    UpdateSpec,
    generate_update_stream,
)
from repro.errors import ServeError, ShapeError
from repro.serve import ServePolicy, WorkloadSpec, run_cluster_session

PIN_SPEC = WorkloadSpec(num_requests=192, arrival_rate=100_000.0, seed=11)
PIN_POLICY = ServePolicy(
    max_batch=8, max_wait=5e-4, queue_capacity=32, slo=2e-3
)
#: The PR 5 single-replica FIFO pin (tests/test_serve.py): zero-ingest
#: dynamic plumbing must leave it untouched.
FIFO_PIN = "a026a063925fbfbc035081d78798ab5fe441e64d7426000801a66ad8d9cc6c85"


def _digest(report):
    return hashlib.sha256(repr(report.fingerprint()).encode()).hexdigest()


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


def _toy_graph(weighted=False):
    src = np.array([1, 2, 0, 2, 0, 1, 3, 0])
    dst = np.array([0, 0, 1, 1, 2, 2, 2, 3])
    weights = (
        np.linspace(0.1, 0.8, src.size).astype(np.float32)
        if weighted
        else None
    )
    return from_edges(src, dst, 4, weights=weights, layout="csc")


# ----------------------------------------------------------------------
# DeltaGraph semantics
# ----------------------------------------------------------------------
class TestDeltaGraph:
    def test_insert_updates_degrees_and_dirty(self):
        delta = DeltaGraph(_toy_graph())
        before = delta.degrees()
        delta.insert_edges([3, 3], [0, 0])
        after = delta.degrees()
        assert after[0] == before[0] + 2
        assert delta.num_live_edges == 10
        assert list(delta.dirty_nodes()) == [0]
        assert list(delta.drain_dirty()) == [0]
        assert delta.dirty_nodes().size == 0

    def test_delete_matches_base_then_inserts(self):
        delta = DeltaGraph(_toy_graph())
        delta.insert_edges([1], [0])  # second copy of 1 -> 0
        assert delta.delete_edges([1], [0]) == 1  # tombstones the base copy
        assert delta.delete_edges([1], [0]) == 1  # then the inserted copy
        assert delta.delete_edges([1], [0]) == 0  # nothing left: missed
        assert delta.missed_deletes == 1
        assert delta.degrees()[0] == 1  # only 2 -> 0 survives

    def test_missed_delete_is_noop(self):
        delta = DeltaGraph(_toy_graph())
        live = delta.num_live_edges
        assert delta.delete_edges([3], [3]) == 0
        assert delta.num_live_edges == live
        assert delta.missed_deletes == 1

    def test_endpoint_validation(self):
        delta = DeltaGraph(_toy_graph())
        with pytest.raises(ShapeError):
            delta.insert_edges([0, 1], [2])
        with pytest.raises(ShapeError):
            delta.insert_edges([0], [9])

    def test_compact_bit_identical_to_fresh_unweighted(self):
        delta = DeltaGraph(_toy_graph())
        delta.insert_edges([3, 2, 1], [1, 3, 3])
        delta.delete_edges([0], [2])
        src, dst, val = delta.canonical_edges()
        assert val is None
        compacted = delta.compact().get("csc")
        fresh = from_edges(src, dst, 4, layout="csc").get("csc")
        np.testing.assert_array_equal(compacted.indptr, fresh.indptr)
        np.testing.assert_array_equal(compacted.rows, fresh.rows)
        np.testing.assert_array_equal(compacted.edge_ids, fresh.edge_ids)
        assert compacted.values is None

    def test_compact_bit_identical_to_fresh_weighted(self):
        delta = DeltaGraph(_toy_graph(weighted=True))
        assert delta.weighted
        delta.insert_edges([3, 2], [1, 3], weights=[0.5, 0.25])
        delta.delete_edges([1], [0])
        src, dst, val = delta.canonical_edges()
        compacted = delta.compact().get("csc")
        fresh = from_edges(src, dst, 4, weights=val, layout="csc").get("csc")
        np.testing.assert_array_equal(compacted.indptr, fresh.indptr)
        np.testing.assert_array_equal(compacted.rows, fresh.rows)
        np.testing.assert_array_equal(compacted.edge_ids, fresh.edge_ids)
        np.testing.assert_array_equal(compacted.values, fresh.values)

    def test_compact_resets_delta_state(self):
        delta = DeltaGraph(_toy_graph())
        delta.insert_edges([3], [1])
        delta.delete_edges([0], [3])
        live = delta.num_live_edges
        delta.compact()
        assert delta.delta_edges == 0
        assert delta.base_nnz == live
        assert delta.compactions == 1
        # Counters are session-lifetime.
        assert delta.inserted_edges == 1 and delta.deleted_edges == 1

    def test_snapshot_preserves_weights_and_edge_count(self):
        delta = DeltaGraph(_toy_graph(weighted=True))
        delta.insert_edges([3], [0], weights=[0.9])
        snap = delta.snapshot().get("csc")
        assert snap.nnz == delta.num_live_edges
        assert snap.values is not None
        # The inserted edge sits after node 0's base survivors and
        # carries its own weight.
        col0 = slice(snap.indptr[0], snap.indptr[1])
        assert snap.rows[col0][-1] == 3
        assert snap.values[col0][-1] == np.float32(0.9)

    def test_unweighted_base_ignores_streamed_weights(self):
        delta = DeltaGraph(_toy_graph())
        delta.insert_edges([3], [0], weights=[0.9])
        assert delta.snapshot().get("csc").values is None

    def test_rejects_rectangular_base(self):
        from repro.sparse.formats import CSC
        from repro.core.matrix import Matrix

        csc = CSC(
            indptr=np.array([0, 1, 1]),
            rows=np.array([0]),
            values=None,
            shape=(3, 2),
            edge_ids=np.array([0]),
        )
        with pytest.raises(ShapeError):
            DeltaGraph(Matrix(csc))


# ----------------------------------------------------------------------
# Update streams
# ----------------------------------------------------------------------
class TestUpdateStream:
    def test_same_spec_same_stream(self):
        spec = UpdateSpec(num_edges=64, delete_fraction=0.3, seed=4)
        a = generate_update_stream(spec, num_nodes=50)
        b = generate_update_stream(spec, num_nodes=50)
        assert len(a) == len(b) == spec.num_batches
        for x, y in zip(a, b):
            assert x.time == y.time
            np.testing.assert_array_equal(x.src, y.src)
            np.testing.assert_array_equal(x.dst, y.dst)
            np.testing.assert_array_equal(x.delete, y.delete)
            np.testing.assert_array_equal(x.weights, y.weights)

    def test_stream_shape_and_ordering(self):
        spec = UpdateSpec(num_edges=30, batch_edges=8, seed=1)
        stream = generate_update_stream(spec, num_nodes=20)
        assert sum(b.num_edges for b in stream) == 30
        times = [b.time for b in stream]
        assert times == sorted(times)
        assert all(b.time > 0 for b in stream)

    def test_deletes_only_target_prior_inserts(self):
        spec = UpdateSpec(num_edges=200, delete_fraction=0.4, seed=2)
        stream = generate_update_stream(spec, num_nodes=30)
        inserted: set[tuple[int, int]] = set()
        deletes = 0
        for batch in stream:
            for u, v, d in zip(
                batch.src.tolist(), batch.dst.tolist(), batch.delete.tolist()
            ):
                if d:
                    deletes += 1
                    assert (u, v) in inserted
                else:
                    inserted.add((u, v))
        assert 0 < deletes < 200

    def test_spec_validation(self):
        with pytest.raises(ServeError):
            UpdateSpec(num_edges=0)
        with pytest.raises(ServeError):
            UpdateSpec(rate=0.0)
        with pytest.raises(ServeError):
            UpdateSpec(delete_fraction=1.0)
        with pytest.raises(ServeError):
            generate_update_stream(UpdateSpec(), num_nodes=1)

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            DynamicPolicy(snapshot_every=-1.0)
        with pytest.raises(ServeError):
            DynamicPolicy(repartition_threshold=0.0)
        with pytest.raises(ServeError):
            DynamicPolicy(max_migrate_rows=0)


# ----------------------------------------------------------------------
# Serve-while-ingesting
# ----------------------------------------------------------------------
UPDATES = UpdateSpec(
    num_edges=192, rate=150_000.0, delete_fraction=0.2, seed=5
)


def _dynamic_session(pd, **kwargs):
    defaults = dict(
        device=V100,
        spec=PIN_SPEC,
        policy=PIN_POLICY,
        seed=11,
        updates=UPDATES,
        dynamic=DynamicPolicy(snapshot_every=2e-4, compact_every=8),
    )
    defaults.update(kwargs)
    return run_cluster_session(pd, **defaults)


class TestServeWhileIngesting:
    def test_zero_ingest_reproduces_static_pin(self, pd):
        _, report = run_cluster_session(
            pd, device=V100, spec=PIN_SPEC, policy=PIN_POLICY, seed=11
        )
        assert not report.dynamic
        assert _digest(report) == FIFO_PIN

    def test_empty_update_list_reproduces_static_pin(self, pd):
        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            seed=11,
            updates=[],
        )
        assert not report.dynamic
        assert _digest(report) == FIFO_PIN

    def test_two_runs_bit_identical(self, pd):
        _, a = _dynamic_session(pd)
        _, b = _dynamic_session(pd)
        assert a.fingerprint() == b.fingerprint()
        assert _digest(a) == _digest(b)

    def test_dynamic_report_fields(self, pd):
        _, report = _dynamic_session(pd)
        assert report.dynamic
        assert report.update_batches == UPDATES.num_batches
        assert report.ingested_edges + report.deleted_edges > 0
        assert report.snapshots + report.compactions > 0
        assert report.max_staleness_ms >= report.mean_staleness_ms >= 0.0
        assert report.refresh_ms > 0.0
        metrics = report.to_metrics()
        assert metrics["update_batches"] == float(report.update_batches)
        assert "invalidated_rows" in metrics

    def test_compacted_graph_session_matches_fresh_csr(self, pd):
        delta = DeltaGraph(pd.graph)
        hotness = np.diff(pd.graph.get("csc").indptr)
        for batch in generate_update_stream(
            UPDATES, num_nodes=pd.num_nodes, hotness=hotness
        ):
            delta.apply(batch)
        src, dst, val = delta.canonical_edges()
        compacted = delta.compact()
        fresh = from_edges(
            src, dst, pd.num_nodes, weights=val, layout="csc"
        )
        _, rep_a = run_cluster_session(
            dataclasses.replace(pd, graph=compacted),
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            seed=11,
        )
        _, rep_b = run_cluster_session(
            dataclasses.replace(pd, graph=fresh),
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            seed=11,
        )
        assert _digest(rep_a) == _digest(rep_b)

    def test_staleness_grows_with_snapshot_epoch(self, pd):
        _, fine = _dynamic_session(
            pd, dynamic=DynamicPolicy(snapshot_every=5e-5)
        )
        _, coarse = _dynamic_session(
            pd, dynamic=DynamicPolicy(snapshot_every=2e-3)
        )
        assert fine.snapshots > coarse.snapshots
        assert coarse.mean_staleness_ms > fine.mean_staleness_ms

    def test_repartition_trigger_and_migration(self, pd):
        cluster, report = _dynamic_session(
            pd,
            num_replicas=2,
            router="shard",
            partition="greedy",
            updates=UpdateSpec(
                num_edges=2048,
                rate=300_000.0,
                delete_fraction=0.1,
                seed=5,
            ),
            dynamic=DynamicPolicy(
                snapshot_every=2e-4,
                repartition_threshold=1e-5,
            ),
        )
        assert report.rebalances >= 1
        assert report.migrated_rows > 0
        assert report.migrated_bytes > 0
        # The router follows the repartition.
        assert cluster.router.partition is cluster.partition
        # Every node still owned by exactly one shard.
        assert cluster.partition.assignment.shape == (pd.num_nodes,)
        assert set(np.unique(cluster.partition.assignment)) <= {0, 1}

    def test_repartition_threshold_requires_partition(self, pd):
        with pytest.raises(ServeError):
            _dynamic_session(
                pd,
                dynamic=DynamicPolicy(
                    snapshot_every=2e-4, repartition_threshold=0.1
                ),
            )

    def test_cache_invalidation_accounted(self, pd):
        _, report = _dynamic_session(pd)
        assert report.cache is not None
        assert report.cache.invalidated_rows >= 0
        # Hot-skewed inserts touch hot (cached) rows, so some
        # invalidation must actually happen in this session.
        assert report.cache.invalidated_rows > 0


# ----------------------------------------------------------------------
# Verify integration
# ----------------------------------------------------------------------
class TestDynamicVerify:
    def test_check_passes_at_reduced_trials(self):
        from repro.verify import check_dynamic_equivalence

        check = check_dynamic_equivalence(trials=40)
        assert check.storage_identical
        assert check.samples_identical
        assert check.compact_digest == check.fresh_digest
        assert check.passed

    def test_graph_digest_distinguishes_graphs(self):
        from repro.verify import graph_digest

        a = _toy_graph(weighted=True)
        b = _toy_graph(weighted=False)
        assert graph_digest(a) != graph_digest(b)
        assert graph_digest(a) == graph_digest(_toy_graph(weighted=True))
