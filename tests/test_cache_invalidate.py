"""Shared ranking helper + delta-driven cache invalidation.

Covers the two residency-policy pieces the dynamic-graph path leans on:

* :mod:`repro.cache.ranking` — the degree-order ranking extracted from
  the flat cache and the tiered store, including the ``owned_mask``
  demotion both of them feed through it;
* :meth:`FeatureCache.invalidate` / :meth:`FeatureCache.rerank` and
  :meth:`TieredFeatureStore.invalidate` — the hooks the cluster
  simulator calls when a graph snapshot installs, with the
  :attr:`CacheStats.invalidated_rows` accounting that surfaces in serve
  reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheStats, FeatureCache, TieredFeatureStore
from repro.cache.ranking import degree_order, graph_degrees
from repro.cache.tiered import TIER_DEVICE, TIER_HOST, TIER_P2P
from repro.core.matrix import from_edges
from repro.device import NVLINK, V100, MemoryPool
from repro.errors import ShapeError


def _features(n=100, f=16):
    return np.ones((n, f), dtype=np.float32)


def _cache(scores=None, *, ratio=0.2, owned_mask=None, pool=None):
    scores = np.arange(100.0) if scores is None else scores
    return FeatureCache(
        _features(),
        scores,
        ratio=ratio,
        pool=MemoryPool() if pool is None else pool,
        owned_mask=owned_mask,
    )


# ----------------------------------------------------------------------
# repro.cache.ranking
# ----------------------------------------------------------------------
class TestDegreeOrder:
    def test_descending_with_stable_ties(self):
        order = degree_order(np.array([3.0, 1.0, 3.0, 5.0]))
        # Hottest first; equal scores break toward the lower node id.
        np.testing.assert_array_equal(order, [3, 0, 2, 1])

    def test_owned_mask_demotes_non_owned_below_every_owned(self):
        scores = np.array([9.0, 0.0, 5.0, 7.0])
        owned = np.array([False, True, True, False])
        order = degree_order(scores, owned_mask=owned)
        # Owned rows (2 then 1, by score) precede all non-owned rows
        # (0 then 3, stable among the demoted ties).
        np.testing.assert_array_equal(order, [2, 1, 0, 3])

    def test_owned_mask_shape_mismatch(self):
        with pytest.raises(ShapeError, match="owned mask shape"):
            degree_order(np.arange(4.0), owned_mask=np.ones(3, dtype=bool))

    def test_input_never_mutated(self):
        scores = np.arange(5.0)
        owned = np.array([True, False, True, False, True])
        degree_order(scores, owned_mask=owned)
        np.testing.assert_array_equal(scores, np.arange(5.0))

    def test_graph_degrees_are_csc_column_degrees(self):
        src = np.array([0, 1, 2, 3, 0, 1])
        dst = np.array([1, 1, 2, 0, 3, 3])
        graph = from_edges(src, dst, 4, layout="csc")
        np.testing.assert_array_equal(
            graph_degrees(graph), np.diff(graph.get("csc").indptr)
        )

    def test_both_cache_kinds_rank_identically(self):
        scores = np.array([2.0, 7.0, 7.0, 1.0, 9.0] * 20)
        flat = _cache(scores, ratio=0.1)
        pool = MemoryPool()
        store = TieredFeatureStore(
            _features(), scores, pool=pool, device_ratio=0.1
        )
        np.testing.assert_array_equal(flat.cached_ids, store.cached_ids)


# ----------------------------------------------------------------------
# FeatureCache.invalidate / rerank
# ----------------------------------------------------------------------
class TestFeatureCacheInvalidate:
    def test_invalidated_rows_miss_afterwards(self):
        cache = _cache()  # scores = arange -> cached ids 80..99
        np.testing.assert_array_equal(cache.cached_ids, np.arange(80, 100))
        assert cache.invalidate(np.array([85, 90])) == 2
        assert 85 not in cache.cached_ids and 90 not in cache.cached_ids
        hits, misses = cache.split(np.array([85, 90, 99]))
        assert (hits, misses) == (1, 2)
        assert cache.epoch_stats().invalidated_rows == 2

    def test_uncached_rows_are_free(self):
        cache = _cache()
        assert cache.invalidate(np.array([0, 1, 2])) == 0
        assert cache.invalidate(np.array([], dtype=np.int64)) == 0
        assert cache.epoch_stats().invalidated_rows == 0

    def test_duplicates_count_once_and_repeats_are_idempotent(self):
        cache = _cache()
        assert cache.invalidate(np.array([85, 85, 85, 3])) == 1
        assert cache.invalidate(np.array([85])) == 0
        assert cache.epoch_stats().invalidated_rows == 1

    def test_accounting_survives_reset_epoch(self):
        cache = _cache()
        cache.record_gather(np.array([85, 3]))
        cache.invalidate(np.array([85]))
        cache.reset_epoch()
        stats = cache.epoch_stats()
        assert stats.hits == 0 and stats.misses == 0
        assert stats.invalidated_rows == 1

    def test_allocation_stays_pinned(self):
        # Tombstoned slots: the pool ledger must not move.
        pool = MemoryPool()
        cache = _cache(pool=pool)
        before = (pool.live_bytes, cache.cached_bytes)
        cache.invalidate(np.array([80, 81, 82]))
        assert (pool.live_bytes, cache.cached_bytes) == before

    def test_rerank_refills_tombstoned_slots(self):
        cache = _cache()
        cache.invalidate(np.array([80, 81, 82]))
        assert cache.cached_rows == 17
        assert cache.rerank(np.arange(100.0)) == 20
        np.testing.assert_array_equal(cache.cached_ids, np.arange(80, 100))
        hits, _ = cache.record_gather(np.array([80, 81, 82]))
        assert hits == 3

    def test_rerank_follows_fresh_scores(self):
        cache = _cache()
        # Live degrees now favor the low-id band.
        cache.rerank(np.arange(100.0, 0.0, -1.0))
        np.testing.assert_array_equal(cache.cached_ids, np.arange(20))

    def test_rerank_keeps_owned_mask(self):
        owned = np.zeros(100, dtype=bool)
        owned[:30] = True
        cache = _cache(owned_mask=owned)
        np.testing.assert_array_equal(cache.cached_ids, np.arange(10, 30))
        cache.invalidate(np.array([15]))
        cache.rerank(np.arange(100.0))
        # The budget still goes to the hottest *owned* rows.
        np.testing.assert_array_equal(cache.cached_ids, np.arange(10, 30))

    def test_rerank_shape_mismatch(self):
        with pytest.raises(ShapeError):
            _cache().rerank(np.arange(50.0))

    def test_merged_sums_invalidations(self):
        a, b = _cache(), _cache()
        a.invalidate(np.array([85]))
        b.invalidate(np.array([90, 91]))
        merged = CacheStats.merged([a.epoch_stats(), None, b.epoch_stats()])
        assert merged.invalidated_rows == 3


# ----------------------------------------------------------------------
# TieredFeatureStore.invalidate
# ----------------------------------------------------------------------
class TestTieredInvalidate:
    def _store(self, **kwargs):
        # Descending hotness: node 0 hottest, device band = 0..15.
        scores = np.arange(64.0, 0.0, -1.0)
        features = np.zeros((64, 4), dtype=np.float32)
        return TieredFeatureStore(
            features,
            scores,
            pool=MemoryPool(),
            device_ratio=0.25,
            **kwargs,
        )

    def test_device_rows_demote_to_host(self):
        store = self._store()
        np.testing.assert_array_equal(store.cached_ids, np.arange(16))
        assert store.invalidate(np.array([3, 7])) == 2
        split = store.split(np.array([3, 7]))
        assert split.device_rows == 0 and split.host_rows == 2
        assert 3 in store.host_ids and 7 in store.host_ids
        np.testing.assert_array_equal(store.host_ids, np.sort(store.host_ids))
        assert store.epoch_stats().invalidated_rows == 2

    def test_host_and_remote_rows_are_free(self):
        store = self._store()
        assert store.invalidate(np.array([40, 63])) == 0
        assert store.invalidate(np.array([], dtype=np.int64)) == 0
        assert store.epoch_stats().invalidated_rows == 0

    def test_demoted_rows_count_as_host_hits(self):
        store = self._store()
        store.invalidate(np.array([3]))
        store.record_gather(np.array([3, 0]))
        stats = store.epoch_stats()
        assert stats.hits == 1 and stats.host_hits == 1

    def test_allocation_stays_pinned(self):
        store = self._store()
        before = store.cached_bytes
        store.invalidate(np.arange(16))
        assert store.cached_rows == 0
        assert store.cached_bytes == before

    def test_p2p_entries_demote_without_local_accounting(self):
        store = self._store(
            link=NVLINK,
            device=V100,
            replica_id=0,
            num_replicas=2,
            p2p=True,
        )
        assert store.p2p_enabled
        # Stride striping: replica 0 pins the even positions of the top
        # band, its sibling the odd ones.
        peer_row = int(
            np.flatnonzero(store._tier == TIER_P2P)[0]
        )
        local_row = int(store.cached_ids[0])
        assert store.invalidate(np.array([peer_row, local_row])) == 1
        assert store._tier[peer_row] == TIER_HOST
        assert store._tier[local_row] == TIER_HOST
        # Only the locally pinned demotion accumulates in the stats.
        assert store.epoch_stats().invalidated_rows == 1

    def test_duplicates_and_repeats(self):
        store = self._store()
        assert store.invalidate(np.array([5, 5, 5])) == 1
        assert store.invalidate(np.array([5])) == 0
        assert store.epoch_stats().invalidated_rows == 1
