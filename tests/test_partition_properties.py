"""Property tests for repro.partition: ownership, determinism, drift.

Fuzzed invariants over the partitioners, the shard views, and the
incremental-repartition layer:

* **partition of unity** — every node is owned by exactly one shard,
  for every method and fuzzed shard count;
* **seed determinism** — equal seeds give bit-identical assignments;
* **view consistency** — :meth:`ShardView.contains` and
  :meth:`ShardView.remote_count` agree with the assignment array under
  fuzzed node queries;
* **tracker drift** — :class:`PartitionTracker` degree sums follow the
  applied deltas exactly, and ``rebase`` silences the trigger;
* **bounded migration** — :func:`incremental_rebalance` plans are
  valid, bounded, deterministic, and never worsen the degree balance;
  :func:`full_repartition` reports exactly the changed nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import new_rng
from repro.core.matrix import from_edges
from repro.errors import ShapeError
from repro.partition import (
    PARTITION_METHODS,
    GraphPartition,
    PartitionTracker,
    full_repartition,
    incremental_rebalance,
    make_partition,
)


def _random_graph(num_nodes=120, avg_degree=6, seed=0):
    rng = new_rng(seed)
    extra = num_nodes * (avg_degree - 1)
    src = np.concatenate(
        [rng.integers(0, num_nodes, num_nodes),
         rng.integers(0, num_nodes, extra)]
    )
    dst = np.concatenate(
        [np.arange(num_nodes), rng.integers(0, num_nodes, extra)]
    )
    return from_edges(src, dst, num_nodes, layout="csc")


# ----------------------------------------------------------------------
# Partition-of-unity + determinism
# ----------------------------------------------------------------------
class TestPartitionOfUnity:
    @pytest.mark.parametrize("method", sorted(PARTITION_METHODS))
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 8])
    def test_every_node_owned_exactly_once(self, method, num_shards):
        graph = _random_graph(seed=3)
        partition = make_partition(method, graph, num_shards, seed=1)
        # The assignment covers every node with a valid shard id...
        assert partition.assignment.shape == (graph.shape[1],)
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < num_shards
        # ...and the views tile the node set without overlap.
        counts = np.zeros(graph.shape[1], dtype=np.int64)
        for view in partition.views():
            counts[view.nodes] += 1
            assert np.array_equal(np.flatnonzero(view.mask), view.nodes)
        assert np.all(counts == 1)

    @pytest.mark.parametrize("method", sorted(PARTITION_METHODS))
    def test_seed_determinism(self, method):
        graph = _random_graph(seed=4)
        a = make_partition(method, graph, 4, seed=9)
        b = make_partition(method, graph, 4, seed=9)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.edge_cut == b.edge_cut
        np.testing.assert_array_equal(a.shard_degrees, b.shard_degrees)

    def test_degree_sums_match_assignment(self):
        graph = _random_graph(seed=5)
        degrees = np.diff(graph.get("csc").indptr)
        for method in sorted(PARTITION_METHODS):
            partition = make_partition(method, graph, 3, seed=2)
            for shard in range(3):
                mine = partition.assignment == shard
                assert partition.shard_degrees[shard] == degrees[mine].sum()


# ----------------------------------------------------------------------
# ShardView queries under fuzzed assignments
# ----------------------------------------------------------------------
class TestShardViewQueries:
    @pytest.mark.parametrize("trial", range(5))
    def test_views_agree_with_fuzzed_assignment(self, trial):
        rng = new_rng(100 + trial)
        num_nodes = int(rng.integers(20, 200))
        num_shards = int(rng.integers(1, 6))
        assignment = rng.integers(0, num_shards, num_nodes).astype(np.int64)
        degrees = rng.integers(0, 10, num_nodes).astype(np.int64)
        partition = GraphPartition(
            method="fuzz",
            num_shards=num_shards,
            assignment=assignment,
            edge_cut=0.0,
            shard_degrees=np.bincount(
                assignment, weights=degrees, minlength=num_shards
            ).astype(np.int64),
        )
        queries = rng.integers(0, num_nodes, 64)
        for shard in range(num_shards):
            view = partition.view(shard)
            owned = view.contains(queries)
            np.testing.assert_array_equal(owned, assignment[queries] == shard)
            assert view.remote_count(queries) == int(
                np.count_nonzero(assignment[queries] != shard)
            )
        # Each query is owned by exactly one view.
        owners = np.stack(
            [partition.view(s).contains(queries)
             for s in range(num_shards)]
        )
        assert np.all(owners.sum(axis=0) == 1)

    def test_empty_query_arrays(self):
        partition = make_partition("hash", _random_graph(), 2, seed=0)
        view = partition.view(0)
        assert view.contains(np.array([], dtype=np.int64)).size == 0
        assert view.remote_count(np.array([], dtype=np.int64)) == 0


# ----------------------------------------------------------------------
# Drift tracking
# ----------------------------------------------------------------------
class TestPartitionTracker:
    def test_degree_sums_follow_deltas_exactly(self):
        graph = _random_graph(seed=6)
        partition = make_partition("greedy", graph, 3, seed=0)
        tracker = PartitionTracker(partition)
        rng = new_rng(7)
        expected = partition.shard_degrees.astype(np.float64).copy()
        total = 0
        for _ in range(10):
            n = int(rng.integers(1, 16))
            src = rng.integers(0, graph.shape[1], n)
            dst = rng.integers(0, graph.shape[1], n)
            delete = rng.random(n) < 0.3
            tracker.apply_updates(src, dst, delete)
            sign = np.where(delete, -1.0, 1.0)
            expected += np.bincount(
                partition.assignment[dst], weights=sign, minlength=3
            )
            total += n
        np.testing.assert_allclose(tracker.shard_degrees, expected)
        assert tracker.streamed_edges == total
        assert 0.0 <= tracker.streamed_cut_fraction() <= 1.0

    def test_skewed_inserts_raise_drift_and_rebase_clears_it(self):
        graph = _random_graph(seed=8)
        partition = make_partition("greedy", graph, 2, seed=0)
        tracker = PartitionTracker(partition)
        assert tracker.drift == 0.0
        # Pile edges onto one shard's nodes.
        target = partition.view(0).nodes[:10]
        src = np.zeros(500, dtype=np.int64)
        dst = np.resize(target, 500)
        tracker.apply_updates(src, dst, np.zeros(500, dtype=bool))
        assert tracker.drift > 0.0
        assert tracker.needs_rebalance(tracker.drift / 2)
        assert not tracker.needs_rebalance(tracker.drift * 2)
        tracker.rebase(partition)
        assert tracker.drift == 0.0
        assert tracker.streamed_edges == 0


# ----------------------------------------------------------------------
# Incremental rebalance / full repartition
# ----------------------------------------------------------------------
def _unbalance(partition, fraction=0.25):
    """Move a fraction of shard 1's nodes to shard 0 to force drift."""
    assignment = partition.assignment.copy()
    donors = np.flatnonzero(assignment == 1)
    assignment[donors[: int(len(donors) * fraction)]] = 0
    return assignment


class TestIncrementalRebalance:
    def test_plan_validity_and_bound(self):
        graph = _random_graph(seed=9)
        partition = make_partition("greedy", graph, 2, seed=0)
        assignment = _unbalance(partition)
        plan = incremental_rebalance(
            graph, assignment, 2, target_balance=1.0, max_moves=16
        )
        assert plan.num_moved <= 16
        assert plan.assignment.shape == assignment.shape
        # Moved nodes really changed shard; unmoved nodes did not.
        changed = np.flatnonzero(plan.assignment != assignment)
        np.testing.assert_array_equal(np.sort(plan.moved_nodes), changed)
        np.testing.assert_array_equal(
            plan.sources, assignment[plan.moved_nodes]
        )
        np.testing.assert_array_equal(
            plan.targets, plan.assignment[plan.moved_nodes]
        )
        assert plan.migration_bytes(1024) == plan.num_moved * 1024
        in_rows = sum(plan.rows_into(s).size for s in range(2))
        out_rows = sum(plan.rows_out_of(s).size for s in range(2))
        assert in_rows == out_rows == plan.num_moved

    def test_balance_never_worsens(self):
        graph = _random_graph(seed=10)
        partition = make_partition("greedy", graph, 3, seed=0)
        assignment = _unbalance(partition, fraction=0.5)
        degrees = np.diff(graph.get("csc").indptr).astype(np.float64)

        def balance(a):
            loads = np.bincount(a, weights=degrees, minlength=3)
            return loads.max() / loads.mean()

        plan = incremental_rebalance(
            graph, assignment, 3, target_balance=1.0, max_moves=64
        )
        assert plan.num_moved > 0
        assert balance(plan.assignment) <= balance(assignment)

    def test_deterministic(self):
        graph = _random_graph(seed=11)
        partition = make_partition("greedy", graph, 2, seed=0)
        assignment = _unbalance(partition)
        a = incremental_rebalance(graph, assignment, 2, max_moves=32)
        b = incremental_rebalance(graph, assignment, 2, max_moves=32)
        np.testing.assert_array_equal(a.moved_nodes, b.moved_nodes)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.edge_cut == b.edge_cut

    def test_balanced_input_moves_nothing(self):
        graph = _random_graph(seed=12)
        partition = make_partition("greedy", graph, 2, seed=0)
        plan = incremental_rebalance(
            graph,
            partition.assignment,
            2,
            target_balance=max(partition.degree_balance(), 1.0),
        )
        assert plan.num_moved == 0
        np.testing.assert_array_equal(plan.assignment, partition.assignment)

    def test_input_validation(self):
        graph = _random_graph(seed=13)
        with pytest.raises(ShapeError):
            incremental_rebalance(graph, np.zeros(3), 2)
        with pytest.raises(ShapeError):
            incremental_rebalance(
                graph, np.zeros(graph.shape[1]), 2, max_moves=0
            )
        with pytest.raises(ShapeError):
            incremental_rebalance(
                graph, np.zeros(graph.shape[1]), 2, target_balance=0.5
            )

    def test_full_repartition_reports_changed_nodes(self):
        graph = _random_graph(seed=14)
        partition = make_partition("greedy", graph, 2, seed=0)
        assignment = _unbalance(partition)
        plan = full_repartition(graph, assignment, 2, seed=0)
        np.testing.assert_array_equal(
            plan.moved_nodes,
            np.flatnonzero(plan.assignment != assignment),
        )
        fresh = make_partition("greedy", graph, 2, seed=0)
        np.testing.assert_array_equal(plan.assignment, fresh.assignment)
        assert plan.edge_cut == fresh.edge_cut
