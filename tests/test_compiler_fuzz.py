"""Compiler fuzzing: optimized execution == eager execution, always.

Generates random straight-line sampling programs over the matrix API
(random chains of compute ops, a random select step, random finalize),
compiles each both with all optimizations and with none, runs them with
identical RNG streams, and requires identical samples.  This is the
strongest guarantee the pass pipeline can offer: no fusion, hoisting,
layout choice, or CSE may change program semantics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core import new_rng
from repro.core.matrix import from_edges
from repro.device import ExecutionContext, V100
from repro.sampler import OptimizationConfig, compile_sampler


def _graph(seed: int):
    rng = np.random.default_rng(seed)
    n = 80
    src = np.concatenate([rng.integers(0, n, n), rng.integers(0, n, 600)])
    dst = np.concatenate([np.arange(n), rng.integers(0, n, 600)])
    keys = np.unique(src * n + dst)
    weights = (rng.random(len(keys)) + 0.1).astype(np.float32)
    return from_edges(keys // n, keys % n, n, weights=weights)


# One step of the random compute chain: (kind, param).
_COMPUTE_STEPS = st.lists(
    st.sampled_from(
        ["pow2", "mul2", "add1", "relu", "exp_clip", "div_colsum", "mul_rowsum"]
    ),
    min_size=0,
    max_size=4,
)


def _apply_steps(sub, steps):
    for step in steps:
        if step == "pow2":
            sub = sub**2
        elif step == "mul2":
            sub = sub * 2.0
        elif step == "add1":
            sub = sub + 1.0
        elif step == "relu":
            sub = sub.relu()
        elif step == "exp_clip":
            sub = (sub * 0.1).exp()
        elif step == "div_colsum":
            sub = sub.div(sub.sum(axis=1) + 1.0, axis=1)
        elif step == "mul_rowsum":
            sub = sub.mul(sub.sum(axis=0) + 1.0, axis=0)
    return sub


def _make_program(steps, select, k):
    def program(A, frontiers, K):
        sub = A[:, frontiers]
        biased = _apply_steps(sub, steps)
        if select == "individual":
            out = sub.individual_sample(K, biased)
        elif select == "individual_uniform":
            out = sub.individual_sample(K)
        else:
            out = sub.collective_sample(K, (biased**2).sum(axis=0))
        return out, out.row()

    return program


@given(
    steps=_COMPUTE_STEPS,
    select=st.sampled_from(["individual", "individual_uniform", "collective"]),
    k=st.integers(1, 6),
    graph_seed=st.integers(0, 50),
    run_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
@example(
    steps=['mul_rowsum', 'pow2', 'mul_rowsum', 'exp_clip'],
    select='collective',
    k=2,
    graph_seed=0,
    run_seed=0,
).via('discovered failure')
def test_optimized_equals_plain(steps, select, k, graph_seed, run_seed):
    graph = _graph(graph_seed)
    seeds = np.arange(12)
    program = _make_program(steps, select, k)
    optimized = compile_sampler(program, graph, seeds, constants={"K": k})
    plain = compile_sampler(
        program, graph, seeds, constants={"K": k},
        config=OptimizationConfig.plain(),
    )
    m_opt, next_opt = optimized.run(
        seeds, ctx=ExecutionContext(V100), rng=new_rng(run_seed)
    )
    m_plain, next_plain = plain.run(
        seeds, ctx=ExecutionContext(V100), rng=new_rng(run_seed)
    )
    ro, co, vo = m_opt.to_coo_arrays()
    rp, cp, vp = m_plain.to_coo_arrays()
    opt_edges = sorted(zip(ro.tolist(), co.tolist(), np.round(vo, 4).tolist()))
    plain_edges = sorted(zip(rp.tolist(), cp.tolist(), np.round(vp, 4).tolist()))
    assert opt_edges == plain_edges
    np.testing.assert_array_equal(np.sort(next_opt), np.sort(next_plain))


@given(
    steps=_COMPUTE_STEPS,
    k=st.integers(1, 4),
    num_batches=st.integers(2, 4),
    run_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=20, deadline=None)
def test_superbatch_structural_invariants(steps, k, num_batches, run_seed):
    """Super-batched results obey the same structural contracts as
    per-batch runs: column sets match inputs, fanouts hold, all edges are
    graph edges."""
    graph = _graph(1)
    program = _make_program(steps, "individual_uniform", k)
    sampler = compile_sampler(program, graph, np.arange(8), constants={"K": k})
    rng = np.random.default_rng(run_seed)
    batches = [
        np.sort(rng.choice(graph.shape[0], 8, replace=False))
        for _ in range(num_batches)
    ]
    results = sampler.run_superbatch(batches, rng=new_rng(run_seed))
    assert len(results) == num_batches
    from tests.conftest import to_dense

    dense = to_dense(graph)
    for (matrix, nxt), batch in zip(results, batches):
        np.testing.assert_array_equal(matrix.column(), batch)
        rows, cols, _ = matrix.to_coo_arrays()
        assert all(dense[r, c] != 0 for r, c in zip(rows, cols))
        counts = np.bincount(cols, minlength=graph.shape[0])
        assert counts.max(initial=0) <= k
        np.testing.assert_array_equal(np.sort(nxt), np.unique(rows))
