"""Kernel tests against the dense oracle: slicing, maps, reduces, SpMM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.sparse import (
    convert,
    edge_endpoints,
    fused_map_chain,
    fused_map_reduce,
    map_edges_broadcast,
    map_edges_combine,
    map_edges_scalar,
    map_edges_unary,
    reduce_cols,
    reduce_rows,
    sddmm_dot,
    slice_columns,
    slice_rows,
    spmm,
)

from tests.conftest import random_coo, to_dense


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
class TestSlicing:
    def test_slice_columns_matches_dense(self, rng, layout):
        coo = random_coo(rng, rows=15, cols=12, nnz=70)
        matrix = convert(coo, layout)
        cols = np.array([3, 0, 7, 7, 11])
        out = slice_columns(matrix, cols)
        assert out.layout == layout
        assert out.shape == (15, 5)
        np.testing.assert_allclose(
            to_dense(out), to_dense(coo)[:, cols], rtol=1e-6
        )

    def test_slice_rows_matches_dense(self, rng, layout):
        coo = random_coo(rng, rows=15, cols=12, nnz=70)
        matrix = convert(coo, layout)
        rows = np.array([1, 1, 14, 0])
        out = slice_rows(matrix, rows)
        assert out.shape == (4, 12)
        np.testing.assert_allclose(
            to_dense(out), to_dense(coo)[rows, :], rtol=1e-6
        )

    def test_empty_selection(self, rng, layout):
        coo = random_coo(rng)
        matrix = convert(coo, layout)
        out = slice_columns(matrix, np.array([], dtype=np.int64))
        assert out.shape == (coo.shape[0], 0)
        assert out.nnz == 0


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
class TestEdgeMaps:
    def test_scalar_ops(self, rng, layout):
        matrix = convert(random_coo(rng), layout)
        dense = to_dense(matrix)
        mask = dense != 0
        for op, fn in [
            ("add", lambda x: x + 2), ("sub", lambda x: x - 2),
            ("mul", lambda x: x * 2), ("div", lambda x: x / 2),
            ("pow", lambda x: x**2),
        ]:
            out = map_edges_scalar(matrix, op, 2.0)
            expected = np.where(mask, fn(dense), 0.0)
            np.testing.assert_allclose(to_dense(out), expected, rtol=1e-5)

    def test_reverse_scalar(self, rng, layout):
        matrix = convert(random_coo(rng), layout)
        dense = to_dense(matrix)
        mask = dense != 0
        out = map_edges_scalar(matrix, "div", 1.0, reverse=True)
        expected = np.where(
            mask, np.divide(1.0, dense, where=mask, out=np.zeros_like(dense)), 0.0
        )
        np.testing.assert_allclose(to_dense(out), expected, rtol=1e-5)

    def test_unary_ops(self, rng, layout):
        matrix = convert(random_coo(rng), layout)
        dense = to_dense(matrix)
        mask = dense != 0
        out = map_edges_unary(matrix, "sqrt")
        np.testing.assert_allclose(
            to_dense(out), np.where(mask, np.sqrt(np.abs(dense)), 0.0), rtol=1e-5
        )

    def test_broadcast_rows(self, rng, layout):
        matrix = convert(random_coo(rng, rows=10, cols=8, nnz=40), layout)
        vec = (rng.random(10) + 0.5).astype(np.float32)
        dense = to_dense(matrix)
        mask = dense != 0
        out = map_edges_broadcast(matrix, "mul", vec, axis=0)
        np.testing.assert_allclose(
            to_dense(out), dense * np.where(mask, vec[:, None], 0), rtol=1e-5
        )

    def test_broadcast_cols(self, rng, layout):
        matrix = convert(random_coo(rng, rows=10, cols=8, nnz=40), layout)
        vec = (rng.random(8) + 0.5).astype(np.float32)
        dense = to_dense(matrix)
        out = map_edges_broadcast(matrix, "div", vec, axis=1)
        expected = np.where(dense != 0, dense / vec[None, :], 0.0)
        np.testing.assert_allclose(to_dense(out), expected, rtol=1e-5)

    def test_broadcast_shape_checked(self, rng, layout):
        matrix = convert(random_coo(rng, rows=10, cols=8, nnz=40), layout)
        with pytest.raises(ShapeError):
            map_edges_broadcast(matrix, "mul", np.ones(3), axis=0)

    def test_combine_same_topology(self, rng, layout):
        matrix = convert(random_coo(rng), layout)
        doubled = map_edges_scalar(matrix, "mul", 2.0)
        out = map_edges_combine(matrix, "add", doubled)
        np.testing.assert_allclose(to_dense(out), 3 * to_dense(matrix), rtol=1e-5)


@pytest.mark.parametrize("layout", ["coo", "csr", "csc"])
@pytest.mark.parametrize("op", ["sum", "mean", "max", "min"])
class TestReduce:
    def test_reduce_rows(self, rng, layout, op):
        coo = random_coo(rng, rows=9, cols=7, nnz=30)
        matrix = convert(coo, layout)
        out = reduce_rows(matrix, op)
        dense = to_dense(coo)
        for i in range(9):
            vals = dense[i][dense[i] != 0]
            if len(vals) == 0:
                expected = {"sum": 0.0, "mean": 0.0, "max": -np.inf, "min": np.inf}[op]
            else:
                expected = getattr(np, op)(vals)
            assert out[i] == pytest.approx(expected, rel=1e-5), (op, i)

    def test_reduce_cols(self, rng, layout, op):
        coo = random_coo(rng, rows=9, cols=7, nnz=30)
        matrix = convert(coo, layout)
        out = reduce_cols(matrix, op)
        dense = to_dense(coo)
        for j in range(7):
            vals = dense[:, j][dense[:, j] != 0]
            if len(vals) == 0:
                expected = {"sum": 0.0, "mean": 0.0, "max": -np.inf, "min": np.inf}[op]
            else:
                expected = getattr(np, op)(vals)
            assert out[j] == pytest.approx(expected, rel=1e-5), (op, j)


class TestDenseInteraction:
    def test_spmm_matches_dense(self, rng):
        coo = random_coo(rng, rows=10, cols=6, nnz=30)
        d = rng.random((6, 4)).astype(np.float32)
        out = spmm(coo, d)
        np.testing.assert_allclose(out, to_dense(coo) @ d, rtol=1e-4)

    def test_spmm_vector(self, rng):
        coo = random_coo(rng, rows=10, cols=6, nnz=30)
        v = rng.random(6).astype(np.float32)
        out = spmm(coo, v)
        assert out.shape == (10,)
        np.testing.assert_allclose(out, to_dense(coo) @ v, rtol=1e-4)

    def test_spmm_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            spmm(random_coo(rng, rows=5, cols=3, nnz=5), np.ones((4, 2)))

    def test_sddmm_dot(self, rng):
        coo = random_coo(rng, rows=8, cols=5, nnz=20)
        bf = rng.random((8, 3)).astype(np.float32)
        cf = rng.random((5, 3)).astype(np.float32)
        out = sddmm_dot(coo, bf, cf)
        rows, cols = edge_endpoints(out)
        from repro.sparse import edge_values

        for r, c, v in zip(rows, cols, edge_values(out)):
            assert v == pytest.approx(float(bf[r] @ cf[c]), rel=1e-4)


class TestFusedKernels:
    def test_fused_map_chain_equals_sequential(self, rng):
        matrix = random_coo(rng, rows=10, cols=8, nnz=40)
        vec = (rng.random(10) + 0.5).astype(np.float32)
        fused = fused_map_chain(
            matrix,
            [("pow", 2.0, None), ("mul", vec, 0), ("relu", None, None)],
        )
        step1 = map_edges_scalar(matrix, "pow", 2.0)
        step2 = map_edges_broadcast(step1, "mul", vec, axis=0)
        step3 = map_edges_unary(step2, "relu")
        np.testing.assert_allclose(to_dense(fused), to_dense(step3), rtol=1e-5)

    def test_fused_map_reduce_equals_sequential(self, rng):
        matrix = random_coo(rng, rows=10, cols=8, nnz=40)
        fused = fused_map_reduce(matrix, [("pow", 2.0, None)], "sum", 0)
        expected = reduce_rows(map_edges_scalar(matrix, "pow", 2.0), "sum")
        np.testing.assert_allclose(fused, expected, rtol=1e-5)

    def test_fused_matrix_operand(self, rng):
        matrix = random_coo(rng)
        other = map_edges_scalar(matrix, "mul", 3.0)
        fused = fused_map_chain(matrix, [("add", other, -1)])
        np.testing.assert_allclose(to_dense(fused), 4 * to_dense(matrix), rtol=1e-5)

    @given(st.integers(0, 2**31 - 1), st.sampled_from(["sum", "max", "mean"]))
    @settings(max_examples=25, deadline=None)
    def test_fused_reduce_property(self, seed, op):
        rng = np.random.default_rng(seed)
        matrix = random_coo(rng, rows=6, cols=5, nnz=rng.integers(0, 25))
        fused = fused_map_reduce(matrix, [("mul", 2.0, None)], op, 1)
        sequential = reduce_cols(map_edges_scalar(matrix, "mul", 2.0), op)
        np.testing.assert_allclose(fused, sequential, rtol=1e-5)
