"""End-to-end verification tests: oracle, equivalence sweep, detection.

The heart of the ``repro.verify`` subsystem's own test suite:

* the eager oracle matches an unoptimized compiled run *exactly* under a
  shared RNG stream (differential layer);
* every registered verifiable algorithm is distribution-equivalent
  across the full 8-config optimization grid plus the super-batched
  path (statistical layer, ``slow_statistical``);
* a deliberately broken pass is caught by the statistical checker when
  it slips past the invariant checker, and by the invariant checker
  when it leaves structural evidence — the two layers close each
  other's blind spots.

Failing statistical tests print the root seed; rerun with
``pytest --repro-seed <seed>`` to reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import cli
from repro.core import new_rng
from repro.errors import GSamplerError, InvariantError, TraceError
from repro.ir.passes import PassManager
from repro.ir.passes.base import Pass
from repro.sampler import OptimizationConfig, compile_sampler
from repro.verify import (
    builtin_specs,
    check_invariants,
    trace_oracle,
    verify_algorithm,
)
from repro.verify.equivalence import (
    _sample_matrix,
    collect_edge_marginals,
    compare_to_oracle,
)

ALGORITHMS = sorted(builtin_specs())


def skewed_layer(A, frontiers, K):
    """Sharply weighted sampling whose bias differs from the edge values:
    dropping the probs operand changes the distribution detectably."""
    sub_A = A[:, frontiers]
    probs = sub_A ** 4
    sample_A = sub_A.individual_sample(K, probs)
    return sample_A, sample_A.row()


class TestOptimizationGrid:
    def test_all_combinations_cover_grid(self):
        combos = OptimizationConfig.all_combinations()
        assert len(combos) == 8
        assert len(set(combos)) == 8
        assert OptimizationConfig.plain() in combos
        assert OptimizationConfig() in combos

    def test_labels_unique(self):
        labels = [c.label() for c in OptimizationConfig.all_combinations()]
        assert len(set(labels)) == 8
        assert OptimizationConfig.plain().label() == "C0D0B0"
        assert OptimizationConfig().label() == "C1D1B1"


def _canonical_coo(matrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(src, dst, value)`` sorted by (src, dst): storage-order-free."""
    rows, cols, values = matrix.to_coo_arrays()
    order = np.lexsort((cols, rows))
    return rows[order], cols[order], np.asarray(values, np.float64)[order]


class TestExactDifferential:
    """Same RNG stream => the oracle and an unoptimized compiled run
    must agree edge-for-edge, not just in distribution."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_oracle_matches_plain_compile(self, algorithm, verify_graph):
        spec = builtin_specs()[algorithm]
        frontiers = np.arange(12)
        tensors = (
            spec.tensors_fn(verify_graph) if spec.tensors_fn else None
        )
        oracle = trace_oracle(
            spec.layer_fn,
            verify_graph,
            frontiers,
            constants=spec.constants,
            tensors=tensors,
        )
        sampler = compile_sampler(
            spec.layer_fn,
            verify_graph,
            frontiers,
            constants=spec.constants,
            tensors=tensors,
            config=OptimizationConfig.plain(),
            debug=True,
        )
        for seed in (0, 1, 2):
            m_oracle = _sample_matrix(
                oracle.run(frontiers, tensors=tensors, rng=new_rng(seed))
            )
            m_compiled = _sample_matrix(
                sampler.run(frontiers, tensors=tensors, rng=new_rng(seed))
            )
            ro, co, vo = _canonical_coo(m_oracle)
            rc, cc, vc = _canonical_coo(m_compiled)
            np.testing.assert_array_equal(ro, rc)
            np.testing.assert_array_equal(co, cc)
            np.testing.assert_allclose(vo, vc, rtol=1e-5, atol=1e-6)

    def test_oracle_rejects_fused_ops(self, verify_graph):
        spec = builtin_specs()["graphsage"]
        frontiers = np.arange(12)
        sampler = compile_sampler(
            spec.layer_fn, verify_graph, frontiers, constants=spec.constants
        )
        from repro.verify.oracle import EagerOracle

        fused = EagerOracle(sampler.ir, verify_graph, sampler.structure)
        with pytest.raises(TraceError, match="cannot execute"):
            fused.run(frontiers)


@pytest.mark.slow_statistical
class TestDistributionEquivalence:
    """Acceptance criterion: chi-square equivalence (Bonferroni-adjusted
    p > alpha) between the oracle and all 8 configs plus super-batch."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_algorithm_equivalent_across_grid(
        self, algorithm, repro_seed, verify_trials
    ):
        report = verify_algorithm(
            algorithm, trials=verify_trials, alpha=0.01, seed=repro_seed
        )
        assert report.num_tests == 9  # 8 configs + the super-batch path
        assert report.passed, (
            f"reproduce with: pytest --repro-seed {repro_seed}\n"
            + report.summary()
        )


@pytest.mark.slow_statistical
class TestBrokenPassDetection:
    """A probs-dropping pass must not survive either verification layer."""

    @staticmethod
    def _drop_probs(ir, *, clear_flag: bool) -> None:
        for node in ir.nodes():
            if node.op == "individual_sample" and node.attrs.get("has_probs"):
                node.inputs = node.inputs[:1]
                if clear_flag:
                    node.attrs["has_probs"] = False

    def test_statistical_checker_catches_silent_drop(
        self, verify_graph, repro_seed, verify_trials
    ):
        # The evil pass covers its tracks (clears has_probs), so the IR
        # is structurally spotless -- only statistics can see the skew.
        frontiers = np.arange(12)
        constants = {"K": 2}
        oracle = trace_oracle(
            skewed_layer, verify_graph, frontiers, constants=constants
        )
        oracle_counts, oracle_sums = collect_edge_marginals(
            lambda rng: _sample_matrix(oracle.run(frontiers, rng=rng)),
            trials=verify_trials,
            seed=repro_seed,
        )
        broken = compile_sampler(
            skewed_layer,
            verify_graph,
            frontiers,
            constants=constants,
            config=OptimizationConfig.plain(),
        )
        self._drop_probs(broken.ir, clear_flag=True)
        check_invariants(broken.ir)  # structurally spotless indeed
        broken_counts, broken_sums = collect_edge_marginals(
            lambda rng: _sample_matrix(broken.run(frontiers, rng=rng)),
            trials=verify_trials,
            seed=repro_seed + 1,
        )
        verdict = compare_to_oracle(
            oracle_counts,
            oracle_sums,
            broken_counts,
            broken_sums,
            name="probs-dropped",
            trials=verify_trials,
            alpha=0.01,
            num_tests=9,
        )
        assert not verdict.passed, (
            f"reproduce with: pytest --repro-seed {repro_seed}\n"
            "probs-dropping mutation was NOT detected statistically: "
            + verdict.describe()
        )
        assert verdict.adjusted_chi2_p < 1e-6  # decisive, not marginal

    def test_intact_sampler_passes_same_gauntlet(
        self, verify_graph, repro_seed, verify_trials
    ):
        # Control experiment: the identical pipeline minus the mutation
        # must be accepted, or the detection above proves nothing.
        frontiers = np.arange(12)
        constants = {"K": 2}
        oracle = trace_oracle(
            skewed_layer, verify_graph, frontiers, constants=constants
        )
        oracle_counts, oracle_sums = collect_edge_marginals(
            lambda rng: _sample_matrix(oracle.run(frontiers, rng=rng)),
            trials=verify_trials,
            seed=repro_seed,
        )
        intact = compile_sampler(
            skewed_layer,
            verify_graph,
            frontiers,
            constants=constants,
            config=OptimizationConfig.plain(),
        )
        intact_counts, intact_sums = collect_edge_marginals(
            lambda rng: _sample_matrix(intact.run(frontiers, rng=rng)),
            trials=verify_trials,
            seed=repro_seed + 2,
        )
        verdict = compare_to_oracle(
            oracle_counts,
            oracle_sums,
            intact_counts,
            intact_sums,
            name="intact",
            trials=verify_trials,
            alpha=0.01,
            num_tests=9,
        )
        assert verdict.passed, (
            f"reproduce with: pytest --repro-seed {repro_seed}\n"
            + verdict.describe()
        )

    def test_invariant_checker_catches_sloppy_drop(self, verify_graph):
        # The same mutation without covering its tracks (has_probs still
        # True) is caught structurally, at the offending pass, by
        # PassManager(debug=True) -- before a single sample is drawn.
        frontiers = np.arange(12)
        from repro.ir.trace import trace

        ir, _ = trace(
            skewed_layer, verify_graph, frontiers, constants={"K": 2}
        )
        outer = self

        class SloppyProbsDrop(Pass):
            name = "sloppy_probs_drop"

            def run(self, ir):
                outer._drop_probs(ir, clear_flag=False)
                return True

        with pytest.raises(InvariantError, match=r"\[sloppy_probs_drop\]"):
            PassManager([SloppyProbsDrop()], debug=True).run(ir)


class TestVerifyAlgorithmApi:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(GSamplerError, match="no verification spec"):
            verify_algorithm("pagerank-from-the-future", trials=5)

    def test_report_shape(self, repro_seed):
        report = verify_algorithm(
            "graphsage", trials=20, seed=repro_seed, superbatch_batches=None
        )
        assert report.num_tests == 8  # superbatch variant disabled
        assert [v.name for v in report.variants] == [
            c.label() for c in OptimizationConfig.all_combinations()
        ]
        assert report.failures() == [
            v for v in report.variants if not v.passed
        ]
        assert "graphsage" in report.summary()


class TestVerifyCli:
    def test_verify_subcommand_passes(self, capsys):
        assert cli.main(["verify", "graphsage", "--trials", "25"]) == 0
        out = capsys.readouterr().out
        assert "C1D1B1" in out
        assert "superbatch" in out
        assert "verification PASSED" in out

    def test_verify_subcommand_no_superbatch(self, capsys):
        code = cli.main(
            ["verify", "vrgcn", "--trials", "25", "--superbatch-batches", "0"]
        )
        assert code == 0
        assert "superbatch" not in capsys.readouterr().out
