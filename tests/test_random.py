"""Tests for the sampling RNG utilities: races, alias tables, segments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random import (
    AliasTable,
    exponential_race_keys,
    new_rng,
    segmented_race_select,
    segmented_uniform_with_replacement,
    weighted_choice_with_replacement,
    weighted_choice_without_replacement,
)
from repro.errors import ShapeError


class TestExponentialRace:
    def test_zero_weight_never_wins(self):
        rng = new_rng(0)
        weights = np.array([1.0, 0.0, 2.0])
        for _ in range(50):
            keys = exponential_race_keys(weights, rng)
            assert keys[1] == np.inf

    def test_bias_drives_selection_frequency(self):
        rng = new_rng(1)
        weights = np.array([10.0, 1.0])
        wins = sum(
            int(np.argmin(exponential_race_keys(weights, rng)) == 0)
            for _ in range(2000)
        )
        # P(item0 first) = 10/11.
        assert 0.85 < wins / 2000 < 0.97


class TestWeightedChoice:
    def test_without_replacement_unique(self):
        rng = new_rng(2)
        idx = weighted_choice_without_replacement(np.ones(20), 8, rng)
        assert len(idx) == 8
        assert len(np.unique(idx)) == 8

    def test_without_replacement_short_population(self):
        rng = new_rng(3)
        idx = weighted_choice_without_replacement(
            np.array([1.0, 0.0, 2.0]), 5, rng
        )
        assert set(idx) == {0, 2}

    def test_with_replacement_distribution(self):
        rng = new_rng(4)
        idx = weighted_choice_with_replacement(np.array([3.0, 1.0]), 8000, rng)
        frac = (idx == 0).mean()
        assert 0.70 < frac < 0.80

    def test_with_replacement_empty_weights(self):
        rng = new_rng(5)
        assert len(weighted_choice_with_replacement(np.zeros(3), 5, rng)) == 0


class TestAliasTable:
    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            AliasTable.build(np.array([]))

    def test_distribution_matches_weights(self):
        rng = new_rng(6)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        table = AliasTable.build(weights)
        draws = table.sample(40_000, rng)
        counts = np.bincount(draws, minlength=4) / 40_000
        np.testing.assert_allclose(counts, weights / weights.sum(), atol=0.02)

    def test_degenerate_uniform(self):
        rng = new_rng(7)
        table = AliasTable.build(np.zeros(3))
        draws = table.sample(3000, rng)
        counts = np.bincount(draws, minlength=3) / 3000
        np.testing.assert_allclose(counts, [1 / 3] * 3, atol=0.05)


class TestSegmentedUniform:
    def test_offsets_within_segments(self):
        rng = new_rng(8)
        lengths = np.array([3, 0, 7, 1])
        seg, off = segmented_uniform_with_replacement(lengths, 5, rng)
        assert set(np.unique(seg)) <= {0, 2, 3}
        assert np.all(off < lengths[seg])
        assert np.all(off >= 0)

    def test_counts_per_segment(self):
        rng = new_rng(9)
        lengths = np.array([2, 5])
        seg, _ = segmented_uniform_with_replacement(lengths, 4, rng)
        counts = np.bincount(seg, minlength=2)
        np.testing.assert_array_equal(counts, [4, 4])


class TestSegmentedRaceSelect:
    def test_selects_k_smallest_per_segment(self):
        keys = np.array([0.5, 0.1, 0.9, 0.3, 0.2, 0.8])
        indptr = np.array([0, 3, 6])
        picks = segmented_race_select(keys, indptr, 2)
        assert sorted(picks[:2]) == [0, 1]
        assert sorted(picks[2:]) == [3, 4]

    def test_infinite_keys_excluded(self):
        keys = np.array([np.inf, 0.1, np.inf])
        indptr = np.array([0, 3])
        picks = segmented_race_select(keys, indptr, 3)
        np.testing.assert_array_equal(picks, [1])

    def test_per_segment_k(self):
        keys = np.linspace(0, 1, 6)
        indptr = np.array([0, 3, 6])
        picks = segmented_race_select(keys, indptr, np.array([1, 2]))
        assert len(picks) == 3

    def test_key_length_checked(self):
        with pytest.raises(ShapeError):
            segmented_race_select(np.ones(3), np.array([0, 2]), 1)

    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=10),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_picks_grouped_and_bounded(self, seg_lengths, k, seed):
        rng = np.random.default_rng(seed)
        lengths = np.array(seg_lengths, dtype=np.int64)
        indptr = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        keys = rng.random(int(indptr[-1]))
        picks = segmented_race_select(keys, indptr, k)
        # Every pick belongs to exactly one segment, each segment yields
        # at most min(k, length) picks, with no duplicates.
        seg_of = np.searchsorted(indptr, picks, side="right") - 1
        assert len(np.unique(picks)) == len(picks)
        for s in range(len(lengths)):
            assert (seg_of == s).sum() == min(k, lengths[s])
