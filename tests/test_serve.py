"""Online serving subsystem: workload, batcher, admission, determinism.

The contracts under test:

* workloads are bit-identical under equal specs, arrival processes are
  ordered and rate-plausible, seed sets are skewed toward hot nodes;
* the dynamic batcher respects ``max_batch``, fires at ``max_wait``, and
  never starts a request's service before it arrived (causality);
* admission control sheds only above capacity; the SLO ladder engages
  under overload and degraded service is cheaper;
* two full serve sessions with one seed produce identical request logs
  and latency percentiles (the determinism guard);
* acceptance: batched throughput >= 2x the batch-size-1 configuration,
  and admission control meets a p99 SLO at an arrival rate where the
  uncontrolled configuration breaches it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.device import V100
from repro.errors import ServeError
from repro.serve import (
    Request,
    ServePolicy,
    ServeSimulator,
    WorkloadSpec,
    arrival_times,
    degraded_kwargs,
    generate_workload,
    rank_probabilities,
    run_serve_session,
    summarize,
)
from repro.serve.metrics import RequestLog


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


# ----------------------------------------------------------------------
# Workload generation
# ----------------------------------------------------------------------
class TestWorkload:
    def test_same_spec_same_stream(self):
        spec = WorkloadSpec(num_requests=64, arrival_rate=1000.0, seed=7)
        a = generate_workload(spec, num_nodes=500)
        b = generate_workload(spec, num_nodes=500)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.seeds, y.seeds)

    def test_arrivals_sorted_and_rate_plausible(self):
        from repro.core import new_rng

        spec = WorkloadSpec(num_requests=2000, arrival_rate=1000.0)
        times = arrival_times(spec, new_rng(0))
        assert np.all(np.diff(times) > 0)
        # Mean inter-arrival within 10% of 1/rate at n=2000.
        mean = float(np.diff(times).mean())
        assert 0.9e-3 < mean < 1.1e-3

    @pytest.mark.parametrize("process", ["bursty", "diurnal"])
    def test_modulated_processes_generate(self, process):
        from repro.core import new_rng

        spec = WorkloadSpec(
            num_requests=500, arrival_rate=1000.0, process=process
        )
        times = arrival_times(spec, new_rng(1))
        assert len(times) == 500
        assert np.all(np.diff(times) > 0)

    def test_bursty_is_burstier_than_poisson(self):
        from repro.core import new_rng

        base = WorkloadSpec(num_requests=2000, arrival_rate=1000.0)
        bursty = WorkloadSpec(
            num_requests=2000,
            arrival_rate=1000.0,
            process="bursty",
            burst_factor=8.0,
        )
        cv = lambda t: np.diff(t).std() / np.diff(t).mean()  # noqa: E731
        assert cv(arrival_times(bursty, new_rng(0))) > cv(
            arrival_times(base, new_rng(0))
        )

    def test_skew_prefers_hot_nodes(self):
        hotness = np.arange(100, dtype=np.float64)  # node 99 hottest
        spec = WorkloadSpec(
            num_requests=200, arrival_rate=1000.0, seeds_per_request=4,
            skew=1.5, seed=3,
        )
        requests = generate_workload(spec, num_nodes=100, hotness=hotness)
        seeds = np.concatenate([r.seeds for r in requests])
        hot_share = np.mean(seeds >= 80)  # top-20% nodes by hotness
        assert hot_share > 0.5

    def test_rank_probabilities_normalized_and_monotone(self):
        p = rank_probabilities(50, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) < 0)
        uniform = rank_probabilities(50, 0.0)
        np.testing.assert_allclose(uniform, 1.0 / 50)

    def test_spec_validation(self):
        with pytest.raises(ServeError):
            WorkloadSpec(num_requests=0)
        with pytest.raises(ServeError):
            WorkloadSpec(arrival_rate=-1.0)
        with pytest.raises(ServeError):
            WorkloadSpec(process="lunar")
        with pytest.raises(ServeError):
            WorkloadSpec(burst_factor=0.5)
        with pytest.raises(ServeError):
            generate_workload(
                WorkloadSpec(seeds_per_request=64), num_nodes=32
            )
        with pytest.raises(ServeError):
            WorkloadSpec(task="lunar")

    def test_seed_payload_validation(self):
        from repro.serve.workload import as_seed_units

        good = np.array([3, 1, 4], dtype=np.int64)
        assert as_seed_units(good) is good
        with pytest.raises(ServeError):
            as_seed_units(np.array([], dtype=np.int64))  # empty
        with pytest.raises(ServeError):
            as_seed_units(np.array([[1, 2]], dtype=np.int64))  # 2-D
        with pytest.raises(ServeError):
            as_seed_units(np.array([1, 2], dtype=np.int32))  # wrong dtype

    def test_single_node_graph(self):
        spec = WorkloadSpec(
            num_requests=8, arrival_rate=1000.0, seeds_per_request=1
        )
        requests = generate_workload(spec, num_nodes=1)
        for r in requests:
            np.testing.assert_array_equal(r.seeds, [0])

    def test_max_seeds_equal_to_min_is_valid_and_homogeneous(self):
        spec = WorkloadSpec(
            num_requests=32, arrival_rate=1000.0, seeds_per_request=4,
            max_seeds_per_request=4,
        )
        requests = generate_workload(spec, num_nodes=100)
        assert {len(r.seeds) for r in requests} == {4}

    def test_zero_skew_workload_is_uniformish(self):
        spec = WorkloadSpec(
            num_requests=400, arrival_rate=1000.0, seeds_per_request=4,
            skew=0.0, seed=5,
        )
        requests = generate_workload(spec, num_nodes=100)
        seeds = np.concatenate([r.seeds for r in requests])
        # Uniform draws put ~20% of mass in any 20-id band.
        hot_share = np.mean(seeds >= 80)
        assert 0.1 < hot_share < 0.3


# ----------------------------------------------------------------------
# Link-prediction workloads
# ----------------------------------------------------------------------
class TestLinkpredWorkload:
    def _edges(self, pd):
        from repro.tasks import edge_endpoints_of

        return edge_endpoints_of(pd.graph)

    def test_requires_edges(self):
        spec = WorkloadSpec(num_requests=4, task="linkpred")
        with pytest.raises(ServeError):
            generate_workload(spec, num_nodes=100)

    def test_pair_payload_contract(self, pd):
        from repro.tasks import edge_keys

        src, dst = self._edges(pd)
        live = np.sort(edge_keys(src, dst, pd.num_nodes))
        spec = WorkloadSpec(
            num_requests=32, arrival_rate=1000.0, seeds_per_request=4,
            task="linkpred", seed=11,
        )
        requests = generate_workload(
            spec, num_nodes=pd.num_nodes, edges=(src, dst)
        )
        for r in requests:
            assert r.seeds.dtype == np.int64
            assert len(r.seeds) == 16  # 4 pos + 4 neg pairs, flattened
            pairs = r.pairs
            assert pairs.shape == (8, 2)
            keys = edge_keys(pairs[:, 0], pairs[:, 1], pd.num_nodes)
            idx = np.minimum(np.searchsorted(live, keys), len(live) - 1)
            is_live = live[idx] == keys
            # First half positive (live edges), second half forged
            # non-edges — the replica-side compaction relies on this.
            assert is_live[:4].all()
            assert not is_live[4:].any()

    def test_same_spec_same_pair_stream(self, pd):
        src, dst = self._edges(pd)
        spec = WorkloadSpec(
            num_requests=16, arrival_rate=1000.0, task="linkpred", seed=2
        )
        a = generate_workload(spec, num_nodes=pd.num_nodes, edges=(src, dst))
        b = generate_workload(spec, num_nodes=pd.num_nodes, edges=(src, dst))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.seeds, y.seeds)

    def test_cluster_session_deterministic_and_reports_pairs(self, pd):
        from repro.serve import run_cluster_session

        def run():
            _, report = run_cluster_session(
                pd,
                device=V100,
                spec=WorkloadSpec(
                    num_requests=48, arrival_rate=20000.0, task="linkpred",
                    seed=3,
                ),
                task="linkpred",
                seed=3,
            )
            return report

        a, b = run(), run()
        assert a.fingerprint() == b.fingerprint()
        assert a.task == "linkpred"
        assert a.pairs_served == 48 * 8 * 2
        assert a.compaction_saved_rows > 0
        metrics = a.to_metrics()
        assert metrics["pairs_served"] == float(a.pairs_served)

    def test_node_task_metrics_schema_unchanged(self, pd):
        from repro.serve import run_cluster_session

        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(num_requests=32, arrival_rate=20000.0),
            seed=0,
        )
        assert report.task == "node"
        metrics = report.to_metrics()
        # Pair-task keys must never leak into the committed node lanes.
        assert "pairs_served" not in metrics
        assert "compaction_saved_rows" not in metrics


# ----------------------------------------------------------------------
# Dynamic batcher + admission (stubbed latencies via tiny real sessions)
# ----------------------------------------------------------------------
def _manual_requests(arrivals, seeds_per=4, num_nodes=100):
    rng = np.random.default_rng(0)
    return [
        Request(
            rid=i,
            arrival=float(t),
            seeds=np.sort(rng.choice(num_nodes, seeds_per, replace=False)),
        )
        for i, t in enumerate(arrivals)
    ]


class TestBatcher:
    def _simulator(self, pd, policy):
        return ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.0, seed=0
        )

    def test_max_batch_respected(self, pd):
        sim = self._simulator(
            pd, ServePolicy(max_batch=3, max_wait=1.0, queue_capacity=None)
        )
        # All 7 requests arrive (almost) together: batches of 3, 3, 1.
        report = sim.run(_manual_requests([0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]))
        assert report.batch_histogram == {1: 1, 3: 2}
        assert all(log.batch_size <= 3 for log in report.logs)

    def test_max_wait_fires_partial_batch(self, pd):
        sim = self._simulator(
            pd, ServePolicy(max_batch=8, max_wait=1e-3, queue_capacity=None)
        )
        # A lone request: the batch can never fill, so it fires exactly
        # at arrival + max_wait.
        report = sim.run(_manual_requests([1e-3]))
        (log,) = [l for l in report.logs if l.completed]
        assert log.start == pytest.approx(2e-3)
        assert log.batch_size == 1

    def test_full_batch_fires_without_waiting(self, pd):
        sim = self._simulator(
            pd, ServePolicy(max_batch=2, max_wait=1.0, queue_capacity=None)
        )
        report = sim.run(_manual_requests([0.0, 1e-5]))
        first = min(
            (l for l in report.logs if l.completed), key=lambda l: l.rid
        )
        # Fires when the second member lands, not after the 1s timeout.
        assert first.start == pytest.approx(1e-5)

    def test_causality_no_negative_queue_time(self, pd):
        sim = self._simulator(
            pd, ServePolicy(max_batch=4, max_wait=5e-3, queue_capacity=None)
        )
        arrivals = np.sort(np.random.default_rng(5).uniform(0, 3e-3, 64))
        report = sim.run(_manual_requests(list(arrivals)))
        for log in report.logs:
            if log.completed:
                assert log.start >= log.arrival - 1e-15
                assert log.completion > log.start

    def test_batches_serialize_on_sample_queue(self, pd):
        sim = self._simulator(
            pd, ServePolicy(max_batch=2, max_wait=1e-6, queue_capacity=None)
        )
        report = sim.run(_manual_requests([0.0] * 8))
        starts = sorted(
            {l.start for l in report.logs if l.completed}
        )
        # Four batches, each starting no earlier than the previous
        # batch's sampling finished: strictly increasing starts.
        assert len(starts) == 4
        assert all(b > a for a, b in zip(starts, starts[1:]))


class TestAdmission:
    def test_sheds_above_capacity(self, pd):
        policy = ServePolicy(max_batch=2, max_wait=1e-3, queue_capacity=2)
        sim = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.0, seed=0
        )
        # 32 simultaneous arrivals against a 2-deep queue: almost all shed.
        report = sim.run(_manual_requests([0.0] * 32))
        assert report.shed > 0
        assert report.completed + report.shed == 32
        shed_logs = [l for l in report.logs if not l.admitted]
        assert all(np.isnan(l.completion) for l in shed_logs)

    def test_unbounded_queue_never_sheds(self, pd):
        policy = ServePolicy(max_batch=2, max_wait=1e-3, queue_capacity=None)
        sim = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.0, seed=0
        )
        report = sim.run(_manual_requests([0.0] * 32))
        assert report.shed == 0
        assert report.completed == 32

    def test_policy_presets(self):
        none = ServePolicy.preset("none", slo=1e-3)
        assert none.queue_capacity is None and none.slo is None
        full = ServePolicy.preset("full", queue_capacity=16, slo=1e-3)
        assert full.queue_capacity == 16 and full.slo == 1e-3
        with pytest.raises(ServeError):
            ServePolicy.preset("degrade")  # needs an SLO
        with pytest.raises(ServeError):
            ServePolicy.preset("bogus", slo=1e-3)

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            ServePolicy(max_batch=0)
        with pytest.raises(ServeError):
            ServePolicy(max_wait=-1.0)
        with pytest.raises(ServeError):
            ServePolicy(queue_capacity=0)
        with pytest.raises(ServeError):
            ServePolicy(slo=0.0)
        with pytest.raises(ServeError):
            ServePolicy(recover_margin=1.5)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------
class TestDegradation:
    def test_degraded_kwargs_halve_fidelity(self):
        assert degraded_kwargs({"fanouts": (5, 10)}) == {"fanouts": (2, 5)}
        assert degraded_kwargs({"fanouts": (1,)}) == {"fanouts": (1,)}
        assert degraded_kwargs({"layer_width": 256, "num_layers": 2}) == {
            "layer_width": 128,
            "num_layers": 2,
        }

    def test_ladder_engages_under_overload(self, pd):
        spec = WorkloadSpec(
            num_requests=512, arrival_rate=400_000.0, seed=0
        )
        policy = ServePolicy(
            max_batch=8,
            max_wait=5e-4,
            queue_capacity=None,
            slo=5e-4,
            min_samples=16,
        )
        _, report = run_serve_session(
            pd, device=V100, spec=spec, policy=policy, seed=0
        )
        assert report.degraded > 0
        levels = {log.level for log in report.logs if log.completed}
        assert max(levels) >= 1

    def test_degraded_service_is_cheaper(self, pd):
        # Same stream served entirely at level 0 vs pinned at level 2:
        # the degraded run must finish sooner (smaller fanout, no PCIe).
        spec = WorkloadSpec(num_requests=128, arrival_rate=1e6, seed=0)
        policy = ServePolicy(max_batch=8, max_wait=1e-4, queue_capacity=None)
        sim_full = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.1, seed=0
        )
        requests = sim_full.build_workload(spec)
        full = sim_full.run(requests)

        sim_deg = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.1, seed=0
        )
        sim_deg._level = 2  # pin the ladder at its lowest fidelity
        sim_deg.policy = policy  # no SLO: the level never moves
        degraded = sim_deg.run(requests)
        assert degraded.makespan < full.makespan
        assert all(
            log.level == 2 for log in degraded.logs if log.completed
        )

    def test_cached_only_fetch_skips_pcie(self, pd):
        policy = ServePolicy(max_batch=4, max_wait=1e-4, queue_capacity=None)
        sim = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.2, seed=0
        )
        sim._level = 2
        sim.run(_manual_requests([0.0] * 4, num_nodes=pd.num_nodes))
        fetches = [
            l for l in sim.io_ctx.launches if l.name == "serve_feature_fetch"
        ]
        assert fetches and all(l.uva_bytes == 0.0 for l in fetches)

    def test_normal_fetch_charges_misses_over_pcie(self, pd):
        policy = ServePolicy(max_batch=4, max_wait=1e-4, queue_capacity=None)
        sim = ServeSimulator(
            pd, device=V100, policy=policy, cache_ratio=0.2, seed=0
        )
        sim.run(_manual_requests([0.0] * 4, num_nodes=pd.num_nodes))
        fetches = [
            l for l in sim.io_ctx.launches if l.name == "serve_feature_fetch"
        ]
        assert fetches and all(l.uva_bytes > 0.0 for l in fetches)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_summarize_empty(self):
        report = summarize([])
        assert report.completed == 0
        assert report.p99_ms == 0.0
        assert report.throughput_rps == 0.0
        assert report.batch_histogram == {}

    def test_shed_requests_excluded_from_percentiles(self):
        logs = [
            RequestLog(rid=0, arrival=0.0, admitted=True, start=0.0,
                       completion=1.0, batch_id=0, batch_size=1),
            RequestLog(rid=1, arrival=0.0, admitted=False),
        ]
        report = summarize(logs)
        assert report.completed == 1
        assert report.shed == 1
        assert report.p50_ms == pytest.approx(1000.0)

    def test_histogram_counts_batches_not_requests(self):
        logs = [
            RequestLog(rid=i, arrival=0.0, admitted=True, start=0.0,
                       completion=1.0, batch_id=0, batch_size=3)
            for i in range(3)
        ] + [
            RequestLog(rid=3, arrival=0.0, admitted=True, start=1.0,
                       completion=2.0, batch_id=1, batch_size=1)
        ]
        report = summarize(logs)
        assert report.batch_histogram == {1: 1, 3: 1}
        assert report.mean_batch == pytest.approx(2.0)

    def test_unknown_algorithm_rejected(self, pd):
        with pytest.raises(ServeError):
            ServeSimulator(pd, algorithm="deepwalk", device=V100)


# ----------------------------------------------------------------------
# Determinism guard (satellite): bit-identical logs and percentiles
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("process", ["poisson", "bursty"])
    def test_two_runs_bit_identical(self, pd, process):
        spec = WorkloadSpec(
            num_requests=192,
            arrival_rate=100_000.0,
            process=process,
            seed=11,
        )
        policy = ServePolicy(
            max_batch=8, max_wait=5e-4, queue_capacity=32, slo=2e-3
        )
        _, a = run_serve_session(
            pd, device=V100, spec=spec, policy=policy, seed=11
        )
        _, b = run_serve_session(
            pd, device=V100, spec=spec, policy=policy, seed=11
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.to_metrics() == b.to_metrics()

    def test_different_seed_differs(self, pd):
        spec_a = WorkloadSpec(num_requests=96, arrival_rate=1e5, seed=1)
        spec_b = WorkloadSpec(num_requests=96, arrival_rate=1e5, seed=2)
        _, a = run_serve_session(pd, device=V100, spec=spec_a, seed=1)
        _, b = run_serve_session(pd, device=V100, spec=spec_b, seed=2)
        assert a.fingerprint() != b.fingerprint()


# ----------------------------------------------------------------------
# Acceptance criteria
# ----------------------------------------------------------------------
class TestAcceptance:
    def test_batching_doubles_throughput(self, pd):
        spec = WorkloadSpec(num_requests=256, arrival_rate=500_000.0, seed=0)
        results = {}
        for max_batch in (1, 8):
            policy = ServePolicy(
                max_batch=max_batch, max_wait=5e-4, queue_capacity=None
            )
            _, report = run_serve_session(
                pd, device=V100, spec=spec, policy=policy, seed=0
            )
            results[max_batch] = report.throughput_rps
        assert results[8] >= 2.0 * results[1]

    def test_admission_control_meets_slo_where_none_breaches(self, pd):
        spec = WorkloadSpec(
            num_requests=1024, arrival_rate=400_000.0, seed=0
        )
        slo = 15e-4  # 1.5 simulated ms
        _, uncontrolled = run_serve_session(
            pd,
            device=V100,
            spec=spec,
            policy=ServePolicy(
                max_batch=8, max_wait=5e-4, queue_capacity=None, slo=None
            ),
            seed=0,
        )
        _, controlled = run_serve_session(
            pd,
            device=V100,
            spec=spec,
            policy=ServePolicy(
                max_batch=8, max_wait=5e-4, queue_capacity=24, slo=slo
            ),
            seed=0,
        )
        assert uncontrolled.p99_ms > slo * 1e3
        assert controlled.p99_ms <= slo * 1e3
        # Control trades availability for latency, visibly.
        assert controlled.shed > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_serve_command(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--requests", "96",
                "--scale", "0.1",
                "--out-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 latency (ms)" in out
        assert "throughput" in out
        assert (tmp_path / "BENCH_serve_graphsage_pd_v100.json").exists()
        assert (tmp_path / "trace_serve_graphsage_pd_v100.json").exists()

    def test_serve_regression_exit_code(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.profile import bench_path, load_trajectory

        args = [
            "serve",
            "--requests", "64",
            "--scale", "0.1",
            "--out-dir", str(tmp_path),
            "--fail-on-regression",
        ]
        assert main(args) == 0
        # Poison the recorded p99 so the next identical run "regresses".
        path = bench_path(tmp_path, "serve_graphsage_pd_v100")
        data = load_trajectory(path)
        data["records"][-1]["metrics"]["p99_ms"] *= 0.5
        path.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(args) == 3
        assert "p99_ms" in capsys.readouterr().out

    def test_serve_bad_policy_config(self, capsys):
        from repro.cli import main

        code = main(["serve", "--requests", "8", "--max-batch", "0"])
        assert code == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Batch-composition fingerprint pins (PR 6)
# ----------------------------------------------------------------------
# The digests pin the exact request-log + percentile fingerprint of each
# composer on a fixed workload.  The FIFO digest predates the composer
# refactor (it is the PR 5 single-replica pin): the pluggable-composer
# batcher must reproduce the legacy batcher bit-for-bit.  The binned pin
# uses a heterogeneous seed-count stream — on a uniform stream every
# request lands in one bin and binned degenerates to FIFO.
PIN_SPEC = WorkloadSpec(num_requests=192, arrival_rate=100_000.0, seed=11)
PIN_HET_SPEC = WorkloadSpec(
    num_requests=192,
    arrival_rate=100_000.0,
    seeds_per_request=4,
    max_seeds_per_request=32,
    seed=11,
)
PIN_POLICY = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32, slo=2e-3)
FIFO_PIN = "a026a063925fbfbc035081d78798ab5fe441e64d7426000801a66ad8d9cc6c85"
FIFO_HET_PIN = "501ad9a23f340338e2e394c7f393ea68d2b73509d22edc447756a0d26dc8d129"
BINNED_PIN = "19dc9c7149fbed1b14e38e2cdc4e3a18edf99bef559e4e08f553688f05349092"
SUPERBATCH_PIN = "4ae6250e329cd61d90f8846a77e0d56052599c45204edcb6b1c95112487919cb"


def _digest(report):
    import hashlib

    return hashlib.sha256(repr(report.fingerprint()).encode()).hexdigest()


class TestComposerPins:
    def test_fifo_matches_pre_refactor_pin(self, pd):
        _, report = run_serve_session(
            pd,
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            composer="fifo",
            seed=11,
        )
        assert report.composer == "fifo"
        assert _digest(report) == FIFO_PIN

    def test_default_composer_is_fifo_and_pinned(self, pd):
        # Callers that never heard of composers get the legacy behavior.
        _, report = run_serve_session(
            pd, device=V100, spec=PIN_SPEC, policy=PIN_POLICY, seed=11
        )
        assert _digest(report) == FIFO_PIN

    def test_binned_pin_on_heterogeneous_stream(self, pd):
        _, report = run_serve_session(
            pd,
            device=V100,
            spec=PIN_HET_SPEC,
            policy=PIN_POLICY,
            composer="binned",
            seed=11,
        )
        assert report.composer == "binned"
        assert _digest(report) == BINNED_PIN

    def test_superbatch_pin(self, pd):
        _, report = run_serve_session(
            pd,
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            composer="superbatch",
            seed=11,
        )
        assert report.composer == "superbatch"
        assert _digest(report) == SUPERBATCH_PIN


# ----------------------------------------------------------------------
# Composer-specific serving behavior
# ----------------------------------------------------------------------
class TestComposedServing:
    def test_binned_reduces_padding_vs_fifo(self, pd):
        """On a heterogeneous stream, grouping by seed-count bin pads
        fewer slots than FIFO's arbitrary arrival-order batches."""
        pads = {}
        for composer in ("fifo", "binned"):
            _, report = run_serve_session(
                pd,
                device=V100,
                spec=PIN_HET_SPEC,
                policy=PIN_POLICY,
                composer=composer,
                seed=11,
            )
            assert report.completed + report.shed == PIN_HET_SPEC.num_requests
            pads[composer] = report.padding_seeds
        assert pads["binned"] < pads["fifo"]

    def test_superbatch_counters_and_metrics(self, pd):
        _, report = run_serve_session(
            pd,
            device=V100,
            spec=PIN_SPEC,
            policy=PIN_POLICY,
            composer="superbatch",
            seed=11,
        )
        # Every completed request went through the fused path.
        assert report.superbatch_requests == report.completed
        assert report.superbatch_batches > 0
        assert report.superbatch_requests >= report.superbatch_batches
        # The fused fetch deduplicates overlapping frontiers.
        assert report.dedup_rows > 0
        metrics = report.to_metrics()
        assert metrics["superbatch_requests"] == report.superbatch_requests
        assert metrics["dedup_rows"] == report.dedup_rows
        assert metrics["mean_fused"] == pytest.approx(
            report.superbatch_requests / report.superbatch_batches
        )

    def test_fifo_metrics_unchanged_by_refactor(self, pd):
        """FIFO reports keep the exact pre-refactor metric keys — the
        trajectory lanes committed in earlier PRs must not churn."""
        _, report = run_serve_session(
            pd, device=V100, spec=PIN_SPEC, policy=PIN_POLICY, seed=11
        )
        metrics = report.to_metrics()
        for key in ("padding_seeds", "dedup_rows", "superbatch_requests",
                    "mean_fused"):
            assert key not in metrics

    def test_superbatch_wins_under_overload(self, pd):
        """The amortization claim at the knee: one fused launch sequence
        per window beats per-batch launches once the queue saturates."""
        spec = WorkloadSpec(
            num_requests=256, arrival_rate=400_000.0, seed=0
        )
        policy = ServePolicy(
            max_batch=8, max_wait=5e-4, queue_capacity=64, slo=None
        )
        results = {}
        for composer in ("fifo", "superbatch"):
            _, report = run_serve_session(
                pd,
                device=V100,
                spec=spec,
                policy=policy,
                composer=composer,
                seed=0,
            )
            results[composer] = report
        fifo, sb = results["fifo"], results["superbatch"]
        assert sb.throughput_rps >= 1.5 * fifo.throughput_rps
        assert sb.p99_ms <= fifo.p99_ms

    def test_superbatch_determinism(self, pd):
        runs = [
            run_serve_session(
                pd,
                device=V100,
                spec=PIN_SPEC,
                policy=PIN_POLICY,
                composer="superbatch",
                seed=11,
            )[1]
            for _ in range(2)
        ]
        assert runs[0].fingerprint() == runs[1].fingerprint()
        assert runs[0].to_metrics() == runs[1].to_metrics()

    def test_superbatch_window_helper(self, pd):
        sim = ServeSimulator(
            pd, device=V100, policy=PIN_POLICY, seed=0, composer="superbatch"
        )
        requests = generate_workload(
            WorkloadSpec(num_requests=16, arrival_rate=1e5, seed=0),
            num_nodes=pd.num_nodes,
        )
        window = sim.superbatch_window(requests)
        assert window >= 1
        with pytest.raises(ServeError):
            sim.superbatch_window([])

    def test_request_log_seeds_outside_fingerprint(self):
        """The new per-request seed-count field is observability only:
        it must not perturb the fingerprint key."""
        log = RequestLog(rid=0, arrival=0.0, admitted=True, seeds=17)
        assert 17 not in log.key()


# ----------------------------------------------------------------------
# Serving-loop regressions (the PR 7 bugfix sweep)
# ----------------------------------------------------------------------
class TestServeLoopRegressions:
    def test_in_flight_stays_bounded_over_long_stream(self, pd):
        """``_in_flight`` once grew one entry per request for the whole
        session (pruned only when ``outstanding()`` happened to be
        called); it must stay bounded by concurrent in-service work."""
        spec = WorkloadSpec(num_requests=600, arrival_rate=150_000.0, seed=3)
        policy = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64)
        sim = ServeSimulator(pd, device=V100, policy=policy, seed=3)
        report = sim.run(sim.build_workload(spec))
        assert report.completed > 500
        # Never called outstanding(): the bound must come from the
        # completion-path prune alone.  Leak regression would leave
        # ~report.completed entries here.
        assert len(sim._in_flight) <= 64

    def test_superbatch_window_probes_both_pipelines(self, pd):
        """The fusion window must fit whichever pipeline the ladder
        executes — the most conservative answer over full-fidelity *and*
        degraded compiled layers, not just ``_pipelines[0]``."""
        sim = ServeSimulator(
            pd, device=V100, policy=PIN_POLICY, seed=0, composer="superbatch"
        )
        requests = generate_workload(
            WorkloadSpec(num_requests=16, arrival_rate=1e5, seed=0),
            num_nodes=pd.num_nodes,
        )
        budget = int(V100.memory_capacity * 0.25)
        seed_sets = [r.seeds for r in requests]
        per_pipeline = [
            min(
                sampler.choose_superbatch_size(
                    seed_sets, memory_budget=budget, max_size=64
                )
                for sampler in pipeline.samplers
            )
            for pipeline in sim._pipelines
        ]
        window = sim.superbatch_window(requests)
        assert window == min(per_pipeline)
        # And in particular no larger than what the degraded pipeline
        # admits (the pre-fix code ignored it entirely).
        assert window <= per_pipeline[1]

    def _ladder_transitions(self, sim, latencies):
        """Feed synthetic completions; return the push index of every
        ladder transition."""
        transitions = []
        for i, latency in enumerate(latencies):
            before = sim._level
            sim._observe(latency)
            if sim._level != before:
                transitions.append(i)
        return transitions

    def test_ladder_waits_min_samples_per_level(self, pd):
        """A step overload must move the ladder one rung per
        ``min_samples`` completions, not cascade on stale samples."""
        policy = ServePolicy(
            max_batch=8,
            max_wait=5e-4,
            queue_capacity=None,
            slo=1e-3,
            min_samples=16,
        )
        sim = ServeSimulator(pd, device=V100, policy=policy, seed=0)
        # Step change: every completion suddenly breaches the SLO.
        transitions = self._ladder_transitions(sim, [5e-3] * 48)
        assert sim._level == 2
        assert len(transitions) == 2
        # Each rung waited a full window of post-transition samples.
        assert transitions[0] == 15
        assert transitions[1] - transitions[0] >= policy.min_samples

    def test_ladder_recovery_waits_min_samples_per_level(self, pd):
        policy = ServePolicy(
            max_batch=8,
            max_wait=5e-4,
            queue_capacity=None,
            slo=1e-3,
            min_samples=16,
        )
        sim = ServeSimulator(pd, device=V100, policy=policy, seed=0)
        sim._level = 2
        # Step recovery: latencies land well under recover_margin * slo.
        transitions = self._ladder_transitions(sim, [1e-4] * 48)
        assert sim._level == 0
        assert len(transitions) == 2
        assert transitions[1] - transitions[0] >= policy.min_samples

    def test_ladder_no_flapping_at_boundary(self, pd):
        """Latencies straddling the SLO must not toggle the ladder every
        sample: at most one transition per ``min_samples`` pushes."""
        policy = ServePolicy(
            max_batch=8,
            max_wait=5e-4,
            queue_capacity=None,
            slo=1e-3,
            min_samples=16,
        )
        sim = ServeSimulator(pd, device=V100, policy=policy, seed=0)
        # Alternate just-over / just-under the SLO for 160 completions.
        latencies = [1.05e-3 if i % 2 else 0.95e-3 for i in range(160)]
        transitions = self._ladder_transitions(sim, latencies)
        for a, b in zip(transitions, transitions[1:]):
            assert b - a >= policy.min_samples
