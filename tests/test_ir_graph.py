"""IR graph structure tests: construction, mutation, validation."""

from __future__ import annotations

import pytest

from repro.errors import PassError
from repro.ir.graph import DataFlowGraph


def build_chain() -> DataFlowGraph:
    ir = DataFlowGraph()
    a = ir.add_node("input_graph", (), {"name": "A"})
    b = ir.add_node("slice_cols", (a.node_id,))
    c = ir.add_node("map_scalar", (b.node_id,), {"op": "pow", "scalar": 2.0})
    ir.outputs = [c.node_id]
    return ir


class TestConstruction:
    def test_insertion_order_is_topological(self):
        ir = build_chain()
        ir.validate()
        ops = [n.op for n in ir.nodes()]
        assert ops == ["input_graph", "slice_cols", "map_scalar"]

    def test_unknown_input_rejected(self):
        ir = DataFlowGraph()
        with pytest.raises(PassError):
            ir.add_node("slice_cols", (99,))

    def test_input_ids_tracked(self):
        ir = build_chain()
        assert len(ir.input_ids) == 1

    def test_insert_before_orders_correctly(self):
        ir = build_chain()
        anchor = ir.nodes()[2].node_id
        node = ir.insert_before(anchor, "const", (), {"_value": 1})
        order = [n.node_id for n in ir.nodes()]
        assert order.index(node.node_id) == order.index(anchor) - 1
        ir.validate()


class TestMutation:
    def test_replace_all_uses(self):
        ir = build_chain()
        nodes = ir.nodes()
        replacement = ir.add_node("input_graph", (), {"name": "B"})
        ir.replace_all_uses(nodes[1].node_id, replacement.node_id)
        assert ir.node(nodes[2].node_id).inputs == (replacement.node_id,)
        assert ir.use_count(nodes[1].node_id) == 0

    def test_replace_updates_outputs(self):
        ir = build_chain()
        old_out = ir.outputs[0]
        new = ir.add_node("const", (), {"_value": 0})
        ir.replace_all_uses(old_out, new.node_id)
        assert ir.outputs == [new.node_id]

    def test_remove_with_users_rejected(self):
        ir = build_chain()
        with pytest.raises(PassError):
            ir.remove_node(ir.nodes()[0].node_id)

    def test_remove_output_rejected(self):
        ir = build_chain()
        with pytest.raises(PassError):
            ir.remove_node(ir.outputs[0])

    def test_validate_catches_use_before_def(self):
        ir = build_chain()
        first, second = ir.nodes()[0], ir.nodes()[1]
        # Manually corrupt ordering.
        first.inputs = (second.node_id,)
        with pytest.raises(PassError):
            ir.validate()

    def test_validate_catches_dangling_output(self):
        ir = build_chain()
        ir.outputs.append(4096)
        with pytest.raises(PassError, match="output 4096 does not exist"):
            ir.validate()

    def test_validate_catches_dangling_registered_input(self):
        ir = build_chain()
        ir.input_ids.append(4096)
        with pytest.raises(PassError, match="registered input 4096"):
            ir.validate()

    def test_validate_catches_key_disagreement(self):
        ir = build_chain()
        ir.nodes()[-1].node_id = 4096
        with pytest.raises(PassError, match="disagrees"):
            ir.validate()

    def test_positions_follow_insertion_order(self):
        ir = build_chain()
        positions = ir.positions()
        assert sorted(positions.values()) == list(range(len(ir)))
        assert [positions[n.node_id] for n in ir.nodes()] == list(
            range(len(ir))
        )


class TestClone:
    def test_clone_is_independent(self):
        ir = build_chain()
        clone = ir.clone()
        clone.node(clone.outputs[0]).attrs["scalar"] = 99
        assert ir.node(ir.outputs[0]).attrs["scalar"] == 2.0
        clone.add_node("const", (), {"_value": 5})
        assert len(clone) == len(ir) + 1

    def test_clone_preserves_layout_stamps(self):
        ir = build_chain()
        ir.nodes()[1].layout = "csr"
        ir.nodes()[1].compact_rows = True
        clone = ir.clone()
        assert clone.nodes()[1].layout == "csr"
        assert clone.nodes()[1].compact_rows

    def test_pretty_renders(self):
        text = build_chain().pretty()
        assert "slice_cols" in text and "outputs:" in text
