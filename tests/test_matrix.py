"""Tests for the Matrix class: every Table-4 operator plus id mapping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import Matrix, from_edges
from repro.errors import FormatError, ShapeError
from repro.sparse import COO

from tests.conftest import to_dense


class TestConstruction:
    def test_from_edges(self):
        a = from_edges([0, 1, 2], [1, 2, 0], 3, weights=[1.0, 2.0, 3.0])
        assert a.shape == (3, 3)
        assert a.nnz == 3
        assert a.is_base_graph
        dense = to_dense(a)
        assert dense[0, 1] == 1.0 and dense[2, 0] == 3.0

    def test_row_column_convention(self):
        # Edge u -> v lives at A[u, v]: column v holds v's in-edges.
        a = from_edges([5, 7], [1, 1], 10)
        col = a[:, np.array([1])]
        np.testing.assert_array_equal(np.sort(col.row()), [5, 7])

    def test_id_map_length_checked(self):
        coo = COO(rows=[0], cols=[0], values=None, shape=(2, 2))
        with pytest.raises(ShapeError):
            Matrix(coo, row_ids=np.array([1, 2, 3]))

    def test_layout_caching(self, small_graph):
        assert small_graph.available_layouts == ("csc",)
        small_graph.get("coo")
        assert "coo" in small_graph.available_layouts
        with pytest.raises(FormatError):
            small_graph.get("dense")


class TestExtract:
    def test_getitem_columns(self, small_graph):
        f = np.array([4, 9, 2])
        sub = small_graph[:, f]
        assert sub.shape == (200, 3)
        np.testing.assert_array_equal(sub.column(), f)
        np.testing.assert_allclose(
            to_dense(sub), to_dense(small_graph)[:, f], rtol=1e-6
        )

    def test_getitem_rows(self, small_graph):
        r = np.array([0, 100])
        sub = small_graph[r, :]
        assert sub.shape == (2, 200)
        np.testing.assert_allclose(
            to_dense(sub), to_dense(small_graph)[r, :], rtol=1e-6
        )

    def test_getitem_both(self, small_graph):
        nodes = np.array([1, 2, 3])
        sub = small_graph[nodes, nodes]
        np.testing.assert_allclose(
            to_dense(sub), to_dense(small_graph)[np.ix_(nodes, nodes)], rtol=1e-6
        )

    def test_full_slice_returns_self(self, small_graph):
        assert small_graph[:, :] is small_graph

    def test_nested_slicing_tracks_global_ids(self, small_graph):
        f1 = np.array([10, 20, 30])
        sub = small_graph[:, f1]
        sub2 = sub[:, np.array([2, 0])]
        np.testing.assert_array_equal(sub2.column(), [30, 10])

    def test_bad_key_rejected(self, small_graph):
        with pytest.raises(ShapeError):
            small_graph[np.array([0])]


class TestCompute:
    def test_scalar_arithmetic(self, small_graph):
        dense = to_dense(small_graph)
        mask = dense != 0
        np.testing.assert_allclose(
            to_dense(small_graph**2), np.where(mask, dense**2, 0), rtol=1e-5
        )
        np.testing.assert_allclose(
            to_dense(small_graph * 3), dense * 3, rtol=1e-5
        )
        np.testing.assert_allclose(
            to_dense((small_graph + 1)), np.where(mask, dense + 1, 0), rtol=1e-5
        )

    def test_matrix_combine(self, small_graph):
        out = small_graph * (small_graph * 2)
        np.testing.assert_allclose(
            to_dense(out), 2 * to_dense(small_graph) ** 2, rtol=1e-5
        )

    def test_reduce_axes(self, small_graph):
        dense = to_dense(small_graph)
        np.testing.assert_allclose(
            small_graph.sum(axis=0), dense.sum(axis=1), rtol=1e-4
        )
        np.testing.assert_allclose(
            small_graph.sum(axis=1), dense.sum(axis=0), rtol=1e-4
        )
        with pytest.raises(ShapeError):
            small_graph.sum(axis=2)

    def test_broadcast_div_normalizes_columns(self, small_graph):
        col_sums = small_graph.sum(axis=1)
        normalized = small_graph.div(col_sums, axis=1)
        np.testing.assert_allclose(
            normalized.sum(axis=1),
            np.where(col_sums > 0, 1.0, 0.0),
            atol=1e-5,
        )

    def test_matmul(self, small_graph, rng):
        d = rng.random((200, 8)).astype(np.float32)
        np.testing.assert_allclose(
            small_graph @ d, to_dense(small_graph) @ d, rtol=1e-3
        )

    def test_unary_chain(self, small_graph):
        out = small_graph.log().exp()
        np.testing.assert_allclose(
            to_dense(out), to_dense(small_graph), rtol=1e-4
        )

    def test_with_values(self, small_graph):
        ones = np.ones(small_graph.nnz, dtype=np.float32)
        out = small_graph.with_values(ones)
        assert out.nnz == small_graph.nnz
        np.testing.assert_array_equal(out.values, ones)
        with pytest.raises(ShapeError):
            small_graph.with_values(np.ones(3))


class TestSelectAndFinalize:
    def test_individual_sample_api(self, small_graph, rng):
        f = np.array([1, 2, 3, 4])
        sub = small_graph[:, f]
        sampled = sub.individual_sample(2, rng=rng)
        assert sampled.nnz <= 8
        np.testing.assert_array_equal(sampled.column(), f)

    def test_collective_sample_sets_row_ids(self, small_graph, rng):
        f = np.arange(20)
        sub = small_graph[:, f]
        sampled = sub.collective_sample(5, rng=rng)
        assert sampled.shape[0] == 5
        np.testing.assert_array_equal(sampled.row(), sampled.row_ids)

    def test_row_returns_occupied_globals(self, small_graph):
        f = np.array([7])
        sub = small_graph[:, f]
        expected = np.flatnonzero(to_dense(small_graph)[:, 7])
        np.testing.assert_array_equal(np.sort(sub.row()), expected)

    def test_compact_rows(self, small_graph):
        f = np.array([3, 8])
        sub = small_graph[:, f]
        compacted = sub.compact(axis=0)
        assert compacted.shape[0] == len(compacted.row_ids)
        assert compacted.nnz == sub.nnz
        np.testing.assert_array_equal(compacted.row(), np.sort(sub.row()))

    def test_to_coo_arrays_global_ids(self, small_graph, rng):
        f = np.array([11, 13])
        sub = small_graph[:, f].individual_sample(3, rng=rng)
        rows, cols, vals = sub.to_coo_arrays()
        assert set(cols) <= {11, 13}
        dense = to_dense(small_graph)
        for r, c, v in zip(rows, cols, vals):
            assert dense[r, c] == pytest.approx(float(v), rel=1e-5)
