"""Tracer tests: user programs become the expected IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.ir.trace import trace


def _ops(ir):
    return [n.op for n in ir.nodes()]


class TestTraceBasics:
    def test_graphsage_trace(self, small_graph):
        def layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            sample_A = sub_A.individual_sample(K)
            return sample_A, sample_A.row()

        ir, info = trace(layer, small_graph, np.arange(4), constants={"K": 3})
        assert _ops(ir) == [
            "input_graph",
            "input_tensor",
            "slice_cols",
            "individual_sample",
            "row",
        ]
        assert info["structure"] == ("leaf", "leaf")
        assert ir.node(ir.outputs[0]).op == "individual_sample"

    def test_constants_are_baked(self, small_graph):
        def layer(A, frontiers, K):
            s = A[:, frontiers].individual_sample(K)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 7})
        sample = next(n for n in ir.nodes() if n.op == "individual_sample")
        assert sample.attrs["k"] == 7

    def test_tensor_inputs_traced(self, small_graph):
        feats = np.random.rand(200, 8).astype(np.float32)

        def layer(A, frontiers, features):
            sub = A[:, frontiers]
            scores = features @ features[frontiers]
            return sub.collective_sample(3, scores.sum()), sub.row()

        ir, _ = trace(
            layer, small_graph, np.arange(4), tensors={"features": feats}
        )
        assert "t_matmul" in _ops(ir)
        assert "t_index" in _ops(ir)

    def test_meta_estimates_propagate(self, small_graph):
        def layer(A, frontiers, K):
            s = A[:, frontiers].individual_sample(K)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(10), constants={"K": 5})
        sample_meta = next(
            n for n in ir.nodes() if n.op == "individual_sample"
        ).attrs["_meta"]
        assert sample_meta.est_cols == 10.0
        assert sample_meta.est_nnz <= 50.0
        graph_meta = ir.nodes()[0].attrs["_meta"]
        assert graph_meta.is_base_graph

    def test_compute_ops_traced(self, small_graph):
        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            probs = (sub**2).sum(axis=0)
            s = sub.collective_sample(K, probs)
            s = s.div(probs[s.row()], axis=0)
            return s, s.row()

        ir, _ = trace(layer, small_graph, np.arange(4), constants={"K": 3})
        ops = _ops(ir)
        for expected in ("map_scalar", "reduce", "collective_sample",
                         "t_index", "map_broadcast"):
            assert expected in ops


class TestTraceErrors:
    def test_data_dependent_branch_rejected(self, small_graph):
        def layer(A, frontiers):
            s = (A[:, frontiers] ** 2).sum(axis=0)
            if s:  # boolean coercion of a traced value
                return A[:, frontiers], frontiers
            return A[:, frontiers], frontiers

        with pytest.raises(TraceError):
            trace(layer, small_graph, np.arange(4))

    def test_concrete_matrix_rejected(self, small_graph):
        def layer(A, frontiers):
            return A.individual_sample(1, probs=small_graph), frontiers

        with pytest.raises(TraceError):
            trace(layer, small_graph, np.arange(4))

    def test_non_proxy_return_rejected(self, small_graph):
        def layer(A, frontiers):
            return 42

        with pytest.raises(TraceError):
            trace(layer, small_graph, np.arange(4))
