"""CLI tests: commands produce the expected tables and exit codes."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "pd" in out and "fs" in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "ladies" in out and "graphsage" in out
        assert "labor" in out
        assert len(out.strip().splitlines()) == 16

    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        assert "skywalker" in capsys.readouterr().out


class TestSample:
    def test_sample_cell(self, capsys):
        code = main(
            [
                "sample",
                "--algorithm", "graphsage",
                "--dataset", "pd",
                "--scale", "0.1",
                "--max-batches", "2",
                "--batch-size", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch time (simulated ms)" in out
        assert "SM utilization" in out

    def test_unsupported_cell_exits_nonzero(self, capsys):
        code = main(
            [
                "sample",
                "--system", "gunrock",
                "--algorithm", "ladies",
                "--dataset", "pd",
                "--scale", "0.1",
            ]
        )
        assert code == 1
        assert "does not support" in capsys.readouterr().out

    def test_bad_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["sample", "--system", "nextdoor"])
