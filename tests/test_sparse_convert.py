"""Format conversion tests: all six directions preserve the matrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import CPU, ExecutionContext
from repro.errors import FormatError
from repro.sparse import COO, convert, to_coo, to_csc, to_csr

from tests.conftest import random_coo, to_dense


@pytest.mark.parametrize("target", ["coo", "csr", "csc"])
@pytest.mark.parametrize("source", ["coo", "csr", "csc"])
def test_all_direction_round_trips(rng, source, target):
    coo = random_coo(rng, rows=12, cols=9, nnz=40)
    src = convert(coo, source)
    dst = convert(src, target)
    assert dst.layout == target
    np.testing.assert_allclose(to_dense(dst), to_dense(coo), rtol=1e-6)


def test_conversion_preserves_edge_ids(rng):
    coo = random_coo(rng)
    coo.edge_ids = np.arange(coo.nnz)
    csr = to_csr(coo)
    back = to_coo(csr)
    # Each edge id must still label the same (row, col, value) triple.
    orig = {
        (int(r), int(c)): int(e)
        for r, c, e in zip(coo.rows, coo.cols, coo.edge_ids)
    }
    for r, c, e in zip(back.rows, back.cols, back.edge_ids):
        assert orig[(int(r), int(c))] == int(e)


def test_conversion_preserves_values_alignment(rng):
    coo = random_coo(rng)
    csc = to_csc(coo)
    orig = {
        (int(r), int(c)): float(v)
        for r, c, v in zip(coo.rows, coo.cols, coo.values)
    }
    back = to_coo(csc)
    for r, c, v in zip(back.rows, back.cols, back.values):
        assert orig[(int(r), int(c))] == pytest.approx(float(v))


def test_noop_conversion_returns_same_object(rng):
    coo = random_coo(rng)
    assert convert(coo, "coo") is coo


def test_unknown_layout_rejected(rng):
    with pytest.raises(FormatError):
        convert(random_coo(rng), "bsr")


def test_conversion_costs_are_asymmetric(rng):
    """Decompression (csr->coo) must be much cheaper than compression
    (coo->csr), reproducing Table 5's 0.36ms vs 2.40ms asymmetry."""
    coo = random_coo(rng, rows=200, cols=200, nnz=3000)
    ctx_compress = ExecutionContext(CPU)
    to_csr(coo, ctx_compress)
    csr = to_csr(coo)
    ctx_decompress = ExecutionContext(CPU)
    to_coo(csr, ctx_decompress)
    assert ctx_compress.elapsed > 3 * ctx_decompress.elapsed


def test_empty_matrix_conversions():
    empty = COO(rows=[], cols=[], values=None, shape=(5, 7))
    for layout in ("csr", "csc"):
        out = convert(empty, layout)
        assert out.nnz == 0
        assert out.shape == (5, 7)
        round_trip = to_coo(out)
        assert round_trip.nnz == 0


@given(
    st.integers(1, 15),
    st.integers(1, 15),
    st.integers(0, 60),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_round_trip_property(n_rows, n_cols, nnz, seed):
    rng = np.random.default_rng(seed)
    coo = random_coo(rng, rows=n_rows, cols=n_cols, nnz=nnz, unique=True)
    for path in (("csr", "csc"), ("csc", "csr"), ("csr", "coo", "csc")):
        cur = coo
        for layout in path:
            cur = convert(cur, layout)
        np.testing.assert_allclose(to_dense(cur), to_dense(coo), rtol=1e-6)
