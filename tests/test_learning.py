"""Learning-glue tests: gradient checks, training convergence, converters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.core import new_rng
from repro.datasets import load_dataset
from repro.device import V100
from repro.errors import ShapeError
from repro.learning import (
    GraphSAGEModel,
    LadiesGCN,
    Linear,
    ReLU,
    SGD,
    Trainer,
    accuracy,
    softmax_cross_entropy,
    to_dgl_graph,
    to_pyg_graph,
)


class TestLayers:
    def test_linear_forward(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.random((5, 4)).astype(np.float32)
        out = layer.forward(x)
        np.testing.assert_allclose(out, x @ layer.W + layer.b, rtol=1e-5)

    def test_linear_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            Linear(4, 3, rng=rng).forward(np.ones((2, 5), dtype=np.float32))

    def test_linear_numerical_gradient(self, rng):
        """Analytic dW must match the finite-difference gradient."""
        layer = Linear(3, 2, rng=rng)
        x = rng.random((4, 3)).astype(np.float64)
        target = rng.random((4, 2))

        def loss_fn():
            out = layer.forward(x.astype(np.float32)).astype(np.float64)
            return 0.5 * ((out - target) ** 2).sum()

        out = layer.forward(x.astype(np.float32))
        layer.zero_grad()
        layer.backward((out - target).astype(np.float32))
        eps = 1e-3
        for idx in [(0, 0), (2, 1)]:
            orig = layer.W[idx]
            layer.W[idx] = orig + eps
            hi = loss_fn()
            layer.W[idx] = orig - eps
            lo = loss_fn()
            layer.W[idx] = orig
            numeric = (hi - lo) / (2 * eps)
            assert layer.dW[idx] == pytest.approx(numeric, rel=0.05)

    def test_relu_gradient_masks(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        relu.forward(x)
        grad = relu.backward(np.ones((1, 2), dtype=np.float32))
        np.testing.assert_array_equal(grad, [[0.0, 1.0]])

    def test_softmax_xent_gradient_direction(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32)
        labels = np.array([0, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss > 0
        assert grad[0, 0] < 0  # pushes the correct class up
        assert grad[1, 0] < 0

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0
        assert accuracy(np.empty((0, 2)), np.empty(0, dtype=int)) == 0.0

    def test_sgd_descends(self, rng):
        layer = Linear(2, 2, rng=rng, bias=False)
        opt = SGD(layer.parameters(), lr=0.1, momentum=0.0)
        x = np.eye(2, dtype=np.float32)
        for _ in range(50):
            out = layer.forward(x)
            loss, grad = softmax_cross_entropy(out, np.array([0, 1]))
            layer.zero_grad()
            layer.backward(grad)
            opt.step()
        final, _ = softmax_cross_entropy(layer.forward(x), np.array([0, 1]))
        assert final < loss


class TestModels:
    def _sample(self, graph, fanouts, seeds, seed=0):
        pipe = make_algorithm("graphsage", fanouts=fanouts).build(graph, seeds)
        return pipe.sample_batch(seeds, rng=new_rng(seed))

    def test_forward_shapes(self, small_graph, rng):
        seeds = np.arange(12)
        sample = self._sample(small_graph, (3, 4), seeds)
        feats = rng.random((200, 8)).astype(np.float32)
        model = GraphSAGEModel(8, 16, 5, num_layers=2, rng=rng)
        logits = model.forward(sample, feats)
        assert logits.shape == (12, 5)

    def test_layer_count_checked(self, small_graph, rng):
        sample = self._sample(small_graph, (3,), np.arange(4))
        model = GraphSAGEModel(8, 16, 5, num_layers=2, rng=rng)
        with pytest.raises(ShapeError):
            model.forward(sample, rng.random((200, 8)).astype(np.float32))

    def test_training_reduces_loss(self, small_graph, rng):
        seeds = np.arange(64)
        feats = rng.random((200, 8)).astype(np.float32)
        labels = (np.arange(200) % 4).astype(np.int64)
        # Make features informative about labels.
        feats[:, :4] += np.eye(4, dtype=np.float32)[labels] * 3
        model = GraphSAGEModel(8, 16, 4, num_layers=2, rng=rng)
        opt = SGD(model.parameters(), lr=0.05)
        losses = []
        for step in range(15):
            sample = self._sample(small_graph, (3, 4), seeds, seed=step)
            logits = model.forward(sample, feats)
            loss, grad = softmax_cross_entropy(logits, labels[seeds])
            model.zero_grad()
            model.backward(grad)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.8

    def test_ladies_gcn_uses_edge_weights(self, small_graph, rng):
        seeds = np.arange(10)
        pipe = make_algorithm("ladies", layer_width=16, num_layers=2).build(
            small_graph, seeds
        )
        sample = pipe.sample_batch(seeds, rng=new_rng(0))
        feats = rng.random((200, 8)).astype(np.float32)
        model = LadiesGCN(8, 16, 4, num_layers=2, rng=rng)
        logits = model.forward(sample, feats)
        assert logits.shape == (10, 4)


class TestTrainer:
    def test_trainer_converges_on_sbm(self):
        ds = load_dataset("pd", scale=0.15)
        rng = np.random.default_rng(0)
        pipe = make_algorithm("graphsage", fanouts=(5, 10)).build(
            ds.graph, ds.train_ids[:128]
        )
        model = GraphSAGEModel(
            ds.features.shape[1], 32, ds.num_classes, num_layers=2, rng=rng
        )
        trainer = Trainer(pipe, model, ds, device=V100, batch_size=128)
        result = trainer.train(4, max_batches_per_epoch=6)
        assert result.final_accuracy > 0.8
        assert 0.0 < result.sampling_fraction < 1.0
        assert result.total_seconds == pytest.approx(
            result.sampling_seconds + result.training_seconds
        )


class TestConverters:
    def test_to_dgl_block(self, small_graph, rng):
        sub = small_graph[:, np.array([3, 9])].individual_sample(3, rng=rng)
        block = to_dgl_graph(sub)
        assert block.num_edges == sub.nnz
        rows, cols, vals = sub.to_coo_arrays()
        np.testing.assert_array_equal(
            block.src_nodes[block.edges_src], rows
        )
        np.testing.assert_array_equal(
            block.dst_nodes[block.edges_dst], cols
        )
        np.testing.assert_array_equal(block.edge_weight, vals)

    def test_to_pyg_data(self, small_graph, rng):
        sub = small_graph[:, np.array([3, 9])].individual_sample(3, rng=rng)
        data = to_pyg_graph(sub)
        assert data.edge_index.shape == (2, sub.nnz)
        rows, cols, _ = sub.to_coo_arrays()
        np.testing.assert_array_equal(data.node_ids[data.edge_index[0]], rows)
        np.testing.assert_array_equal(data.node_ids[data.edge_index[1]], cols)
        assert data.num_nodes == len(data.node_ids)
