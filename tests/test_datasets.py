"""Dataset tests: generators and the LJ/PD/PP/FS stand-in catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    available_datasets,
    block_features,
    dedupe_edges,
    load_dataset,
    random_edge_weights,
    rmat_edges,
    sbm_edges,
    symmetrize,
)
from repro.errors import ShapeError


class TestRMAT:
    def test_shape_and_bounds(self):
        src, dst = rmat_edges(10, 8, seed=1)
        assert len(src) == 8 * 1024
        assert src.max() < 1024 and dst.max() < 1024
        assert src.min() >= 0

    def test_degree_distribution_is_skewed(self):
        src, dst = rmat_edges(12, 16, seed=2)
        degrees = np.bincount(dst, minlength=1 << 12)
        # Heavy tail: the top 1% of nodes hold a large share of edges.
        top = np.sort(degrees)[-41:].sum()
        assert top / degrees.sum() > 0.15

    def test_deterministic(self):
        a = rmat_edges(8, 4, seed=3)
        b = rmat_edges(8, 4, seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_invalid_probs_rejected(self):
        with pytest.raises(ShapeError):
            rmat_edges(8, 4, a=0.6, b=0.3, c=0.3)


class TestSBM:
    def test_intra_block_dominates(self):
        src, dst, blocks = sbm_edges(2000, 4, 20.0, seed=4)
        same = (blocks[src] == blocks[dst]).mean()
        assert same > 0.7

    def test_block_features_separable(self):
        blocks = np.repeat(np.arange(4), 50)
        feats = block_features(blocks, 4, 16, noise=0.1, seed=5)
        # Same-block features are much closer than cross-block ones.
        centroid = np.stack([feats[blocks == b].mean(axis=0) for b in range(4)])
        d_intra = np.linalg.norm(feats - centroid[blocks], axis=1).mean()
        d_inter = np.linalg.norm(centroid[0] - centroid[1])
        assert d_inter > d_intra


class TestEdgeHelpers:
    def test_symmetrize(self):
        src, dst = symmetrize(np.array([0, 1]), np.array([2, 3]))
        assert len(src) == 4
        assert (src[2], dst[2]) == (2, 0)

    def test_dedupe_removes_dupes_and_loops(self):
        src = np.array([0, 0, 1, 2])
        dst = np.array([1, 1, 1, 0])
        s, d = dedupe_edges(src, dst, 3)
        assert len(s) == 2  # (0,1) once, (1,1) self-loop dropped, (2,0)
        assert not np.any(s == d)

    def test_edge_weights_positive(self):
        w = random_edge_weights(1000, seed=6)
        assert np.all(w > 0) and np.all(w <= 1.0)


class TestCatalog:
    def test_four_stand_ins(self):
        assert available_datasets() == ["fs", "lj", "pd", "pp"]

    def test_unknown_rejected(self):
        with pytest.raises(ShapeError):
            load_dataset("ogbn-products")

    @pytest.mark.parametrize("name", ["lj", "pd"])
    def test_dataset_consistency(self, name):
        ds = load_dataset(name, scale=0.1)
        assert ds.num_nodes == ds.graph.shape[0]
        assert len(ds.features) == ds.num_nodes
        assert len(ds.labels) == ds.num_nodes
        assert ds.labels.max() < ds.num_classes
        assert len(ds.train_ids) >= 1
        assert ds.graph_on_device

    def test_pd_has_highest_average_degree(self):
        degs = {}
        for name in ("lj", "pd", "pp"):
            ds = load_dataset(name, scale=0.1)
            degs[name] = ds.num_edges / ds.num_nodes
        assert degs["pd"] > degs["lj"]
        assert degs["pd"] > degs["pp"]

    def test_host_resident_flags(self):
        assert not load_dataset("pp", scale=0.1).graph_on_device
        assert not load_dataset("fs", scale=0.1).graph_on_device

    def test_fs_frontier_fraction(self):
        ds = load_dataset("fs", scale=0.1)
        assert len(ds.train_ids) == pytest.approx(0.01 * ds.num_nodes, rel=0.2)

    def test_caching(self):
        assert load_dataset("pd", scale=0.1) is load_dataset("pd", scale=0.1)
