"""ECSF model tests: layer stacking and mini-batching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GraphSample,
    SampledLayer,
    Step,
    STEP_OF_OP,
    minibatches,
    new_rng,
    run_layers,
)


def test_step_vocabulary_covers_table4():
    assert STEP_OF_OP["slice_cols"] is Step.EXTRACT
    assert STEP_OF_OP["spmm"] is Step.COMPUTE
    assert STEP_OF_OP["individual_sample"] is Step.SELECT
    assert STEP_OF_OP["row"] is Step.FINALIZE


class TestRunLayers:
    def test_stacks_layers(self, small_graph):
        rng = new_rng(0)

        def one_layer(graph, frontiers, fanout):
            sub = graph[:, frontiers]
            sampled = sub.individual_sample(fanout, rng=rng)
            return sampled, sampled.row()

        seeds = np.array([1, 2, 3])
        sample = run_layers(small_graph, seeds, [2, 3], one_layer)
        assert len(sample.layers) == 2
        np.testing.assert_array_equal(sample.layers[0].input_nodes, seeds)
        np.testing.assert_array_equal(
            sample.layers[1].input_nodes, sample.layers[0].output_nodes
        )
        assert sample.num_edges == sum(l.num_edges for l in sample.layers)

    def test_all_nodes_union(self):
        layer = SampledLayer(
            matrix=None,  # type: ignore[arg-type]
            input_nodes=np.array([1, 2]),
            output_nodes=np.array([5, 2]),
        )
        sample = GraphSample(seeds=np.array([1, 2]), layers=[layer])
        np.testing.assert_array_equal(sample.all_nodes, [1, 2, 5])

    def test_stops_on_empty_frontier(self, small_graph):
        def dead_end(graph, frontiers, fanout):
            sub = graph[:, frontiers]
            return sub, np.array([], dtype=np.int64)

        sample = run_layers(small_graph, np.array([1]), [2, 2, 2], dead_end)
        assert len(sample.layers) == 1


class TestMinibatches:
    def test_partition_covers_all(self):
        ids = np.arange(100)
        batches = minibatches(ids, 32, shuffle=False)
        assert [len(b) for b in batches] == [32, 32, 32, 4]
        np.testing.assert_array_equal(np.concatenate(batches), ids)

    def test_shuffle_permutes(self):
        ids = np.arange(100)
        batches = minibatches(ids, 100, shuffle=True, rng=new_rng(1))
        assert not np.array_equal(batches[0], ids)
        np.testing.assert_array_equal(np.sort(batches[0]), ids)

    def test_drop_last(self):
        batches = minibatches(np.arange(10), 4, shuffle=False, drop_last=True)
        assert [len(b) for b in batches] == [4, 4]
