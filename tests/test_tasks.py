"""Task abstraction: compaction, negative sampling, pair scoring, trainer.

The contracts under test:

* ``unique_and_compact_node_pairs`` matches graphbolt's semantics — the
  seed set is sorted unique int64, and indexing it with the compacted
  pairs reproduces the originals exactly (round trip);
* the negative sampler never emits a live edge or self-loop (no false
  negatives), and its draw stream is a pure function of the generator;
* ``pair_auc`` is the rank statistic it claims to be (1.0 when scores
  separate, 0.0 when inverted, 0.5 degenerate);
* ``NodeClassificationTask`` is a bit-for-bit pass-through — the exact
  property the pinned serve/cluster fingerprints rely on;
* ``LinkPredictionTask`` trains end to end through the unmodified
  Trainer: finite BCE loss, AUC a valid probability, and determinism
  under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.datasets import load_dataset
from repro.device import V100
from repro.errors import GSamplerError
from repro.learning import GraphSAGEModel, Trainer
from repro.tasks import (
    LinkPredictionTask,
    NodeClassificationTask,
    available_tasks,
    edge_endpoints_of,
    edge_keys,
    make_task,
    negative_sample,
    pair_auc,
    unique_and_compact_node_pairs,
)


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


# ----------------------------------------------------------------------
# Pair compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        pos = rng.integers(0, 1000, size=(64, 2), dtype=np.int64)
        neg = rng.integers(0, 1000, size=(64, 2), dtype=np.int64)
        seeds, cpos, cneg = unique_and_compact_node_pairs(pos, neg)
        assert seeds.dtype == np.int64
        np.testing.assert_array_equal(seeds, np.unique(seeds))
        np.testing.assert_array_equal(seeds[cpos], pos)
        np.testing.assert_array_equal(seeds[cneg], neg)

    def test_seeds_cover_exactly_the_endpoints(self):
        pos = np.array([[5, 9], [9, 2]], dtype=np.int64)
        seeds, cpos, cneg = unique_and_compact_node_pairs(pos)
        np.testing.assert_array_equal(seeds, [2, 5, 9])
        assert cneg is None
        np.testing.assert_array_equal(seeds[cpos], pos)

    def test_compaction_shrinks_duplicated_endpoints(self):
        # 100 pairs over a 10-node universe: endpoints collapse hard.
        rng = np.random.default_rng(1)
        pos = rng.integers(0, 10, size=(100, 2), dtype=np.int64)
        seeds, _, _ = unique_and_compact_node_pairs(pos)
        assert len(seeds) <= 10 < 200


# ----------------------------------------------------------------------
# Negative sampling
# ----------------------------------------------------------------------
class TestNegativeSampler:
    def _live(self, num_nodes, rng, num_edges=400):
        src = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
        dst = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        return src, dst, np.sort(edge_keys(src, dst, num_nodes))

    def test_no_false_negatives_and_no_self_loops(self):
        rng = np.random.default_rng(2)
        num_nodes = 50
        src, _, live = self._live(num_nodes, rng)
        neg_dst = negative_sample(src, num_nodes, live, rng)
        keys = edge_keys(src, neg_dst, num_nodes)
        # Not one forged pair may exist in the live edge set.
        idx = np.searchsorted(live, keys)
        idx = np.minimum(idx, len(live) - 1)
        assert not np.any(live[idx] == keys)
        assert not np.any(neg_dst == src)

    def test_seeded_determinism(self):
        rng = np.random.default_rng(3)
        num_nodes = 80
        src, _, live = self._live(num_nodes, rng)
        a = negative_sample(src, num_nodes, live, np.random.default_rng(9))
        b = negative_sample(src, num_nodes, live, np.random.default_rng(9))
        c = negative_sample(src, num_nodes, live, np.random.default_rng(10))
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_too_dense_graph_raises(self):
        # 2 nodes, both directed non-loop edges live: nothing to forge.
        num_nodes = 2
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 0], dtype=np.int64)
        live = np.sort(edge_keys(src, dst, num_nodes))
        with pytest.raises(GSamplerError):
            negative_sample(src, num_nodes, live, np.random.default_rng(0))


# ----------------------------------------------------------------------
# Pair scoring + registry
# ----------------------------------------------------------------------
class TestPairAucAndRegistry:
    def test_pair_auc_extremes(self):
        pos = np.array([3.0, 4.0, 5.0])
        neg = np.array([0.0, 1.0, 2.0])
        assert pair_auc(pos, neg) == 1.0
        assert pair_auc(neg, pos) == 0.0
        assert pair_auc(np.array([]), neg) == 0.5

    def test_pair_auc_partial_overlap(self):
        pos = np.array([1.0, 3.0])
        neg = np.array([0.0, 2.0])
        assert pair_auc(pos, neg) == pytest.approx(0.75)

    def test_registry(self):
        assert available_tasks() == ("linkpred", "node")
        assert isinstance(make_task("node"), NodeClassificationTask)
        task = make_task("linkpred", embedding_dim=8)
        assert isinstance(task, LinkPredictionTask)
        assert task.embedding_dim == 8
        with pytest.raises(GSamplerError):
            make_task("lunar")

    def test_edge_endpoints_consistent_with_keys(self, pd):
        src, dst = edge_endpoints_of(pd.graph)
        assert src.dtype == np.int64 and dst.dtype == np.int64
        assert len(src) == len(dst) == pd.graph.get("csc").nnz
        keys = edge_keys(src, dst, pd.num_nodes)
        # Collision-free: every directed edge has a distinct key.
        assert len(np.unique(keys)) == len(keys)


# ----------------------------------------------------------------------
# NodeClassificationTask: bit-identical pass-through
# ----------------------------------------------------------------------
class TestNodeTaskPassThrough:
    def test_materialize_is_identity_with_zero_rng_draws(self, pd):
        task = NodeClassificationTask()
        task.prepare(pd)
        units = pd.train_ids[:128]
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        batch = task.materialize(units, rng)
        # Same object, not a copy — and the generator was never touched,
        # so downstream draw streams stay bit-identical to the pre-task
        # trainer (the fingerprint-pin property).
        assert batch.nodes is units
        assert batch.pos_pairs is None and batch.neg_pairs is None
        assert batch.num_pairs == 0
        assert rng.bit_generator.state == before

    def test_train_units_are_the_dataset_ids(self, pd):
        task = NodeClassificationTask()
        assert task.train_units(pd) is pd.train_ids
        assert task.output_dim(pd) == pd.num_classes


# ----------------------------------------------------------------------
# LinkPredictionTask end to end
# ----------------------------------------------------------------------
class TestLinkPredictionTask:
    def test_materialize_contract(self, pd):
        task = LinkPredictionTask()
        task.prepare(pd)
        units = task.train_units(pd)
        assert units.dtype == np.int64
        batch = task.materialize(units[:256], np.random.default_rng(4))
        assert batch.pos_pairs is not None and batch.neg_pairs is not None
        assert batch.num_pairs == 512
        # Compacted indices address the unique seed set.
        assert batch.pos_pairs.max() < len(batch.nodes)
        assert batch.neg_pairs.max() < len(batch.nodes)
        # Positives decode to live edges.
        src, dst = edge_endpoints_of(pd.graph)
        live = np.sort(edge_keys(src, dst, pd.num_nodes))
        pos_global = batch.nodes[batch.pos_pairs]
        keys = edge_keys(pos_global[:, 0], pos_global[:, 1], pd.num_nodes)
        idx = np.minimum(np.searchsorted(live, keys), len(live) - 1)
        assert np.all(live[idx] == keys)
        # Negatives decode to non-edges.
        neg_global = batch.nodes[batch.neg_pairs]
        nkeys = edge_keys(neg_global[:, 0], neg_global[:, 1], pd.num_nodes)
        nidx = np.minimum(np.searchsorted(live, nkeys), len(live) - 1)
        assert not np.any(live[nidx] == nkeys)

    def test_unprepared_task_raises(self, pd):
        task = LinkPredictionTask()
        with pytest.raises(GSamplerError):
            task.train_units(pd)

    def test_trains_end_to_end(self, pd):
        task = LinkPredictionTask(embedding_dim=8)
        task.prepare(pd)
        rng = np.random.default_rng(5)
        batch = task.materialize(task.train_units(pd)[:128], rng)
        algorithm = make_algorithm("graphsage", fanouts=(4, 4))
        pipeline = algorithm.build(pd.graph, batch.nodes)
        model = GraphSAGEModel(
            in_dim=pd.features.shape[1],
            hidden_dim=16,
            num_classes=task.output_dim(pd),
            num_layers=2,
            rng=rng,
        )
        trainer = Trainer(
            pipeline, model, pd, device=V100, batch_size=128, lr=0.05,
            seed=0, task=task,
        )
        result = trainer.train(epochs=2, max_batches_per_epoch=4)
        assert np.isfinite(result.final_loss)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert len(result.accuracy_history) == 2

    def test_training_is_seed_deterministic(self, pd):
        def run():
            task = LinkPredictionTask(embedding_dim=8)
            task.prepare(pd)
            rng = np.random.default_rng(6)
            batch = task.materialize(task.train_units(pd)[:64], rng)
            algorithm = make_algorithm("graphsage", fanouts=(4, 4))
            pipeline = algorithm.build(pd.graph, batch.nodes)
            model = GraphSAGEModel(
                in_dim=pd.features.shape[1], hidden_dim=16,
                num_classes=task.output_dim(pd), num_layers=2,
                rng=np.random.default_rng(1),
            )
            trainer = Trainer(
                pipeline, model, pd, device=V100, batch_size=64,
                lr=0.05, seed=0, task=task,
            )
            result = trainer.train(epochs=1, max_batches_per_epoch=3)
            return result.final_loss, result.final_accuracy

        assert run() == run()
