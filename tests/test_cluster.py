"""Cluster serving: replicas, routers, interconnect, compat guarantees.

The contracts under test:

* **Fingerprint compatibility** — the refactor of the monolithic
  simulator into replica/router/cluster layers left the single-replica
  path bit-identical: ``run_serve_session`` (now a 1-replica round-robin
  cluster) reproduces the fingerprint committed before the refactor,
  pinned here as a sha256 so any behavioural drift fails loudly.
* **Router determinism** — every policy is a pure function of (seed,
  workload, topology): same inputs, same ``fingerprint()``.  po2 draws
  from its own generator stream, so poisoning the ``numpy.random``
  global state cannot change its routes.
* **Router correctness** — JSQ never routes to a replica strictly more
  loaded than the best alternative; round-robin cycles; shard-affinity
  follows the partition's majority shard.
* **Interconnect** — ``LinkSpec.transfer_time`` is the affine
  latency + size/bandwidth model; sharded clusters report nonzero
  cross-shard traffic charged over it, unsharded clusters report none.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.device import (
    NVLINK,
    PCIE,
    V100,
    LinkSpec,
    default_link_for,
    get_link,
)
from repro.errors import DeviceError, ServeError
from repro.partition import make_partition
from repro.serve import (
    ClusterSimulator,
    JoinShortestQueueRouter,
    Replica,
    RoundRobinRouter,
    ServePolicy,
    ServeSimulator,
    WorkloadSpec,
    make_router,
    replica_rng,
    run_cluster_session,
    run_serve_session,
)

#: sha256 of ``repr(report.fingerprint())`` for the reference session
#: below, captured from the pre-refactor monolithic ``ServeSimulator``
#: (commit f476f21).  The refactored layers must reproduce it exactly.
PRE_REFACTOR_FINGERPRINT = (
    "a026a063925fbfbc035081d78798ab5fe441e64d7426000801a66ad8d9cc6c85"
)

REFERENCE_SPEC = WorkloadSpec(num_requests=192, arrival_rate=100_000.0, seed=11)
REFERENCE_POLICY = ServePolicy(
    max_batch=8, max_wait=5e-4, queue_capacity=32, slo=2e-3
)


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


def _cluster_fingerprint(pd, **kwargs):
    defaults = dict(
        device=V100,
        spec=WorkloadSpec(num_requests=160, arrival_rate=200_000.0, seed=5),
        policy=ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32),
        num_replicas=4,
        seed=5,
    )
    defaults.update(kwargs)
    _, report = run_cluster_session(pd, **defaults)
    return report.fingerprint()


# ----------------------------------------------------------------------
# Backward compatibility of the refactor
# ----------------------------------------------------------------------
class TestFingerprintCompat:
    def test_run_serve_session_matches_pre_refactor_fingerprint(self, pd):
        _, report = run_serve_session(
            pd,
            device=V100,
            spec=REFERENCE_SPEC,
            policy=REFERENCE_POLICY,
            seed=11,
        )
        digest = hashlib.sha256(
            repr(report.fingerprint()).encode()
        ).hexdigest()
        assert digest == PRE_REFACTOR_FINGERPRINT

    def test_one_replica_cluster_matches_standalone_simulator(self, pd):
        sim = ServeSimulator(
            pd, device=V100, policy=REFERENCE_POLICY, seed=11
        )
        standalone = sim.run(sim.build_workload(REFERENCE_SPEC))
        _, clustered = run_cluster_session(
            pd,
            device=V100,
            spec=REFERENCE_SPEC,
            policy=REFERENCE_POLICY,
            num_replicas=1,
            seed=11,
        )
        assert standalone.fingerprint() == clustered.fingerprint()

    def test_single_replica_report_shape_unchanged(self, pd):
        _, report = run_serve_session(
            pd, device=V100, spec=REFERENCE_SPEC, seed=11
        )
        assert report.replicas == 1
        assert report.cross_shard_rows == 0
        # Cluster-only keys stay out of the single-replica trajectory.
        assert "replicas" not in report.to_metrics()
        assert "cross_shard_bytes" not in report.to_metrics()

    def test_replica_zero_rng_matches_session_stream(self):
        a = replica_rng(123, 0).random(8)
        b = np.random.default_rng(123).random(8)
        np.testing.assert_array_equal(a, b)

    def test_replica_streams_are_distinct(self):
        draws = [replica_rng(123, i).random(4) for i in range(3)]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])


# ----------------------------------------------------------------------
# Router determinism and correctness
# ----------------------------------------------------------------------
class TestRouterDeterminism:
    @pytest.mark.parametrize("router", ["round_robin", "jsq", "po2"])
    def test_same_seed_same_fingerprint(self, pd, router):
        a = _cluster_fingerprint(pd, router=router)
        b = _cluster_fingerprint(pd, router=router)
        assert a == b

    def test_shard_router_deterministic(self, pd):
        a = _cluster_fingerprint(pd, router="shard", partition="hash")
        b = _cluster_fingerprint(pd, router="shard", partition="hash")
        assert a == b

    def test_po2_ignores_numpy_global_state(self, pd):
        np.random.seed(0)
        a = _cluster_fingerprint(pd, router="po2")
        np.random.seed(4242)
        np.random.random(1000)
        b = _cluster_fingerprint(pd, router="po2")
        assert a == b

    def test_po2_routes_follow_its_seed(self, pd):
        # Different session seeds give different po2 draw streams (and
        # different workloads) — the route sequence is seed-derived, not
        # global-state-derived.
        router_a = make_router("po2", seed=1)
        router_b = make_router("po2", seed=2)
        replicas = [_StubReplica(0), _StubReplica(0), _StubReplica(0)]
        req = _stub_request()
        picks_a = [router_a.route(req, replicas, 0.0) for _ in range(32)]
        picks_b = [router_b.route(req, replicas, 0.0) for _ in range(32)]
        assert picks_a != picks_b


class _StubReplica:
    """Minimal stand-in exposing the router-facing load signal."""

    def __init__(
        self,
        load: int,
        *,
        active: bool = True,
        alive: bool = True,
        available_from: float = 0.0,
    ) -> None:
        self._load = load
        self.active = active
        self.alive = alive
        self.available_from = available_from

    def outstanding(self, now: float) -> int:
        return self._load

    @property
    def queue_depth(self) -> int:
        return self._load


def _stub_request():
    from repro.serve import Request

    return Request(rid=0, arrival=0.0, seeds=np.array([0], dtype=np.int64))


class _SpyJSQ(JoinShortestQueueRouter):
    """JSQ that records (chosen load, minimum load) at every decision."""

    def __init__(self) -> None:
        self.observations: list[tuple[int, int]] = []

    def route(self, request, replicas: list[Replica], now: float) -> int:
        loads = [replica.outstanding(now) for replica in replicas]
        target = super().route(request, replicas, now)
        self.observations.append((loads[target], min(loads)))
        return target


class TestRouterCorrectness:
    def test_round_robin_cycles(self, pd):
        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(num_requests=12, arrival_rate=1000.0, seed=1),
            num_replicas=3,
            router="round_robin",
            seed=1,
        )
        order = [
            log.replica
            for log in sorted(report.logs, key=lambda l: (l.arrival, l.rid))
        ]
        assert order == [0, 1, 2] * 4

    def test_jsq_never_picks_a_strictly_more_loaded_replica(self, pd):
        spy = _SpyJSQ()
        run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(
                num_requests=300,
                arrival_rate=300_000.0,
                seeds_per_request=2,
                max_seeds_per_request=64,
                seed=3,
            ),
            policy=ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32),
            num_replicas=4,
            router=spy,
            seed=3,
        )
        assert spy.observations  # the spy actually routed
        assert all(chosen == best for chosen, best in spy.observations)

    def test_jsq_prefers_idle_replica(self):
        router = JoinShortestQueueRouter()
        replicas = [_StubReplica(5), _StubReplica(0), _StubReplica(3)]
        assert router.route(_stub_request(), replicas, 0.0) == 1

    def test_jsq_tie_breaks_to_lowest_id(self):
        router = JoinShortestQueueRouter()
        replicas = [_StubReplica(2), _StubReplica(2), _StubReplica(2)]
        assert router.route(_stub_request(), replicas, 0.0) == 0

    def test_shard_router_follows_majority_shard(self, pd):
        partition = make_partition("hash", pd.graph, 2, seed=0)
        router = make_router("shard", partition=partition)
        replicas = [_StubReplica(0), _StubReplica(0)]
        for shard_id in (0, 1):
            seeds = partition.view(shard_id).nodes[:5]
            from repro.serve import Request

            req = Request(rid=0, arrival=0.0, seeds=seeds)
            assert router.route(req, replicas, 0.0) == shard_id

    def test_unknown_router_rejected(self):
        with pytest.raises(ServeError):
            make_router("random")

    def test_shard_router_requires_partition(self):
        with pytest.raises(ServeError):
            make_router("shard")


class TestRouterEdgeCases:
    def test_outstanding_excludes_completion_exactly_at_now(self, pd):
        """An in-flight entry whose batch completes exactly at ``now`` is
        answered, not outstanding: the prune keeps strictly-later
        completions only."""
        replica = Replica(pd, device=V100, policy=REFERENCE_POLICY, seed=0)
        sentinel = object()
        replica._in_flight = [(1.0, sentinel), (2.0, sentinel)]
        assert replica.outstanding(0.5) == 2
        assert replica.outstanding(1.0) == 1  # t == now is done
        assert replica.outstanding(2.0) == 0
        # The prune is destructive: earlier entries stay gone.
        assert replica._in_flight == []

    def test_shard_router_empty_seeds_degenerates_to_shard_zero(self, pd):
        partition = make_partition("hash", pd.graph, 2, seed=0)
        router = make_router("shard", partition=partition)
        replicas = [_StubReplica(0), _StubReplica(0)]
        from repro.serve import Request

        req = Request(rid=0, arrival=0.0, seeds=np.array([], dtype=np.int64))
        assert router.route(req, replicas, 0.0) == 0

    def test_po2_equal_loads_uses_its_draw_not_index_bias(self):
        """With all loads equal, po2 must return the lower index of its
        two drawn candidates — and identical seeds give identical pick
        sequences regardless of fleet-wide ties."""
        picks_a = []
        picks_b = []
        for picks, seed in ((picks_a, 9), (picks_b, 9)):
            router = make_router("po2", seed=seed)
            replicas = [_StubReplica(3) for _ in range(4)]
            picks.extend(
                router.route(_stub_request(), replicas, 0.0)
                for _ in range(64)
            )
        assert picks_a == picks_b
        # Ties break to the lower index of the drawn pair, so the top
        # index can never win a fleet-wide tie — but the rest spread.
        assert 3 not in picks_a
        assert set(picks_a) == {0, 1, 2}

    def test_po2_single_eligible_short_circuits(self):
        router = make_router("po2", seed=0)
        replicas = [
            _StubReplica(0, alive=False),
            _StubReplica(7),
            _StubReplica(0, active=False),
        ]
        picks = {router.route(_stub_request(), replicas, 0.0) for _ in range(8)}
        assert picks == {1}

    def test_routers_mask_dead_replicas(self):
        dead_mid = [_StubReplica(0), _StubReplica(0, alive=False), _StubReplica(0)]
        rr = make_router("round_robin")
        assert {rr.route(_stub_request(), dead_mid, 0.0) for _ in range(6)} == {0, 2}
        jsq = JoinShortestQueueRouter()
        loaded = [_StubReplica(9), _StubReplica(0, alive=False), _StubReplica(3)]
        assert jsq.route(_stub_request(), loaded, 0.0) == 2

    def test_blind_router_still_targets_the_corpse(self):
        rr = RoundRobinRouter()
        rr.mask_dead = False
        dead_mid = [_StubReplica(0), _StubReplica(0, alive=False), _StubReplica(0)]
        picks = [rr.route(_stub_request(), dead_mid, 0.0) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_not_yet_available_replica_is_not_routable(self):
        warming = [_StubReplica(0), _StubReplica(0, available_from=5.0)]
        jsq = JoinShortestQueueRouter()
        assert jsq.route(_stub_request(), warming, 0.0) == 0
        # Once the warm-up elapses it competes again (tie -> lowest id,
        # but with equal loads replica 1 is now eligible).
        rr = make_router("round_robin")
        picks = {rr.route(_stub_request(), warming, 6.0) for _ in range(4)}
        assert picks == {0, 1}


# ----------------------------------------------------------------------
# Interconnect model
# ----------------------------------------------------------------------
class TestInterconnect:
    def test_transfer_time_affine(self):
        link = LinkSpec("test", bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(0) == 0.0
        assert link.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_registry_and_defaults(self):
        assert get_link("nvlink") is NVLINK
        assert get_link("pcie") is PCIE
        assert default_link_for("v100") is NVLINK
        assert default_link_for("t4") is PCIE
        assert NVLINK.bandwidth > PCIE.bandwidth

    def test_validation(self):
        with pytest.raises(DeviceError):
            LinkSpec("bad", bandwidth=0.0, latency=1e-6)
        with pytest.raises(DeviceError):
            LinkSpec("bad", bandwidth=1e9, latency=-1.0)
        with pytest.raises(DeviceError):
            NVLINK.transfer_time(-1)
        with pytest.raises(DeviceError):
            get_link("infiniband")

    def test_nvlink_faster_than_pcie(self):
        nbytes = 64 * 2**20
        assert NVLINK.transfer_time(nbytes) < PCIE.transfer_time(nbytes)


# ----------------------------------------------------------------------
# Sharded clusters and cross-shard traffic
# ----------------------------------------------------------------------
class TestShardedCluster:
    def test_partitioned_cluster_reports_cross_shard_traffic(self, pd):
        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(num_requests=96, arrival_rate=50_000.0, seed=2),
            num_replicas=3,
            router="shard",
            partition="hash",
            seed=2,
        )
        assert report.cross_shard_rows > 0
        assert report.link_seconds > 0.0
        row_bytes = pd.features.shape[1] * pd.features.dtype.itemsize
        assert report.cross_shard_bytes == report.cross_shard_rows * row_bytes
        # Per-replica counters sum to the cluster totals.
        assert report.cross_shard_rows == sum(
            s.cross_shard_rows for s in report.per_replica
        )

    def test_unpartitioned_cluster_has_no_link_traffic(self, pd):
        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(num_requests=64, arrival_rate=50_000.0, seed=2),
            num_replicas=3,
            router="jsq",
            seed=2,
        )
        assert report.cross_shard_rows == 0
        assert report.link_seconds == 0.0

    def test_slower_link_slower_cluster(self, pd):
        kwargs = dict(
            device=V100,
            spec=WorkloadSpec(num_requests=96, arrival_rate=400_000.0, seed=2),
            policy=ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64),
            num_replicas=3,
            router="shard",
            partition="hash",
            seed=2,
        )
        _, on_nvlink = run_cluster_session(pd, link="nvlink", **kwargs)
        _, on_pcie = run_cluster_session(pd, link="pcie", **kwargs)
        assert on_pcie.link_seconds > on_nvlink.link_seconds

    def test_cluster_queue_names_are_replica_prefixed(self, pd):
        cluster = ClusterSimulator(pd, device=V100, num_replicas=2)
        assert "r0:sample" in cluster.replicas[0].sample_ctx.queue_stats()
        assert "r1:transfer" in cluster.replicas[1].io_ctx.queue_stats()
        solo = ClusterSimulator(pd, device=V100, num_replicas=1)
        assert "sample" in solo.replicas[0].sample_ctx.queue_stats()

    def test_per_replica_breakdown_covers_all_requests(self, pd):
        _, report = run_cluster_session(
            pd,
            device=V100,
            spec=WorkloadSpec(num_requests=90, arrival_rate=50_000.0, seed=4),
            num_replicas=3,
            router="round_robin",
            seed=4,
        )
        assert len(report.per_replica) == 3
        assert sum(s.requests for s in report.per_replica) == 90
        assert sum(s.completed for s in report.per_replica) == report.completed


# ----------------------------------------------------------------------
# Heterogeneous request sizes
# ----------------------------------------------------------------------
class TestHeterogeneousWorkload:
    def test_sizes_within_bounds(self, pd):
        from repro.serve import generate_workload

        spec = WorkloadSpec(
            num_requests=100,
            arrival_rate=1000.0,
            seeds_per_request=2,
            max_seeds_per_request=32,
            seed=1,
        )
        sizes = {
            len(r.seeds) for r in generate_workload(spec, num_nodes=1000)
        }
        assert min(sizes) >= 2 and max(sizes) <= 32
        assert len(sizes) > 1  # actually heterogeneous

    def test_default_stream_unchanged_by_new_field(self):
        from repro.serve import generate_workload

        spec = WorkloadSpec(num_requests=32, arrival_rate=1000.0, seed=9)
        a = generate_workload(spec, num_nodes=500)
        b = generate_workload(spec, num_nodes=500)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.seeds, y.seeds)
            assert len(x.seeds) == spec.seeds_per_request

    def test_validation(self):
        with pytest.raises(ServeError):
            WorkloadSpec(seeds_per_request=8, max_seeds_per_request=4)


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------
class TestClusterValidation:
    def test_needs_a_replica(self, pd):
        with pytest.raises(ServeError):
            ClusterSimulator(pd, device=V100, num_replicas=0)

    def test_partition_shard_count_must_match(self, pd):
        partition = make_partition("hash", pd.graph, 3, seed=0)
        with pytest.raises(ServeError):
            ClusterSimulator(
                pd, device=V100, num_replicas=2, partition=partition
            )

    def test_shard_router_needs_partition(self, pd):
        with pytest.raises(ServeError):
            ClusterSimulator(pd, device=V100, num_replicas=2, router="shard")

    def test_sharded_replica_needs_link(self, pd):
        partition = make_partition("hash", pd.graph, 2, seed=0)
        with pytest.raises(ServeError):
            Replica(pd, device=V100, shard=partition.view(0), link=None)

    def test_prebuilt_router_accepted(self, pd):
        cluster = ClusterSimulator(
            pd, device=V100, num_replicas=2, router=RoundRobinRouter()
        )
        assert cluster.router.name == "round_robin"
