"""Smoke tests: the example scripts run to completion.

Only the fast examples run under pytest; the epoch-scale comparison
script is exercised by the benchmark suite instead.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "custom_algorithm.py",
    "heterogeneous_metapath.py",
    "pass_attention_training.py",
    "serve_online.py",
    "train_linkpred.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "train_graphsage.py", "compare_systems.py"} <= present
    assert len(present) >= 5
