"""Baseline-system tests: capability matrices and profiled accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    FIGURE7_SYSTEMS,
    FIGURE8_SYSTEMS,
    GSamplerSystem,
    Profile,
    ProfiledPipeline,
    make_system,
)
from repro.core import new_rng
from repro.datasets import load_dataset
from repro.device import ExecutionContext, V100
from repro.errors import UnsupportedAlgorithmError


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.1)


@pytest.fixture(scope="module")
def pp():
    return load_dataset("pp", scale=0.25)


class TestCapabilityMatrix:
    """The N/A cells of Figures 7 and 8."""

    def test_gsampler_runs_everything(self, pd):
        system = make_system("gsampler")
        for algo in ("deepwalk", "node2vec", "graphsage", "ladies",
                     "asgcn", "pass", "shadow"):
            system.check_support(algo, pd)  # must not raise

    def test_dgl_gpu_lacks_node2vec(self, pd):
        with pytest.raises(UnsupportedAlgorithmError):
            make_system("dgl-gpu").check_support("node2vec", pd)

    def test_pyg_gpu_only_deepwalk(self, pd):
        system = make_system("pyg-gpu")
        system.check_support("deepwalk", pd)
        for algo in ("graphsage", "ladies", "pass"):
            with pytest.raises(UnsupportedAlgorithmError):
                system.check_support(algo, pd)

    def test_vertex_centric_cannot_express_layerwise(self, pd):
        for name in ("skywalker", "gunrock", "cugraph"):
            with pytest.raises(UnsupportedAlgorithmError):
                make_system(name).check_support("ladies", pd)

    def test_no_uva_systems_fail_on_host_graphs(self, pp):
        for name in ("gunrock", "cugraph"):
            with pytest.raises(UnsupportedAlgorithmError) as err:
                make_system(name).check_support("graphsage", pp)
            assert "UVA" in str(err.value)

    def test_skywalker_handles_host_graphs(self, pp):
        make_system("skywalker").check_support("graphsage", pp)

    def test_figure_system_lists_resolve(self):
        for name in FIGURE7_SYSTEMS + FIGURE8_SYSTEMS:
            assert make_system(name) is not None
        with pytest.raises(KeyError):
            make_system("nextdoor")


class TestProfiledExecution:
    def test_profile_scales_time_not_semantics(self, pd):
        seeds = pd.train_ids[:32]
        fast = make_system("gsampler").build_pipeline("graphsage", pd, seeds)
        slow = make_system("dgl-gpu").build_pipeline("graphsage", pd, seeds)
        ctx_fast, ctx_slow = ExecutionContext(V100), ExecutionContext(V100)
        out_fast = fast.sample_batch(seeds, ctx=ctx_fast, rng=new_rng(0))
        out_slow = slow.sample_batch(seeds, ctx=ctx_slow, rng=new_rng(0))
        assert ctx_slow.elapsed > ctx_fast.elapsed
        # Both produce real samples of the same shape contract.
        assert len(out_slow.layers) == len(out_fast.layers)

    def test_launch_multiplier_visible_in_ledger(self, pd):
        seeds = pd.train_ids[:16]
        pipeline = make_system("dgl-gpu").build_pipeline("graphsage", pd, seeds)
        ctx = ExecutionContext(V100)
        pipeline.sample_batch(seeds, ctx=ctx, rng=new_rng(1))
        inner = GSamplerSystem().build_pipeline("graphsage", pd, seeds)
        ctx_inner = ExecutionContext(V100)
        inner.sample_batch(seeds, ctx=ctx_inner, rng=new_rng(1))
        assert ctx.launch_count() > ctx_inner.launch_count()

    def test_occupancy_divisor_lowers_sm(self, pd):
        seeds = pd.train_ids[:64]
        sky = make_system("skywalker").build_pipeline("graphsage", pd, seeds)
        ctx_sky = ExecutionContext(V100)
        sky.sample_batch(seeds, ctx=ctx_sky, rng=new_rng(2))
        gs = GSamplerSystem().build_pipeline("graphsage", pd, seeds)
        ctx_gs = ExecutionContext(V100)
        gs.sample_batch(seeds, ctx=ctx_gs, rng=new_rng(2))
        assert ctx_sky.sm_utilization() <= ctx_gs.sm_utilization()

    def test_fixed_seconds_dominates_cugraph(self, pd):
        seeds = pd.train_ids[:16]
        cu = make_system("cugraph").build_pipeline("deepwalk", pd, seeds)
        ctx = ExecutionContext(V100)
        cu.sample_batch(seeds, ctx=ctx, rng=new_rng(3))
        fixed_total = 120e-6 * ctx.launch_count()
        assert ctx.elapsed >= fixed_total

    def test_profiled_pipeline_generic_wrap(self, pd):
        seeds = pd.train_ids[:8]
        inner = GSamplerSystem().build_pipeline("ladies", pd, seeds)
        wrapped = ProfiledPipeline(inner, Profile(cost_scale=4.0))
        ctx_w, ctx_i = ExecutionContext(V100), ExecutionContext(V100)
        wrapped.sample_batch(seeds, ctx=ctx_w, rng=new_rng(4))
        inner.sample_batch(seeds, ctx=ctx_i, rng=new_rng(4))
        assert ctx_w.elapsed > ctx_i.elapsed
