"""Tests for the IR invariant checker and its PassManager wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvariantError
from repro.ir.graph import DataFlowGraph
from repro.ir.passes import PassManager, SuperBatchPass
from repro.ir.passes.base import Pass
from repro.ir.trace import trace
from repro.sampler import compile_sampler
from repro.verify.invariants import check_invariants


def sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


def weighted_sage_layer(A, frontiers, K):
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K, sub_A)
    return sample_A, sample_A.row()


@pytest.fixture
def traced_ir(small_graph) -> DataFlowGraph:
    ir, _ = trace(sage_layer, small_graph, np.arange(8), constants={"K": 3})
    return ir


class TestCleanGraphs:
    def test_traced_program_passes(self, traced_ir):
        check_invariants(traced_ir)

    def test_compiled_program_passes(self, small_graph):
        # compile_sampler(debug=True) runs the checker after every pass;
        # reaching the end means every transition was clean.
        sampler = compile_sampler(
            sage_layer, small_graph, np.arange(8), constants={"K": 3},
            debug=True,
        )
        check_invariants(sampler.ir)
        check_invariants(sampler.superbatch_ir(), stage="superbatch")


class TestStructure:
    def test_use_before_def(self, traced_ir):
        nodes = traced_ir.nodes()
        consumer = nodes[-1]
        # Place a consumer of the last node *before* it in the order.
        traced_ir.insert_before(
            nodes[0].node_id, "row", (consumer.node_id,), {}
        )
        with pytest.raises(InvariantError, match="before its definition"):
            check_invariants(traced_ir)

    def test_node_table_key_disagreement(self, traced_ir):
        traced_ir.nodes()[-1].node_id = 987
        with pytest.raises(InvariantError, match="disagrees"):
            check_invariants(traced_ir)

    def test_dangling_output(self, traced_ir):
        traced_ir.outputs.append(987)
        with pytest.raises(InvariantError, match="output %987 does not exist"):
            check_invariants(traced_ir)

    def test_no_outputs(self, traced_ir):
        traced_ir.outputs = []
        with pytest.raises(InvariantError, match="no outputs"):
            check_invariants(traced_ir)

    def test_input_with_inputs(self, traced_ir):
        graph_node = traced_ir.nodes()[0]
        tensor_node = traced_ir.nodes()[1]
        tensor_node.inputs = (graph_node.node_id,)
        with pytest.raises(InvariantError, match="must not consume"):
            check_invariants(traced_ir)

    def test_stage_prefix_in_message(self, traced_ir):
        traced_ir.outputs.append(987)
        with pytest.raises(InvariantError, match=r"\[my_pass\]"):
            check_invariants(traced_ir, stage="my_pass")


class TestOperandKinds:
    def test_swapped_slice_inputs(self, traced_ir):
        for node in traced_ir.nodes():
            if node.op == "slice_cols":
                node.inputs = (node.inputs[1], node.inputs[0])
        with pytest.raises(InvariantError, match="is a tensor; expected a matrix"):
            check_invariants(traced_ir)

    def test_has_probs_arity_mismatch(self, traced_ir):
        # Claim probs are attached without actually passing the operand —
        # the exact shape of a buggy pass dropping a probs input.
        for node in traced_ir.nodes():
            if node.op == "individual_sample":
                node.attrs["has_probs"] = True
        with pytest.raises(InvariantError, match="has_probs"):
            check_invariants(traced_ir)

    def test_missing_operand(self, traced_ir):
        for node in traced_ir.nodes():
            if node.op == "slice_cols":
                node.inputs = node.inputs[:1]
        with pytest.raises(InvariantError, match="inputs"):
            check_invariants(traced_ir)


class TestLayoutLegality:
    def test_unknown_layout(self, traced_ir):
        for node in traced_ir.nodes():
            if node.op == "slice_cols":
                node.layout = "blocked-ellpack"
        with pytest.raises(InvariantError, match="unknown layout"):
            check_invariants(traced_ir)

    def test_layout_on_compute_op(self, small_graph):
        def layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            sub_A = sub_A * 2.0
            sample_A = sub_A.individual_sample(K)
            return sample_A, sample_A.row()

        ir, _ = trace(layer, small_graph, np.arange(8), constants={"K": 3})
        for node in ir.nodes():
            if node.op == "map_scalar":
                node.layout = "csc"
        with pytest.raises(InvariantError, match="not a structure operator"):
            check_invariants(ir)


class TestBatchPtrDiscipline:
    def _superbatched(self, small_graph) -> DataFlowGraph:
        def layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            probs = (sub_A ** 2).sum(axis=0)
            sample_A = sub_A.collective_sample(K, probs)
            return sample_A, sample_A.row()

        ir, _ = trace(layer, small_graph, np.arange(8), constants={"K": 4})
        assert SuperBatchPass().run(ir)
        return ir

    def test_clean_rewrite_passes(self, small_graph):
        check_invariants(self._superbatched(small_graph), stage="superbatch")

    def test_duplicate_ptr(self, small_graph):
        ir = self._superbatched(small_graph)
        first = ir.nodes()[0]
        ir.insert_before(
            first.node_id, "sb_batch_ptr", (), {"name": "_batch_ptr"}
        )
        with pytest.raises(InvariantError, match="exactly one"):
            check_invariants(ir)

    def test_sb_op_missing_ptr(self, small_graph):
        ir = self._superbatched(small_graph)
        ptr = next(n for n in ir.nodes() if n.op == "sb_batch_ptr")
        for node in ir.nodes():
            if node.op == "sb_collective_sample":
                node.inputs = tuple(i for i in node.inputs if i != ptr.node_id)
        with pytest.raises(InvariantError):
            check_invariants(ir)

    def test_surviving_plain_collective_sample(self, small_graph):
        ir = self._superbatched(small_graph)
        for node in ir.nodes():
            if node.op == "sb_collective_sample":
                # Undo the op rename but keep the graph superbatched.
                node.op = "collective_sample"
                node.inputs = (node.inputs[0], *node.inputs[2:])
        with pytest.raises(InvariantError, match="mix batches"):
            check_invariants(ir)

    def test_surviving_base_graph_slice(self, small_graph):
        ir = self._superbatched(small_graph)
        ptr = next(n for n in ir.nodes() if n.op == "sb_batch_ptr")
        for node in ir.nodes():
            if node.op == "sb_slice_cols":
                node.op = "slice_cols"
                node.inputs = tuple(i for i in node.inputs if i != ptr.node_id)
        with pytest.raises(InvariantError, match="sb_slice_cols"):
            check_invariants(ir)


class _ProbsDroppingPass(Pass):
    """A deliberately broken pass: detaches the probs operand from every
    weighted individual_sample but forgets to clear ``has_probs``."""

    name = "evil_probs_drop"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in ir.nodes():
            if node.op == "individual_sample" and node.attrs.get("has_probs"):
                node.inputs = node.inputs[:1]
                changed = True
        return changed


class _LayoutLeakPass(Pass):
    """A deliberately broken pass: stamps a layout on a compute op."""

    name = "evil_layout_leak"

    def run(self, ir: DataFlowGraph) -> bool:
        for node in ir.nodes():
            if node.op == "map_scalar":
                node.layout = "csc"
                return True
        return False


class TestPassManagerDebugMode:
    def test_broken_pass_caught_and_named(self, small_graph):
        ir, _ = trace(
            weighted_sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )
        manager = PassManager([_ProbsDroppingPass()], debug=True)
        with pytest.raises(InvariantError, match=r"\[evil_probs_drop\]"):
            manager.run(ir)

    def test_broken_pass_passes_silently_without_debug(self, small_graph):
        # The cheap structural validate() cannot see the dropped operand:
        # exactly the gap the invariant checker (and the statistical
        # checker, see test_verify.py) exists to close.
        ir, _ = trace(
            weighted_sage_layer, small_graph, np.arange(8), constants={"K": 3}
        )
        PassManager([_ProbsDroppingPass()], debug=False).run(ir)

    def test_layout_leak_caught(self, small_graph):
        def layer(A, frontiers, K):
            sub_A = A[:, frontiers]
            sub_A = sub_A * 2.0
            sample_A = sub_A.individual_sample(K)
            return sample_A, sample_A.row()

        ir, _ = trace(layer, small_graph, np.arange(8), constants={"K": 3})
        manager = PassManager([_LayoutLeakPass()], debug=True)
        with pytest.raises(InvariantError, match=r"\[evil_layout_leak\]"):
            manager.run(ir)
