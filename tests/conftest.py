"""Shared fixtures: small random graphs and dense oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matrix import Matrix, from_edges
from repro.sparse import COO, SparseFormat, edge_values, to_coo


def to_dense(matrix: SparseFormat | Matrix) -> np.ndarray:
    """Dense oracle: accumulate duplicate edges additively."""
    if isinstance(matrix, Matrix):
        matrix = matrix.get("coo")
    coo = to_coo(matrix)
    dense = np.zeros(coo.shape, dtype=np.float64)
    np.add.at(dense, (coo.rows, coo.cols), edge_values(coo).astype(np.float64))
    return dense


def random_coo(
    rng: np.random.Generator,
    rows: int = 20,
    cols: int = 15,
    nnz: int = 60,
    *,
    weighted: bool = True,
    unique: bool = True,
) -> COO:
    """A random COO test matrix (unique edges by default)."""
    r = rng.integers(0, rows, nnz)
    c = rng.integers(0, cols, nnz)
    if unique:
        keys = np.unique(r * cols + c)
        r, c = keys // cols, keys % cols
    values = (rng.random(len(r)) + 0.1).astype(np.float32) if weighted else None
    return COO(rows=r, cols=c, values=values, shape=(rows, cols))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def _unique_edges(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    keys = np.unique(src * n + dst)
    return keys // n, keys % n


@pytest.fixture
def small_graph(rng: np.random.Generator) -> Matrix:
    """A 200-node weighted graph (unique edges, every node has in-edges)."""
    n = 200
    src = np.concatenate([rng.integers(0, n, n), rng.integers(0, n, 2800)])
    dst = np.concatenate([np.arange(n), rng.integers(0, n, 2800)])
    src, dst = _unique_edges(src, dst, n)
    weights = (rng.random(len(src)) + 0.05).astype(np.float32)
    return from_edges(src, dst, n, weights=weights)


@pytest.fixture
def unweighted_graph(rng: np.random.Generator) -> Matrix:
    n = 100
    src, dst = _unique_edges(
        rng.integers(0, n, 1500), rng.integers(0, n, 1500), n
    )
    return from_edges(src, dst, n)


@pytest.fixture(scope="session")
def verify_graph() -> Matrix:
    """The deterministic weighted graph the verification suite runs on."""
    from repro.verify import verification_graph

    return verification_graph()
