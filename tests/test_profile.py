"""Profiling-subsystem tests: spans, exports, trajectories, and the CLI.

The overriding contract under test: profiling is an *observer*.  With a
profiler attached (or not), simulated times, launch ledgers, and sampled
results are bit-identical — the tracer only attributes cost, never
changes it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import GSamplerSystem
from repro.bench import run_sampling_epoch
from repro.cli import main
from repro.datasets import load_dataset
from repro.device import V100, ExecutionContext
from repro.profile import (
    Profiler,
    active_profiler,
    append_record,
    bench_path,
    build_text_report,
    compare_latest,
    compare_metrics,
    load_trajectory,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.profile.chrome import DEVICE_PID, HOST_PID


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.1)


class TestSpans:
    def test_nesting_and_balance(self):
        profiler = Profiler()
        with profiler.span("epoch"):
            with profiler.span("batch[0]", "batch"):
                pass
            with profiler.span("batch[1]", "batch"):
                pass
        assert profiler.open_spans() == 0
        epoch, b0, b1 = profiler.spans
        assert epoch.parent == -1 and epoch.depth == 0
        assert b0.parent == epoch.index and b0.depth == 1
        assert b1.parent == epoch.index
        assert profiler.children(epoch) == [b0, b1]
        # Children lie inside the parent's host interval.
        assert epoch.host_start <= b0.host_start <= b0.host_end <= epoch.host_end

    def test_end_merges_attrs(self):
        profiler = Profiler()
        profiler.begin("pass:dce", "pass", iteration=1)
        span = profiler.end(changed=True, rewrites=3)
        assert span.attrs == {"iteration": 1, "changed": True, "rewrites": 3}

    def test_activation_is_scoped(self):
        profiler = Profiler()
        assert active_profiler() is None
        with profiler.activate():
            assert active_profiler() is profiler
            inner = Profiler()
            with inner.activate():
                assert active_profiler() is inner
            assert active_profiler() is profiler
        assert active_profiler() is None

    def test_kernel_spans_mirror_the_ledger(self):
        profiler = Profiler()
        ctx = ExecutionContext(V100)
        profiler.attach(ctx)
        with profiler.span("epoch"):
            ctx.record("a", bytes_read=1e6, tasks=1000)
            ctx.record("b", flops=1e9, tasks=1000)
        kernels = profiler.spans_by_category("kernel")
        assert [s.name for s in kernels] == ["kernel:a", "kernel:b"]
        assert sum(s.sim_duration for s in kernels) == pytest.approx(ctx.elapsed)
        # The simulated intervals tile the ledger without gaps.
        assert kernels[0].sim_start == pytest.approx(0.0)
        assert kernels[1].sim_start == pytest.approx(kernels[0].sim_end)
        epoch = profiler.spans[0]
        assert epoch.sim_duration == pytest.approx(ctx.elapsed)

    def test_unattached_profiler_records_zero_sim_time(self):
        profiler = Profiler()
        with profiler.span("compile", "compile"):
            pass
        assert profiler.spans[0].sim_duration == 0.0


class TestObserverContract:
    """Profiling must not change what is measured."""

    def test_epoch_stats_identical_with_and_without_profiler(self, pd):
        kwargs = dict(device=V100, batch_size=128, max_batches=3, seed=7)
        plain = run_sampling_epoch(GSamplerSystem(), "graphsage", pd, **kwargs)
        profiler = Profiler()
        traced = run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd, profiler=profiler, **kwargs
        )
        assert traced.sim_seconds == plain.sim_seconds  # bit-identical
        assert traced.launches == plain.launches
        assert traced.peak_memory_bytes == plain.peak_memory_bytes
        assert traced.sm_percent == plain.sm_percent

    def test_epoch_spans_nest_compile_pass_batch_kernel(self, pd):
        profiler = Profiler()
        run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd,
            device=V100, batch_size=128, max_batches=3, profiler=profiler,
        )
        assert profiler.open_spans() == 0
        categories = {s.category for s in profiler.spans}
        assert {"compile", "pass", "epoch", "batch", "kernel"} <= categories
        by_name = {s.name: s for s in profiler.spans}
        epoch = by_name["epoch"]
        batches = [s for s in profiler.spans if s.category == "batch"]
        assert batches and all(s.parent == epoch.index for s in batches)
        # Every kernel span sits under a batch (via the exec span).
        for kernel in profiler.spans_by_category("kernel"):
            ancestor = kernel
            seen = set()
            while ancestor.parent != -1:
                ancestor = profiler.spans[ancestor.parent]
                seen.add(ancestor.category)
            assert "epoch" in seen
        # Pass spans nest under a compile span, except the lazy
        # super-batch rewrite, which runs at first execution.
        for p in profiler.spans_by_category("pass"):
            parent = profiler.spans[p.parent].category
            if p.name == "pass:superbatch":
                assert parent == "exec"
            else:
                assert parent == "compile"
        # Kernel sim time accounts for the whole ledger.
        ctx = profiler.context
        assert ctx is not None
        total = sum(s.sim_duration for s in profiler.spans_by_category("kernel"))
        assert total == pytest.approx(ctx.elapsed)


class TestPassStats:
    def test_compile_produces_per_pass_stats(self, pd):
        from repro.ir.passes.base import PassStat
        from repro.sampler import compile_sampler

        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            sampled = sub.individual_sample(K)
            return sampled, sampled.row()

        seeds = pd.train_ids[:64]
        sampler = compile_sampler(
            layer, pd.graph, seeds, constants={"K": 4}
        )
        assert sampler.pass_stats
        assert all(isinstance(s, PassStat) for s in sampler.pass_stats)
        names = {s.name for s in sampler.pass_stats}
        assert "dce" in names and "layout_selection" in names
        assert all(s.wall_seconds >= 0.0 for s in sampler.pass_stats)
        changed = [s for s in sampler.pass_stats if s.changed]
        assert changed and all(s.rewrites >= 1 for s in changed)
        unchanged = [s for s in sampler.pass_stats if not s.changed]
        assert all(s.rewrites == 0 for s in unchanged)
        assert all(
            s.nodes_before >= s.nodes_after for s in sampler.pass_stats
        ), "no optimization pass grows this one-layer program"

    def test_pass_report_aggregates(self, pd):
        from repro.sampler import compile_sampler

        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            sampled = sub.individual_sample(K)
            return sampled, sampled.row()

        sampler = compile_sampler(
            layer, pd.graph, pd.train_ids[:64], constants={"K": 4}
        )
        from repro.ir.passes.base import PassReport

        report = PassReport(
            applied=[s.name for s in sampler.pass_stats if s.changed],
            iterations=1,
            stats=sampler.pass_stats,
        )
        assert report.wall_seconds == pytest.approx(
            sum(s.wall_seconds for s in sampler.pass_stats)
        )
        counts = report.rewrite_counts()
        assert set(counts) == {s.name for s in sampler.pass_stats if s.changed}

    def test_superbatch_rewrite_is_measured(self, pd):
        from repro.sampler import compile_sampler

        def layer(A, frontiers, K):
            sub = A[:, frontiers]
            sampled = sub.individual_sample(K)
            return sampled, sampled.row()

        sampler = compile_sampler(
            layer, pd.graph, pd.train_ids[:64], constants={"K": 4}
        )
        before = len(sampler.pass_stats)
        sampler.superbatch_ir()
        assert len(sampler.pass_stats) == before + 1
        assert sampler.pass_stats[-1].name == "superbatch"
        sampler.superbatch_ir()  # cached: no second measurement
        assert len(sampler.pass_stats) == before + 1


class TestChromeExport:
    def _profiled_run(self, pd) -> Profiler:
        profiler = Profiler()
        run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd,
            device=V100, batch_size=128, max_batches=2, profiler=profiler,
        )
        return profiler

    def test_trace_structure(self, pd):
        trace = to_chrome_trace(self._profiled_run(pd))
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(e["dur"] >= 0 for e in complete)
        assert all(e["ts"] >= 0 for e in complete)
        assert {e["pid"] for e in complete} == {HOST_PID, DEVICE_PID}
        kernels = [e for e in complete if e["cat"] == "kernel"]
        assert any(e["pid"] == DEVICE_PID for e in kernels)
        metadata = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in metadata} == {HOST_PID, DEVICE_PID}

    def test_write_is_valid_json(self, pd, tmp_path):
        path = write_chrome_trace(self._profiled_run(pd), tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["traceEvents"]

    def test_device_track_nests_kernels_inside_batches(self, pd):
        profiler = self._profiled_run(pd)
        batches = {s.index: s for s in profiler.spans if s.category == "batch"}
        for kernel in profiler.spans_by_category("kernel"):
            ancestor = kernel
            while ancestor.parent != -1:
                ancestor = profiler.spans[ancestor.parent]
                if ancestor.index in batches:
                    assert ancestor.sim_start <= kernel.sim_start
                    assert kernel.sim_end <= ancestor.sim_end + 1e-12
                    break


class TestTextReport:
    def test_report_contains_table9_columns(self, pd):
        profiler = Profiler()
        stats = run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd,
            device=V100, batch_size=128, max_batches=2, profiler=profiler,
        )
        ctx = profiler.context
        report = build_text_report(
            ctx, title="Profile", wall_seconds=stats.wall_seconds
        )
        assert "SM utilization" in report
        assert "pool peak" in report
        assert "kernel launches" in report
        assert "Launches" in report  # per-kernel table header
        assert str(ctx.launch_count()) in report


class TestTrajectory:
    META = {"algorithm": "graphsage", "dataset": "pd", "device": "v100"}

    def _metrics(self, sim=1.0, launches=10, peak=1000, kernels=None):
        return {
            "sim_seconds": sim,
            "launches": launches,
            "peak_bytes": peak,
            "wall_seconds": 5.0,
            "time_by_kernel": dict(kernels or {"k": sim}),
        }

    def test_append_and_reload(self, tmp_path):
        path = bench_path(tmp_path, "t")
        record, previous = append_record(
            path, tag="t", meta=self.META, metrics=self._metrics()
        )
        assert previous is None and record["run"] == 1
        record2, previous2 = append_record(
            path, tag="t", meta=self.META, metrics=self._metrics(sim=1.1)
        )
        assert record2["run"] == 2
        assert previous2["metrics"]["sim_seconds"] == 1.0
        data = load_trajectory(path)
        assert len(data["records"]) == 2 and data["tag"] == "t"

    def test_comparator_flags_growth_beyond_threshold(self):
        old = self._metrics(sim=1.0, launches=10, peak=1000)
        new = self._metrics(sim=1.2, launches=10, peak=1050)
        flagged = compare_metrics(old, new, threshold=0.10)
        assert [r.metric for r in flagged] == ["sim_seconds", "kernel:k"]
        assert flagged[0].ratio == pytest.approx(1.2)
        # Below threshold: nothing flagged.
        assert not compare_metrics(old, self._metrics(sim=1.05), threshold=0.10)
        # Improvements are never regressions.
        assert not compare_metrics(old, self._metrics(sim=0.5), threshold=0.10)

    def test_comparator_flags_launches_and_peak(self):
        old = self._metrics()
        new = self._metrics(launches=20, peak=5000)
        metrics = {r.metric for r in compare_metrics(old, new)}
        assert metrics == {"launches", "peak_bytes"}

    def test_wall_seconds_never_flagged(self):
        old = self._metrics()
        new = dict(self._metrics(), wall_seconds=50.0)
        assert not compare_metrics(old, new)

    def test_compare_latest(self, tmp_path):
        path = bench_path(tmp_path, "t")
        append_record(path, tag="t", meta=self.META, metrics=self._metrics())
        assert compare_latest(path) == []  # single record: nothing to diff
        append_record(
            path, tag="t", meta=self.META, metrics=self._metrics(sim=2.0)
        )
        flagged = compare_latest(path, threshold=0.10)
        assert any(r.metric == "sim_seconds" for r in flagged)


class TestProfileCli:
    ARGS = [
        "profile", "graphsage", "--device", "v100", "--dataset", "pd",
        "--scale", "0.1", "--batch-size", "128", "--max-batches", "2",
    ]

    def test_profile_writes_trace_and_bench_record(self, tmp_path, capsys):
        assert main(self.ARGS + ["--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SM utilization" in out and "Pass pipeline" in out
        trace_path = tmp_path / "trace_gsampler_graphsage_pd_v100.json"
        trace = json.loads(trace_path.read_text())
        assert all(
            e.get("dur", 0) >= 0 for e in trace["traceEvents"]
        )
        bench = json.loads(
            (tmp_path / "BENCH_gsampler_graphsage_pd_v100.json").read_text()
        )
        assert len(bench["records"]) == 1
        metrics = bench["records"][0]["metrics"]
        assert metrics["sim_seconds"] > 0
        assert metrics["launches"] > 0
        assert metrics["time_by_kernel"]

    def test_profile_is_deterministic_across_runs(self, tmp_path, capsys):
        assert main(self.ARGS + ["--out-dir", str(tmp_path)]) == 0
        assert main(self.ARGS + ["--out-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        bench = json.loads(
            (tmp_path / "BENCH_gsampler_graphsage_pd_v100.json").read_text()
        )
        first, second = (r["metrics"] for r in bench["records"])
        assert first["sim_seconds"] == second["sim_seconds"]
        assert first["time_by_kernel"] == second["time_by_kernel"]

    def test_fail_on_regression_exit_code(self, tmp_path, capsys):
        assert main(self.ARGS + ["--out-dir", str(tmp_path)]) == 0
        # Rewrite history to claim the previous run was much cheaper, so
        # the next run must look like a regression.
        bench_file = tmp_path / "BENCH_gsampler_graphsage_pd_v100.json"
        data = json.loads(bench_file.read_text())
        data["records"][-1]["metrics"]["sim_seconds"] *= 0.5
        bench_file.write_text(json.dumps(data))
        code = main(
            self.ARGS + ["--out-dir", str(tmp_path), "--fail-on-regression"]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "REGRESSIONS" in out
        # Without the flag the regression is reported but not fatal.
        data = json.loads(bench_file.read_text())
        data["records"][-1]["metrics"]["sim_seconds"] *= 0.5
        bench_file.write_text(json.dumps(data))
        assert main(self.ARGS + ["--out-dir", str(tmp_path)]) == 0

    def test_unsupported_cell_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "profile", "ladies", "--system", "skywalker",
                "--scale", "0.1", "--out-dir", str(tmp_path),
            ]
        )
        assert code == 1
        assert "does not support" in capsys.readouterr().err
