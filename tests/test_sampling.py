"""Select-step tests: individual/collective sampling and the fused path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import new_rng
from repro.core.sampling import (
    collective_sample,
    fused_extract_individual_sample,
    individual_sample,
    uniform_walk_step,
)
from repro.errors import ShapeError
from repro.sparse import slice_columns, to_csc

from tests.conftest import random_coo, to_dense


def _csc(rng, rows=30, cols=10, nnz=120, weighted=True):
    return to_csc(random_coo(rng, rows=rows, cols=cols, nnz=nnz, weighted=weighted))


class TestIndividualSample:
    def test_fanout_respected(self, rng):
        csc = _csc(rng)
        out = individual_sample(csc, 3, rng=new_rng(0))
        assert out.shape == csc.shape
        assert np.all(out.col_degrees() <= 3)
        # Columns with >= 3 candidates return exactly 3.
        full = csc.col_degrees()
        np.testing.assert_array_equal(
            out.col_degrees(), np.minimum(full, 3)
        )

    def test_sampled_edges_are_subset(self, rng):
        csc = _csc(rng)
        out = individual_sample(csc, 4, rng=new_rng(1))
        dense_in = to_dense(csc)
        dense_out = to_dense(out)
        assert np.all((dense_out != 0) <= (dense_in != 0))
        # Edge values are preserved, not replaced by probabilities.
        mask = dense_out != 0
        np.testing.assert_allclose(dense_out[mask], dense_in[mask], rtol=1e-6)

    def test_without_replacement_no_duplicates(self, rng):
        csc = _csc(rng)
        out = individual_sample(csc, 5, rng=new_rng(2))
        rows, cols = out.rows, out.expand_cols()
        keys = rows * csc.shape[1] + cols
        assert len(np.unique(keys)) == len(keys)

    def test_with_replacement_reaches_fanout(self, rng):
        csc = _csc(rng)
        out = individual_sample(csc, 6, replace=True, rng=new_rng(3))
        nonempty = csc.col_degrees() > 0
        np.testing.assert_array_equal(
            out.col_degrees()[nonempty], 6
        )

    def test_bias_respected(self):
        # One column, two candidate rows with extreme bias.
        from repro.sparse import COO

        coo = COO(rows=[0, 1], cols=[0, 0], values=[1.0, 1.0], shape=(2, 1))
        csc = to_csc(coo)
        bias = np.array([1000.0, 0.001])
        hits0 = 0
        rng = new_rng(4)
        for _ in range(200):
            out = individual_sample(csc, 1, bias, rng=rng)
            hits0 += int(out.rows[0] == 0)
        assert hits0 > 190

    def test_zero_bias_edges_never_sampled(self, rng):
        csc = _csc(rng)
        bias = np.zeros(csc.nnz)
        bias[0] = 1.0
        out = individual_sample(csc, 3, bias, rng=new_rng(5))
        assert out.nnz == 1

    def test_invalid_fanout_rejected(self, rng):
        with pytest.raises(ShapeError):
            individual_sample(_csc(rng), 0)

    def test_probs_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            individual_sample(_csc(rng), 2, np.ones(3))


class TestCollectiveSample:
    def test_row_budget_respected(self, rng):
        csc = _csc(rng)
        result = collective_sample(csc, 7, rng=new_rng(0))
        assert result.matrix.shape == (7, csc.shape[1])
        assert len(result.selected_rows) == 7

    def test_only_selected_rows_kept(self, rng):
        csc = _csc(rng)
        probs = np.zeros(csc.shape[0])
        probs[[2, 5, 11]] = 1.0
        result = collective_sample(csc, 3, probs, rng=new_rng(1))
        np.testing.assert_array_equal(result.selected_rows, [2, 5, 11])
        dense = to_dense(csc)
        np.testing.assert_allclose(
            to_dense(result.matrix), dense[[2, 5, 11]], rtol=1e-6
        )

    def test_default_probs_aggregate_edge_bias(self, rng):
        # Rows without edges have zero default bias and are never picked.
        csc = _csc(rng, rows=50, cols=5, nnz=30)
        result = collective_sample(csc, 10, rng=new_rng(2))
        degrees = np.bincount(csc.rows, minlength=50)
        assert np.all(degrees[result.selected_rows] > 0)

    def test_probs_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            collective_sample(_csc(rng), 2, np.ones(3))


class TestFusedExtractSample:
    def test_matches_unfused_semantics(self, rng):
        """Fused extract+select must sample from exactly the same
        candidate sets as slice-then-sample."""
        csc = _csc(rng, rows=40, cols=40, nnz=300)
        frontiers = np.array([3, 17, 17, 39, 0])
        fused = fused_extract_individual_sample(csc, frontiers, 4, rng=new_rng(0))
        sliced = slice_columns(csc, frontiers)
        assert fused.shape == (40, 5)
        assert isinstance(sliced, type(csc))
        np.testing.assert_array_equal(
            fused.col_degrees(), np.minimum(sliced.col_degrees(), 4)
        )
        # Every fused edge exists in the sliced subgraph.
        dense_sub = to_dense(sliced)
        dense_fused = to_dense(fused)
        assert np.all((dense_fused != 0) <= (dense_sub != 0))

    def test_fused_writes_less_memory(self, rng):
        """The fusion's point: no materialized subgraph (Figure 5a)."""
        from repro.device import ExecutionContext, V100

        csc = _csc(rng, rows=500, cols=500, nnz=8000)
        frontiers = np.arange(200)
        fused_ctx = ExecutionContext(V100)
        fused_extract_individual_sample(
            csc, frontiers, 2, rng=new_rng(1), ctx=fused_ctx
        )
        eager_ctx = ExecutionContext(V100)
        sub = slice_columns(csc, frontiers, eager_ctx)
        individual_sample(sub, 2, rng=new_rng(1), ctx=eager_ctx)
        fused_written = sum(l.bytes_written for l in fused_ctx.launches)
        eager_written = sum(l.bytes_written for l in eager_ctx.launches)
        assert fused_written < 0.6 * eager_written

    def test_biased_fused_sampling(self, rng):
        csc = _csc(rng)
        bias = np.zeros(csc.nnz)
        bias[:5] = 1.0
        out = fused_extract_individual_sample(
            csc, np.arange(csc.shape[1]), 3, bias, rng=new_rng(2)
        )
        assert out.nnz <= 5


class TestWalkStep:
    def test_next_is_in_neighbor(self, rng):
        csc = _csc(rng, rows=30, cols=30, nnz=200)
        frontiers = np.arange(30)
        nxt = uniform_walk_step(csc, frontiers, rng=new_rng(0))
        dense = to_dense(csc)
        for f, n in zip(frontiers, nxt):
            if n >= 0:
                assert dense[n, f] != 0
            else:
                assert csc.col_degrees()[f] == 0

    def test_biased_walk_step(self, rng):
        csc = _csc(rng, rows=30, cols=30, nnz=200)
        bias = np.zeros(csc.nnz)
        bias[10] = 1.0
        frontiers = np.arange(30)
        nxt = uniform_walk_step(
            csc, frontiers, rng=new_rng(1), bias_edge_values=bias
        )
        # Only the column owning edge 10 can step; everyone else is -1.
        assert (nxt >= 0).sum() == 1


@given(st.integers(0, 2**31 - 1), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_individual_sample_invariants(seed, k):
    rng = np.random.default_rng(seed)
    csc = _csc(rng, rows=15, cols=8, nnz=int(rng.integers(0, 60)))
    out = individual_sample(csc, k, rng=rng)
    assert out.shape == csc.shape
    np.testing.assert_array_equal(
        out.col_degrees(), np.minimum(csc.col_degrees(), k)
    )


class TestCostModelParity:
    """The fused and unfused kernels must price equivalent work alike."""

    def _record(self, ctx, name):
        matches = [l for l in ctx.launches if l.name == name]
        assert matches, f"no {name} launch recorded"
        return matches[-1]

    def test_fused_flops_match_unfused_when_biased(self, rng):
        from repro.device import ExecutionContext

        csc = _csc(rng, rows=40, cols=40, nnz=300, weighted=True)
        frontiers = np.arange(12)
        fused_ctx = ExecutionContext()
        fused_extract_individual_sample(
            csc, frontiers, 3, rng=new_rng(0), ctx=fused_ctx
        )
        unfused_ctx = ExecutionContext()
        sub = slice_columns(csc, frontiers)
        individual_sample(sub, 3, rng=new_rng(0), ctx=unfused_ctx)
        fused = self._record(fused_ctx, "fused_extract_individual_sample")
        unfused = self._record(unfused_ctx, "individual_sample")
        # The candidate edge set is identical, and both paths generate a
        # key and run the race compare per candidate: 2 flops/edge.
        assert fused.flops == unfused.flops == sub.nnz * 2.0

    def test_fused_flops_match_unfused_when_uniform(self, rng):
        from repro.device import ExecutionContext

        csc = _csc(rng, rows=40, cols=40, nnz=300, weighted=False)
        frontiers = np.arange(12)
        fused_ctx = ExecutionContext()
        fused_extract_individual_sample(
            csc, frontiers, 3, rng=new_rng(0), ctx=fused_ctx
        )
        unfused_ctx = ExecutionContext()
        sub = slice_columns(csc, frontiers)
        individual_sample(sub, 3, rng=new_rng(0), ctx=unfused_ctx)
        fused = self._record(fused_ctx, "fused_extract_individual_sample")
        unfused = self._record(unfused_ctx, "individual_sample")
        assert fused.flops == unfused.flops == sub.nnz * 1.0

    def test_collective_replace_keeps_layer_width(self, rng):
        # A single deduplicated batch of draws used to shrink the layer
        # below k; redrawing until k distinct rows keeps the width.
        csc = _csc(rng, rows=50, cols=20, nnz=400, weighted=True)
        result = collective_sample(csc, 12, replace=True, rng=new_rng(0))
        assert len(result.selected_rows) == 12
        assert len(np.unique(result.selected_rows)) == 12
        assert result.matrix.shape == (12, csc.shape[1])

    def test_collective_replace_capped_by_available_rows(self, rng):
        probs = np.zeros(30)
        probs[:7] = 1.0
        csc = _csc(rng, rows=30, cols=10, nnz=90, weighted=True)
        result = collective_sample(
            csc, 20, node_probs=probs, replace=True, rng=new_rng(1)
        )
        np.testing.assert_array_equal(
            np.sort(result.selected_rows), np.arange(7)
        )

    def test_collective_unweighted_charges_no_value_bytes(self, rng):
        from repro.device import ExecutionContext

        import dataclasses as dc

        weighted = _csc(rng, rows=30, cols=12, nnz=150, weighted=True)
        unweighted = dc.replace(weighted, values=None)
        w_ctx, u_ctx = ExecutionContext(), ExecutionContext()
        collective_sample(weighted, 5, rng=new_rng(2), ctx=w_ctx)
        collective_sample(
            unweighted,
            5,
            node_probs=np.ones(unweighted.shape[0]),
            rng=new_rng(2),
            ctx=u_ctx,
        )
        w = self._record(w_ctx, "collective_sample")
        u = self._record(u_ctx, "collective_sample")
        # 8 bytes/edge for the row id; the weighted matrix adds 4 for the
        # value, the unweighted one must not charge values it never reads.
        assert w.bytes_read - u.bytes_read == weighted.nnz * 4

    def test_biased_walk_charges_candidate_rows(self, rng):
        from repro.device import ExecutionContext

        csc = _csc(rng, rows=30, cols=30, nnz=200, weighted=True)
        frontiers = np.arange(30)
        lengths = csc.col_degrees()[frontiers]
        bias = np.ones(csc.nnz)
        biased_ctx, uniform_ctx = ExecutionContext(), ExecutionContext()
        uniform_walk_step(
            csc, frontiers, rng=new_rng(3), ctx=biased_ctx, bias_edge_values=bias
        )
        uniform_walk_step(csc, frontiers, rng=new_rng(3), ctx=uniform_ctx)
        biased = self._record(biased_ctx, "walk_step")
        uniform = self._record(uniform_ctx, "walk_step")
        # The inverse-CDF scan touches every candidate edge's row id and
        # weight (8 + 4 bytes); the uniform path reads one row/frontier.
        assert biased.bytes_read == len(frontiers) * 2 * 8 + int(
            lengths.sum()
        ) * (8 + 4)
        assert uniform.bytes_read == len(frontiers) * 2 * 8 + len(frontiers) * 8
        assert biased.bytes_read > uniform.bytes_read
