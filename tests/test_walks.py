"""Walk-machinery tests: drivers, restart counting, top-k, induction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.walks import (
    WalkResult,
    induce_subgraph,
    restart_walk_visit_counts,
    top_k_per_segment,
    uniform_walk,
)
from repro.core import new_rng
from repro.device import ExecutionContext, V100

from tests.conftest import to_dense


class TestUniformWalk:
    def test_every_step_follows_an_edge(self, small_graph):
        result = uniform_walk(small_graph, np.arange(25), 10, rng=new_rng(0))
        dense = to_dense(small_graph)
        trace = result.trace
        assert result.walk_length == 10
        assert result.num_walkers == 25
        for t in range(10):
            for w in range(25):
                cur, nxt = trace[t, w], trace[t + 1, w]
                if cur >= 0 and nxt >= 0:
                    assert dense[nxt, cur] != 0

    def test_dead_walkers_stay_dead(self, small_graph):
        result = uniform_walk(small_graph, np.arange(25), 8, rng=new_rng(1))
        trace = result.trace
        for w in range(25):
            dead_from = np.flatnonzero(trace[:, w] == -1)
            if len(dead_from):
                assert np.all(trace[dead_from[0] :, w] == -1)

    def test_visited_nodes(self, small_graph):
        result = uniform_walk(small_graph, np.array([3]), 5, rng=new_rng(2))
        visited = result.visited_nodes()
        assert 3 in visited
        assert np.all(visited >= 0)

    def test_charges_one_launch_per_step(self, small_graph):
        ctx = ExecutionContext(V100)
        uniform_walk(small_graph, np.arange(10), 7, ctx=ctx, rng=new_rng(3))
        steps = [l for l in ctx.launches if l.name == "walk_step"]
        assert len(steps) == 7


class TestRestartWalks:
    def test_counts_are_positive_and_owned(self, small_graph):
        owner, node, count = restart_walk_visit_counts(
            small_graph,
            np.array([1, 2, 3]),
            num_walks=5,
            walk_length=4,
            restart_prob=0.3,
            rng=new_rng(4),
        )
        assert len(owner) == len(node) == len(count)
        assert np.all(count > 0)
        assert set(np.unique(owner)) <= {0, 1, 2}
        # owner array is sorted (segment order for top-k).
        assert np.all(np.diff(owner) >= 0)

    def test_total_visits_bounded_by_steps(self, small_graph):
        frontiers = np.array([1, 2])
        owner, node, count = restart_walk_visit_counts(
            small_graph,
            frontiers,
            num_walks=4,
            walk_length=6,
            restart_prob=0.5,
            rng=new_rng(5),
        )
        assert count.sum() == len(frontiers) * 4 * 6

    def test_high_restart_keeps_walkers_home(self, small_graph):
        owner, node, count = restart_walk_visit_counts(
            small_graph,
            np.array([7]),
            num_walks=10,
            walk_length=10,
            restart_prob=0.95,
            rng=new_rng(6),
        )
        # With near-certain restart, the source dominates the visits.
        by_node = dict(zip(node.tolist(), count.tolist()))
        assert by_node.get(7, 0) > 0.5 * count.sum()


class TestTopKPerSegment:
    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.floats(0, 100)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_python_reference(self, items, k):
        items.sort(key=lambda p: p[0])
        seg = np.array([p[0] for p in items])
        score = np.array([p[1] for p in items])
        keep = top_k_per_segment(seg, score, k)
        # Reference: per segment, the k largest scores (as multisets).
        picked: dict[int, list[float]] = {}
        for idx in keep:
            picked.setdefault(int(seg[idx]), []).append(float(score[idx]))
        for s in np.unique(seg):
            expected = sorted(
                (float(v) for g, v in items if g == s), reverse=True
            )[:k]
            assert sorted(picked.get(int(s), []), reverse=True) == pytest.approx(
                expected
            )

    def test_empty(self):
        out = top_k_per_segment(np.array([]), np.array([]), 3)
        assert len(out) == 0


class TestInduceSubgraph:
    def test_matches_dense_oracle(self, small_graph):
        nodes = np.array([2, 5, 8, 13])
        induced = induce_subgraph(small_graph, nodes)
        np.testing.assert_allclose(
            to_dense(induced),
            to_dense(small_graph)[np.ix_(nodes, nodes)],
            rtol=1e-6,
        )
        np.testing.assert_array_equal(induced.column(), nodes)

    def test_charges_context(self, small_graph):
        ctx = ExecutionContext(V100)
        induce_subgraph(small_graph, np.arange(10), ctx=ctx)
        assert ctx.launch_count() >= 2  # column slice + row slice
