"""Graph partitioners: determinism, balance, edge cut, shard views.

The contracts under test:

* both partitioners are pure functions of (graph, k, seed) — repeated
  calls produce identical assignments (what the shard-affinity routing
  fingerprint rests on);
* hash partitioning is balanced in expectation and structure-oblivious
  (edge cut near ``(k-1)/k``); greedy cuts far fewer edges on a
  clustered graph while keeping per-shard degree sums balanced;
* :class:`ShardView` answers ownership and remote-count queries
  consistently with the assignment, including duplicates and empties;
* validation rejects nonsense shard counts and unknown methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Matrix
from repro.datasets import load_dataset
from repro.errors import ShapeError
from repro.partition import (
    PARTITION_METHODS,
    GraphPartition,
    ShardView,
    greedy_partition,
    hash_assignment,
    hash_partition,
    make_partition,
)
from repro.sparse import CSC


@pytest.fixture(scope="module")
def pd_graph():
    return load_dataset("pd", scale=0.25).graph


def _two_cliques(size: int = 8) -> Matrix:
    """Two disjoint cliques — the ideal 2-shard instance (zero cut)."""
    n = 2 * size
    cols = []
    rows = []
    for block in (range(size), range(size, n)):
        block = list(block)
        for v in block:
            cols.append(v)
            rows.extend(u for u in block if u != v)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v in cols:
        indptr[v + 1] = size - 1
    indptr = np.cumsum(indptr)
    return Matrix(
        CSC(
            indptr=indptr,
            rows=np.array(rows, dtype=np.int64),
            values=None,
            shape=(n, n),
        )
    )


class TestHashPartition:
    def test_deterministic(self, pd_graph):
        a = hash_partition(pd_graph, 4, seed=3)
        b = hash_partition(pd_graph, 4, seed=3)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.edge_cut == b.edge_cut

    def test_seed_changes_assignment(self, pd_graph):
        a = hash_partition(pd_graph, 4, seed=0)
        b = hash_partition(pd_graph, 4, seed=1)
        assert np.any(a.assignment != b.assignment)

    def test_balanced_in_expectation(self):
        assignment = hash_assignment(20_000, 4, seed=0)
        counts = np.bincount(assignment, minlength=4)
        # Each shard within 5% of the fair share at n=20k.
        np.testing.assert_allclose(counts, 5000, rtol=0.05)

    def test_edge_cut_near_oblivious_expectation(self, pd_graph):
        # A structure-oblivious assignment cuts ~(k-1)/k of edges.
        part = hash_partition(pd_graph, 4, seed=0)
        assert 0.65 < part.edge_cut < 0.85

    def test_not_plain_modulo(self):
        assignment = hash_assignment(64, 4, seed=0)
        assert np.any(assignment != np.arange(64) % 4)


class TestGreedyPartition:
    def test_deterministic(self, pd_graph):
        a = greedy_partition(pd_graph, 4)
        b = greedy_partition(pd_graph, 4)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_cuts_fewer_edges_than_hash(self, pd_graph):
        hashed = hash_partition(pd_graph, 4, seed=0)
        greedy = greedy_partition(pd_graph, 4)
        assert greedy.edge_cut < hashed.edge_cut

    def test_degree_balanced(self, pd_graph):
        greedy = greedy_partition(pd_graph, 4)
        # Max shard within 10% of the mean shard degree sum.
        assert greedy.degree_balance() < 1.1

    def test_separates_disjoint_cliques(self):
        part = greedy_partition(_two_cliques(), 2)
        # Perfect instance: each clique on its own shard, zero cut.
        assert part.edge_cut == 0.0
        assert len(np.unique(part.assignment[:8])) == 1
        assert len(np.unique(part.assignment[8:])) == 1
        assert part.assignment[0] != part.assignment[8]

    def test_assigns_every_node(self, pd_graph):
        part = greedy_partition(pd_graph, 3)
        assert np.all(part.assignment >= 0)
        assert np.all(part.assignment < 3)


class TestShardView:
    def test_views_partition_the_nodes(self, pd_graph):
        part = make_partition("hash", pd_graph, 3, seed=0)
        views = part.views()
        all_nodes = np.concatenate([v.nodes for v in views])
        assert len(all_nodes) == part.num_nodes
        assert len(np.unique(all_nodes)) == part.num_nodes

    def test_contains_matches_assignment(self, pd_graph):
        part = make_partition("hash", pd_graph, 3, seed=0)
        probe = np.arange(0, part.num_nodes, 7, dtype=np.int64)
        for view in part.views():
            np.testing.assert_array_equal(
                view.contains(probe), part.shard_of(probe) == view.shard_id
            )

    def test_remote_count_counts_duplicates(self, pd_graph):
        part = make_partition("hash", pd_graph, 2, seed=0)
        view = part.view(0)
        local = view.nodes[0]
        remote = part.view(1).nodes[0]
        nodes = np.array([local, remote, remote, local], dtype=np.int64)
        assert view.remote_count(nodes) == 2

    def test_empty_queries(self, pd_graph):
        view = make_partition("hash", pd_graph, 2, seed=0).view(0)
        empty = np.array([], dtype=np.int64)
        assert view.remote_count(empty) == 0
        assert view.contains(empty).size == 0

    def test_degree_sum_matches_view(self, pd_graph):
        part = make_partition("greedy", pd_graph, 2)
        degrees = np.diff(pd_graph.get("csc").indptr)
        for view in part.views():
            assert view.degree_sum == int(degrees[view.nodes].sum())


class TestValidation:
    def test_shard_count(self, pd_graph):
        for method in PARTITION_METHODS:
            with pytest.raises(ShapeError):
                make_partition(method, pd_graph, 0)

    def test_unknown_method(self, pd_graph):
        with pytest.raises(ShapeError):
            make_partition("metis", pd_graph, 2)

    def test_view_range(self, pd_graph):
        part = make_partition("hash", pd_graph, 2, seed=0)
        with pytest.raises(ShapeError):
            part.view(2)
        with pytest.raises(ShapeError):
            part.view(-1)

    def test_partition_types(self, pd_graph):
        part = make_partition("hash", pd_graph, 2, seed=0)
        assert isinstance(part, GraphPartition)
        assert all(isinstance(v, ShardView) for v in part.views())
