"""Benchmark-harness tests: epoch measurement and table helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import GSamplerSystem, make_system
from repro.bench import (
    EpochStats,
    format_table,
    measure_cell,
    normalize,
    run_sampling_epoch,
    speedup_over_best_baseline,
)
from repro.datasets import load_dataset
from repro.device import V100, get_device


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.1)


class TestRunEpoch:
    def test_epoch_stats_fields(self, pd):
        stats = run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd, device=V100,
            batch_size=128, max_batches=3,
        )
        assert stats.system == "gSampler"
        assert stats.algorithm == "graphsage"
        assert stats.dataset == "pd"
        assert stats.num_batches == 3
        assert stats.sim_seconds > 0
        assert stats.wall_seconds > 0
        assert stats.launches > 0
        assert stats.per_batch_ms() == pytest.approx(
            stats.sim_seconds * 1e3 / 3
        )

    def test_superbatch_used_only_when_enabled(self, pd):
        from repro.sampler import OptimizationConfig

        on = run_sampling_epoch(
            GSamplerSystem(), "graphsage", pd, device=V100,
            batch_size=64, max_batches=4, superbatch=4,
        )
        off = run_sampling_epoch(
            GSamplerSystem(OptimizationConfig(superbatch=False)),
            "graphsage", pd, device=V100,
            batch_size=64, max_batches=4, superbatch=4,
        )
        assert on.sim_seconds < off.sim_seconds

    def test_deterministic_given_seed(self, pd):
        a = run_sampling_epoch(
            GSamplerSystem(), "ladies", pd, device=V100,
            batch_size=64, max_batches=2, seed=5,
        )
        b = run_sampling_epoch(
            GSamplerSystem(), "ladies", pd, device=V100,
            batch_size=64, max_batches=2, seed=5,
        )
        assert a.sim_seconds == pytest.approx(b.sim_seconds)


class TestMeasureCell:
    def test_unsupported_cell_is_none(self):
        assert measure_cell(
            "gunrock", "ladies", "pd", scale=0.1, max_batches=1
        ) is None

    def test_cpu_system_forced_onto_cpu_device(self):
        stats = measure_cell(
            "dgl-cpu", "graphsage", "pd", scale=0.1, max_batches=1
        )
        assert stats is not None
        assert stats.device == "cpu"

    def test_gpu_system_uses_named_device(self):
        stats = measure_cell(
            "gsampler", "graphsage", "pd", device_name="t4",
            scale=0.1, max_batches=1,
        )
        assert stats is not None
        assert stats.device == "t4"
        assert get_device("t4").name == "t4"


class TestHelpers:
    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 6.0}, "a")
        assert out == {"a": 1.0, "b": 3.0}

    def test_speedup_over_best_baseline(self):
        rows = {"gsampler": 1.0, "x": 5.0, "y": 3.0, "z": None}
        assert speedup_over_best_baseline(rows, "gsampler") == 3.0

    def test_speedup_with_no_baselines(self):
        assert math.isnan(
            speedup_over_best_baseline({"gsampler": 1.0}, "gsampler")
        )

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
