"""Fault tolerance & elasticity: failure injection, failover, autoscaling.

The contracts under test:

* a :class:`FailureSpec` is a deterministic schedule (validation, seeded
  construction, equality under equal arguments);
* a kill orphans the victim's queued + in-flight requests: ``shed``
  loses them, ``retry`` re-routes them within a bounded budget, and
  hedged retries resolve first-completion-wins;
* failover masks dead replicas from every router; the blind
  (``failover=False``) baseline loses everything sent to the corpse;
* revival pays spin-up plus a re-replication transfer before the
  replica is routable again;
* the autoscaler grows the fleet under load, drains it when idle,
  respects its bounds/cooldown, and the GPU-time meter makes the
  elastic-vs-static comparison honest;
* chaos sessions are exactly as deterministic as static ones, and
  failure-free autoscaler-off sessions stay bit-identical to their pins
  (the pins themselves live in test_serve.py; here we check the classic
  report surface is untouched).
"""

from __future__ import annotations

import math

import pytest

from repro.datasets import load_dataset
from repro.device import NVLINK, PCIE, V100
from repro.errors import ServeError
from repro.serve import (
    AutoscalePolicy,
    Autoscaler,
    FailureEvent,
    FailureSpec,
    ServePolicy,
    WorkloadSpec,
    run_cluster_session,
)


@pytest.fixture(scope="module")
def pd():
    return load_dataset("pd", scale=0.25)


#: A stream hot enough that every replica sees sustained traffic.
SPEC = WorkloadSpec(num_requests=300, arrival_rate=150_000.0, seed=7)
POLICY = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32, slo=2e-3)


def _chaos(pd, *, failures=None, autoscale=None, replicas=2, router="jsq",
           spec=SPEC, policy=POLICY, seed=7):
    _, report = run_cluster_session(
        pd,
        device=V100,
        spec=spec,
        policy=policy,
        num_replicas=replicas,
        router=router,
        failures=failures,
        autoscale=autoscale,
        seed=seed,
    )
    return report


# ----------------------------------------------------------------------
# Schedules and policies: validation + determinism
# ----------------------------------------------------------------------
class TestSpecs:
    def test_failure_event_validation(self):
        with pytest.raises(ServeError):
            FailureEvent(time=-1.0, replica=0)
        with pytest.raises(ServeError):
            FailureEvent(time=0.0, replica=-1)
        with pytest.raises(ServeError):
            FailureEvent(time=0.0, replica=0, downtime=0.0)

    def test_failure_spec_validation(self):
        with pytest.raises(ServeError):
            FailureSpec(events=(), orphans="pray")
        with pytest.raises(ServeError):
            FailureSpec(events=(), max_retries=-1)
        with pytest.raises(ServeError):
            FailureSpec(events=(), spinup=-1.0)

    def test_random_schedule_is_deterministic(self):
        kwargs = dict(num_kills=3, num_replicas=4, horizon=0.01, seed=5)
        a = FailureSpec.random(**kwargs)
        b = FailureSpec.random(**kwargs)
        assert a.events == b.events
        assert [e.time for e in a.events] == sorted(e.time for e in a.events)
        assert all(0 <= e.replica < 4 for e in a.events)
        assert all(0.0 < e.time < 0.01 for e in a.events)

    def test_random_schedule_validation(self):
        with pytest.raises(ServeError):
            FailureSpec.random(num_kills=0, num_replicas=2, horizon=1.0)
        with pytest.raises(ServeError):
            FailureSpec.random(num_kills=1, num_replicas=0, horizon=1.0)
        with pytest.raises(ServeError):
            FailureSpec.random(num_kills=1, num_replicas=2, horizon=0.0)

    def test_autoscale_policy_validation(self):
        with pytest.raises(ServeError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ServeError):
            AutoscalePolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ServeError):
            AutoscalePolicy(interval=0.0)
        with pytest.raises(ServeError):
            AutoscalePolicy(high_p99=-1.0)
        with pytest.raises(ServeError):
            AutoscalePolicy(high_p99=1e-3, low_p99=2e-3)
        with pytest.raises(ServeError):
            AutoscalePolicy(low_occupancy=5.0, high_occupancy=2.0)
        with pytest.raises(ServeError):
            AutoscalePolicy(min_batch=8, max_batch=4)
        assert AutoscalePolicy(high_p99=4e-3).scale_in_p99 == 2e-3
        assert AutoscalePolicy(high_p99=4e-3, low_p99=1e-3).scale_in_p99 == 1e-3

    def test_cluster_rejects_out_of_fleet_kill(self, pd):
        with pytest.raises(ServeError):
            _chaos(pd, failures=FailureSpec.single_kill(5, 1e-3), replicas=2)

    def test_autoscale_rejects_partition(self, pd):
        with pytest.raises(ServeError):
            run_cluster_session(
                pd,
                device=V100,
                spec=SPEC,
                policy=POLICY,
                num_replicas=2,
                partition="hash",
                autoscale=AutoscalePolicy(max_replicas=2),
                seed=7,
            )

    def test_autoscale_rejects_initial_fleet_outside_bounds(self, pd):
        with pytest.raises(ServeError):
            run_cluster_session(
                pd,
                device=V100,
                spec=SPEC,
                policy=POLICY,
                num_replicas=3,
                autoscale=AutoscalePolicy(min_replicas=1, max_replicas=2),
                seed=7,
            )


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class TestFailures:
    def test_shed_orphans_are_lost(self, pd):
        report = _chaos(
            pd,
            failures=FailureSpec.single_kill(1, 8e-4, orphans="shed"),
        )
        assert report.elastic
        assert report.failures == 1
        assert report.lost > 0
        assert report.retried == 0
        assert report.availability < 1.0
        # Conservation: every offered request is answered, shed, or lost.
        assert report.completed + report.shed + report.lost == report.requests

    def test_retry_failover_recovers_orphans(self, pd):
        report = _chaos(pd, failures=FailureSpec.single_kill(1, 8e-4))
        assert report.failures == 1
        assert report.retried > 0
        assert report.lost == 0
        assert report.availability == 1.0
        # Retried requests carry the original arrival: their latency
        # includes the failure, so they sit in the tail.
        retried = [log for log in report.logs if log.retries > 0]
        assert retried
        assert all(log.completed for log in retried)

    def test_no_failover_loses_traffic_sent_to_corpse(self, pd):
        blind = _chaos(
            pd,
            failures=FailureSpec.single_kill(
                1, 8e-4, failover=False, orphans="shed"
            ),
        )
        masked = _chaos(
            pd,
            failures=FailureSpec.single_kill(1, 8e-4, orphans="shed"),
        )
        # The blind router keeps feeding the corpse for the rest of the
        # session; with failover only the orphans at kill time are lost.
        assert blind.lost > masked.lost
        assert blind.availability < masked.availability

    def test_in_flight_orphans_are_scrubbed_not_answered(self, pd):
        report = _chaos(
            pd,
            failures=FailureSpec.single_kill(1, 8e-4, orphans="shed"),
        )
        for log in report.logs:
            if log.admitted and not log.completed:
                assert math.isnan(log.completion)
                assert log.batch_id == -1

    def test_retry_budget_bounds_reroutes(self, pd):
        report = _chaos(pd, failures=FailureSpec.single_kill(1, 8e-4))
        assert all(
            log.retries <= report.logs[0].retries + 2 for log in report.logs
        )
        assert max(log.retries for log in report.logs) <= 2

    def test_revival_restores_service(self, pd):
        downtime = 2e-4
        report = _chaos(
            pd,
            failures=FailureSpec.single_kill(
                1, 8e-4, downtime=downtime, spinup=1e-4
            ),
        )
        assert report.availability == 1.0
        assert report.reprovision_bytes > 0
        stats = report.per_replica[1]
        assert stats.failures == 1
        # The victim serves again after its revival window: at least one
        # completion routed to it lies past kill + downtime + spinup.
        revived_done = [
            log
            for log in report.logs
            if log.replica == 1 and log.completed and log.start > 8e-4 + downtime
        ]
        assert revived_done

    def test_permanent_kill_never_returns(self, pd):
        report = _chaos(pd, failures=FailureSpec.single_kill(1, 8e-4))
        assert report.reprovision_bytes == 0
        late = [
            log
            for log in report.logs
            if log.replica == 1 and log.completed and log.start > 8e-4
        ]
        assert not late

    def test_hedged_retry_first_completion_wins(self, pd):
        report = _chaos(
            pd,
            replicas=3,
            failures=FailureSpec.single_kill(1, 8e-4, hedge=True),
        )
        assert report.availability == 1.0
        assert report.hedged > 0
        hedged = [log for log in report.logs if log.hedged]
        assert all(log.completed for log in hedged)
        # The winning copy's replica must have been alive to answer.
        assert all(log.replica != 1 for log in hedged)

    def test_uptime_meter_stops_at_kill(self, pd):
        report = _chaos(pd, failures=FailureSpec.single_kill(1, 8e-4))
        up = {s.replica_id: s.uptime_seconds for s in report.per_replica}
        # The victim's meter closed at the kill; the survivor ran the
        # whole session.
        assert up[1] == pytest.approx(8e-4)
        assert up[0] > up[1]
        assert report.gpu_seconds == pytest.approx(up[0] + up[1])


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
class TestAutoscaler:
    def test_scales_up_under_load(self, pd):
        report = _chaos(
            pd,
            replicas=1,
            autoscale=AutoscalePolicy(
                min_replicas=1,
                max_replicas=4,
                interval=2e-4,
                high_p99=1e-3,
                cooldown=4e-4,
                high_occupancy=6.0,
            ),
        )
        assert report.elastic
        assert report.scale_ups >= 1
        assert report.reprovision_bytes > 0
        # Activated standbys actually served traffic.
        assert sum(
            1 for s in report.per_replica if s.completed > 0
        ) > 1

    def test_respects_max_replicas(self, pd):
        report = _chaos(
            pd,
            replicas=1,
            autoscale=AutoscalePolicy(
                min_replicas=1,
                max_replicas=2,
                interval=1e-4,
                high_p99=1e-4,  # impossibly tight: always "hot"
                cooldown=1e-4,
            ),
        )
        assert report.scale_ups <= 1  # 1 -> 2 is the only legal move

    def test_gpu_seconds_bounded_by_fleet_time(self, pd):
        report = _chaos(
            pd,
            replicas=1,
            autoscale=AutoscalePolicy(
                min_replicas=1, max_replicas=4, interval=2e-4, high_p99=1e-3
            ),
        )
        assert 0.0 < report.gpu_seconds <= 4 * report.makespan * 1.01
        # Elastic capacity costs less than keeping the max fleet up.
        assert report.gpu_seconds < 4 * report.makespan

    def test_tuner_moves_batching_knobs(self, pd):
        simulator, report = run_cluster_session(
            pd,
            device=V100,
            spec=SPEC,
            policy=POLICY,
            num_replicas=2,
            router="jsq",
            autoscale=AutoscalePolicy(
                min_replicas=1,
                max_replicas=2,
                interval=2e-4,
                high_p99=1e-3,
                tune_batching=True,
                min_batch=1,
                max_batch=64,
            ),
            seed=7,
        )
        assert report.tune_moves > 0
        tuned = [r.policy.max_batch for r in simulator.replicas]
        assert any(b != POLICY.max_batch for b in tuned)
        assert all(1 <= b <= 64 for b in tuned)

    def test_decide_holds_during_cooldown(self):
        scaler = Autoscaler(
            AutoscalePolicy(interval=1e-4, cooldown=1.0, high_p99=1e-6)
        )
        scaler.record(0.0, "up", 0, 2)
        # Any signal inside the cooldown window is ignored.
        assert scaler.decide(0.5, []) is None

    def test_occupancy_infinite_with_no_routable_replica(self):
        scaler = Autoscaler(AutoscalePolicy())
        assert scaler.occupancy([], 0.0) == float("inf")

    def test_static_report_is_not_elastic(self, pd):
        report = _chaos(pd)
        assert not report.elastic
        assert report.gpu_seconds == 0.0
        metrics = report.to_metrics()
        assert "availability" not in metrics
        assert "scale_ups" not in metrics


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_chaos_session_is_deterministic(self, pd):
        failures = FailureSpec.random(
            num_kills=2, num_replicas=3, horizon=1.5e-3, seed=3, downtime=5e-4
        )
        a = _chaos(pd, replicas=3, failures=failures)
        b = _chaos(pd, replicas=3, failures=failures)
        assert str(a.fingerprint()) == str(b.fingerprint())
        assert a.availability == b.availability
        assert a.gpu_seconds == b.gpu_seconds

    def test_elastic_session_is_deterministic(self, pd):
        autoscale = AutoscalePolicy(
            min_replicas=1,
            max_replicas=3,
            interval=2e-4,
            high_p99=1e-3,
            tune_batching=True,
        )
        a = _chaos(pd, replicas=1, autoscale=autoscale)
        b = _chaos(pd, replicas=1, autoscale=autoscale)
        assert str(a.fingerprint()) == str(b.fingerprint())
        assert a.scale_ups == b.scale_ups
        assert a.tune_moves == b.tune_moves

    def test_failure_free_run_matches_static(self, pd):
        """A failure spec whose kills never fire (empty schedule) and no
        autoscaler must not perturb the classic walk."""
        static = _chaos(pd)
        chaos = _chaos(pd, failures=FailureSpec(events=()))
        assert str(static.fingerprint()) == str(chaos.fingerprint())
        # The control plane still reports (elastic flag), but nothing
        # else differs.
        assert chaos.elastic
        assert chaos.failures == 0
        assert chaos.lost == 0


# ----------------------------------------------------------------------
# Interconnect: chunked re-replication stream
# ----------------------------------------------------------------------
class TestBulkTransfer:
    def test_matches_single_transfer_under_one_chunk(self):
        assert NVLINK.bulk_transfer_time(1024) == NVLINK.transfer_time(1024)

    def test_charges_latency_per_chunk(self):
        chunk = 64 * 2**20
        nbytes = 3 * chunk
        expected = 3 * PCIE.latency + nbytes / PCIE.bandwidth
        assert PCIE.bulk_transfer_time(nbytes) == pytest.approx(expected)

    def test_zero_bytes_is_free(self):
        assert NVLINK.bulk_transfer_time(0) == 0.0

    def test_validation(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            NVLINK.bulk_transfer_time(-1)
        with pytest.raises(DeviceError):
            NVLINK.bulk_transfer_time(10, chunk_bytes=0)
