#!/usr/bin/env python
"""Quickstart: write a sampler, compile it, run it, inspect the costs.

This walks the full gSampler workflow from Figure 4 of the paper:

1. build (or load) a graph as an adjacency :class:`Matrix`;
2. write a one-layer sampling function against the matrix-centric API;
3. ``compile_sampler`` traces it into a data-flow IR and optimizes it;
4. run mini-batches under a simulated device and read the ledger.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import OptimizationConfig, compile_sampler, from_edges, new_rng
from repro.device import ExecutionContext, V100


def sage_layer(A, frontiers, K):
    """GraphSAGE's layer, verbatim from Figure 3(a) of the paper."""
    sub_A = A[:, frontiers]
    sample_A = sub_A.individual_sample(K)
    return sample_A, sample_A.row()


def main() -> None:
    # 1. A small random graph: edge u -> v is the matrix entry A[u, v].
    rng = np.random.default_rng(0)
    num_nodes = 10_000
    src = rng.integers(0, num_nodes, 150_000)
    dst = rng.integers(0, num_nodes, 150_000)
    graph = from_edges(src, dst, num_nodes)
    print(f"graph: {num_nodes} nodes, {graph.nnz} edges")

    # 2-3. Compile the sampler. Constants like the fanout K are baked in
    # at trace time; the pass log shows what the optimizer did.
    seeds = rng.choice(num_nodes, 512, replace=False)
    sampler = compile_sampler(sage_layer, graph, seeds, constants={"K": 10})
    print("\noptimized IR:")
    print(sampler.ir.pretty())
    print("passes applied:", sampler.pass_log)

    # 4. Run a mini-batch on the simulated V100 and inspect the costs.
    ctx = ExecutionContext(V100)
    sample, next_frontiers = sampler.run(seeds, ctx=ctx, rng=new_rng(1))
    print(f"\nsampled block: shape={sample.shape}, edges={sample.nnz}")
    print(f"next frontiers: {len(next_frontiers)} nodes")
    print(f"simulated time: {ctx.elapsed * 1e6:.1f} us "
          f"in {ctx.launch_count()} kernel launches")
    print(f"peak device memory: {ctx.memory.peak_bytes / 1024:.1f} KiB")

    # Compare with unoptimized (eager) execution — the fusion payoff.
    plain = compile_sampler(
        sage_layer, graph, seeds, constants={"K": 10},
        config=OptimizationConfig.plain(),
    )
    plain_ctx = ExecutionContext(V100)
    plain.run(seeds, ctx=plain_ctx, rng=new_rng(1))
    print(f"\neager execution:  {plain_ctx.elapsed * 1e6:.1f} us, "
          f"{plain_ctx.memory.peak_bytes / 1024:.1f} KiB peak")
    print(f"optimized speedup: {plain_ctx.elapsed / ctx.elapsed:.2f}x")

    # Super-batch several mini-batches through one launch sequence.
    batches = [rng.choice(num_nodes, 512, replace=False) for _ in range(8)]
    sb_ctx = ExecutionContext(V100)
    results = sampler.run_superbatch(batches, ctx=sb_ctx, rng=new_rng(2))
    per_batch = sb_ctx.elapsed / len(results) * 1e6
    print(f"\nsuper-batched: {len(results)} batches, "
          f"{per_batch:.1f} us/batch (vs {ctx.elapsed * 1e6:.1f} us alone)")


if __name__ == "__main__":
    main()
