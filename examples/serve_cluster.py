#!/usr/bin/env python
"""Walk through multi-replica serving: routers, shards, the link tax.

One workload — 500 heterogeneous requests (2-64 seeds each, the mix of
long-history and fresh users) at 300k rps offered — served by a
4-replica V100 cluster under every routing policy:

1. **round_robin** — blind rotation.  Perfectly count-balanced, but it
   stacks heavy requests behind heavy requests, so the tail pays;
2. **jsq** — join-shortest-queue on outstanding requests.  Routes
   around busy replicas; the p99 win over round-robin is the crossover
   the cluster benchmark pins;
3. **po2** — two seeded random choices, keep the less loaded.  Most of
   JSQ's benefit with two probes instead of full state;
4. **shard** — shard-affinity over a greedy graph partition.  Requests
   follow their seed nodes' shard; frontier rows sampled outside the
   shard hop the NVLink and show up as the cross-shard traffic column.

Run:  python examples/serve_cluster.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.serve import ServePolicy, WorkloadSpec, run_cluster_session

REPLICAS = 4


def run(ds, router, partition=None):
    spec = WorkloadSpec(
        num_requests=500,
        arrival_rate=300_000.0,
        seeds_per_request=2,
        max_seeds_per_request=64,
        seed=7,
    )
    policy = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32)
    _, report = run_cluster_session(
        ds,
        device=V100,
        spec=spec,
        policy=policy,
        num_replicas=REPLICAS,
        router=router,
        partition=partition,
        link="nvlink",
        seed=7,
    )
    spread = max(s.requests for s in report.per_replica) - min(
        s.requests for s in report.per_replica
    )
    return [
        router + (f" + {partition}" if partition else ""),
        f"{report.p50_ms:.3f}",
        f"{report.p99_ms:.3f}",
        str(report.shed),
        str(spread),
        f"{report.cross_shard_bytes / 2**20:.2f}",
        f"{report.link_seconds * 1e3:.3f}",
    ]


def main() -> None:
    ds = load_dataset("pd", scale=0.25)
    rows = [
        run(ds, "round_robin"),
        run(ds, "jsq"),
        run(ds, "po2"),
        run(ds, "shard", partition="greedy"),
    ]
    print(
        format_table(
            ["Router", "p50 (ms)", "p99 (ms)", "Shed", "Req spread",
             "Remote MiB", "Link (ms)"],
            rows,
            title=(
                f"Routing policies — graphsage/PD/V100, {REPLICAS} "
                "replicas, 500 heterogeneous requests (2-64 seeds) at "
                "300k rps offered"
            ),
        )
    )
    print(
        "\nReading the table: round-robin balances request *counts* but\n"
        "not *work* — with heterogeneous request sizes its tail lags\n"
        "JSQ, which routes each arrival to the replica with the fewest\n"
        "outstanding requests.  po2 approximates JSQ with two seeded\n"
        "probes.  Shard-affinity ignores load entirely to follow data\n"
        "locality: its request spread is the widest, and it is the only\n"
        "policy paying the cross-shard link columns — frontier rows\n"
        "sampled outside the owning replica's shard crossing the NVLink."
    )


if __name__ == "__main__":
    main()
