#!/usr/bin/env python
"""PASS: model-driven sampling with trainable attention projections.

PASS (Figure 3c of the paper) is the hardest algorithm class for
existing samplers: the sampling bias itself comes from trainable
parameters, so every batch interleaves SDDMM attention kernels with the
select step, and the projections update between batches.  This example
runs the full loop: sample with the current parameters, score the
sampled neighborhoods, apply a gradient step to the projections, and
watch the sampling bias drift toward informative neighbors.

Run:  python examples/pass_attention_training.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_algorithm
from repro.datasets import load_dataset
from repro.device import ExecutionContext, V100
from repro.core import new_rng


def main() -> None:
    dataset = load_dataset("pd", scale=0.3)
    seeds = dataset.train_ids[:256]

    algo = make_algorithm("pass", fanout=8, num_layers=2, dim=8)
    pipeline = algo.build(dataset.graph, seeds, features=dataset.features)
    print("PASS is model-driven: super-batching is disabled "
          f"(supports_superbatch={pipeline.supports_superbatch})")
    print("traced + fused IR of one layer:")
    print(pipeline.samplers[0].ir.pretty())

    rng = new_rng(0)
    for step in range(5):
        ctx = ExecutionContext(V100)
        sample = pipeline.sample_batch(seeds, ctx=ctx, rng=rng)
        # A toy REINFORCE-style signal: reward neighborhoods whose labels
        # agree with their frontier's label, and nudge the projections.
        agreements = []
        for layer in sample.layers:
            rows, cols, _ = layer.matrix.to_coo_arrays()
            agreements.append(
                float(
                    (dataset.labels[rows] == dataset.labels[cols]).mean()
                )
            )
        signal = float(np.mean(agreements)) - 0.5
        assert algo.W1 is not None and algo.W2 is not None
        algo.apply_gradients(
            -signal * algo.W1, -signal * algo.W2,
            -signal * np.ones(3, dtype=np.float32),
            lr=0.05,
        )
        print(
            f"step {step}: label agreement "
            f"{[f'{a:.3f}' for a in agreements]}, "
            f"sampling time {ctx.elapsed * 1e6:.1f} us, "
            f"W3 mix {np.round(algo.W3, 3)}"
        )


if __name__ == "__main__":
    main()
