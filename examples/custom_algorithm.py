#!/usr/bin/env python
"""Express a *new* sampling algorithm with the matrix-centric API.

The paper's generality claim (Section 3.3) is that novel algorithms drop
out of the same ECSF vocabulary.  This example invents one — "weighted
layer-wise sampling with per-frontier temperature" — and shows that it
gets traced, optimized, and super-batched without any framework changes:

* extract the frontier subgraph,
* compute per-candidate bias as (edge-weight mass) ** temperature via a
  map + reduce that the optimizer fuses,
* collectively sample a fixed-width layer,
* finalize with debiased edge weights.

Run:  python examples/custom_algorithm.py
"""

from __future__ import annotations

import numpy as np

from repro import compile_sampler, from_edges, new_rng
from repro.device import ExecutionContext, V100


def tempered_layer(A, frontiers, K, temperature):
    """A custom layer-wise sampler: bias = (sum of edge weights) ** T."""
    sub_A = A[:, frontiers]
    mass = sub_A.sum(axis=0)
    bias = mass**temperature
    sample_A = sub_A.collective_sample(K, bias)
    sample_A = sample_A.div(bias[sample_A.row()], axis=0)
    return sample_A, sample_A.row()


def main() -> None:
    rng = np.random.default_rng(3)
    n = 20_000
    src = rng.integers(0, n, 300_000)
    dst = rng.integers(0, n, 300_000)
    weights = rng.random(300_000).astype(np.float32)
    graph = from_edges(src, dst, n, weights=weights)

    seeds = rng.choice(n, 256, replace=False)
    sampler = compile_sampler(
        tempered_layer,
        graph,
        seeds,
        constants={"K": 128, "temperature": 0.75},
    )
    print("optimized IR for the custom algorithm:")
    print(sampler.ir.pretty())
    print("passes applied:", sampler.pass_log)

    # Stack three layers by feeding frontiers through, like any built-in.
    ctx = ExecutionContext(V100)
    frontiers = seeds
    for layer in range(3):
        sample, frontiers = sampler.run(frontiers, ctx=ctx, rng=new_rng(layer))
        print(
            f"layer {layer}: {sample.shape[0]} sampled nodes, "
            f"{sample.nnz} edges, next frontier {len(frontiers)}"
        )
    print(f"total simulated sampling time: {ctx.elapsed * 1e6:.1f} us")

    # Super-batching works for free because the IR qualifies.
    batches = [rng.choice(n, 256, replace=False) for _ in range(4)]
    results = sampler.run_superbatch(batches, ctx=ExecutionContext(V100))
    print(f"super-batched {len(results)} independent batches: "
          f"{[m.nnz for m, _ in results]} edges each")


if __name__ == "__main__":
    main()
