#!/usr/bin/env python
"""Reproduce a slice of the paper's headline comparison interactively.

Runs GraphSAGE and LADIES sampling epochs on the LJ and PD stand-ins
under every system that supports them (gSampler, DGL-GPU/CPU, PyG,
SkyWalker, GunRock, cuGraph) and prints the normalized table, N/A cells
included — a miniature of Figures 7 and 8.

Run:  python examples/compare_systems.py
"""

from __future__ import annotations

from repro.bench import format_table, measure_cell

SYSTEMS = (
    "gsampler",
    "dgl-gpu",
    "dgl-cpu",
    "pyg-cpu",
    "skywalker",
    "gunrock",
    "cugraph",
)


def main() -> None:
    for algorithm in ("graphsage", "ladies"):
        rows = []
        for dataset in ("lj", "pd"):
            cells = {}
            for system in SYSTEMS:
                stats = measure_cell(
                    system,
                    algorithm,
                    dataset,
                    scale=0.25,
                    max_batches=4,
                    batch_size=512,
                )
                cells[system] = None if stats is None else stats.sim_seconds
            ref = cells["gsampler"]
            rows.append(
                [
                    dataset.upper(),
                    *(
                        "N/A" if v is None else f"{v / ref:.2f}x"
                        for v in cells.values()
                    ),
                ]
            )
        print(
            format_table(
                ["Graph", *SYSTEMS],
                rows,
                title=f"\nNormalized sampling time — {algorithm} "
                "(gSampler = 1.0; N/A = unsupported)",
            )
        )


if __name__ == "__main__":
    main()
