#!/usr/bin/env python
"""Train a GraphSAGE model end to end on the Ogbn-Products stand-in.

This is the paper's motivating workload (Tables 1 and 8): mini-batch GNN
training where graph sampling prepares every batch.  The script trains a
real NumPy GraphSAGE on the SBM-based PD dataset to convergence, then
prints the time split between sampling and training — the quantity
gSampler exists to shrink.

Run:  python examples/train_graphsage.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_algorithm
from repro.datasets import load_dataset
from repro.device import V100
from repro.learning import GraphSAGEModel, Trainer


def main() -> None:
    dataset = load_dataset("pd", scale=0.4)
    print(
        f"dataset: {dataset.name} — {dataset.num_nodes} nodes, "
        f"{dataset.num_edges} edges, {dataset.num_classes} classes"
    )

    fanouts = (5, 10)
    algorithm = make_algorithm("graphsage", fanouts=fanouts)
    pipeline = algorithm.build(dataset.graph, dataset.train_ids[:512])

    rng = np.random.default_rng(7)
    model = GraphSAGEModel(
        in_dim=dataset.features.shape[1],
        hidden_dim=64,
        num_classes=dataset.num_classes,
        num_layers=len(fanouts),
        rng=rng,
    )
    trainer = Trainer(
        pipeline, model, dataset, device=V100, batch_size=512, lr=0.05
    )

    result = trainer.train(epochs=8, max_batches_per_epoch=8)
    print("\nper-epoch training accuracy:")
    for epoch, acc in enumerate(result.accuracy_history, start=1):
        print(f"  epoch {epoch}: {acc * 100:.2f}%")
    print(f"\nfinal accuracy: {result.final_accuracy * 100:.2f}%")
    print(f"simulated end-to-end time: {result.total_seconds * 1e3:.2f} ms")
    print(
        f"  sampling {result.sampling_seconds * 1e3:.2f} ms "
        f"({result.sampling_fraction * 100:.1f}%), "
        f"training {result.training_seconds * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
