#!/usr/bin/env python
"""Walk through serve-while-ingesting: deltas, snapshots, rebalancing.

One 2-shard V100 cluster serves 384 requests while a seeded update
stream mutates the graph underneath it — hot-skewed edge inserts with
20% churn deletes, applied between request batches:

1. **Static baseline** — the same request workload with no ingest.
   Zero-ingest sessions are bit-identical to the frozen-graph serving
   subsystem (the pinned-fingerprint guarantee).
2. **Ingest, fine snapshots** — updates become visible to the samplers
   at every 0.05 ms overlay-snapshot install.  Low staleness, but every
   install charges a delta merge to both replicas' sample queues.
3. **Ingest, coarse snapshots + compaction** — snapshots every 0.5 ms,
   with a canonical compaction every 16 update batches.  Staleness
   rises; refresh time falls.
4. **Ingest + incremental rebalance** — a drift threshold arms the
   partition tracker; when hot-skewed inserts tilt the degree balance,
   a bounded incremental rebalance migrates a handful of rows over the
   NVLink (contrast with a from-scratch repartition, which would move
   around half the graph — see ``benchmarks/bench_dynamic.py``).

Run:  python examples/serve_dynamic.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.dynamic import DynamicPolicy, UpdateSpec
from repro.serve import ServePolicy, WorkloadSpec, run_cluster_session

INGEST_RATE = 200_000.0


def run(ds, label, *, updates=None, dynamic=None):
    _, report = run_cluster_session(
        ds,
        device=V100,
        spec=WorkloadSpec(
            num_requests=384, arrival_rate=60_000.0, seed=7
        ),
        policy=ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64),
        num_replicas=2,
        router="shard",
        partition="greedy",
        seed=7,
        updates=updates,
        dynamic=dynamic,
    )
    return [
        label,
        f"{report.ingested_edges + report.deleted_edges}",
        f"{report.snapshots}/{report.compactions}",
        f"{report.mean_staleness_ms:.4f}",
        f"{report.refresh_ms:.4f}",
        f"{report.rebalances} ({report.migrated_rows} rows)",
        f"{report.p99_ms:.4f}",
    ]


def main() -> None:
    ds = load_dataset("pd", scale=0.25)
    updates = UpdateSpec(
        num_edges=2048,
        rate=INGEST_RATE,
        delete_fraction=0.2,
        seed=3,
    )
    rows = [
        run(ds, "static baseline"),
        run(
            ds,
            "ingest, 0.05 ms snapshots",
            updates=updates,
            dynamic=DynamicPolicy(snapshot_every=5e-5),
        ),
        run(
            ds,
            "ingest, 0.5 ms + compact/16",
            updates=updates,
            dynamic=DynamicPolicy(snapshot_every=5e-4, compact_every=16),
        ),
        run(
            ds,
            "ingest + rebalance",
            updates=updates,
            dynamic=DynamicPolicy(
                snapshot_every=2e-4,
                compact_every=16,
                repartition_threshold=5e-4,
            ),
        ),
    ]
    print(
        format_table(
            ["Session", "Applied", "Snap/Compact", "Mean stale (ms)",
             "Refresh (ms)", "Rebalances", "p99 (ms)"],
            rows,
            title=(
                "Serve-while-ingesting — pd@0.25, 2 shards (greedy), "
                f"ingest {INGEST_RATE:,.0f} edges/s with 20% churn"
            ),
        )
    )


if __name__ == "__main__":
    main()
