#!/usr/bin/env python
"""Walk through the online serving simulator, knob by knob.

An inference service answers "sample this user's neighborhood and fetch
its features" requests under a latency SLO.  This walkthrough runs three
scenarios on the same compiled GraphSAGE pipeline (PD stand-in, V100
spec) and prints what each knob buys:

1. light load — batches rarely fill, latency is dominated by the
   ``max_wait`` batching timeout;
2. overload, no control — the queue grows without bound and p99 blows
   through the SLO;
3. overload with admission control — a bounded queue sheds the excess
   and the survivors meet the SLO.

Run:  python examples/serve_online.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.serve import ServePolicy, WorkloadSpec, run_serve_session

SLO_MS = 1.5


def run(ds, label, rate, policy):
    spec = WorkloadSpec(num_requests=1024, arrival_rate=rate, seed=0)
    _, report = run_serve_session(
        ds, device=V100, spec=spec, policy=policy, seed=0
    )
    return [
        label,
        f"{rate:,.0f}",
        f"{report.throughput_rps:,.0f}",
        f"{report.p50_ms:.3f}",
        f"{report.p99_ms:.3f}",
        "yes" if report.p99_ms <= SLO_MS else "NO",
        str(report.shed),
        f"{report.mean_batch:.1f}",
        f"{report.cache.hit_rate:.0%}" if report.cache else "off",
    ]


def main() -> None:
    ds = load_dataset("pd", scale=0.25)
    open_loop = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=None)
    controlled = ServePolicy(
        max_batch=8, max_wait=5e-4, queue_capacity=24, slo=SLO_MS * 1e-3
    )
    rows = [
        run(ds, "light load", 20_000.0, open_loop),
        run(ds, "overload, no control", 400_000.0, open_loop),
        run(ds, "overload + admission", 400_000.0, controlled),
    ]
    print(
        format_table(
            ["Scenario", "Offered (rps)", "Achieved (rps)", "p50 (ms)",
             "p99 (ms)", "SLO met", "Shed", "Mean batch", "Cache hits"],
            rows,
            title=(
                "Online serving — graphsage/PD/V100, 1,024 requests, "
                f"p99 SLO {SLO_MS} ms (max_batch=8, max_wait=0.5 ms)"
            ),
        )
    )
    print(
        "\nReading the table: under light load batches stay small and\n"
        "latency is mostly the batching timeout; under overload the\n"
        "unbounded queue pushes p99 past the SLO, while the bounded\n"
        "queue shelters admitted requests by shedding the rest.  The\n"
        "cache-hit column shows the skewed workload re-touching the\n"
        "degree-hot rows the FeatureCache pinned."
    )


if __name__ == "__main__":
    main()
