#!/usr/bin/env python
"""Train a link-prediction model end to end via the Task abstraction.

The workload the node-classification examples never exercise: training
units are *edges*, not nodes.  Each mini-batch takes a slice of positive
edges, forges an equal number of negative pairs (destination-corrupted,
rejection-sampled against the live edge set so no "negative" is secretly
a real edge), compacts both pair sets to their unique endpoints
(graphbolt-style ``unique_and_compact_node_pairs``), samples neighbors
for that compacted seed set once, and scores each candidate pair by the
dot product of its endpoint embeddings.  The printed metric is AUC —
the probability a positive pair outscores a negative one.

Run:  python examples/train_linkpred.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_algorithm
from repro.datasets import load_dataset
from repro.device import V100
from repro.learning import GraphSAGEModel, Trainer
from repro.tasks import LinkPredictionTask


def main() -> None:
    dataset = load_dataset("pd", scale=0.4)
    task = LinkPredictionTask(embedding_dim=16)
    task.prepare(dataset)
    print(
        f"dataset: {dataset.name} — {dataset.num_nodes} nodes, "
        f"{len(task.train_units(dataset))} training edges"
    )

    # One compacted pair batch, to show what the trainer feeds the
    # sampler: 2 * batch pairs collapse to far fewer unique endpoints.
    rng = np.random.default_rng(7)
    units = task.train_units(dataset)
    batch = task.materialize(units[:256], rng)
    print(
        f"one batch: {batch.num_pairs} candidate pairs "
        f"({batch.num_pairs * 2} endpoints) compacted to "
        f"{len(batch.nodes)} unique seed nodes"
    )

    fanouts = (5, 10)
    algorithm = make_algorithm("graphsage", fanouts=fanouts)
    pipeline = algorithm.build(dataset.graph, batch.nodes)

    # Same sampled-GNN backbone as node classification; the head just
    # reads embeddings instead of class logits — that is the Task seam.
    model = GraphSAGEModel(
        in_dim=dataset.features.shape[1],
        hidden_dim=64,
        num_classes=task.output_dim(dataset),
        num_layers=len(fanouts),
        rng=rng,
    )
    trainer = Trainer(
        pipeline, model, dataset, device=V100, batch_size=256, lr=0.05,
        task=task,
    )

    result = trainer.train(epochs=4, max_batches_per_epoch=8)
    print("\nper-epoch AUC (positive pair outscores negative):")
    for epoch, auc in enumerate(result.accuracy_history, start=1):
        print(f"  epoch {epoch}: {auc:.3f}")
    print(f"\nfinal AUC: {result.final_accuracy:.3f}")
    print(f"final BCE loss: {result.final_loss:.4f}")
    print(f"simulated end-to-end time: {result.total_seconds * 1e3:.2f} ms")
    print(
        f"  sampling {result.sampling_seconds * 1e3:.2f} ms "
        f"({result.sampling_fraction * 100:.1f}%), "
        f"training {result.training_seconds * 1e3:.2f} ms"
    )


if __name__ == "__main__":
    main()
