#!/usr/bin/env python
"""Heterogeneous sampling: typed relations and metapath walks.

Section 4.5 of the paper: "for heterogeneous graphs, each type of edges
is modeled as a sparse matrix to conduct the same sampling workflow as
homogeneous graphs."  This example builds a user/item/tag graph, lifts it
into per-relation matrices, runs a typed neighbor sampling step (the
heterogeneous GraphSAGE layer), and walks a PinSAGE-style
item -> user -> item metapath.

Run:  python examples/heterogeneous_metapath.py
"""

from __future__ import annotations

import numpy as np

from repro.core import new_rng
from repro.core.hetero import hetero_from_typed_edges
from repro.device import ExecutionContext, V100


def main() -> None:
    rng = np.random.default_rng(11)
    # 3000 nodes: type 0 = users, 1 = items, 2 = tags.
    n = 3000
    node_types = rng.integers(0, 3, n)
    src = rng.integers(0, n, 30_000)
    dst = rng.integers(0, n, 30_000)
    graph = hetero_from_typed_edges(
        node_types, src, dst, type_names=["user", "item", "tag"]
    )
    print("node counts:", graph.num_nodes)
    print("relations:", [f"{s}-{e}->{d}" for s, e, d in graph.edge_types])

    # Typed neighbor sampling: every relation into 'item' contributes a
    # fanout-limited block, each in its own matrix.
    ctx = ExecutionContext(V100)
    frontiers = np.arange(64)
    blocks = graph.sample_neighbors("item", frontiers, 5, rng=new_rng(0), ctx=ctx)
    for relation, block in blocks.items():
        print(
            f"  {relation[0]:>4s} -> item block: shape={block.shape}, "
            f"edges={block.nnz}"
        )
    print(f"typed sampling time: {ctx.elapsed * 1e6:.1f} us")

    # A PinSAGE-style metapath walk: item <- user <- item.
    metapath = [("user", "to", "item"), ("item", "to", "user")]
    trace = graph.metapath_walk(metapath, np.arange(10), rng=new_rng(1), ctx=ctx)
    print("\nmetapath item->user->item walk (rows = hops):")
    print(trace)


if __name__ == "__main__":
    main()
