"""Figure 8: normalized sampling time, complex algorithms.

LADIES, AS-GCN, PASS, and ShaDow across the four graphs, against DGL
(GPU/CPU) and PyG (CPU, ShaDow only).  The vertex-centric systems cannot
express these algorithms at all — gSampler is the only system running
all of them on GPU, which is the paper's generality headline.
"""

from __future__ import annotations

import pytest

from repro.algorithms import COMPLEX
from repro.baselines import FIGURE8_SYSTEMS
from repro.bench import format_table, measure_cell

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

DATASETS = ("lj", "pd", "pp", "fs")


def _row(algorithm: str, dataset: str) -> dict[str, float | None]:
    out: dict[str, float | None] = {}
    for system in FIGURE8_SYSTEMS:
        stats = measure_cell(
            system,
            algorithm,
            dataset,
            scale=BENCH_SCALE,
            max_batches=MAX_BATCHES,
            batch_size=512,
        )
        out[system] = None if stats is None else stats.sim_seconds
    return out


@pytest.mark.parametrize("algorithm", COMPLEX)
def test_fig8_complex_algorithms(benchmark, report, algorithm):
    rows = benchmark.pedantic(
        lambda: {ds: _row(algorithm, ds) for ds in DATASETS},
        rounds=1,
        iterations=1,
    )
    table = []
    for ds, row in rows.items():
        ref = row["gsampler"]
        cells = ["N/A" if v is None else f"{v / ref:.2f}x" for v in row.values()]
        table.append([ds.upper(), *cells])
    report(
        f"fig8_{algorithm}",
        format_table(
            ["Graph", *FIGURE8_SYSTEMS],
            table,
            title=f"Figure 8: normalized sampling time — {algorithm} "
            "(gSampler = 1.0)",
        ),
    )
    for ds, row in rows.items():
        supported = {k: v for k, v in row.items() if v is not None}
        assert row["gsampler"] == min(supported.values()), (algorithm, ds)
        # DGL-GPU runs everything (hand-implemented per the paper) and
        # still loses to gSampler.
        assert row["dgl-gpu"] is not None
        assert row["dgl-gpu"] > row["gsampler"]
    # PyG's only complex-algorithm support is CPU ShaDow.
    if algorithm == "shadow":
        assert rows["pd"]["pyg-cpu"] is not None
    else:
        assert all(rows[ds]["pyg-cpu"] is None for ds in DATASETS)
