"""Figure 6: epoch sampling time vs batch size (GraphSAGE, LADIES on PD).

The paper's curve falls steeply and then flattens: small batches leave
the GPU under-occupied, so an epoch of many small batches costs far more
than the same epoch in large batches.  We sweep batch sizes and assert
the monotone-then-flat shape.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_system
from repro.bench import format_table, run_sampling_epoch
from repro.datasets import load_dataset
from repro.device import V100

from benchmarks.conftest import BENCH_SCALE

BATCH_SIZES = (64, 128, 256, 512, 1024)


def _sweep(algorithm: str) -> dict[int, float]:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    system = make_system("gsampler")
    times = {}
    for batch in BATCH_SIZES:
        stats = run_sampling_epoch(
            system,
            algorithm,
            ds,
            device=V100,
            batch_size=batch,
            superbatch=1,  # isolate the batch-size effect, as Figure 6 does
        )
        times[batch] = stats.sim_seconds
    return times


@pytest.mark.parametrize("algorithm", ["graphsage", "ladies"])
def test_fig6_epoch_time_vs_batch_size(benchmark, report, algorithm):
    times = benchmark.pedantic(_sweep, args=(algorithm,), rounds=1, iterations=1)
    report(
        f"fig6_{algorithm}",
        format_table(
            ["Batch size", "Epoch sampling time (ms)"],
            [[b, f"{t * 1e3:.3f}"] for b, t in times.items()],
            title=f"Figure 6: epoch time vs batch size — {algorithm} on PD",
        ),
    )
    # Shape: epoch time decreases (or flattens) as batch size grows, and
    # the smallest batch is substantially slower than the largest.
    values = [times[b] for b in BATCH_SIZES]
    assert values[0] > 1.5 * values[-1]
    for a, b in zip(values, values[1:]):
        assert b <= a * 1.15  # monotone within tolerance
