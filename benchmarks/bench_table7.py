"""Table 7: gSampler's speedup over the best-performing baseline.

Paper: speedups range 1.14-32.7x across 28 (algorithm, graph) cells, over
2x in 19 of 28, average 6.54x.  We regenerate the full matrix from the
Figure 7/8 measurement cells and assert the aggregate shape: every cell
is > 1 (gSampler always wins), a solid majority exceed 2x, and the
average lands well above 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import BENCHMARKED
from repro.baselines import FIGURE7_SYSTEMS, FIGURE8_SYSTEMS
from repro.bench import format_table, measure_cell, speedup_over_best_baseline

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

DATASETS = ("lj", "pd", "pp", "fs")
_SIMPLE = {"deepwalk", "node2vec", "graphsage"}


def _speedup(algorithm: str, dataset: str) -> float:
    systems = FIGURE7_SYSTEMS if algorithm in _SIMPLE else FIGURE8_SYSTEMS
    row: dict[str, float | None] = {}
    for system in systems:
        stats = measure_cell(
            system,
            algorithm,
            dataset,
            scale=BENCH_SCALE,
            max_batches=MAX_BATCHES,
            batch_size=512,
        )
        row[system] = None if stats is None else stats.sim_seconds
    return speedup_over_best_baseline(row, "gsampler")


def test_table7_speedup_matrix(benchmark, report):
    matrix = benchmark.pedantic(
        lambda: {
            algo: {ds: _speedup(algo, ds) for ds in DATASETS}
            for algo in BENCHMARKED
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [algo, *(f"{matrix[algo][ds]:.2f}" for ds in DATASETS)]
        for algo in BENCHMARKED
    ]
    flat = [v for per_ds in matrix.values() for v in per_ds.values()]
    rows.append(["average", f"{np.mean(flat):.2f}", "", "", ""])
    report(
        "table7_speedups",
        format_table(
            ["Algorithm", *(d.upper() for d in DATASETS)],
            rows,
            title="Table 7: gSampler speedup over best baseline "
            "(paper: avg 6.54x, range 1.14-32.7x)",
        ),
    )
    assert all(v > 1.0 for v in flat), "gSampler must win every cell"
    assert np.mean(flat) > 2.0
    assert sum(1 for v in flat if v > 2.0) >= len(flat) // 2
