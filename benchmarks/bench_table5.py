"""Table 5: per-operator cost by sparse format + conversion costs.

Paper values (LADIES operators on Ogbn-Products, ms):

    A[:, frontiers]            CSC 1.32 | COO 18.42 | CSR 14.13
    sub_A.sum()                COO 0.86 | CSR 0.55  (CSC n/a)
    sub_A.collective_sample()  CSC 2.54 | COO 1.52  | CSR 0.50
    CSC->COO 0.36              COO->CSR 2.40

The reproduction runs the same operators on the PD stand-in under the
V100 model and reports simulated ms.  The headline *shape* to preserve:
column slicing is an order of magnitude cheaper on CSC than COO/CSR, and
compression-direction conversions cost several times decompression.
(Our collective-sample kernel is CSC-native, unlike the paper's CSR-
preferring CUDA kernel — a documented deviation in EXPERIMENTS.md.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table
from repro.core import new_rng
from repro.core.sampling import collective_sample
from repro.datasets import load_dataset
from repro.device import ExecutionContext, V100
from repro.sparse import convert, reduce_rows, slice_columns

from benchmarks.conftest import BENCH_SCALE


def _measure_ops() -> dict[str, dict[str, float | None]]:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    frontiers = ds.train_ids[:512]
    rows: dict[str, dict[str, float | None]] = {
        "A[:, frontiers]": {},
        "sub_A.sum()": {},
        "sub_A.collective_sample()": {},
    }
    for layout in ("csc", "coo", "csr"):
        storage = convert(ds.graph.get("csc"), layout)
        ctx = ExecutionContext(V100)
        sub = slice_columns(storage, frontiers, ctx)
        rows["A[:, frontiers]"][layout] = ctx.elapsed

        sub_in_layout = convert(sub, layout)
        ctx = ExecutionContext(V100)
        reduce_rows(sub_in_layout, "sum", ctx)
        rows["sub_A.sum()"][layout] = ctx.elapsed

        ctx = ExecutionContext(V100)
        collective_sample(sub_in_layout, 512, rng=new_rng(0), ctx=ctx)
        rows["sub_A.collective_sample()"][layout] = ctx.elapsed
    return rows


def _measure_conversions() -> dict[str, float]:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    csc = ds.graph.get("csc")
    ctx = ExecutionContext(V100)
    coo = convert(csc, "coo", ctx)
    csc2coo = ctx.elapsed
    ctx = ExecutionContext(V100)
    convert(coo, "csr", ctx)
    coo2csr = ctx.elapsed
    return {"CSC2COO": csc2coo, "COO2CSR": coo2csr}


def test_table5_operator_costs(benchmark, report):
    rows = benchmark.pedantic(_measure_ops, rounds=1, iterations=1)
    conv = _measure_conversions()
    table_rows = [
        [op, *(f"{v * 1e3:.4f}" for v in by_fmt.values())]
        for op, by_fmt in rows.items()
    ]
    table_rows.append(
        ["format conversion",
         f"CSC2COO {conv['CSC2COO'] * 1e3:.4f}",
         "",
         f"COO2CSR {conv['COO2CSR'] * 1e3:.4f}"]
    )
    report(
        "table5_operator_costs",
        format_table(
            ["Operator (ms)", "CSC", "COO", "CSR"],
            table_rows,
            title="Table 5: LADIES operator cost by sparse format (PD stand-in)",
        ),
    )
    slice_row = rows["A[:, frontiers]"]
    # Shape: CSC slicing is far cheaper than COO and CSR.
    assert slice_row["csc"] * 5 < slice_row["coo"]
    assert slice_row["csc"] * 5 < slice_row["csr"]
    # Shape: per-row reduction is cheapest on CSR.
    sum_row = rows["sub_A.sum()"]
    assert sum_row["csr"] <= min(sum_row["coo"], sum_row["csc"]) * 1.01
    # Shape: compression costs multiples of decompression.
    assert conv["COO2CSR"] > 3 * conv["CSC2COO"]
