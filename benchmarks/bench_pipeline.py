"""Pipelined vs serial epochs across device specs (the overlap study).

A serial epoch pays sampling + feature transfer + model compute in
sequence; the pipelined executor overlaps them on simulated queues with
a degree-ordered feature cache trimming PCIe traffic.  Two shapes must
hold for every device cell: (1) losses and accuracies are bit-identical
— pipelining only reorders *accounting*, never computation; (2) the
pipelined epoch is never slower, and on the acceptance cell
(graphsage/PD/V100, default cache ratio) at least 20% faster.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import CPU, T4, V100
from repro.pipeline import run_pipeline_cell

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

#: (sampling device, training device) cells; the CPU row mirrors the
#: paper's CPU-sampling baselines, which still train on the GPU.
DEVICE_CELLS = (
    ("v100", V100, V100),
    ("t4", T4, T4),
    ("cpu+v100", CPU, V100),
)


@pytest.mark.parametrize("algorithm", ["graphsage", "ladies"])
def test_pipeline_overlap(algorithm, report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    rows = []
    for label, device, train_device in DEVICE_CELLS:
        serial, pipelined = run_pipeline_cell(
            algorithm,
            ds,
            device=device,
            train_device=train_device,
            epochs=2,
            batch_size=256,
            max_batches=MAX_BATCHES,
        )
        assert serial.final_loss == pipelined.final_loss
        assert serial.accuracy_history == pipelined.accuracy_history
        assert pipelined.total_seconds <= serial.total_seconds
        reduction = 1.0 - pipelined.total_seconds / serial.total_seconds
        if algorithm == "graphsage" and label == "v100":
            # The acceptance cell: overlap must hide >= 20% of the epoch.
            assert reduction >= 0.20
        cache = pipelined.cache_stats
        rows.append(
            [
                label,
                f"{serial.total_seconds * 1e3:.3f}",
                f"{pipelined.total_seconds * 1e3:.3f}",
                f"{reduction:.1%}",
                f"{cache.hit_rate:.1%}" if cache is not None else "off",
                f"{pipelined.final_accuracy:.4f}",
            ]
        )
    report(
        f"pipeline_{algorithm}",
        format_table(
            [
                "Devices",
                "Serial (ms)",
                "Pipelined (ms)",
                "Reduction",
                "Cache hits",
                "Accuracy",
            ],
            rows,
            title=(
                f"Pipelined epochs — {algorithm} on PD "
                f"(2 epochs x {MAX_BATCHES} batches, prefetch depth 2, "
                "cache ratio 0.10; accuracy identical to serial by "
                "construction)"
            ),
        ),
    )
