"""Section 3.2/3.3: programmability — lines of code per algorithm.

The paper argues the matrix-centric API yields succinct implementations:
LADIES's bias computation is 2 lines versus DGL's 7-line message-passing
version (Figure 2), and whole algorithms fit in a handful of lines
(Figure 3), at the cost of a few extra lines for plain random walks
versus specialized walk systems (Section 3.3: C-SAW 3 LoC vs gSampler
~10).  This benchmark counts the actual statement counts of our
implementations and checks those claims hold in this codebase.
"""

from __future__ import annotations

import inspect

from repro.algorithms import (
    deepwalk_step,
    fastgcn_layer,
    graphsage_layer,
    ladies_layer,
    pass_layer,
    vrgcn_layer,
)
from repro.algorithms.asgcn import asgcn_layer
from repro.bench import format_table


def _loc(fn) -> int:
    """Count executable statements (non-blank, non-comment, non-docstring
    body lines) of a sampling function."""
    lines = inspect.getsource(fn).splitlines()[1:]  # drop the def line
    count = 0
    in_doc = False
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.startswith(('"""', "'''")):
            if not (in_doc is False and stripped.endswith(('"""', "'''")) and len(stripped) > 3):
                in_doc = not in_doc
            continue
        if in_doc:
            continue
        count += 1
    return count


def test_loc_succinctness(benchmark, report):
    layers = {
        "GraphSAGE (Fig 3a)": graphsage_layer,
        "LADIES (Fig 3b)": ladies_layer,
        "PASS (Fig 3c)": pass_layer,
        "FastGCN": fastgcn_layer,
        "AS-GCN": asgcn_layer,
        "VR-GCN": vrgcn_layer,
        "DeepWalk step": deepwalk_step,
    }
    locs = benchmark.pedantic(
        lambda: {name: _loc(fn) for name, fn in layers.items()},
        rounds=1,
        iterations=1,
    )
    report(
        "loc_per_algorithm",
        format_table(
            ["Algorithm layer", "LoC"],
            [[name, n] for name, n in locs.items()],
            title="Programmability: statements per one-layer sampler "
            "(paper Fig 3: GraphSAGE 5, LADIES 9, PASS 12)",
        ),
    )
    # Figure 3's claim: single-digit-ish implementations.
    assert locs["GraphSAGE (Fig 3a)"] <= 5
    assert locs["LADIES (Fig 3b)"] <= 9
    assert locs["PASS (Fig 3c)"] <= 12
    # Section 3.3's honesty clause: a walk step is a few lines, not 1.
    assert 2 <= locs["DeepWalk step"] <= 10
