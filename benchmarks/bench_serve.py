"""Online serving: arrival-rate sweep, the batching knee, SLO control.

Three experiments on the serving simulator:

* **Latency/throughput sweep** — p50/p99 vs offered arrival rate per
  device spec.  Low rates pay the ``max_wait`` batching timeout, the
  knee appears where batches start filling, and past saturation the
  queue (and p99) blows up.  The knee location orders by device speed:
  V100 saturates last, CPU first.
* **Batching knee** — throughput at max_batch=8 vs max_batch=1 under
  the same overload; the acceptance bar is >= 2x.
* **SLO control** — an overload cell where the uncontrolled policy
  breaches a 1.5 ms p99 and bounded-queue admission control meets it.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import CPU, T4, V100
from repro.serve import ServePolicy, WorkloadSpec, run_serve_session
from repro.stats import percentile_ms

from benchmarks.conftest import BENCH_SCALE

DEVICES = (("v100", V100), ("t4", T4), ("cpu", CPU))

#: Offered rates (requests/simulated second) swept per device.  Spans
#: from well under the slowest device's capacity to past the fastest's.
ARRIVAL_RATES = (5_000.0, 20_000.0, 80_000.0, 320_000.0)

REQUESTS = 384


def _session(ds, device, rate, policy, seed=0):
    spec = WorkloadSpec(num_requests=REQUESTS, arrival_rate=rate, seed=seed)
    _, rep = run_serve_session(
        ds, device=device, spec=spec, policy=policy, seed=seed
    )
    return rep


def test_serve_latency_sweep(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    policy = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=None)
    rows = []
    knees = {}
    for label, device in DEVICES:
        for rate in ARRIVAL_RATES:
            rep = _session(ds, device, rate, policy)
            latencies = [log.latency for log in rep.logs if log.completed]
            rows.append(
                [
                    label,
                    f"{rate:,.0f}",
                    f"{rep.throughput_rps:,.0f}",
                    f"{rep.p50_ms:.3f}",
                    f"{percentile_ms(latencies, 90.0):.3f}",
                    f"{rep.p99_ms:.3f}",
                    f"{rep.mean_batch:.1f}",
                ]
            )
            knees.setdefault(label, []).append(rep)
    # Offered load beyond capacity cannot raise goodput: each device's
    # achieved throughput is capped, and mean batch size grows toward
    # max_batch as the arrival rate climbs (the knee).
    for label, reps in knees.items():
        assert reps[-1].mean_batch > reps[0].mean_batch
    # Faster devices sustain more of the offered overload.
    final = {label: reps[-1].throughput_rps for label, reps in knees.items()}
    assert final["v100"] > final["t4"] > final["cpu"]
    report(
        "serve_sweep",
        format_table(
            ["Device", "Offered (rps)", "Achieved (rps)", "p50 (ms)",
             "p90 (ms)", "p99 (ms)", "Mean batch"],
            rows,
            title=(
                f"Serving latency sweep — graphsage on PD scale "
                f"{BENCH_SCALE} ({REQUESTS} requests, max_batch=8, "
                "max_wait=0.5ms, unbounded queue)"
            ),
        ),
    )


def test_serve_batching_knee(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    rows = []
    throughput = {}
    for max_batch in (1, 2, 4, 8, 16):
        policy = ServePolicy(
            max_batch=max_batch, max_wait=5e-4, queue_capacity=None
        )
        rep = _session(ds, V100, 500_000.0, policy)
        throughput[max_batch] = rep.throughput_rps
        rows.append(
            [
                str(max_batch),
                f"{rep.throughput_rps:,.0f}",
                f"{rep.p50_ms:.3f}",
                f"{rep.p99_ms:.3f}",
            ]
        )
    # Acceptance: batching at 8 at least doubles batch-1 throughput.
    assert throughput[8] >= 2.0 * throughput[1]
    report(
        "serve_batching_knee",
        format_table(
            ["Max batch", "Throughput (rps)", "p50 (ms)", "p99 (ms)"],
            rows,
            title=(
                "Dynamic batching knee — graphsage/PD/V100 under "
                "overload (500k rps offered); launch overhead amortizes "
                "across the batch"
            ),
        ),
    )


def test_serve_slo_control(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    slo = 15e-4
    spec = WorkloadSpec(num_requests=1024, arrival_rate=400_000.0, seed=0)
    cells = {
        "none": ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=None),
        "shed": ServePolicy(
            max_batch=8, max_wait=5e-4, queue_capacity=24, slo=slo
        ),
        "full": ServePolicy(
            max_batch=8, max_wait=5e-4, queue_capacity=24, slo=slo
        ),
    }
    rows = []
    reports = {}
    for name, policy in cells.items():
        _, rep = run_serve_session(
            ds, device=V100, spec=spec, policy=policy, seed=0
        )
        reports[name] = rep
        rows.append(
            [
                name,
                f"{rep.p99_ms:.3f}",
                "yes" if rep.p99_ms <= slo * 1e3 else "NO",
                str(rep.completed),
                str(rep.shed),
                str(rep.degraded),
            ]
        )
    # Acceptance: no control breaches the SLO; admission control meets it
    # at the same offered rate, trading completed requests for latency.
    assert reports["none"].p99_ms > slo * 1e3
    assert reports["shed"].p99_ms <= slo * 1e3
    assert reports["shed"].shed > 0
    report(
        "serve_slo",
        format_table(
            ["Policy", "p99 (ms)", "SLO met", "Completed", "Shed",
             "Degraded"],
            rows,
            title=(
                "SLO-aware admission — graphsage/PD/V100, 1024 requests "
                "at 400k rps offered, p99 SLO 1.5 ms"
            ),
        ),
    )


def test_serve_composer_knee(report):
    """Cross-request super-batching vs FIFO across the knee.

    Below saturation there is nothing to fuse — windows stay near
    ``max_batch`` and superbatch pays extra per-request compute for its
    exact per-request outputs.  Past the knee the pending queue deepens,
    the composer fuses whole windows into one launch sequence, and the
    per-kernel launch overhead amortizes across every fused request.
    The acceptance bar sits at the knee: >= 1.5x FIFO throughput at
    equal-or-better p99 under overload.
    """
    ds = load_dataset("pd", scale=BENCH_SCALE)
    policy = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64)
    rows = []
    cells = {}
    for rate in (100_000.0, 200_000.0, 400_000.0, 800_000.0):
        for composer in ("fifo", "binned", "superbatch"):
            spec = WorkloadSpec(
                num_requests=256, arrival_rate=rate, seed=0
            )
            _, rep = run_serve_session(
                ds,
                device=V100,
                spec=spec,
                policy=policy,
                composer=composer,
                seed=0,
            )
            cells[(rate, composer)] = rep
            fused = (
                f"{rep.superbatch_requests / rep.superbatch_batches:.1f}"
                if rep.superbatch_batches
                else "-"
            )
            rows.append(
                [
                    f"{rate:,.0f}",
                    composer,
                    f"{rep.throughput_rps:,.0f}",
                    f"{rep.p50_ms:.3f}",
                    f"{rep.p99_ms:.3f}",
                    str(rep.shed),
                    fused,
                ]
            )
    # Acceptance at the knee and beyond: superbatch >= 1.5x FIFO
    # throughput with equal-or-better p99.
    for rate in (400_000.0, 800_000.0):
        fifo = cells[(rate, "fifo")]
        sb = cells[(rate, "superbatch")]
        assert sb.throughput_rps >= 1.5 * fifo.throughput_rps
        assert sb.p99_ms <= fifo.p99_ms
    report(
        "serve_composer_knee",
        format_table(
            ["Offered (rps)", "Composer", "Achieved (rps)", "p50 (ms)",
             "p99 (ms)", "Shed", "Mean fused"],
            rows,
            title=(
                f"Batch-composition knee — graphsage on PD scale "
                f"{BENCH_SCALE}, V100, 256 requests, max_batch=8, "
                "queue_capacity=64; super-batch fuses the whole pending "
                "window into one launch sequence"
            ),
        ),
    )
