"""Table 9: GPU resource consumption — extra memory and SM utilization.

Paper (PD graph, gSampler vs DGL):

    LADIES  1.83 GB / 94.2%  vs  0.19 GB / 37.4%
    AS-GCN  0.07 GB / 36.0%  vs  0.14 GB / 22.1%
    PASS    0.17 GB / 56.6%  vs  3.04 GB / 25.3%
    ShaDow  1.65 GB / 98.0%  vs  2.26 GB / 46.4%

Shapes to preserve: gSampler's SM utilization beats DGL's on every
algorithm (the paper reports 1.62-2.52x), and for the fusion-friendly
algorithms its memory footprint is smaller, while super-batched LADIES
trades extra memory for utilization.
"""

from __future__ import annotations

import pytest

from repro.baselines import DGLLike, GSamplerSystem
from repro.bench import format_table, run_sampling_epoch
from repro.datasets import load_dataset
from repro.device import V100

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

ALGORITHMS = ("ladies", "asgcn", "pass", "shadow")


def _consumption() -> dict[str, dict[str, tuple[float, float]]]:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for algo in ALGORITHMS:
        row = {}
        for label, system in (
            ("gSampler", GSamplerSystem()),
            ("DGL", DGLLike("gpu")),
        ):
            stats = run_sampling_epoch(
                system, algo, ds, device=V100,
                batch_size=512, max_batches=MAX_BATCHES,
            )
            row[label] = (stats.peak_memory_bytes, stats.sm_percent)
        out[algo] = row
    return out


def test_table9_resource_consumption(benchmark, report):
    data = benchmark.pedantic(_consumption, rounds=1, iterations=1)
    rows = []
    for algo, row in data.items():
        for system, (mem, sm) in row.items():
            rows.append([algo, system, f"{mem / 2**20:.2f}", f"{sm:.1f}"])
    report(
        "table9_resources",
        format_table(
            ["Algorithm", "System", "Memory (MiB)", "SM (%)"],
            rows,
            title="Table 9: GPU resource consumption on PD",
        ),
    )
    gs_sms, dgl_sms = [], []
    for algo, row in data.items():
        _gs_mem, gs_sm = row["gSampler"]
        _dgl_mem, dgl_sm = row["DGL"]
        gs_sms.append(gs_sm)
        dgl_sms.append(dgl_sm)
        # gSampler's holistic execution reaches at least comparable
        # occupancy per algorithm (PASS is excluded from super-batching,
        # so its gap is small at this scale)...
        assert gs_sm > 0.85 * dgl_sm, algo
    # ...and clearly higher occupancy overall (paper: 1.62-2.52x).
    import numpy as np
    assert np.mean(gs_sms) > 1.3 * np.mean(dgl_sms)
    # Fusion shrinks gSampler's footprint on the fusion-friendly
    # algorithms (paper: PASS uses 5.6% of DGL's memory).
    assert data["pass"]["gSampler"][0] < data["pass"]["DGL"][0]
    assert data["shadow"]["gSampler"][0] < data["shadow"]["DGL"][0]
