"""Table 8: end-to-end training time and converged accuracy.

Paper (Ogbn-Products): GraphSAGE — gSampler 226s/90.48%, DGL 322s/90.35%,
PyG 13082s/90.44%; LADIES — gSampler 451s/89.38%, DGL 809s/89.39%.

Two shapes must hold: (1) all systems converge to the *same* accuracy,
because gSampler executes identical sampling logic (differences are just
initialization noise); (2) gSampler's faster sampling cuts end-to-end
time by a large margin (the paper: 30.0% for GraphSAGE, 44.3% for
LADIES vs DGL).
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.baselines import make_system
from repro.baselines.base import ProfiledPipeline
from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import CPU, V100
from repro.learning import GraphSAGEModel, LadiesGCN, Trainer

from benchmarks.conftest import BENCH_SCALE

CONFIGS = {
    "graphsage": (
        GraphSAGEModel,
        dict(fanouts=(5, 10)),
        2,
        ["gsampler", "dgl-gpu", "pyg-cpu"],
    ),
    "ladies": (
        LadiesGCN,
        dict(layer_width=256, num_layers=2),
        2,
        ["gsampler", "dgl-gpu"],
    ),
}


def _train(algorithm: str, system_name: str) -> tuple[float, float]:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    model_cls, algo_kwargs, num_layers, _ = CONFIGS[algorithm]
    system = make_system(system_name)
    algo = make_algorithm(algorithm, **algo_kwargs)
    inner = algo.build(ds.graph, ds.train_ids[:256])
    template = system.build_pipeline(algorithm, ds, ds.train_ids[:256])
    pipeline = (
        ProfiledPipeline(inner, template.profile)
        if isinstance(template, ProfiledPipeline)
        else inner
    )
    # Deterministic per-system seed: Python's str hash is salted per process,
    # which would make checked-in accuracy columns irreproducible.
    seed = int.from_bytes(hashlib.sha256(system_name.encode()).digest()[:4], "little")
    rng = np.random.default_rng(seed)
    model = model_cls(
        ds.features.shape[1], 32, ds.num_classes, num_layers=num_layers, rng=rng
    )
    device = CPU if system.device_kind == "cpu" else V100
    trainer = Trainer(
        pipeline, model, ds, device=device, train_device=V100, batch_size=256
    )
    result = trainer.train(6, max_batches_per_epoch=6)
    return result.total_seconds, result.final_accuracy


@pytest.mark.parametrize("algorithm", sorted(CONFIGS))
def test_table8_end_to_end(benchmark, report, algorithm):
    systems = CONFIGS[algorithm][3]
    results = benchmark.pedantic(
        lambda: {s: _train(algorithm, s) for s in systems},
        rounds=1,
        iterations=1,
    )
    report(
        f"table8_{algorithm}",
        format_table(
            ["System", "Time (ms, simulated)", "Accuracy (%)"],
            [
                [s, f"{t * 1e3:.2f}", f"{a * 100:.2f}"]
                for s, (t, a) in results.items()
            ],
            title=f"Table 8: end-to-end training — {algorithm} on PD",
        ),
    )
    times = {s: t for s, (t, _) in results.items()}
    accs = {s: a for s, (_, a) in results.items()}
    # (1) Convergence accuracy is system-independent (within noise).
    spread = max(accs.values()) - min(accs.values())
    assert spread < 0.08, f"accuracy should match across systems: {accs}"
    assert all(a > 0.85 for a in accs.values())
    # (2) gSampler reduces end-to-end time over DGL by a real margin
    # (paper: 30.0% for GraphSAGE, 44.3% for LADIES).
    reduction = 1.0 - times["gsampler"] / times["dgl-gpu"]
    assert reduction > 0.10, f"end-to-end reduction too small: {reduction:.2%}"
    if "pyg-cpu" in times:
        assert times["pyg-cpu"] > 2 * times["gsampler"]
