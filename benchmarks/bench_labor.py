"""LABOR vs collective/individual sampling: frontier at equal error.

The variance-reduction pitch of LABOR (Balin & Catalyurek, 2023) is a
*frontier* claim, so the bench holds estimator quality fixed and measures
what each sampler must transfer to achieve it.  The estimand is the one
GNN aggregation actually computes: each seed's neighbor aggregate
``h_c = sum_{r in N(c)} x_r`` (with ``x`` the per-node feature-row norm),
estimated per mini-batch slice ``A[:, seeds]`` on graphsage/PD/V100.

* **LABOR** admits edge ``(r, c)`` with probability ``min(1, K/deg_c)``
  using one shared coin per row node; Horvitz–Thompson weights keep
  ``h_c`` unbiased while shared coins collapse the union frontier.
* **collective_sample** (the layer-wise Select of LADIES/FastGCN) draws
  a width-``k`` row set shared by all seeds, debiased by the standard
  inclusion-probability weights ``1/(1-(1-q_r)^k)``.  Sweeping ``k``
  trades frontier size against per-seed error — but the debiasing is
  only approximate for weighted draws without replacement, so its error
  floor is bias-limited (the documented layer-wise failure mode).
* **individual_sample** (GraphSAGE's node-wise Select) has identical
  per-edge marginals to LABOR but independent coins, so its union
  frontier is the uncorrelated worst case.

Matched point: the collective width whose per-seed relative error
(mean squared error over trials and seeds, bias included) is
statistically indistinguishable from LABOR's — TOST-style equivalence,
the bootstrap CI of the error ratio contained in a ±10% margin.
Acceptance: at that width LABOR's mean frontier (and the
feature-transfer bytes it drives) is >= 20% smaller.

The sweep appends to the committed ``BENCH_labor_pd_v100.json`` lane so
run-over-run drift in the frontier ratio fails CI (the ``labor-smoke``
step), mirroring the serving lanes' comparator contract.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.bench import format_table
from repro.core import new_rng
from repro.core.sampling import collective_sample, individual_sample, labor_sample
from repro.datasets import load_dataset
from repro.profile import append_record, bench_path
from repro.sparse import CSC
from repro.sparse.formats import gather_ranges

from benchmarks.conftest import BENCH_SCALE

SEEDS = 512
FANOUT = 8
TRIALS = 160
#: Collective layer widths swept for the equal-error match.
WIDTHS = (512, 640, 768, 896, 1024, 1280)
BOOTSTRAP = 300
#: Equivalence margin: errors within ±10% of each other, CI and all,
#: count as matched (the bootstrap has enough power at 160x512
#: samples to "distinguish" sub-2% differences, so a point-null test
#: would reject everything; TOST equivalence is the right criterion).
EQUIV_MARGIN = 1.10
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _batch_slice(graph_csc: CSC, seeds: np.ndarray) -> CSC:
    """``A[:, seeds]`` as a CSC with global row ids (unfused extract)."""
    starts = graph_csc.indptr[seeds]
    lengths = graph_csc.indptr[seeds + 1] - starts
    indptr = np.zeros(len(seeds) + 1, dtype=graph_csc.indptr.dtype)
    np.cumsum(lengths, out=indptr[1:])
    flat = gather_ranges(starts, lengths)
    return CSC(
        indptr=indptr,
        rows=graph_csc.rows[flat],
        values=None,
        shape=(graph_csc.shape[0], len(seeds)),
    )


def _per_seed_estimates(sub: CSC, trial_fn) -> np.ndarray:
    """(TRIALS, seeds) matrix of per-seed aggregate estimates."""
    T = sub.shape[1]
    est = np.empty((TRIALS, T))
    for t in range(TRIALS):
        est[t] = trial_fn(t)
    return est


def _rel_sq_errors(est: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-trial mean relative squared error (bias included)."""
    return np.mean(((est - truth) / truth) ** 2, axis=1)


def _bootstrap_ratio_ci(
    a: np.ndarray, b: np.ndarray, seed: int = 0
) -> tuple[float, float]:
    """95% bootstrap CI for ``mean(a) / mean(b)`` over trials."""
    rng = new_rng(seed)
    ratios = np.empty(BOOTSTRAP)
    for i in range(BOOTSTRAP):
        ai = a[rng.integers(0, len(a), size=len(a))]
        bi = b[rng.integers(0, len(b), size=len(b))]
        ratios[i] = ai.mean() / bi.mean()
    return float(np.percentile(ratios, 2.5)), float(np.percentile(ratios, 97.5))


def test_labor_equal_error_frontier(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    graph_csc = ds.graph.get("csc")
    rng = new_rng(11)
    seeds = rng.choice(ds.train_ids, size=SEEDS, replace=False)
    sub = _batch_slice(graph_csc, seeds)
    T = len(seeds)
    x = np.linalg.norm(ds.features, axis=1)
    col_of_edge = np.repeat(np.arange(T), np.diff(sub.indptr))
    truth = np.bincount(col_of_edge, weights=x[sub.rows], minlength=T)
    row_bytes = ds.features.shape[1] * 4

    # -- LABOR at the graphsage fanout -------------------------------
    frontiers: list[int] = []

    def labor_trial(t: int) -> np.ndarray:
        s = labor_sample(sub, FANOUT, rng=new_rng(1_000 + t))
        frontiers.append(len(np.unique(s.rows)))
        cols = np.repeat(np.arange(T), np.diff(s.indptr))
        return np.bincount(cols, weights=s.values * x[s.rows], minlength=T)

    labor_est = _per_seed_estimates(sub, labor_trial)
    labor_err = _rel_sq_errors(labor_est, truth)
    labor_frontier = float(np.mean(frontiers))
    labor_bias = float(np.abs(labor_est.mean(axis=0) - truth).mean() / truth.mean())

    # -- individual_sample: same marginals, independent coins ---------
    ind_frontiers = []
    for t in range(32):
        s = individual_sample(sub, FANOUT, rng=new_rng(3_000 + t))
        ind_frontiers.append(len(np.unique(s.rows)))
    ind_frontier = float(np.mean(ind_frontiers))

    # -- collective width sweep ---------------------------------------
    deg_row = np.bincount(sub.rows, minlength=sub.shape[0]).astype(np.float64)
    q = deg_row / deg_row.sum()
    rows = [
        [
            f"labor K={FANOUT}",
            f"{labor_err.mean():.4f}",
            f"{labor_bias:.2%}",
            f"{labor_frontier:.0f}",
            f"{labor_frontier * row_bytes / 2**20:.3f}",
            "-",
        ]
    ]
    sweep = {}
    for width in WIDTHS:
        pi = -np.expm1(width * np.log1p(-np.minimum(q, 1 - 1e-12)))
        weight = np.zeros(sub.shape[0])
        nz = pi > 0
        weight[nz] = x[nz] / pi[nz]

        def coll_trial(t: int, width=width, weight=weight) -> np.ndarray:
            r = collective_sample(sub, width, rng=new_rng(width * 10_000 + t))
            z = np.zeros(sub.shape[0])
            z[r.selected_rows] = weight[r.selected_rows]
            return np.bincount(col_of_edge, weights=z[sub.rows], minlength=T)

        est = _per_seed_estimates(sub, coll_trial)
        err = _rel_sq_errors(est, truth)
        lo, hi = _bootstrap_ratio_ci(labor_err, err, seed=width)
        sweep[width] = (err, lo, hi)
        rows.append(
            [
                f"collective k={width}",
                f"{err.mean():.4f}",
                f"{np.abs(est.mean(axis=0) - truth).mean() / truth.mean():.2%}",
                str(width),
                f"{width * row_bytes / 2**20:.3f}",
                f"[{lo:.2f}, {hi:.2f}]",
            ]
        )
    report(
        "labor_equal_error",
        format_table(
            ["Sampler", "Rel. error (MSE)", "|bias|", "Frontier rows",
             "Transfer (MiB)", "err ratio 95% CI"],
            rows,
            title=(
                f"Frontier at equal per-seed estimator error — "
                f"graphsage batch ({SEEDS} seeds) on PD scale "
                f"{BENCH_SCALE}, V100 feature rows ({row_bytes} B); "
                f"{TRIALS} trials"
            ),
        ),
    )

    # LABOR stays unbiased (HT weights); that is the contract the
    # correlated coins must not break.
    assert labor_bias < 0.05

    # Correlation is the whole point: same marginals as the node-wise
    # sampler, much smaller union frontier.
    assert labor_frontier <= 0.8 * ind_frontier

    # Matched point: the width whose error is statistically
    # indistinguishable from LABOR's (the ratio CI sits inside the
    # equivalence margin); among those, the closest match.
    matched = [
        (abs(np.log(labor_err.mean() / err.mean())), width)
        for width, (err, lo, hi) in sweep.items()
        if lo >= 1.0 / EQUIV_MARGIN and hi <= EQUIV_MARGIN
    ]
    assert matched, "no collective width matched LABOR's error"
    matched_width = min(matched)[1]

    # The headline: >= 20% smaller frontier (and transfer bytes) than
    # collective_sample at statistically indistinguishable error.
    assert labor_frontier <= 0.8 * matched_width
    assert labor_frontier * row_bytes <= 0.8 * matched_width * row_bytes

    # Trajectory lane: run-over-run drift in the matched ratio is a
    # regression (the CI labor-smoke gate).
    record_path = bench_path(REPO_ROOT, "labor_pd_v100")
    record, previous = append_record(
        record_path,
        tag="labor_pd_v100",
        meta={
            "algorithm": "labor",
            "baseline": "collective_sample",
            "dataset": "pd",
            "device": "v100",
            "scale": BENCH_SCALE,
            "seeds": SEEDS,
            "fanout": FANOUT,
            "trials": TRIALS,
        },
        metrics={
            "labor_frontier_rows": labor_frontier,
            "labor_transfer_bytes": labor_frontier * row_bytes,
            "individual_frontier_rows": ind_frontier,
            "matched_collective_width": matched_width,
            "frontier_ratio": labor_frontier / matched_width,
            "labor_rel_mse": float(labor_err.mean()),
            "labor_rel_bias": labor_bias,
        },
    )
    if previous is not None:
        prev = previous["metrics"]
        # Direction-aware gate (the generic comparator only watches
        # launch/latency keys): the frontier and its ratio to the
        # matched width must not grow run-over-run.
        assert record["metrics"]["labor_frontier_rows"] <= (
            1.10 * float(prev["labor_frontier_rows"])
        )
        assert record["metrics"]["frontier_ratio"] <= (
            1.10 * float(prev["frontier_ratio"])
        )
