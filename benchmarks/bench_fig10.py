"""Figure 10: ablation of gSampler's optimizations (P / C / D / B).

The paper toggles its three optimization families for GraphSAGE and
LADIES on PD and PP, normalizing to DGL:

* **P** — plain execution, no passes (already competitive with DGL
  thanks to better kernels);
* **C** — + computation optimizations (fusion, pre-processing);
* **D** — + cost-aware data-layout selection;
* **B** — + super-batch sampling.

Each addition must not slow things down, and the full stack must beat
both P and DGL clearly.
"""

from __future__ import annotations

import pytest

from repro.baselines import DGLLike, GSamplerSystem
from repro.bench import format_table, run_sampling_epoch
from repro.datasets import load_dataset
from repro.device import V100
from repro.sampler import OptimizationConfig

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

VARIANTS = [
    ("P", OptimizationConfig(computation=False, layout=False, superbatch=False)),
    ("C", OptimizationConfig(computation=True, layout=False, superbatch=False)),
    ("C+D", OptimizationConfig(computation=True, layout=True, superbatch=False)),
    ("C+D+B", OptimizationConfig(computation=True, layout=True, superbatch=True)),
]


def _ablation(algorithm: str, dataset_name: str) -> dict[str, float]:
    ds = load_dataset(dataset_name, scale=BENCH_SCALE)
    times: dict[str, float] = {}
    dgl = run_sampling_epoch(
        DGLLike("gpu"), algorithm, ds, device=V100,
        batch_size=512, max_batches=MAX_BATCHES,
    )
    times["DGL"] = dgl.sim_seconds
    for label, config in VARIANTS:
        stats = run_sampling_epoch(
            GSamplerSystem(config), algorithm, ds, device=V100,
            batch_size=512, max_batches=MAX_BATCHES,
            superbatch=4 if config.superbatch else 1,
        )
        times[label] = stats.sim_seconds
    return times


@pytest.mark.parametrize("algorithm", ["graphsage", "ladies"])
@pytest.mark.parametrize("dataset", ["pd", "pp"])
def test_fig10_ablation(benchmark, report, algorithm, dataset):
    times = benchmark.pedantic(
        _ablation, args=(algorithm, dataset), rounds=1, iterations=1
    )
    dgl = times["DGL"]
    report(
        f"fig10_{algorithm}_{dataset}",
        format_table(
            ["Variant", "Epoch time (ms)", "Speedup vs DGL"],
            [
                [k, f"{v * 1e3:.3f}", f"{dgl / v:.2f}x"]
                for k, v in times.items()
            ],
            title=f"Figure 10: optimization ablation — {algorithm} on "
            f"{dataset.upper()}",
        ),
    )
    # Plain gSampler already matches or beats DGL (paper's observation
    # for GraphSAGE; for LADIES on PP the paper saw P slightly behind, so
    # allow 1.5x slack there).
    assert times["P"] < 1.5 * dgl
    # Each optimization family helps or is neutral (small tolerance).
    assert times["C"] <= times["P"] * 1.05
    assert times["C+D"] <= times["C"] * 1.05
    # Super-batching's gain depends on how under-occupied the device is;
    # at laptop scale it can be roughly neutral for the layer-wise
    # algorithms (their kernels are already wide), so allow slack.
    assert times["C+D+B"] <= times["C+D"] * 1.25
    # The full stack decisively beats both the plain variant and DGL.
    assert times["C+D+B"] < times["P"]
    assert times["C+D+B"] < dgl
    assert min(times["C+D"], times["C+D+B"]) < 0.6 * times["P"]
