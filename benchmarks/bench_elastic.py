"""Fault tolerance & elasticity: chaos availability, elastic vs static.

Two experiments on the serving control plane:

* **Availability under failure** — a 2-replica cluster absorbs a
  scheduled replica kill mid-stream.  With failover (the router masks
  the corpse, orphans are retried) the service stays >= 99% available;
  the blind baseline keeps routing half its traffic into the dead
  replica and loses it all.  Hedged retries trade duplicate work for
  tail latency on the replayed requests.
* **Elastic vs static at equal GPU-hours** — a diurnal stream whose
  peak needs the full 4-replica fleet but whose trough needs one.  The
  autoscaler follows the curve (scale-ups at the peaks, scale-downs in
  the troughs), meeting the SLO on a GPU-second budget that a *static*
  fleet of equal cost cannot: the budget buys 3 always-on replicas,
  which shed at the peaks, while the always-sufficient static 4 costs
  more GPU-time than the elastic fleet burned.
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.serve import (
    AutoscalePolicy,
    FailureSpec,
    ServePolicy,
    WorkloadSpec,
    run_cluster_session,
)

from benchmarks.conftest import BENCH_SCALE

SLO = 2e-3

#: The chaos stream: hot enough that both replicas carry real load when
#: the kill lands.
CHAOS_SPEC = WorkloadSpec(num_requests=300, arrival_rate=150_000.0, seed=7)
CHAOS_POLICY = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=32)

#: The diurnal stream for the elastic comparison: 0.2x-1.8x sinusoid
#: around 450k rps, several day cycles inside the run.
DIURNAL_SPEC = WorkloadSpec(
    num_requests=3000,
    arrival_rate=450_000.0,
    process="diurnal",
    burst_period=4e-3,
    seed=9,
)
DIURNAL_POLICY = ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64)


def _chaos_cell(ds, label, failures, *, num_replicas=2):
    _, rep = run_cluster_session(
        ds,
        device=V100,
        spec=CHAOS_SPEC,
        policy=CHAOS_POLICY,
        num_replicas=num_replicas,
        router="jsq",
        failures=failures,
        seed=7,
    )
    return label, rep


def test_availability_under_failure(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    kill = dict(replica=1, time=8e-4)
    cells = [
        _chaos_cell(
            ds,
            "no failover (blind)",
            FailureSpec.single_kill(orphans="shed", failover=False, **kill),
        ),
        _chaos_cell(
            ds,
            "failover, shed orphans",
            FailureSpec.single_kill(orphans="shed", **kill),
        ),
        _chaos_cell(
            ds,
            "failover + retry",
            FailureSpec.single_kill(**kill),
        ),
        _chaos_cell(
            ds,
            "failover + hedged retry (3x)",
            FailureSpec.single_kill(hedge=True, **kill),
            # Hedging needs a second surviving replica to duplicate to.
            num_replicas=3,
        ),
    ]
    rows = [
        [
            label,
            f"{rep.availability:.4f}",
            str(rep.lost),
            str(rep.retried),
            str(rep.hedged),
            f"{rep.p99_ms:.3f}",
        ]
        for label, rep in cells
    ]
    by_label = dict(cells)
    blind = by_label["no failover (blind)"]
    retry = by_label["failover + retry"]
    hedged = by_label["failover + hedged retry (3x)"]
    # The acceptance bar: one kill with failover+retry stays >= 99%
    # available; routing blindly into the corpse loses most of the
    # session.
    assert retry.availability >= 0.99
    assert retry.lost == 0 and retry.retried > 0
    assert blind.availability < 0.5
    assert hedged.availability >= 0.99 and hedged.hedged > 0
    report(
        "elastic_availability",
        format_table(
            ["Failure handling", "Availability", "Lost", "Retried",
             "Hedged", "p99 (ms)"],
            rows,
            title=(
                f"Availability under one replica kill — graphsage on PD "
                f"scale {BENCH_SCALE}, 2x V100, JSQ, "
                f"{CHAOS_SPEC.num_requests} requests at "
                f"{CHAOS_SPEC.arrival_rate:,.0f} rps, kill replica 1 at "
                "0.8 ms"
            ),
        ),
    )


def test_elastic_vs_static_equal_gpu_hours(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    autoscale = AutoscalePolicy(
        min_replicas=2,
        max_replicas=4,
        interval=1e-4,
        min_samples=16,
        high_p99=1.2e-3,
        high_occupancy=16.0,
        low_occupancy=8.0,
        cooldown=3e-4,
        spinup=2e-4,
    )
    _, elastic = run_cluster_session(
        ds,
        device=V100,
        spec=DIURNAL_SPEC,
        policy=DIURNAL_POLICY,
        num_replicas=2,
        router="jsq",
        autoscale=autoscale,
        seed=9,
    )
    statics = {}
    for n in (2, 3, 4):
        _, statics[n] = run_cluster_session(
            ds,
            device=V100,
            spec=DIURNAL_SPEC,
            policy=DIURNAL_POLICY,
            num_replicas=n,
            router="jsq",
            seed=9,
        )

    def row(label, rep, gpu_seconds):
        return [
            label,
            f"{gpu_seconds * 1e3:.3f}",
            f"{rep.slo_attainment(SLO):.4f}",
            str(rep.shed),
            f"{rep.p99_ms:.3f}",
        ]

    rows = [row("elastic 2..4", elastic, elastic.gpu_seconds)]
    static_cost = {n: n * statics[n].makespan for n in statics}
    for n, rep in statics.items():
        rows.append(row(f"static {n}", rep, static_cost[n]))

    # Equal GPU-hours: the largest static fleet affordable within the
    # elastic run's GPU-second budget.
    affordable = max(n for n in statics if static_cost[n] <= elastic.gpu_seconds)
    peer = statics[affordable]
    # The acceptance bar: at equal GPU-hours the elastic fleet's SLO
    # attainment is at least the static fleet's — and here strictly
    # better, because the static budget-peer sheds at the diurnal peaks.
    assert elastic.slo_attainment(SLO) >= peer.slo_attainment(SLO)
    assert elastic.slo_attainment(SLO) >= 0.999
    assert elastic.scale_ups >= 1 and elastic.scale_downs >= 1
    # The always-sufficient static 4 costs more GPU-time than elastic.
    assert elastic.gpu_seconds < static_cost[4]
    report(
        "elastic_vs_static",
        format_table(
            ["Fleet", "GPU-time (ms)", "SLO attainment", "Shed", "p99 (ms)"],
            rows,
            title=(
                f"Elastic vs static at equal GPU-hours — graphsage on PD "
                f"scale {BENCH_SCALE}, V100, diurnal "
                f"{DIURNAL_SPEC.arrival_rate:,.0f} rps baseline "
                f"(0.2x-1.8x), {DIURNAL_SPEC.num_requests} requests, "
                f"2 ms p99 SLO; equal-budget static peer: "
                f"{affordable} replicas"
            ),
        ),
    )
