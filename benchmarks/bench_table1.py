"""Table 1: fraction of end-to-end training time spent sampling.

Paper values (Ogbn-Products): PyG-CPU GraphSAGE 96.2%; DGL-CPU 70.1% /
95.4% / 95.4%; DGL-GPU 45.8% / 57.6% / 70.1% for GraphSAGE / FastGCN /
LADIES.  We reproduce the protocol on the PD stand-in: the same sampled
mini-batches feed a real NumPy GNN, sampling and training time are
charged on the same simulated device, and the table reports the sampling
share.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_algorithm
from repro.baselines import make_system
from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import CPU, V100
from repro.learning import GraphSAGEModel, LadiesGCN, Trainer

from benchmarks.conftest import BENCH_SCALE

ROWS = [
    ("PyG", "cpu", "pyg-cpu", ("graphsage",)),
    ("DGL", "cpu", "dgl-cpu", ("graphsage", "fastgcn", "ladies")),
    ("DGL", "gpu", "dgl-gpu", ("graphsage", "fastgcn", "ladies")),
    ("gSampler", "gpu", "gsampler", ("graphsage", "fastgcn", "ladies")),
]

_ALGO_SETUP = {
    "graphsage": dict(fanouts=(5, 10, 15)),
    "fastgcn": dict(layer_width=256, num_layers=3),
    "ladies": dict(layer_width=256, num_layers=3),
}


def _fraction(system_name: str, device_kind: str, algo_name: str) -> float:
    ds = load_dataset("pd", scale=BENCH_SCALE)
    system = make_system(system_name)
    pipeline = system.build_pipeline(algo_name, ds, ds.train_ids[:256])
    # Rebuild with the experiment's hyper-parameters.
    algo = make_algorithm(algo_name, **_ALGO_SETUP[algo_name])
    from repro.baselines.base import ProfiledPipeline

    inner = algo.build(ds.graph, ds.train_ids[:256])
    if isinstance(pipeline, ProfiledPipeline):
        pipeline = ProfiledPipeline(inner, pipeline.profile)
    else:
        pipeline = inner
    rng = np.random.default_rng(0)
    model_cls = GraphSAGEModel if algo_name == "graphsage" else LadiesGCN
    model = model_cls(ds.features.shape[1], 32, ds.num_classes,
                      num_layers=3, rng=rng)
    device = CPU if device_kind == "cpu" else V100
    # Sampling runs on the row's hardware; training always runs on the
    # GPU, matching the paper's setup for the CPU-sampling rows.
    trainer = Trainer(
        pipeline, model, ds, device=device, train_device=V100, batch_size=256
    )
    result = trainer.train(2, max_batches_per_epoch=4)
    return result.sampling_fraction


@pytest.mark.parametrize("framework,device,system,algos", ROWS)
def test_table1_sampling_fraction(
    benchmark, report, framework, device, system, algos
):
    fractions = benchmark.pedantic(
        lambda: {a: _fraction(system, device, a) for a in algos},
        rounds=1,
        iterations=1,
    )
    cells = [
        f"{fractions[a] * 100:.1f}%" if a in fractions else "-"
        for a in ("graphsage", "fastgcn", "ladies")
    ]
    report(
        f"table1_{framework.lower()}_{device}",
        format_table(
            ["Framework", "Hardware", "GraphSAGE", "FastGCN", "LADIES"],
            [[framework, device.upper(), *cells]],
            title="Table 1: sampling share of end-to-end training time",
        ),
    )
    # Shape assertions from the paper: CPU sampling dominates harder than
    # GPU sampling, and the share is always substantial for baselines.
    if device == "cpu":
        assert all(f > 0.5 for f in fractions.values())
