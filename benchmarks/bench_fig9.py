"""Figure 9: sampling time on the T4 GPU (vs V100).

The paper re-runs GraphSAGE and LADIES on a T4 (30.0% of V100's memory
bandwidth, 51.6% of its FLOPs) and finds (a) gSampler still beats DGL
everywhere, and (b) the speedup over DGL is generally *smaller* than on
the V100, because the weaker device narrows the headroom gSampler's
optimizations can exploit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import format_table, measure_cell

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

DATASETS = ("lj", "pd", "pp", "fs")


def _speedups(algorithm: str, device: str) -> dict[str, float]:
    out = {}
    for ds in DATASETS:
        gs = measure_cell(
            "gsampler", algorithm, ds, device_name=device,
            scale=BENCH_SCALE, max_batches=MAX_BATCHES, batch_size=512,
        )
        dgl = measure_cell(
            "dgl-gpu", algorithm, ds, device_name=device,
            scale=BENCH_SCALE, max_batches=MAX_BATCHES, batch_size=512,
        )
        assert gs is not None and dgl is not None
        out[ds] = dgl.sim_seconds / gs.sim_seconds
    return out


@pytest.mark.parametrize("algorithm", ["graphsage", "ladies"])
def test_fig9_t4_results(benchmark, report, algorithm):
    result = benchmark.pedantic(
        lambda: {
            "t4": _speedups(algorithm, "t4"),
            "v100": _speedups(algorithm, "v100"),
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [ds.upper(),
         f"{result['v100'][ds]:.2f}x",
         f"{result['t4'][ds]:.2f}x"]
        for ds in DATASETS
    ]
    report(
        f"fig9_{algorithm}",
        format_table(
            ["Graph", "Speedup over DGL (V100)", "Speedup over DGL (T4)"],
            rows,
            title=f"Figure 9: {algorithm} on T4 vs V100",
        ),
    )
    # gSampler beats DGL on the T4 in every cell.
    assert all(v > 1.0 for v in result["t4"].values())
    # The speedup magnitude stays comparable on the weaker device (the
    # paper observes slightly smaller T4 speedups; our simulator lands
    # flat-to-slightly-higher — recorded as a deviation in
    # EXPERIMENTS.md).
    assert np.mean(list(result["t4"].values())) <= 1.6 * np.mean(
        list(result["v100"].values())
    )
