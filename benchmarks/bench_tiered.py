"""Tiered feature store: capped-HBM serving and prefetch overlap.

Three experiments on the multi-tier store:

* **Capped-budget serve** — 2-replica NVLink V100 cluster with the HBM
  budget capped far below the feature working set.  Flat vs tiered vs
  tiered+p2p; the acceptance bar is tiered+p2p beating flat on both p99
  and mean latency (the pooled device band strips p2p-resident rows out
  of every replica's PCIe read).
* **Host-tier ratio sweep** — shrinking the pinned-host band grows the
  remote tail; the table shows the p99 price of each step down.
* **Prefetch overlap** — the tiered training pipeline with the async
  prefetcher vs the synchronous loader, at bit-identical loss (the
  clock is the only difference).
"""

from __future__ import annotations

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.pipeline import run_pipeline_cell
from repro.serve import WorkloadSpec, run_cluster_session

from benchmarks.conftest import BENCH_SCALE

#: HBM budget (bytes) well under PD's feature working set at BENCH_SCALE
#: — roughly 512 of the 3 000 feature rows fit.
CAPPED_BUDGET = 64 * 1024


def _serve(ds, *, budget=CAPPED_BUDGET, **kwargs):
    spec = WorkloadSpec(seed=0)
    _, rep = run_cluster_session(
        ds, device=V100, spec=spec, seed=0, num_replicas=2,
        link="nvlink", hbm_budget=budget, **kwargs
    )
    return rep


def test_tiered_serve_capped_budget(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    cells = [
        ("flat", _serve(ds)),
        ("tiered", _serve(ds, feature_tiers=True)),
        ("tiered+p2p", _serve(ds, feature_tiers=True, p2p=True)),
    ]
    rows = []
    for label, rep in cells:
        cache = rep.cache
        tiers = (
            " / ".join(
                f"{cache.tier_rate(t):.2f}"
                for t in ("device", "p2p", "host", "remote")
            )
            if rep.feature_tiers
            else f"{cache.hit_rate:.2f} (flat)"
        )
        rows.append(
            [label, f"{rep.p99_ms:.4f}", f"{rep.mean_ms:.4f}",
             f"{rep.p50_ms:.4f}", tiers, f"{rep.p2p_rows:,}"]
        )
    flat, tiered, p2p = (rep for _, rep in cells)
    # Acceptance: the pooled device band wins on tail and mean latency.
    assert p2p.p2p_rows > 0
    assert p2p.p99_ms < flat.p99_ms
    assert p2p.mean_ms < flat.mean_ms
    # Without p2p the device band is budget-bound, so tiered rides the
    # same host path as flat — it must not be slower.
    assert tiered.p99_ms <= flat.p99_ms * 1.001
    report(
        "tiered_serve",
        format_table(
            ["Store", "p99 (ms)", "Mean (ms)", "p50 (ms)",
             "dev/p2p/host/remote", "p2p rows"],
            rows,
            title=(
                f"Capped-HBM serving — graphsage on PD scale {BENCH_SCALE}, "
                f"2x V100 over NVLink, {CAPPED_BUDGET // 1024} KiB HBM "
                f"budget per replica"
            ),
        ),
    )


def test_tiered_host_ratio_sweep(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    rows = []
    reps = []
    for ratio in (1.0, 0.6, 0.3):
        rep = _serve(
            ds, feature_tiers=True, p2p=True, host_tier_ratio=ratio
        )
        reps.append(rep)
        cache = rep.cache
        rows.append(
            [f"{ratio:.1f}", f"{rep.p99_ms:.4f}", f"{rep.mean_ms:.4f}",
             f"{cache.tier_rate('host'):.2f}",
             f"{cache.tier_rate('remote'):.2f}"]
        )
    # A smaller pinned-host band pushes rows to the remote tier, and the
    # remote tier's latency shows up in the tail.
    assert reps[-1].cache.tier_rate("remote") > reps[0].cache.tier_rate(
        "remote"
    )
    assert reps[-1].p99_ms >= reps[0].p99_ms
    report(
        "tiered_host_ratio",
        format_table(
            ["Host ratio", "p99 (ms)", "Mean (ms)", "host rate",
             "remote rate"],
            rows,
            title=(
                f"Pinned-host band sweep — tiered+p2p serving on PD scale "
                f"{BENCH_SCALE}, 2x V100/NVLink, capped HBM"
            ),
        ),
    )


def test_tiered_pipeline_prefetch(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    kwargs = dict(
        device=V100, seed=0, hbm_budget=CAPPED_BUDGET,
        feature_tiers=True, host_tier_ratio=0.6,
    )
    serial, pre = run_pipeline_cell("graphsage", ds, prefetch=True, **kwargs)
    _, sync = run_pipeline_cell("graphsage", ds, prefetch=False, **kwargs)
    rows = [
        ["prefetch", f"{pre.total_seconds * 1e3:.4f}",
         f"{pre.final_loss:.6f}"],
        ["synchronous", f"{sync.total_seconds * 1e3:.4f}",
         f"{sync.final_loss:.6f}"],
        ["serial (no pipeline)", f"{serial.total_seconds * 1e3:.4f}",
         f"{serial.final_loss:.6f}"],
    ]
    # The async prefetcher hides the tier fetch behind compute; the
    # synchronous loader serializes.  Losses are bit-identical.
    assert pre.total_seconds < sync.total_seconds
    assert pre.final_loss == sync.final_loss == serial.final_loss
    speedup = sync.total_seconds / pre.total_seconds
    report(
        "tiered_prefetch",
        format_table(
            ["Loader", "Epoch (ms)", "Final loss"],
            rows,
            title=(
                f"Tiered pipeline prefetch overlap — graphsage on PD scale "
                f"{BENCH_SCALE}, V100, capped HBM, host ratio 0.6 "
                f"(async {speedup:.2f}x over synchronous)"
            ),
        ),
    )
