"""Cluster serving: replica scaling, router shoot-out, cross-shard tax.

Three experiments on the multi-replica serving simulator:

* **Replica scaling** — p99 vs replica count at a fixed offered load
  that saturates a single V100 replica.  Adding replicas drains the
  queue, but past the sweet spot the tail rises again: per-replica
  traffic gets too thin to fill batches and every request pays the
  max_wait timeout.  The headline replicas-vs-p99 sweep.
* **Router shoot-out** — round-robin vs JSQ vs po2 at a load point with
  heterogeneous request sizes (2-64 seeds per request).  Blind rotation
  stacks heavy requests behind heavy requests; load-aware JSQ routes
  around busy replicas.  The acceptance bar is the located crossover:
  JSQ p99 strictly below round-robin p99.
* **Cross-shard traffic tax** — shard-affinity routing over hash vs
  greedy partitions.  Hash cuts ~(k-1)/k of edges so most frontier rows
  hop the NVLink; greedy's low edge cut keeps more of the frontier
  local.  Quantifies rows, MiB, and link milliseconds per partitioner
  against the unpartitioned baseline.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.serve import ServePolicy, WorkloadSpec, run_cluster_session
from repro.stats import percentile_ms

from benchmarks.conftest import BENCH_SCALE

#: Offered load (requests/simulated second) that saturates one V100
#: replica at this scale — the fixed point the replica sweep holds.
SATURATING_RATE = 400_000.0

REQUESTS = 500


def _policy(capacity=32):
    return ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=capacity)


def test_cluster_replica_scaling(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    spec = WorkloadSpec(
        num_requests=REQUESTS, arrival_rate=SATURATING_RATE, seed=7
    )
    rows = []
    p99 = {}
    for replicas in (1, 2, 4, 8):
        _, rep = run_cluster_session(
            ds,
            device=V100,
            spec=spec,
            policy=_policy(capacity=None),
            num_replicas=replicas,
            router="round_robin",
            seed=7,
        )
        p99[replicas] = rep.p99_ms
        rows.append(
            [
                str(replicas),
                f"{rep.throughput_rps:,.0f}",
                f"{rep.p50_ms:.3f}",
                f"{rep.p99_ms:.3f}",
                f"{rep.mean_queue_ms:.3f}",
                f"{rep.mean_batch:.1f}",
            ]
        )
    # Acceptance: scaling out at fixed offered load cuts the tail — the
    # saturated single replica queues, the 2- and 4-replica clusters do
    # not.  Past the sweet spot the tail *rises* again: each replica
    # sees so little traffic its batches stop filling, and every
    # request pays the max_wait batching timeout instead.
    assert p99[2] < p99[1]
    assert p99[4] < p99[1]
    assert p99[8] > p99[2]
    report(
        "cluster_replica_scaling",
        format_table(
            ["Replicas", "Achieved (rps)", "p50 (ms)", "p99 (ms)",
             "Mean queue (ms)", "Mean batch"],
            rows,
            title=(
                f"Replica scaling — graphsage on PD scale {BENCH_SCALE}, "
                f"{REQUESTS} requests at {SATURATING_RATE:,.0f} rps "
                "offered, round-robin, unbounded queue"
            ),
        ),
    )


def test_cluster_router_comparison(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    # Heterogeneous request sizes: routing policy only matters when
    # request costs vary enough for blind rotation to stack heavy
    # requests behind heavy requests.
    spec = WorkloadSpec(
        num_requests=REQUESTS,
        arrival_rate=300_000.0,
        seeds_per_request=2,
        max_seeds_per_request=64,
        seed=7,
    )
    rows = []
    results = {}
    for router in ("round_robin", "jsq", "po2"):
        _, rep = run_cluster_session(
            ds,
            device=V100,
            spec=spec,
            policy=_policy(),
            num_replicas=4,
            router=router,
            seed=7,
        )
        results[router] = rep
        latencies = np.array(
            [log.latency for log in rep.logs if log.completed]
        )
        rows.append(
            [
                router,
                f"{rep.p50_ms:.3f}",
                f"{percentile_ms(latencies, 90.0):.3f}",
                f"{rep.p99_ms:.3f}",
                str(rep.shed),
                f"{rep.mean_batch:.1f}",
            ]
        )
    # Acceptance: the located crossover — load-aware JSQ beats blind
    # rotation on tail latency under heterogeneous request costs.
    assert results["jsq"].p99_ms < results["round_robin"].p99_ms
    # Every policy serves the same stream: completed+shed conserved.
    assert all(
        r.completed + r.shed == REQUESTS for r in results.values()
    )
    report(
        "cluster_router_comparison",
        format_table(
            ["Router", "p50 (ms)", "p90 (ms)", "p99 (ms)", "Shed",
             "Mean batch"],
            rows,
            title=(
                "Router shoot-out — graphsage/PD/V100, 4 replicas, "
                f"{REQUESTS} heterogeneous requests (2-64 seeds) at "
                "300k rps offered"
            ),
        ),
    )


def test_cluster_shard_traffic_tax(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    spec = WorkloadSpec(
        num_requests=REQUESTS, arrival_rate=100_000.0, seed=7
    )
    rows = []
    results = {}
    for label, partition, router in (
        ("unpartitioned", None, "jsq"),
        ("hash", "hash", "shard"),
        ("greedy", "greedy", "shard"),
    ):
        cluster, rep = run_cluster_session(
            ds,
            device=V100,
            spec=spec,
            policy=_policy(),
            num_replicas=4,
            router=router,
            partition=partition,
            link="nvlink",
            seed=7,
        )
        results[label] = rep
        cut = (
            f"{cluster.partition.edge_cut:.1%}"
            if cluster.partition is not None
            else "-"
        )
        rows.append(
            [
                label,
                cut,
                str(rep.cross_shard_rows),
                f"{rep.cross_shard_bytes / 2**20:.2f}",
                f"{rep.link_seconds * 1e3:.3f}",
                f"{rep.p99_ms:.3f}",
                str(rep.shed),
            ]
        )
    # Acceptance: sharded serving pays a real, nonzero link tax...
    assert results["hash"].cross_shard_bytes > 0
    assert results["greedy"].cross_shard_bytes > 0
    # ...the structure-aware partitioner pays less of it than the
    # structure-oblivious one...
    assert (
        results["greedy"].cross_shard_rows
        < results["hash"].cross_shard_rows
    )
    # ...and the unpartitioned cluster pays none.
    assert results["unpartitioned"].cross_shard_bytes == 0
    report(
        "cluster_shard_traffic",
        format_table(
            ["Partition", "Edge cut", "Remote rows", "Remote MiB",
             "Link (ms)", "p99 (ms)", "Shed"],
            rows,
            title=(
                "Cross-shard traffic tax — graphsage/PD/V100, 4 "
                f"replicas over NVLink, {REQUESTS} requests at 100k rps "
                "(shard-affinity routing on the partitioned cells)"
            ),
        ),
    )


def test_cluster_composer_superbatch(report):
    """Cross-request super-batching on a saturated 2-replica cluster.

    The same amortization story as the single-replica knee, after the
    router splits the stream: each replica fuses its own pending window,
    so the win compounds with (rather than being absorbed by) replica
    scaling.  Acceptance: superbatch >= 1.5x FIFO cluster throughput at
    equal-or-better p99, and the fused windows deduplicate overlapping
    frontier rows before the feature fetch.
    """
    ds = load_dataset("pd", scale=BENCH_SCALE)
    spec = WorkloadSpec(
        num_requests=REQUESTS, arrival_rate=4 * SATURATING_RATE, seed=7
    )
    rows = []
    cells = {}
    for composer in ("fifo", "superbatch"):
        _, rep = run_cluster_session(
            ds,
            device=V100,
            spec=spec,
            policy=_policy(capacity=64),
            num_replicas=2,
            router="jsq",
            composer=composer,
            seed=7,
        )
        cells[composer] = rep
        fused = (
            f"{rep.superbatch_requests / rep.superbatch_batches:.1f}"
            if rep.superbatch_batches
            else "-"
        )
        rows.append(
            [
                composer,
                f"{rep.throughput_rps:,.0f}",
                f"{rep.p50_ms:.3f}",
                f"{rep.p99_ms:.3f}",
                str(rep.shed),
                fused,
                f"{rep.dedup_rows:,d}" if rep.dedup_rows else "-",
            ]
        )
    fifo, sb = cells["fifo"], cells["superbatch"]
    assert sb.throughput_rps >= 1.5 * fifo.throughput_rps
    assert sb.p99_ms <= fifo.p99_ms
    assert sb.dedup_rows > 0
    report(
        "cluster_composer_superbatch",
        format_table(
            ["Composer", "Achieved (rps)", "p50 (ms)", "p99 (ms)", "Shed",
             "Mean fused", "Dedup rows"],
            rows,
            title=(
                f"Cluster super-batch serving — graphsage on PD scale "
                f"{BENCH_SCALE}, 2x V100, {REQUESTS} requests at "
                f"{4 * SATURATING_RATE:,.0f} rps offered, JSQ "
                "router, queue_capacity=64"
            ),
        ),
    )
