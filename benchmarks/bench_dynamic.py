"""Dynamic graphs: staleness-vs-latency and incremental repartitioning.

Three experiments on the serve-while-ingesting path:

* **Snapshot-epoch sweep** — the staleness-vs-latency knob.  At a fixed
  ingest rate, sweeping the minimum gap between overlay-snapshot
  installs trades update visibility (mean staleness of applied edges)
  against device time spent merging deltas on the sample queues.  The
  acceptance bar is the trade itself: the coarsest epoch must show
  strictly more staleness and strictly less refresh time than the
  finest.
* **Ingest-rate sweep** — request p99 as the update stream grows from
  zero (the static baseline) to rates where delta merges contend with
  sampling on the same queues.
* **Incremental vs full repartition** — after skewed ingest drifts the
  degree balance, a bounded incremental rebalance must migrate strictly
  fewer feature-row bytes than a from-scratch repartition while landing
  within a few points of its edge cut.
"""

from __future__ import annotations

import numpy as np

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.device import V100
from repro.dynamic import DynamicPolicy, UpdateSpec, generate_update_stream
from repro.partition import (
    PartitionTracker,
    full_repartition,
    incremental_rebalance,
    make_partition,
)
from repro.serve import ServePolicy, WorkloadSpec, run_cluster_session

from benchmarks.conftest import BENCH_SCALE

REQUESTS = 384
ARRIVAL_RATE = 60_000.0
INGEST_RATE = 200_000.0

#: Bytes per migrated feature row in the comparison (pd feature dim
#: x float32; the absolute value cancels out of the ratio).
ROW_BYTES = 256 * 4


def _policy():
    return ServePolicy(max_batch=8, max_wait=5e-4, queue_capacity=64)


def _session(ds, *, updates, dynamic, seed=7):
    return run_cluster_session(
        ds,
        device=V100,
        spec=WorkloadSpec(
            num_requests=REQUESTS, arrival_rate=ARRIVAL_RATE, seed=seed
        ),
        policy=_policy(),
        num_replicas=2,
        router="shard",
        partition="greedy",
        seed=seed,
        updates=updates,
        dynamic=dynamic,
    )[1]


def test_dynamic_staleness_vs_latency(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    updates = UpdateSpec(
        num_edges=1024, rate=INGEST_RATE, delete_fraction=0.2, seed=3
    )
    rows = []
    staleness = {}
    refresh = {}
    for epoch_ms in (0.05, 0.1, 0.2, 0.5, 1.0):
        rep = _session(
            ds,
            updates=updates,
            dynamic=DynamicPolicy(snapshot_every=epoch_ms * 1e-3),
        )
        staleness[epoch_ms] = rep.mean_staleness_ms
        refresh[epoch_ms] = rep.refresh_ms
        rows.append(
            [
                f"{epoch_ms:.2f}",
                rep.snapshots,
                f"{rep.mean_staleness_ms:.4f}",
                f"{rep.max_staleness_ms:.4f}",
                f"{rep.refresh_ms:.4f}",
                f"{rep.p99_ms:.4f}",
            ]
        )
    report(
        "dynamic_staleness",
        format_table(
            ["Epoch (ms)", "Snapshots", "Mean stale (ms)",
             "Max stale (ms)", "Refresh (ms)", "p99 (ms)"],
            rows,
            title=(
                "Staleness vs latency — snapshot-epoch sweep "
                f"(pd@{BENCH_SCALE}, 2 shards, ingest {INGEST_RATE:,.0f} "
                "edges/s)"
            ),
        ),
    )
    # The trade must actually materialize: coarser epochs -> staler
    # updates, but fewer installs -> less device time merging deltas.
    assert staleness[1.0] > staleness[0.05]
    assert refresh[1.0] < refresh[0.05]


def test_dynamic_ingest_rate_sweep(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    rows = []
    p99 = {}
    for rate in (0.0, 100_000.0, 200_000.0, 400_000.0):
        updates = (
            UpdateSpec(
                num_edges=1024, rate=rate, delete_fraction=0.2, seed=3
            )
            if rate
            else None
        )
        rep = _session(
            ds,
            updates=updates,
            dynamic=DynamicPolicy(snapshot_every=2e-4) if rate else None,
        )
        p99[rate] = rep.p99_ms
        rows.append(
            [
                f"{rate:,.0f}",
                rep.ingested_edges + rep.deleted_edges,
                rep.snapshots,
                f"{rep.mean_staleness_ms:.4f}",
                f"{rep.refresh_ms:.4f}",
                f"{rep.p99_ms:.4f}",
            ]
        )
    report(
        "dynamic_ingest_rate",
        format_table(
            ["Ingest (edges/s)", "Applied", "Snapshots",
             "Mean stale (ms)", "Refresh (ms)", "p99 (ms)"],
            rows,
            title=(
                "Serve-while-ingesting — ingest-rate sweep "
                f"(pd@{BENCH_SCALE}, 2 shards, snapshot epoch 0.2 ms)"
            ),
        ),
    )
    # Rate 0 is the static baseline; ingesting sessions pay for their
    # delta merges, so the heaviest stream must not be cheaper.
    assert p99[400_000.0] >= p99[0.0]


def test_incremental_vs_full_repartition(report):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    partition = make_partition("greedy", ds.graph, 2, seed=0)
    tracker = PartitionTracker(partition)
    # Drift the balance with a hot-skewed stream applied to the tracker
    # and the graph mutation state alike.
    from repro.dynamic import DeltaGraph

    delta = DeltaGraph(ds.graph)
    stream = generate_update_stream(
        UpdateSpec(
            num_edges=4096, rate=INGEST_RATE, delete_fraction=0.1, seed=9
        ),
        num_nodes=ds.num_nodes,
        hotness=np.diff(ds.graph.get("csc").indptr),
    )
    for batch in stream:
        delta.apply(batch)
        tracker.apply_updates(batch.src, batch.dst, batch.delete)
    graph = delta.compact()
    csc = graph.get("csc")
    baseline_cut = float(
        np.mean(partition.assignment[csc.rows]
                != partition.assignment[csc.expand_cols()])
    )
    incremental = incremental_rebalance(
        graph,
        partition.assignment,
        2,
        target_balance=max(tracker.baseline_balance, 1.0),
        max_moves=256,
    )
    full = full_repartition(graph, partition.assignment, 2, seed=0)
    rows = [
        ["stay put (drifted)", 0, "0.000", f"{baseline_cut:.2%}"],
        [
            "incremental",
            incremental.num_moved,
            f"{incremental.migration_bytes(ROW_BYTES) / 2**20:.3f}",
            f"{incremental.edge_cut:.2%}",
        ],
        [
            "full (greedy)",
            full.num_moved,
            f"{full.migration_bytes(ROW_BYTES) / 2**20:.3f}",
            f"{full.edge_cut:.2%}",
        ],
    ]
    report(
        "dynamic_repartition",
        format_table(
            ["Strategy", "Rows moved", "Migration (MiB)", "Edge cut"],
            rows,
            title=(
                "Incremental vs full repartition after drift "
                f"(pd@{BENCH_SCALE}, 2 shards, 4096 streamed edges)"
            ),
        ),
    )
    # The headline claim: the bounded incremental pass restores balance
    # for a tiny fraction of a full rebuild's migration bytes, without
    # degrading the cut the drifted session was already operating at.
    # The full rebuild buys a better cut — that is the trade.
    assert incremental.migration_bytes(ROW_BYTES) < full.migration_bytes(
        ROW_BYTES
    )
    assert incremental.edge_cut <= baseline_cut + 0.02
