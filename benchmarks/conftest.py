"""Benchmark configuration: scales, output capture, shared helpers.

Every benchmark regenerates one table or figure of the paper at laptop
scale and appends its formatted report to ``benchmarks/results/`` so the
numbers survive the pytest run (``pytest benchmarks/ --benchmark-only -s``
also prints them).
"""

from __future__ import annotations

import pathlib

import pytest

#: Dataset scale used by the benchmarks (keeps a full run under minutes).
BENCH_SCALE = 0.25
#: Batches measured per epoch cell (the paper runs full epochs; a fixed
#: batch count keeps cells comparable and fast).
MAX_BATCHES = 6

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Writer: persists each experiment's table and echoes it."""

    def _write(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _write


def fmt_ms(seconds: float | None) -> str:
    return "N/A" if seconds is None else f"{seconds * 1e3:.3f}"
