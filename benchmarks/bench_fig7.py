"""Figure 7: normalized sampling time, simple algorithms, all systems.

The paper compares gSampler against DGL (GPU/CPU), PyG (GPU/CPU),
SkyWalker, GunRock, and cuGraph on DeepWalk, Node2Vec, and GraphSAGE
across LJ/PD/PP/FS, normalizing gSampler to 1.0.  Missing bars (N/A) mark
unsupported combinations; our capability matrix reproduces them exactly.

Shape to preserve: gSampler is fastest everywhere; vertex-centric systems
are the strongest baselines for walks; cuGraph trails badly; CPU rows are
orders of magnitude slower.
"""

from __future__ import annotations

import pytest

from repro.algorithms import SIMPLE
from repro.baselines import FIGURE7_SYSTEMS
from repro.bench import format_table, measure_cell

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES

DATASETS = ("lj", "pd", "pp", "fs")


def _row(algorithm: str, dataset: str) -> dict[str, float | None]:
    out: dict[str, float | None] = {}
    for system in FIGURE7_SYSTEMS:
        stats = measure_cell(
            system,
            algorithm,
            dataset,
            scale=BENCH_SCALE,
            max_batches=MAX_BATCHES,
            batch_size=512,
        )
        out[system] = None if stats is None else stats.sim_seconds
    return out


@pytest.mark.parametrize("algorithm", SIMPLE)
def test_fig7_simple_algorithms(benchmark, report, algorithm):
    rows = benchmark.pedantic(
        lambda: {ds: _row(algorithm, ds) for ds in DATASETS},
        rounds=1,
        iterations=1,
    )
    table = []
    for ds, row in rows.items():
        ref = row["gsampler"]
        assert ref is not None
        cells = [
            "N/A" if v is None else f"{v / ref:.2f}x" for v in row.values()
        ]
        table.append([ds.upper(), *cells])
    report(
        f"fig7_{algorithm}",
        format_table(
            ["Graph", *FIGURE7_SYSTEMS],
            table,
            title=f"Figure 7: normalized sampling time — {algorithm} "
            "(gSampler = 1.0)",
        ),
    )
    for ds, row in rows.items():
        ref = row["gsampler"]
        supported = {k: v for k, v in row.items() if v is not None}
        # gSampler wins every supported cell.
        assert ref == min(supported.values()), (algorithm, ds)
        # CPU sampling is dramatically slower than gSampler.
        if "pyg-cpu" in supported:
            assert supported["pyg-cpu"] > 5 * ref

    # Capability matrix (the N/A pattern of Figure 7).
    if algorithm == "graphsage":
        assert rows["pp"]["gunrock"] is None  # no UVA
        assert rows["pp"]["cugraph"] is None  # cannot load host graphs
        assert rows["lj"]["pyg-gpu"] is None  # PyG GPU only does DeepWalk
    if algorithm == "node2vec":
        assert rows["lj"]["dgl-gpu"] is None  # no GPU Node2Vec in DGL
