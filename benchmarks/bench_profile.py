"""Profiled epoch: the Table-9-style attribution report for GraphSAGE.

Unlike the figure/table benchmarks, this one exercises the
``repro.profile`` subsystem end to end under the bench harness: span
capture across compile and execution, the text report, the Chrome-trace
export, and the trajectory comparator — while asserting the profiler's
core contract, that tracing attributes every simulated second without
changing any measured number.
"""

from __future__ import annotations

import json

from repro.baselines import GSamplerSystem
from repro.bench import run_sampling_epoch
from repro.datasets import load_dataset
from repro.device import V100
from repro.profile import (
    Profiler,
    append_record,
    bench_path,
    build_text_report,
    compare_latest,
    write_chrome_trace,
)

from benchmarks.conftest import BENCH_SCALE, MAX_BATCHES


def test_profile_graphsage_pd(benchmark, report, tmp_path):
    ds = load_dataset("pd", scale=BENCH_SCALE)
    profiler = Profiler()

    def run():
        return run_sampling_epoch(
            GSamplerSystem(), "graphsage", ds, device=V100,
            batch_size=512, max_batches=MAX_BATCHES, profiler=profiler,
        )

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    ctx = profiler.context
    assert ctx is not None and profiler.open_spans() == 0

    # Attribution is complete: the kernel spans tile the whole ledger.
    kernel_sim = sum(
        s.sim_duration for s in profiler.spans_by_category("kernel")
    )
    assert abs(kernel_sim - stats.sim_seconds) < 1e-12

    # Wall time is intentionally omitted: the saved report must be
    # deterministic so repeated runs leave benchmarks/results unchanged.
    report(
        "profile_graphsage",
        build_text_report(
            ctx,
            title=(
                f"Profile — graphsage on PD (v100), "
                f"{stats.num_batches} batches"
            ),
        ),
    )

    trace_path = write_chrome_trace(profiler, tmp_path / "trace.json")
    trace = json.loads(trace_path.read_text())
    assert all(e.get("dur", 0) >= 0 for e in trace["traceEvents"])

    # Trajectory round trip: identical metrics never flag a regression.
    metrics = {
        "sim_seconds": stats.sim_seconds,
        "launches": stats.launches,
        "peak_bytes": stats.peak_memory_bytes,
        "time_by_kernel": ctx.time_by_kernel(),
    }
    path = bench_path(tmp_path, "profile_graphsage_pd_v100")
    meta = {"algorithm": "graphsage", "dataset": "pd", "device": "v100"}
    append_record(path, tag="profile_graphsage_pd_v100", meta=meta, metrics=metrics)
    append_record(path, tag="profile_graphsage_pd_v100", meta=meta, metrics=metrics)
    assert compare_latest(path) == []
