"""Framework interop: the ``to_dgl_graph`` / ``to_pyg_graph`` converters.

gSampler hands its sampled matrices to DGL or PyG for training
(Section 4.5).  Neither framework exists in this environment, so the
converters produce faithful structural equivalents:

* :func:`to_dgl_graph` returns a DGL-style *message flow graph* (MFG):
  renumbered src/dst node lists with a local edge index and the
  local-to-global id maps DGL blocks carry;
* :func:`to_pyg_graph` returns PyG's ``edge_index`` convention: a
  ``(2, E)`` integer array plus node ids and edge weights.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.matrix import Matrix
from repro.sparse import INDEX_DTYPE


@dataclasses.dataclass
class DGLBlock:
    """A DGL-style message-flow-graph block.

    ``src_nodes``/``dst_nodes`` are original ids; ``edges_src``/
    ``edges_dst`` index *locally* into those arrays, exactly like a DGL
    block after ``to_block``.
    """

    src_nodes: np.ndarray
    dst_nodes: np.ndarray
    edges_src: np.ndarray
    edges_dst: np.ndarray
    edge_weight: np.ndarray

    @property
    def num_edges(self) -> int:
        return len(self.edges_src)


@dataclasses.dataclass
class PyGData:
    """A PyG-style data object for one sampled block."""

    edge_index: np.ndarray  # (2, E): local [src; dst]
    node_ids: np.ndarray  # local -> original
    edge_weight: np.ndarray
    num_nodes: int


def to_dgl_graph(matrix: Matrix) -> DGLBlock:
    """Convert a sampled matrix into a DGL-style MFG block."""
    src_global, dst_global, weights = matrix.to_coo_arrays()
    src_nodes, edges_src = np.unique(src_global, return_inverse=True)
    dst_nodes, edges_dst = np.unique(dst_global, return_inverse=True)
    return DGLBlock(
        src_nodes=src_nodes.astype(INDEX_DTYPE),
        dst_nodes=dst_nodes.astype(INDEX_DTYPE),
        edges_src=edges_src.astype(INDEX_DTYPE),
        edges_dst=edges_dst.astype(INDEX_DTYPE),
        edge_weight=weights,
    )


def to_pyg_graph(matrix: Matrix) -> PyGData:
    """Convert a sampled matrix into a PyG-style data object."""
    src_global, dst_global, weights = matrix.to_coo_arrays()
    node_ids, inverse = np.unique(
        np.concatenate([src_global, dst_global]), return_inverse=True
    )
    e = len(src_global)
    edge_index = np.stack([inverse[:e], inverse[e:]]).astype(INDEX_DTYPE)
    return PyGData(
        edge_index=edge_index,
        node_ids=node_ids.astype(INDEX_DTYPE),
        edge_weight=weights,
        num_nodes=len(node_ids),
    )
