"""Training glue: NumPy GNN models, trainer, and framework converters."""

from repro.learning.convert import DGLBlock, PyGData, to_dgl_graph, to_pyg_graph
from repro.learning.models import GraphSAGEModel, LadiesGCN, SampledGNN
from repro.learning.nn import SGD, Linear, ReLU, accuracy, softmax_cross_entropy
from repro.learning.trainer import Trainer, TrainResult

__all__ = [
    "DGLBlock",
    "GraphSAGEModel",
    "LadiesGCN",
    "Linear",
    "PyGData",
    "ReLU",
    "SGD",
    "SampledGNN",
    "TrainResult",
    "Trainer",
    "accuracy",
    "softmax_cross_entropy",
    "to_dgl_graph",
    "to_pyg_graph",
]
