"""End-to-end training loop: sampling + GNN training under one clock.

Reproduces the measurement protocol behind Table 1 (fraction of training
time spent sampling) and Table 8 (end-to-end time and accuracy): every
mini-batch is sampled by a pipeline (its kernels land on the shared
execution context), features for the sampled nodes are gathered (a
memory-traffic launch), and the model's forward/backward are charged as
dense-compute launches sized by their true FLOP counts.  Accuracy is
real — the model actually trains on the synthetic labels.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.algorithms.base import Pipeline
from repro.cache.gather import plan_gather, record_gather
from repro.core import GraphSample, minibatches, new_rng
from repro.datasets import Dataset
from repro.device import DeviceSpec, ExecutionContext
from repro.learning.models import SampledGNN
from repro.learning.nn import SGD
from repro.tasks import NodeClassificationTask, Task, TaskBatch


@dataclasses.dataclass
class TrainResult:
    """Outcome of a training run with the paper's cost split."""

    epochs: int
    final_accuracy: float
    final_loss: float
    total_seconds: float
    sampling_seconds: float
    training_seconds: float
    accuracy_history: list[float]

    @property
    def sampling_fraction(self) -> float:
        """Table 1's metric: share of end-to-end time spent sampling."""
        if self.total_seconds == 0:
            return 0.0
        return self.sampling_seconds / self.total_seconds


class Trainer:
    """Mini-batch trainer wiring a sampling pipeline to a sampled GNN."""

    def __init__(
        self,
        pipeline: Pipeline,
        model: SampledGNN,
        dataset: Dataset,
        *,
        device: DeviceSpec,
        train_device: DeviceSpec | None = None,
        batch_size: int = 1024,
        lr: float = 0.05,
        seed: int = 0,
        task: Task | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.model = model
        self.dataset = dataset
        #: Device running the *sampling* kernels. Training compute runs on
        #: ``train_device`` (default: same device) — the paper's CPU rows
        #: sample on the CPU but still train on the GPU.
        self.device = device
        self.train_device = train_device if train_device is not None else device
        self.batch_size = batch_size
        self.optimizer = SGD(model.parameters(), lr=lr)
        self.rng = new_rng(seed)
        #: Workload definition: what an epoch iterates, how a mini-batch
        #: becomes sampler seeds, and which head/loss trains on it.  The
        #: default reproduces the historical node-classification path
        #: bit-for-bit (same arrays, zero extra RNG draws).
        self.task = task if task is not None else NodeClassificationTask()
        self.task.prepare(dataset)

    # ------------------------------------------------------------------
    def _gather_features(
        self,
        sample: GraphSample,
        train_ctx: ExecutionContext,
        cache=None,
    ) -> None:
        """Charge the feature-gather transfer for one sampled batch.

        Memory traffic is proportional to the gathered rows, over PCIe
        when features live on the host.  With a
        :class:`~repro.cache.FeatureCache`, cached rows are served from
        device memory and only the misses cross PCIe — the numeric
        feature values are unchanged either way, so cached and uncached
        runs train identically.
        """
        plan = plan_gather(sample.all_nodes, cache)
        record_gather(train_ctx, plan, self.dataset.features.shape[1] * 4)

    def _compute_batch(
        self,
        sample: GraphSample,
        train_ctx: ExecutionContext,
        batch: TaskBatch | None = None,
    ) -> tuple[float, float]:
        """Forward/backward/step for one batch, charged as dense compute.

        The task owns forward + loss (returning the gradient w.r.t. the
        model's outputs); optimizer mechanics stay here so they're
        task-agnostic.
        """
        feats = self.dataset.features
        gathered = len(sample.all_nodes)
        if batch is None:
            batch = TaskBatch(nodes=sample.seeds)
        loss, grad, metric = self.task.loss_and_metric(
            self.model, sample, feats, batch, self.dataset
        )
        self.model.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        train_ctx.record(
            "train_fwd_bwd",
            flops=self.model.flops_per_sample(sample, feats.shape[1]),
            bytes_read=gathered * feats.shape[1] * 4 * 3,
            bytes_written=gathered * feats.shape[1] * 4,
            tasks=max(gathered, 1),
        )
        return loss, metric

    def _train_batch(
        self,
        sample: GraphSample,
        train_ctx: ExecutionContext,
        batch: TaskBatch | None = None,
    ) -> tuple[float, float]:
        self._gather_features(sample, train_ctx)
        return self._compute_batch(sample, train_ctx, batch)

    # ------------------------------------------------------------------
    def train(
        self,
        epochs: int,
        *,
        max_batches_per_epoch: int | None = None,
    ) -> TrainResult:
        sample_ctx = ExecutionContext(
            self.device, graph_on_device=self.dataset.graph_on_device
        )
        train_ctx = ExecutionContext(
            self.train_device, graph_on_device=self.dataset.graph_on_device
        )
        acc_history: list[float] = []
        last_loss = float("nan")
        units = self.task.train_units(self.dataset)
        for _ in range(epochs):
            batches = minibatches(
                units, self.batch_size, shuffle=True, rng=self.rng
            )
            if max_batches_per_epoch is not None:
                batches = batches[:max_batches_per_epoch]
            epoch_acc: list[float] = []
            for batch in batches:
                task_batch = self.task.materialize(batch, self.rng)
                sample = self.pipeline.sample_batch(
                    task_batch.nodes, ctx=sample_ctx, rng=self.rng
                )
                loss, acc = self._train_batch(sample, train_ctx, task_batch)
                last_loss = loss
                epoch_acc.append(acc)
            acc_history.append(float(np.mean(epoch_acc)) if epoch_acc else 0.0)
        sampling = sample_ctx.elapsed
        training = train_ctx.elapsed
        return TrainResult(
            epochs=epochs,
            final_accuracy=acc_history[-1] if acc_history else 0.0,
            final_loss=last_loss,
            total_seconds=sampling + training,
            sampling_seconds=sampling,
            training_seconds=training,
            accuracy_history=acc_history,
        )
