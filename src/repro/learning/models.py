"""Sampled GNN models: GraphSAGE (mean aggregator) and a LADIES-style GCN.

Both consume a :class:`~repro.core.ecsf.GraphSample` — the multi-layer
bipartite blocks a sampling pipeline produces — and run real forward and
backward passes over it in NumPy.  The message-flow bookkeeping follows
the standard "needed node set per depth" scheme: depth ``d``'s
representation is computed for the union of all shallower layers' nodes,
so self terms are always available.
"""

from __future__ import annotations

import numpy as np

from repro.core import GraphSample
from repro.errors import ShapeError
from repro.learning.nn import Linear, ReLU


def _index_map(ids: np.ndarray) -> dict[int, int]:
    return {int(n): i for i, n in enumerate(ids)}


def _positions(ids: np.ndarray, universe: np.ndarray) -> np.ndarray:
    """Positions of ``ids`` inside sorted-unique ``universe``."""
    pos = np.searchsorted(universe, ids)
    if np.any(pos >= len(universe)) or np.any(universe[pos] != ids):
        raise ShapeError("node set mismatch between sample layers")
    return pos


class _AggregationCache:
    """Per-layer cached arrays needed by the backward pass."""

    def __init__(self) -> None:
        self.src_pos: np.ndarray | None = None
        self.dst_pos: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self.norm: np.ndarray | None = None
        self.h_src: np.ndarray | None = None


def _weighted_mean_aggregate(
    rows: np.ndarray,
    cols: np.ndarray,
    weights: np.ndarray,
    h_src: np.ndarray,
    src_universe: np.ndarray,
    dst_universe: np.ndarray,
    cache: _AggregationCache,
) -> np.ndarray:
    """agg[dst] = sum_e w_e * h_src[src_e] / sum_e w_e, vectorized."""
    src_pos = _positions(rows, src_universe)
    dst_pos = _positions(cols, dst_universe)
    dim = h_src.shape[1]
    agg = np.zeros((len(dst_universe), dim), dtype=np.float64)
    np.add.at(agg, dst_pos, weights[:, None].astype(np.float64) * h_src[src_pos])
    norm = np.zeros(len(dst_universe), dtype=np.float64)
    np.add.at(norm, dst_pos, weights.astype(np.float64))
    norm = np.maximum(norm, 1e-12)
    agg = (agg / norm[:, None]).astype(np.float32)
    cache.src_pos, cache.dst_pos = src_pos, dst_pos
    cache.weights, cache.norm = weights.astype(np.float64), norm
    cache.h_src = h_src
    return agg


def _aggregate_backward(
    grad_agg: np.ndarray, cache: _AggregationCache, num_src: int
) -> np.ndarray:
    """Gradient of the weighted mean w.r.t. the source representations."""
    assert cache.src_pos is not None
    grad_scaled = grad_agg.astype(np.float64) / cache.norm[:, None]
    grad_src = np.zeros((num_src, grad_agg.shape[1]), dtype=np.float64)
    np.add.at(
        grad_src,
        cache.src_pos,
        cache.weights[:, None] * grad_scaled[cache.dst_pos],
    )
    return grad_src.astype(np.float32)


class SampledGNN:
    """Shared trunk of the two models.

    ``use_self`` toggles the GraphSAGE self path; the LADIES GCN relies
    solely on the (re-weighted) aggregation, which is how LADIES's
    debiased edge weights enter training.
    """

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int,
        *,
        use_self: bool,
        rng: np.random.Generator,
    ) -> None:
        self.num_layers = num_layers
        self.use_self = use_self
        # Layers are indexed by *depth*: depth num_layers-1 runs first and
        # consumes raw features; depth 0 runs last and emits class logits.
        def dims(depth: int) -> tuple[int, int]:
            d_in = in_dim if depth == num_layers - 1 else hidden_dim
            d_out = num_classes if depth == 0 else hidden_dim
            return d_in, d_out

        self.neigh_layers = [
            Linear(*dims(depth), rng=rng) for depth in range(num_layers)
        ]
        self.self_layers = (
            [Linear(*dims(depth), rng=rng) for depth in range(num_layers)]
            if use_self
            else []
        )
        self.activations = [ReLU() for _ in range(num_layers - 1)]
        # Forward caches for backward.
        self._need: list[np.ndarray] = []
        self._agg_caches: list[_AggregationCache] = []
        self._edge_arrays: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------------
    def forward(self, sample: GraphSample, features: np.ndarray) -> np.ndarray:
        """Logits for the sample's seed nodes."""
        layers = sample.layers
        if len(layers) != self.num_layers:
            raise ShapeError(
                f"model has {self.num_layers} layers but sample has {len(layers)}"
            )
        # needed[d]: sorted node ids whose depth-d representation we need.
        need: list[np.ndarray] = [np.unique(sample.seeds)]
        for layer in layers:
            need.append(
                np.unique(np.concatenate([need[-1], layer.output_nodes]))
            )
        self._need = need
        self._agg_caches = []
        self._edge_arrays = []
        h = features[need[self.num_layers]].astype(np.float32)
        for depth in reversed(range(self.num_layers)):
            layer = layers[depth]
            rows, cols, weights = layer.matrix.to_coo_arrays()
            self._edge_arrays.append((rows, cols, weights))
            cache = _AggregationCache()
            agg = _weighted_mean_aggregate(
                rows, cols, weights, h, need[depth + 1], need[depth], cache
            )
            self._agg_caches.append(cache)
            li = depth
            out = self.neigh_layers[li].forward(agg)
            if self.use_self:
                self_pos = _positions(need[depth], need[depth + 1])
                cache.self_pos = self_pos  # type: ignore[attr-defined]
                out = out + self.self_layers[li].forward(h[self_pos])
            if depth > 0:
                out = self.activations[depth - 1].forward(out)
            h = out
        seed_pos = _positions(np.asarray(sample.seeds), need[0])
        self._seed_pos = seed_pos
        self._h_final_rows = len(need[0])
        return h[seed_pos]

    # ------------------------------------------------------------------
    def backward(self, grad_logits: np.ndarray) -> None:
        """Accumulate parameter gradients from the seed-logit gradient."""
        need = self._need
        grad_h = np.zeros(
            (self._h_final_rows, grad_logits.shape[1]), dtype=np.float32
        )
        np.add.at(grad_h, self._seed_pos, grad_logits)
        for i, depth in enumerate(range(self.num_layers)):
            cache = self._agg_caches[self.num_layers - 1 - depth]
            if depth > 0:
                grad_h = self.activations[depth - 1].backward(grad_h)
            grad_agg = self.neigh_layers[depth].backward(grad_h)
            grad_src = _aggregate_backward(
                grad_agg, cache, num_src=len(need[depth + 1])
            )
            if self.use_self:
                grad_self = self.self_layers[depth].backward(grad_h)
                np.add.at(grad_src, cache.self_pos, grad_self)  # type: ignore[attr-defined]
            grad_h = grad_src
        # grad_h now holds d(loss)/d(features of deepest nodes); we do not
        # train input features, so it is dropped.

    # ------------------------------------------------------------------
    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        params = []
        for layer in self.neigh_layers + self.self_layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for layer in self.neigh_layers + self.self_layers:
            layer.zero_grad()

    def flops_per_sample(self, sample: GraphSample, dim_in: int) -> float:
        """Approximate forward+backward FLOPs for the device cost model."""
        total = 0.0
        for depth, layer in enumerate(sample.layers):
            nodes = len(layer.input_nodes)
            total += 3.0 * nodes * self.neigh_layers[depth].flops_per_row
            total += 4.0 * layer.num_edges * dim_in
        return total


class GraphSAGEModel(SampledGNN):
    """GraphSAGE with mean aggregation and a self path."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 3,
        *,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            in_dim, hidden_dim, num_classes, num_layers, use_self=True, rng=rng
        )


class LadiesGCN(SampledGNN):
    """GCN whose aggregation uses LADIES's debiased edge weights."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        num_classes: int,
        num_layers: int = 3,
        *,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            in_dim, hidden_dim, num_classes, num_layers, use_self=True, rng=rng
        )
