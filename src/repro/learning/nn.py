"""Minimal dense neural-network layers with manual backprop.

The end-to-end experiments (Tables 1 and 8) need real training — loss
going down, accuracy converging — but only small models (the paper notes
GNN models are lightweight; that is exactly why sampling dominates).
These NumPy layers with hand-written backward passes are sufficient and
keep the dependency set empty.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class Linear:
    """Dense layer ``y = x @ W + b`` with cached input for backward."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        self.W = (rng.standard_normal((in_dim, out_dim)) * scale).astype(np.float32)
        self.b = np.zeros(out_dim, dtype=np.float32) if bias else None
        self.dW = np.zeros_like(self.W)
        self.db = None if self.b is None else np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.W.shape[0]:
            raise ShapeError(
                f"Linear expected input dim {self.W.shape[0]}, got {x.shape[-1]}"
            )
        self._x = x
        out = x @ self.W
        if self.b is not None:
            out = out + self.b
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward must run before backward"
        self.dW += self._x.T @ grad_out
        if self.db is not None:
            self.db += grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def zero_grad(self) -> None:
        self.dW[:] = 0.0
        if self.db is not None:
            self.db[:] = 0.0

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        params = [(self.W, self.dW)]
        if self.b is not None:
            assert self.db is not None
            params.append((self.b, self.db))
        return params

    @property
    def flops_per_row(self) -> float:
        """FLOPs of one forward row (used by the device cost model)."""
        return 2.0 * self.W.shape[0] * self.W.shape[1]


class ReLU:
    """Rectifier with cached mask."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_out * self._mask


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. logits."""
    if len(logits) != len(labels):
        raise ShapeError("logits/labels batch sizes differ")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = len(labels)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, (grad / n).astype(np.float32)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    if len(logits) == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())


class SGD:
    """Plain SGD with optional momentum over (param, grad) pairs."""

    def __init__(
        self,
        params: list[tuple[np.ndarray, np.ndarray]],
        lr: float = 0.05,
        momentum: float = 0.9,
    ) -> None:
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p, _ in params]

    def step(self) -> None:
        for (param, grad), vel in zip(self.params, self._velocity):
            vel *= self.momentum
            vel -= self.lr * grad
            param += vel
