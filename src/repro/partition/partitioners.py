"""Seed-node graph partitioners for sharded serving.

A sharded deployment assigns every node of the graph to one of ``k``
shards; each serving replica owns one shard's adjacency and feature
rows.  Requests route to the replica owning their seed nodes, and any
frontier node the sampler touches outside that shard must cross the
simulated interconnect (`repro.device.interconnect`) before its feature
row can be read.  The partitioner therefore controls the cluster's
cross-shard traffic tax: the fraction of edges cut is a direct proxy for
the fraction of sampled frontier rows that pay the link.

Two deterministic partitioners, the classic endpoints of the
quality/cost trade:

* **hash** — a mixed integer hash of the node id, mod ``k``.  Zero
  preprocessing, perfectly balanced in expectation, but oblivious to
  structure: the expected edge cut is ``(k-1)/k``.
* **greedy** — degree-balanced greedy edge-cut (the streaming
  linear-deterministic-greedy family used by large-scale graph systems):
  nodes are visited in descending-degree order and placed on the shard
  holding most of their already-placed neighbors, scaled by a
  degree-budget penalty so no shard hoards the hubs.  Cuts far fewer
  edges than hashing on clustered graphs while keeping per-shard *work*
  (degree sum, which is what sampling cost follows) balanced.

Everything is pure NumPy over the graph's CSC and fully deterministic:
ties break toward the lower shard id, so a fixed (graph, k) pair names
exactly one partition — the property the routing fingerprint tests
assert through.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError


@dataclasses.dataclass(frozen=True)
class ShardView:
    """One shard's slice of the graph: node set plus membership mask.

    The view is what a serving replica holds: enough to answer "is this
    frontier node mine?" in O(1) per node (the cross-shard traffic
    split) and to size the shard's share of work.  ``degree_sum`` is the
    shard's total in-degree — the quantity the greedy partitioner
    balances, since sampling cost scales with adjacency touched, not
    node count.
    """

    shard_id: int
    #: Sorted global ids of the nodes this shard owns.
    nodes: np.ndarray
    #: Boolean membership mask over all graph nodes.
    mask: np.ndarray
    #: Total in-degree of the shard's nodes.
    degree_sum: int

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.size)

    def contains(self, nodes: np.ndarray) -> np.ndarray:
        """Boolean array: which of ``nodes`` this shard owns."""
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return np.zeros(0, dtype=bool)
        return self.mask[nodes]

    def remote_count(self, nodes: np.ndarray) -> int:
        """How many of ``nodes`` live on *other* shards (link traffic)."""
        nodes = np.asarray(nodes)
        if nodes.size == 0:
            return 0
        return int(nodes.size) - int(np.count_nonzero(self.mask[nodes]))


@dataclasses.dataclass(frozen=True)
class GraphPartition:
    """A complete node-to-shard assignment plus its quality metrics."""

    method: str
    num_shards: int
    #: ``(N,)`` int64 array: shard id of every node.
    assignment: np.ndarray
    #: Fraction of edges whose endpoints land on different shards.
    edge_cut: float
    #: Per-shard total in-degree (the balance the greedy method targets).
    shard_degrees: np.ndarray

    @property
    def num_nodes(self) -> int:
        return int(self.assignment.size)

    def shard_of(self, nodes: np.ndarray) -> np.ndarray:
        """Shard id of each of ``nodes``."""
        return self.assignment[np.asarray(nodes)]

    def view(self, shard_id: int) -> ShardView:
        """The :class:`ShardView` a replica owning ``shard_id`` holds."""
        if not 0 <= shard_id < self.num_shards:
            raise ShapeError(
                f"shard {shard_id} out of range for {self.num_shards} shards"
            )
        mask = self.assignment == shard_id
        return ShardView(
            shard_id=shard_id,
            nodes=np.flatnonzero(mask).astype(np.int64),
            mask=mask,
            degree_sum=int(self.shard_degrees[shard_id]),
        )

    def views(self) -> list[ShardView]:
        return [self.view(i) for i in range(self.num_shards)]

    def degree_balance(self) -> float:
        """Max shard degree over mean shard degree (1.0 = perfect)."""
        mean = float(self.shard_degrees.mean())
        return float(self.shard_degrees.max()) / mean if mean > 0 else 1.0


# ----------------------------------------------------------------------
# Assignment builders
# ----------------------------------------------------------------------
def _check_shards(num_shards: int) -> None:
    if num_shards < 1:
        raise ShapeError(
            f"partition needs at least one shard, got {num_shards}"
        )


def _graph_csc(graph):
    csc = graph.get("csc")
    return csc.indptr, csc.rows


def _edge_cut_fraction(
    indptr: np.ndarray, rows: np.ndarray, assignment: np.ndarray
) -> float:
    """Fraction of edges whose endpoints sit on different shards."""
    if rows.size == 0:
        return 0.0
    cols = np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int64), np.diff(indptr)
    )
    return float(np.mean(assignment[rows] != assignment[cols]))


def _shard_degree_sums(
    degrees: np.ndarray, assignment: np.ndarray, num_shards: int
) -> np.ndarray:
    return np.bincount(
        assignment, weights=degrees.astype(np.float64), minlength=num_shards
    ).astype(np.int64)


def hash_assignment(
    num_nodes: int, num_shards: int, *, seed: int = 0
) -> np.ndarray:
    """Structure-oblivious shard assignment by mixed integer hash.

    A splitmix64-style finalizer over ``node_id ^ seed-mix`` — cheap,
    stateless, balanced in expectation, and *not* simply ``id % k`` (a
    modulo would alias with any id-correlated structure the synthetic
    generators bake in).
    """
    _check_shards(num_shards)
    # splitmix64 arithmetic is mod-2^64 by design; silence NumPy's
    # overflow warning for the deliberate wraparound.
    with np.errstate(over="ignore"):
        x = np.arange(num_nodes, dtype=np.uint64)
        x = x + np.uint64(0x9E3779B97F4A7C15) * np.uint64(seed + 1)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return (x % np.uint64(num_shards)).astype(np.int64)


def hash_partition(graph, num_shards: int, *, seed: int = 0) -> GraphPartition:
    """Partition a graph's nodes by hashing ids onto shards."""
    indptr, rows = _graph_csc(graph)
    num_nodes = len(indptr) - 1
    assignment = hash_assignment(num_nodes, num_shards, seed=seed)
    degrees = np.diff(indptr)
    return GraphPartition(
        method="hash",
        num_shards=num_shards,
        assignment=assignment,
        edge_cut=_edge_cut_fraction(indptr, rows, assignment),
        shard_degrees=_shard_degree_sums(degrees, assignment, num_shards),
    )


def greedy_partition(graph, num_shards: int) -> GraphPartition:
    """Degree-balanced greedy edge-cut partitioning.

    Nodes are visited hubs-first (descending in-degree, ties toward the
    lower id) and placed on the shard maximizing::

        |placed neighbors on shard| * (1 - shard_degree / degree_budget)

    where ``degree_budget`` is each shard's fair share of total degree.
    The affinity term chases low edge cut; the penalty term keeps shard
    *work* balanced — a shard at its degree budget scores zero affinity
    and only receives nodes when every shard is equally loaded.  Ties
    break toward the less-loaded shard, then the lower shard id, so the
    result is deterministic.
    """
    _check_shards(num_shards)
    indptr, rows = _graph_csc(graph)
    num_nodes = len(indptr) - 1
    degrees = np.diff(indptr)
    assignment = np.full(num_nodes, -1, dtype=np.int64)
    loads = np.zeros(num_shards, dtype=np.float64)
    # Fair share of degree per shard; the +1 keeps a degenerate all-
    # isolated graph from dividing by zero.
    budget = max(float(degrees.sum()) / num_shards, 1.0)
    order = np.argsort(-degrees.astype(np.float64), kind="stable")
    for node in order:
        neighbors = rows[indptr[node] : indptr[node + 1]]
        placed = assignment[neighbors]
        affinity = np.bincount(
            placed[placed >= 0], minlength=num_shards
        ).astype(np.float64)
        score = affinity * np.maximum(0.0, 1.0 - loads / budget)
        # argmax with deterministic ties: best score, then lightest
        # shard, then lowest id (lexsort's last key is most significant).
        best = np.lexsort((np.arange(num_shards), loads, -score))[0]
        assignment[node] = best
        loads[best] += float(degrees[node])
    return GraphPartition(
        method="greedy",
        num_shards=num_shards,
        assignment=assignment,
        edge_cut=_edge_cut_fraction(indptr, rows, assignment),
        shard_degrees=_shard_degree_sums(degrees, assignment, num_shards),
    )


#: Partitioner registry, mirroring the device/link ``get_*`` contract.
PARTITION_METHODS = ("hash", "greedy")


def make_partition(
    method: str, graph, num_shards: int, *, seed: int = 0
) -> GraphPartition:
    """Build a partition by method name (``hash`` or ``greedy``)."""
    if method == "hash":
        return hash_partition(graph, num_shards, seed=seed)
    if method == "greedy":
        return greedy_partition(graph, num_shards)
    raise ShapeError(
        f"unknown partition method {method!r}; "
        f"available: {list(PARTITION_METHODS)}"
    )
