"""Graph partitioning for sharded (multi-replica) serving.

``repro.partition`` assigns every node to one of ``k`` shards so a
serving cluster can give each replica its own slice of the graph.  The
shard-affinity router (`repro.serve.router`) sends each request to the
replica owning its seed nodes; the partition's edge cut then predicts
how much sampled frontier crosses the simulated interconnect
(`repro.device.interconnect`).

See :mod:`repro.partition.partitioners` for the hash and degree-balanced
greedy edge-cut methods and the :class:`ShardView` replicas hold, and
:mod:`repro.partition.incremental` for drift tracking plus bounded node
migration when the graph mutates under traffic.
"""

from repro.partition.incremental import (
    MigrationPlan,
    PartitionTracker,
    full_repartition,
    incremental_rebalance,
)
from repro.partition.partitioners import (
    PARTITION_METHODS,
    GraphPartition,
    ShardView,
    greedy_partition,
    hash_assignment,
    hash_partition,
    make_partition,
)

__all__ = [
    "PARTITION_METHODS",
    "GraphPartition",
    "MigrationPlan",
    "PartitionTracker",
    "ShardView",
    "full_repartition",
    "greedy_partition",
    "hash_assignment",
    "hash_partition",
    "incremental_rebalance",
    "make_partition",
]
