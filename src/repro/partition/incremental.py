"""Incremental repartitioning for mutating graphs.

A partition computed at session start drifts as streamed edges land:
hot destinations gain degree fastest (the update stream is Zipf-skewed
by design), so the shard holding the hottest nodes creeps past its fair
share of work and the edge cut creeps as new edges straddle shards.
Recomputing the partition from scratch fixes both but migrates most of
the graph — every reassigned node's feature row crosses the
interconnect.  This module implements the middle path the ROADMAP asks
for:

* :class:`PartitionTracker` — O(batch) bookkeeping of per-shard degree
  sums and cut drift as deltas land, so the cluster can ask "has any
  shard drifted past the threshold?" without touching the graph;
* :func:`incremental_rebalance` — move a *bounded* set of nodes from
  overloaded to underloaded shards, hubs first, preferring nodes with
  high affinity to the receiving shard (so the cut does not degrade),
  stopping as soon as the balance target is met;
* :func:`full_repartition` — the from-scratch comparator, expressed as
  the same :class:`MigrationPlan` so benchmarks can put migration bytes
  and resulting cut side by side.

Migration *cost* is charged by the caller
(:class:`~repro.serve.cluster.ClusterSimulator`) over the
:class:`~repro.device.LinkSpec`, exactly like re-replication — this
module only decides *what* moves.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError
from repro.partition.partitioners import (
    GraphPartition,
    _edge_cut_fraction,
    _shard_degree_sums,
    make_partition,
)

__all__ = [
    "MigrationPlan",
    "PartitionTracker",
    "full_repartition",
    "incremental_rebalance",
]


class PartitionTracker:
    """Tracks partition-quality drift as edge deltas land.

    The tracker never reads the graph: each applied batch adjusts the
    per-shard degree sums (one ``bincount`` over the batch) and counts
    streamed edges whose endpoints straddle shards.  ``degree_balance``
    therefore always reflects the *live* degree distribution, while
    ``edge_cut`` stays the installed partition's static figure — the
    drift signal is the balance, which is also what the greedy
    partitioner optimizes.
    """

    def __init__(self, partition: GraphPartition) -> None:
        self.rebase(partition)

    def rebase(self, partition: GraphPartition) -> None:
        """Adopt ``partition`` as the new baseline (post-rebalance)."""
        self.partition = partition
        self.shard_degrees = partition.shard_degrees.astype(
            np.float64
        ).copy()
        self.baseline_balance = self.degree_balance()
        self.streamed_edges = 0
        self.streamed_cut_edges = 0

    def apply_updates(
        self, src: np.ndarray, dst: np.ndarray, delete: np.ndarray
    ) -> None:
        """Fold one update batch into the drift statistics."""
        src = np.asarray(src)
        dst = np.asarray(dst)
        delete = np.asarray(delete, dtype=bool)
        if src.size == 0:
            return
        assignment = self.partition.assignment
        sign = np.where(delete, -1.0, 1.0)
        self.shard_degrees += np.bincount(
            assignment[dst],
            weights=sign,
            minlength=self.partition.num_shards,
        )
        self.streamed_edges += int(src.size)
        self.streamed_cut_edges += int(
            np.count_nonzero(assignment[src] != assignment[dst])
        )

    def degree_balance(self) -> float:
        """Max live shard degree over mean (1.0 = perfect balance)."""
        mean = float(self.shard_degrees.mean())
        return float(self.shard_degrees.max()) / mean if mean > 0 else 1.0

    @property
    def drift(self) -> float:
        """Balance degradation since the baseline partition."""
        return self.degree_balance() - self.baseline_balance

    def streamed_cut_fraction(self) -> float:
        """Cut fraction among streamed edges (new-edge locality)."""
        if not self.streamed_edges:
            return 0.0
        return self.streamed_cut_edges / self.streamed_edges

    def needs_rebalance(self, threshold: float) -> bool:
        """Has balance drifted past ``threshold`` over the baseline?"""
        return self.drift >= threshold


@dataclasses.dataclass(frozen=True)
class MigrationPlan:
    """A proposed reassignment plus its traffic and quality figures."""

    #: Global ids of reassigned nodes.
    moved_nodes: np.ndarray
    #: Shard each moved node leaves / joins (parallel to ``moved_nodes``).
    sources: np.ndarray
    targets: np.ndarray
    #: The complete post-move assignment array.
    assignment: np.ndarray
    #: Per-shard degree sums under the new assignment.
    shard_degrees: np.ndarray
    #: Edge-cut fraction under the new assignment.
    edge_cut: float

    @property
    def num_moved(self) -> int:
        return int(self.moved_nodes.size)

    def migration_bytes(self, row_bytes: int) -> int:
        """Feature bytes that must cross the interconnect."""
        return self.num_moved * int(row_bytes)

    def rows_into(self, shard_id: int) -> np.ndarray:
        """Moved nodes whose new owner is ``shard_id``."""
        return self.moved_nodes[self.targets == shard_id]

    def rows_out_of(self, shard_id: int) -> np.ndarray:
        """Moved nodes leaving ``shard_id``."""
        return self.moved_nodes[self.sources == shard_id]


def incremental_rebalance(
    graph,
    assignment: np.ndarray,
    num_shards: int,
    *,
    target_balance: float = 1.1,
    max_moves: int = 256,
) -> MigrationPlan:
    """Bounded node migration from overloaded to underloaded shards.

    Deterministic greedy: while some shard's degree sum exceeds the
    ``target_balance`` multiple of the mean, move nodes from the most
    loaded shard to the least loaded one.  Candidates are the source
    shard's nodes scored by ``affinity - 0.5 * stay``, where
    ``affinity`` is the candidate's edge count into the receiving shard
    and ``stay`` its edge count into its current shard — a node mostly
    wired into the receiver *improves* the cut when it moves.  Ties
    break hubs-first then lower id.  A move is skipped when it would
    push the receiver past the donor (overshoot guard); the loop stops
    at ``max_moves``, when balance is met, or when no candidate remains.
    """
    if max_moves <= 0:
        raise ShapeError(f"max moves must be positive, got {max_moves}")
    if target_balance < 1.0:
        raise ShapeError(
            f"target balance must be >= 1, got {target_balance}"
        )
    csc = graph.get("csc")
    indptr, rows = csc.indptr, csc.rows
    num_nodes = len(indptr) - 1
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (num_nodes,):
        raise ShapeError(
            f"assignment shape {assignment.shape} != nodes ({num_nodes},)"
        )
    degrees = np.diff(indptr).astype(np.float64)
    new_assignment = assignment.copy()
    loads = _shard_degree_sums(
        degrees, new_assignment, num_shards
    ).astype(np.float64)
    mean = float(loads.mean())
    moved: list[int] = []
    sources: list[int] = []
    targets: list[int] = []
    while len(moved) < max_moves and mean > 0:
        over = int(np.argmax(loads))
        under = int(np.argmin(loads))
        if over == under or loads[over] <= target_balance * mean:
            break
        candidates = np.flatnonzero(new_assignment == over)
        candidates = candidates[degrees[candidates] > 0]
        if candidates.size == 0:
            break
        # Edge affinity of each candidate's in-neighborhood toward the
        # receiving shard vs its current shard (the column slice is the
        # sampler's access pattern, so it is also the cut that matters).
        owner_rows = new_assignment[rows]
        affinity = np.zeros(candidates.size, dtype=np.float64)
        stay = np.zeros(candidates.size, dtype=np.float64)
        for i, node in enumerate(candidates.tolist()):
            owners = owner_rows[indptr[node] : indptr[node + 1]]
            affinity[i] = np.count_nonzero(owners == under)
            stay[i] = np.count_nonzero(owners == over)
        score = affinity - 0.5 * stay
        # Best cut improvement first, then hubs, then lower id.
        pick_order = np.lexsort((candidates, -degrees[candidates], -score))
        picked = -1
        for idx in pick_order.tolist():
            node = int(candidates[idx])
            # Overshoot guard: never make the receiver heavier than the
            # donor was — that would just oscillate the pair.
            if loads[under] + degrees[node] <= loads[over]:
                picked = node
                break
        if picked < 0:
            break
        new_assignment[picked] = under
        loads[over] -= degrees[picked]
        loads[under] += degrees[picked]
        moved.append(picked)
        sources.append(over)
        targets.append(under)
    return MigrationPlan(
        moved_nodes=np.asarray(moved, dtype=np.int64),
        sources=np.asarray(sources, dtype=np.int64),
        targets=np.asarray(targets, dtype=np.int64),
        assignment=new_assignment,
        shard_degrees=_shard_degree_sums(
            np.diff(indptr), new_assignment, num_shards
        ),
        edge_cut=_edge_cut_fraction(indptr, rows, new_assignment),
    )


def full_repartition(
    graph,
    assignment: np.ndarray,
    num_shards: int,
    *,
    method: str = "greedy",
    seed: int = 0,
) -> MigrationPlan:
    """From-scratch repartition expressed as a :class:`MigrationPlan`.

    The comparator for :func:`incremental_rebalance`: same plan shape,
    but every node whose shard changed counts as migrated — the
    benchmark puts its (usually much larger) ``migration_bytes``
    against the incremental plan's at their respective cuts.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    fresh = make_partition(method, graph, num_shards, seed=seed)
    changed = np.flatnonzero(fresh.assignment != assignment)
    return MigrationPlan(
        moved_nodes=changed,
        sources=assignment[changed],
        targets=fresh.assignment[changed],
        assignment=fresh.assignment,
        shard_degrees=fresh.shard_degrees,
        edge_cut=fresh.edge_cut,
    )
