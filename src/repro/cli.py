"""Command-line front end: run samplers and experiments from a shell.

``python -m repro <command>``:

* ``sample`` — run a sampling epoch for one (system, algorithm, dataset)
  cell and print its statistics;
* ``compare`` — print the normalized cross-system table for one
  algorithm over the catalog datasets (a Figure 7/8 row group);
* ``verify`` — statistically verify that every optimization
  configuration of an algorithm samples the same distribution as the
  eager reference executor (the ``repro.verify`` subsystem);
* ``datasets`` / ``algorithms`` / ``systems`` — list what is available.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.algorithms import available_algorithms
from repro.bench import format_table, measure_cell
from repro.datasets import available_datasets


_SYSTEMS = (
    "gsampler",
    "dgl-gpu",
    "dgl-cpu",
    "pyg-gpu",
    "pyg-cpu",
    "skywalker",
    "gunrock",
    "cugraph",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gSampler reproduction: sampling epochs and comparisons",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="run one sampling-epoch cell")
    sample.add_argument("--system", default="gsampler", choices=_SYSTEMS)
    sample.add_argument("--algorithm", default="graphsage")
    sample.add_argument("--dataset", default="pd")
    sample.add_argument("--device", default="v100", choices=("v100", "t4", "cpu"))
    sample.add_argument("--batch-size", type=int, default=512)
    sample.add_argument("--scale", type=float, default=0.25)
    sample.add_argument("--max-batches", type=int, default=None)

    compare = sub.add_parser("compare", help="cross-system comparison table")
    compare.add_argument("--algorithm", default="graphsage")
    compare.add_argument("--scale", type=float, default=0.25)
    compare.add_argument("--batch-size", type=int, default=512)
    compare.add_argument("--max-batches", type=int, default=4)

    verify = sub.add_parser(
        "verify",
        help="check distribution equivalence of all optimization configs",
    )
    verify.add_argument(
        "algorithm",
        help="algorithm to verify (or 'all' for every verifiable one)",
    )
    verify.add_argument("--trials", type=int, default=200)
    verify.add_argument("--alpha", type=float, default=0.01)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--superbatch-batches",
        type=int,
        default=3,
        help="mini-batches per super-batch launch (0 disables that variant)",
    )

    sub.add_parser("datasets", help="list catalog datasets")
    sub.add_parser("algorithms", help="list the 15 implemented algorithms")
    sub.add_parser("systems", help="list comparison systems")
    return parser


def _cmd_sample(args: argparse.Namespace) -> int:
    stats = measure_cell(
        args.system,
        args.algorithm,
        args.dataset,
        device_name=args.device,
        batch_size=args.batch_size,
        scale=args.scale,
        max_batches=args.max_batches,
    )
    if stats is None:
        print(
            f"{args.system} does not support {args.algorithm} on "
            f"{args.dataset} (an N/A cell in the paper's figures)"
        )
        return 1
    print(
        format_table(
            ["Metric", "Value"],
            [
                ["system", stats.system],
                ["algorithm", stats.algorithm],
                ["dataset", stats.dataset],
                ["device", stats.device],
                ["batches", stats.num_batches],
                ["epoch time (simulated ms)", f"{stats.sim_seconds * 1e3:.3f}"],
                ["per batch (ms)", f"{stats.per_batch_ms():.4f}"],
                ["kernel launches", stats.launches],
                ["peak memory (KiB)", stats.peak_memory_bytes // 1024],
                ["SM utilization (%)", f"{stats.sm_percent:.1f}"],
                ["host wall time (s)", f"{stats.wall_seconds:.3f}"],
            ],
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for dataset in available_datasets():
        cells: dict[str, float | None] = {}
        for system in _SYSTEMS:
            stats = measure_cell(
                system,
                args.algorithm,
                dataset,
                batch_size=args.batch_size,
                scale=args.scale,
                max_batches=args.max_batches,
            )
            cells[system] = None if stats is None else stats.sim_seconds
        ref = cells["gsampler"]
        if ref is None:
            continue
        rows.append(
            [
                dataset.upper(),
                *(
                    "N/A" if v is None else f"{v / ref:.2f}x"
                    for v in cells.values()
                ),
            ]
        )
    print(
        format_table(
            ["Graph", *_SYSTEMS],
            rows,
            title=f"Normalized sampling time — {args.algorithm} "
            "(gSampler = 1.0)",
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.errors import GSamplerError
    from repro.verify import builtin_specs, verify_algorithm

    names = (
        sorted(builtin_specs()) if args.algorithm == "all" else [args.algorithm]
    )
    superbatch = args.superbatch_batches or None
    rows = []
    all_passed = True
    for name in names:
        try:
            report = verify_algorithm(
                name,
                trials=args.trials,
                alpha=args.alpha,
                seed=args.seed,
                superbatch_batches=superbatch,
            )
        except GSamplerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        all_passed = all_passed and report.passed
        for check in report.variants:
            rows.append(
                [
                    name,
                    check.name,
                    f"{check.chi2.statistic:.2f}",
                    str(check.chi2.dof),
                    f"{check.adjusted_chi2_p:.4f}",
                    f"{check.ks.statistic:.3f}",
                    f"{check.adjusted_ks_p:.4f}",
                    "ok" if check.passed else "FAIL",
                ]
            )
    print(
        format_table(
            ["Algorithm", "Variant", "chi2", "dof", "adj p", "KS D",
             "adj p (KS)", "Verdict"],
            rows,
            title=(
                "Distribution equivalence vs eager oracle "
                f"(trials={args.trials}, alpha={args.alpha}, "
                f"seed={args.seed}, Bonferroni-corrected)"
            ),
        )
    )
    print("verification " + ("PASSED" if all_passed else "FAILED"))
    return 0 if all_passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and tests."""
    args = _build_parser().parse_args(argv)
    if args.command == "sample":
        return _cmd_sample(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "datasets":
        print("\n".join(available_datasets()))
        return 0
    if args.command == "algorithms":
        print("\n".join(available_algorithms()))
        return 0
    if args.command == "systems":
        print("\n".join(_SYSTEMS))
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
