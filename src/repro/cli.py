"""Command-line front end: run samplers and experiments from a shell.

``python -m repro <command>``:

* ``sample`` — run a sampling epoch for one (system, algorithm, dataset)
  cell and print its statistics;
* ``compare`` — print the normalized cross-system table for one
  algorithm over the catalog datasets (a Figure 7/8 row group);
* ``verify`` — statistically verify that every optimization
  configuration of an algorithm samples the same distribution as the
  eager reference executor (the ``repro.verify`` subsystem);
* ``profile`` — trace one sampling epoch with the span profiler
  (the ``repro.profile`` subsystem): print a Table-9-style report,
  write a Chrome-trace/Perfetto JSON, and append a ``BENCH_<tag>.json``
  trajectory record, flagging regressions against the previous run;
* ``serve`` — simulate an online inference-sampling session (the
  ``repro.serve`` subsystem): a seeded arrival process drives the
  dynamic batcher under an admission/degradation policy, and the run
  reports throughput, p50/p95/p99 latency, shed/degraded counts, and
  the batch-size histogram, with the same trace + ``BENCH_serve_*``
  trajectory contract as ``profile``;
* ``datasets`` / ``algorithms`` / ``systems`` — list what is available.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from collections.abc import Sequence

from repro.algorithms import available_algorithms
from repro.bench import format_table, measure_cell
from repro.datasets import available_datasets


_SYSTEMS = (
    "gsampler",
    "dgl-gpu",
    "dgl-cpu",
    "pyg-gpu",
    "pyg-cpu",
    "skywalker",
    "gunrock",
    "cugraph",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gSampler reproduction: sampling epochs and comparisons",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sample = sub.add_parser("sample", help="run one sampling-epoch cell")
    sample.add_argument("--system", default="gsampler", choices=_SYSTEMS)
    sample.add_argument("--algorithm", default="graphsage")
    sample.add_argument("--dataset", default="pd")
    sample.add_argument("--device", default="v100", choices=("v100", "t4", "cpu"))
    sample.add_argument("--batch-size", type=int, default=512)
    sample.add_argument("--scale", type=float, default=0.25)
    sample.add_argument("--max-batches", type=int, default=None)

    compare = sub.add_parser("compare", help="cross-system comparison table")
    compare.add_argument("--algorithm", default="graphsage")
    compare.add_argument("--scale", type=float, default=0.25)
    compare.add_argument("--batch-size", type=int, default=512)
    compare.add_argument("--max-batches", type=int, default=4)

    verify = sub.add_parser(
        "verify",
        help="check distribution equivalence of all optimization configs",
    )
    verify.add_argument(
        "algorithm",
        help="algorithm to verify ('all' = every verifiable one incl. the "
        "dynamic delta-graph and linkpred pair-compaction checks; "
        "'dynamic' / 'linkpred' run just those; 'labor' checks the "
        "variance-reduced sampler against the eager oracle)",
    )
    verify.add_argument("--trials", type=int, default=200)
    verify.add_argument("--alpha", type=float, default=0.01)
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--superbatch-batches",
        type=int,
        default=3,
        help="mini-batches per super-batch launch (0 disables that variant)",
    )

    profile = sub.add_parser(
        "profile",
        help="trace one sampling epoch: report, Chrome trace, BENCH record",
    )
    profile.add_argument(
        "algorithm",
        nargs="?",
        default=None,
        help="algorithm to profile (e.g. graphsage, labor)",
    )
    profile.add_argument(
        "--sampler",
        default=None,
        help="alias for the positional algorithm (e.g. --sampler labor "
        "profiles the variance-reduced LABOR neighbor sampler)",
    )
    profile.add_argument("--system", default="gsampler", choices=_SYSTEMS)
    profile.add_argument("--dataset", default="pd")
    profile.add_argument("--device", default="v100", choices=("v100", "t4", "cpu"))
    profile.add_argument("--batch-size", type=int, default=512)
    profile.add_argument("--scale", type=float, default=0.25)
    profile.add_argument("--max-batches", type=int, default=4)
    profile.add_argument(
        "--out-dir",
        default=".",
        help="directory receiving the trace and BENCH files",
    )
    profile.add_argument(
        "--trace-out",
        default=None,
        help="Chrome-trace path (default: <out-dir>/trace_<tag>.json)",
    )
    profile.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative growth that counts as a regression",
    )
    profile.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 3 when the comparator flags a regression",
    )
    profile.add_argument(
        "--pipeline",
        action="store_true",
        help="profile a pipelined training epoch (sample/transfer/compute "
        "on overlapping queues) against the serial trainer",
    )
    profile.add_argument(
        "--cache-ratio",
        type=float,
        default=None,
        help="fraction of nodes whose feature rows are pinned on device "
        "(pipeline mode; default 0.10, 0 disables the cache)",
    )
    profile.add_argument(
        "--prefetch-depth",
        type=int,
        default=None,
        help="batches the sampler may run ahead of compute "
        "(pipeline mode; default 2)",
    )
    profile.add_argument(
        "--epochs",
        type=int,
        default=1,
        help="training epochs to simulate (pipeline mode)",
    )
    profile.add_argument(
        "--feature-tiers",
        action="store_true",
        help="serve features through the multi-tier store "
        "(HBM -> pinned host -> remote) instead of the flat cache "
        "(pipeline mode)",
    )
    profile.add_argument(
        "--host-tier-ratio",
        type=float,
        default=None,
        help="fraction of nodes resident in the pinned-host tier "
        "(tiered mode; default 1.0 = no remote tail)",
    )
    profile.add_argument(
        "--hbm-budget-mb",
        type=float,
        default=None,
        help="cap the training device's memory pool at this many MiB "
        "(the knob that squeezes the device tier below the working set)",
    )
    profile.add_argument(
        "--no-prefetch",
        action="store_true",
        help="model a synchronous loader: a batch's feature fetch "
        "may not start until the previous compute finished",
    )

    serve = sub.add_parser(
        "serve",
        help="simulate an online serving session: queues, batching, SLOs",
    )
    serve.add_argument("--algorithm", default="graphsage")
    serve.add_argument(
        "--task",
        default="node",
        choices=("node", "linkpred"),
        help="request payload type: node-classification seed ids (the "
        "classic lane) or link-prediction (src, dst) pairs that are "
        "compacted to their unique endpoints before sampling",
    )
    serve.add_argument("--dataset", default="pd")
    serve.add_argument("--device", default="v100", choices=("v100", "t4", "cpu"))
    serve.add_argument("--scale", type=float, default=0.25)
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=50_000.0,
        help="mean arrival rate in requests per simulated second",
    )
    serve.add_argument("--requests", type=int, default=512)
    serve.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "bursty", "diurnal"),
        help="arrival process shape",
    )
    serve.add_argument("--seeds-per-request", type=int, default=8)
    serve.add_argument(
        "--max-seeds-per-request",
        type=int,
        default=None,
        help="enable heterogeneous request sizes: per-request seed "
        "count drawn uniformly from [seeds-per-request, this]",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serving replicas behind the router (1 = the classic "
        "single-replica session)",
    )
    serve.add_argument(
        "--router",
        default="round_robin",
        choices=("round_robin", "jsq", "po2", "shard"),
        help="request-routing policy across replicas",
    )
    serve.add_argument(
        "--partition",
        default="none",
        choices=("none", "hash", "greedy"),
        help="graph partitioner assigning one shard per replica; "
        "cross-shard frontier rows are charged over the interconnect",
    )
    serve.add_argument(
        "--link",
        default=None,
        choices=("nvlink", "pcie"),
        help="interconnect for cross-shard fetches (default: the "
        "device's native link, NVLink on v100)",
    )
    serve.add_argument(
        "--skew",
        type=float,
        default=1.1,
        help="Zipf exponent of the per-request seed-node popularity",
    )
    serve.add_argument(
        "--slo-ms",
        type=float,
        default=2.0,
        help="p99 latency target in simulated milliseconds",
    )
    serve.add_argument(
        "--composer",
        default="fifo",
        choices=("fifo", "binned", "superbatch"),
        help="batch-composition policy: the classic FIFO dynamic "
        "batcher, size-binned batching (no mixed seed-count bins), or "
        "cross-request super-batch fusion (one compiled run per window)",
    )
    serve.add_argument(
        "--superbatch-window",
        type=int,
        default=None,
        help="cap on requests fused per super-batch run (default: "
        "bounded only by the admission queue capacity)",
    )
    serve.add_argument("--max-batch", type=int, default=8)
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=0.5,
        help="longest a batch head may wait before firing (simulated ms)",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="bounded-queue depth for the shedding policies",
    )
    serve.add_argument(
        "--policy",
        default="full",
        choices=("none", "shed", "degrade", "full"),
        help="admission control: bounded-queue shedding and/or the "
        "SLO-aware degradation ladder",
    )
    serve.add_argument(
        "--cache-ratio",
        type=float,
        default=None,
        help="fraction of nodes with device-pinned feature rows "
        "(default 0.10, 0 disables the cache)",
    )
    serve.add_argument(
        "--feature-tiers",
        action="store_true",
        help="serve features through the multi-tier store: device HBM, "
        "optional peer HBM over the interconnect, pinned host DRAM, "
        "and a remote/disk tail on its own queue",
    )
    serve.add_argument(
        "--host-tier-ratio",
        type=float,
        default=None,
        help="fraction of nodes resident in the pinned-host tier "
        "(tiered mode; default 1.0 = no remote tail)",
    )
    serve.add_argument(
        "--p2p",
        action="store_true",
        help="pool the fleet's HBM: stripe the hot band across replicas "
        "and fetch sibling-owned rows over the interconnect when it "
        "beats host DRAM (tiered mode, NVLink clusters)",
    )
    serve.add_argument(
        "--hbm-budget-mb",
        type=float,
        default=None,
        help="cap each replica's device memory pool at this many MiB "
        "(the knob that squeezes the device tier below the working set)",
    )
    serve.add_argument(
        "--ingest-rate",
        type=float,
        default=None,
        help="stream graph updates at this many edges per simulated "
        "second while serving (enables the dynamic-graph lane)",
    )
    serve.add_argument(
        "--ingest-edges",
        type=int,
        default=256,
        help="total streamed edges over the session (dynamic lane)",
    )
    serve.add_argument(
        "--delete-fraction",
        type=float,
        default=0.2,
        help="fraction of streamed edges that delete a previously "
        "inserted edge (churn; dynamic lane)",
    )
    serve.add_argument(
        "--snapshot-every-ms",
        type=float,
        default=0.2,
        help="minimum simulated ms between overlay-snapshot installs "
        "(the staleness-vs-latency knob; dynamic lane)",
    )
    serve.add_argument(
        "--compact-every",
        type=int,
        default=0,
        help="canonically compact the delta graph every N applied "
        "update batches (0 = never; dynamic lane)",
    )
    serve.add_argument(
        "--repartition-threshold",
        type=float,
        default=None,
        help="degree-balance drift that triggers an incremental "
        "rebalance (needs --partition; dynamic lane)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--out-dir",
        default=".",
        help="directory receiving the trace and BENCH files",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        help="Chrome-trace path (default: <out-dir>/trace_<tag>.json)",
    )
    serve.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative growth that counts as a regression",
    )
    serve.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 3 when the comparator flags a regression",
    )
    serve.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="R@MS[:DOWN_MS]",
        help="inject a replica failure: kill replica R at the given "
        "simulated millisecond, optionally reviving it DOWN_MS later "
        "(repeatable; enables the failure control plane)",
    )
    serve.add_argument(
        "--orphans",
        default="retry",
        choices=("retry", "shed"),
        help="a dead replica's queued/in-flight requests are re-routed "
        "(retry) or dropped and counted lost (shed)",
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-route attempts per orphaned request before it is lost",
    )
    serve.add_argument(
        "--hedge",
        action="store_true",
        help="duplicate retried requests to a second replica; the first "
        "completion wins and the loser is cancelled in accounting",
    )
    serve.add_argument(
        "--no-failover",
        action="store_true",
        help="keep the router blind to dead replicas (the availability "
        "baseline the chaos benchmark contrasts)",
    )
    serve.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the elastic autoscaler: the fleet is pre-built at "
        "--max-replicas with standbys inactive, and replicas are "
        "activated/drained on the windowed p99/occupancy signal",
    )
    serve.add_argument(
        "--min-replicas",
        type=int,
        default=1,
        help="autoscaler floor on active replicas",
    )
    serve.add_argument(
        "--max-replicas",
        type=int,
        default=4,
        help="autoscaler ceiling on active replicas (fleet size)",
    )
    serve.add_argument(
        "--scale-interval-ms",
        type=float,
        default=1.0,
        help="simulated ms between autoscaler evaluations",
    )
    serve.add_argument(
        "--tune-batching",
        action="store_true",
        help="let the controller hill-climb each replica's "
        "max-batch/max-wait online",
    )
    serve.add_argument(
        "--min-availability",
        type=float,
        default=None,
        help="exit 4 when availability (completed/offered) falls below "
        "this fraction — the CI chaos-smoke gate",
    )

    sub.add_parser("datasets", help="list catalog datasets")
    sub.add_parser("algorithms", help="list the 16 implemented algorithms")
    sub.add_parser("systems", help="list comparison systems")
    return parser


def _cmd_sample(args: argparse.Namespace) -> int:
    stats = measure_cell(
        args.system,
        args.algorithm,
        args.dataset,
        device_name=args.device,
        batch_size=args.batch_size,
        scale=args.scale,
        max_batches=args.max_batches,
    )
    if stats is None:
        print(
            f"{args.system} does not support {args.algorithm} on "
            f"{args.dataset} (an N/A cell in the paper's figures)"
        )
        return 1
    print(
        format_table(
            ["Metric", "Value"],
            [
                ["system", stats.system],
                ["algorithm", stats.algorithm],
                ["dataset", stats.dataset],
                ["device", stats.device],
                ["batches", stats.num_batches],
                ["epoch time (simulated ms)", f"{stats.sim_seconds * 1e3:.3f}"],
                ["per batch (ms)", f"{stats.per_batch_ms():.4f}"],
                ["kernel launches", stats.launches],
                ["peak memory (KiB)", stats.peak_memory_bytes // 1024],
                ["SM utilization (%)", f"{stats.sm_percent:.1f}"],
                ["host wall time (s)", f"{stats.wall_seconds:.3f}"],
            ],
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for dataset in available_datasets():
        cells: dict[str, float | None] = {}
        for system in _SYSTEMS:
            stats = measure_cell(
                system,
                args.algorithm,
                dataset,
                batch_size=args.batch_size,
                scale=args.scale,
                max_batches=args.max_batches,
            )
            cells[system] = None if stats is None else stats.sim_seconds
        ref = cells["gsampler"]
        if ref is None:
            continue
        rows.append(
            [
                dataset.upper(),
                *(
                    "N/A" if v is None else f"{v / ref:.2f}x"
                    for v in cells.values()
                ),
            ]
        )
    print(
        format_table(
            ["Graph", *_SYSTEMS],
            rows,
            title=f"Normalized sampling time — {args.algorithm} "
            "(gSampler = 1.0)",
        )
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.errors import GSamplerError
    from repro.verify import (
        builtin_specs,
        check_dynamic_equivalence,
        check_linkpred_equivalence,
        verify_algorithm,
    )

    run_dynamic = args.algorithm in ("all", "dynamic")
    run_linkpred = args.algorithm in ("all", "linkpred")
    if args.algorithm == "all":
        names = sorted(builtin_specs())
    elif args.algorithm in ("dynamic", "linkpred"):
        names = []
    else:
        names = [args.algorithm]
    superbatch = args.superbatch_batches or None
    rows = []
    all_passed = True
    for name in names:
        try:
            report = verify_algorithm(
                name,
                trials=args.trials,
                alpha=args.alpha,
                seed=args.seed,
                superbatch_batches=superbatch,
            )
        except GSamplerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        all_passed = all_passed and report.passed
        for check in report.variants:
            rows.append(
                [
                    name,
                    check.name,
                    f"{check.chi2.statistic:.2f}",
                    str(check.chi2.dof),
                    f"{check.adjusted_chi2_p:.4f}",
                    f"{check.ks.statistic:.3f}",
                    f"{check.adjusted_ks_p:.4f}",
                    "ok" if check.passed else "FAIL",
                ]
            )
    if run_dynamic:
        try:
            dyn = check_dynamic_equivalence(
                trials=args.trials, alpha=args.alpha, seed=args.seed
            )
        except GSamplerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        all_passed = all_passed and dyn.passed
        rows.append(
            [
                "dynamic",
                "compact-bit-identity",
                "-",
                "-",
                "-",
                "-",
                "-",
                "ok" if dyn.storage_identical and dyn.samples_identical
                else "FAIL",
            ]
        )
        check = dyn.marginals
        rows.append(
            [
                "dynamic",
                check.name,
                f"{check.chi2.statistic:.2f}",
                str(check.chi2.dof),
                f"{check.adjusted_chi2_p:.4f}",
                f"{check.ks.statistic:.3f}",
                f"{check.adjusted_ks_p:.4f}",
                "ok" if check.passed else "FAIL",
            ]
        )
    if run_linkpred:
        try:
            lp = check_linkpred_equivalence(
                trials=args.trials, alpha=args.alpha, seed=args.seed
            )
        except GSamplerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        all_passed = all_passed and lp.passed
        rows.append(
            [
                "linkpred",
                "pair-contract",
                "-",
                "-",
                "-",
                "-",
                "-",
                "ok"
                if lp.compaction_ok
                and lp.no_false_negatives
                and lp.negatives_deterministic
                else "FAIL",
            ]
        )
        for check in lp.marginals.variants:
            rows.append(
                [
                    "linkpred",
                    check.name,
                    f"{check.chi2.statistic:.2f}",
                    str(check.chi2.dof),
                    f"{check.adjusted_chi2_p:.4f}",
                    f"{check.ks.statistic:.3f}",
                    f"{check.adjusted_ks_p:.4f}",
                    "ok" if check.passed else "FAIL",
                ]
            )
    print(
        format_table(
            ["Algorithm", "Variant", "chi2", "dof", "adj p", "KS D",
             "adj p (KS)", "Verdict"],
            rows,
            title=(
                "Distribution equivalence vs eager oracle "
                f"(trials={args.trials}, alpha={args.alpha}, "
                f"seed={args.seed}, Bonferroni-corrected)"
            ),
        )
    )
    print("verification " + ("PASSED" if all_passed else "FAILED"))
    return 0 if all_passed else 1


def _cmd_profile_pipeline(args: argparse.Namespace) -> int:
    """The ``profile --pipeline`` branch: serial vs pipelined epochs."""
    import pathlib

    from repro.cache import DEFAULT_CACHE_RATIO, DEFAULT_HOST_TIER_RATIO
    from repro.datasets import load_dataset
    from repro.device import get_device
    from repro.pipeline import DEFAULT_PREFETCH_DEPTH, run_pipeline_cell
    from repro.profile import (
        Profiler,
        append_record,
        bench_path,
        compare_metrics,
        write_chrome_trace,
    )

    cache_ratio = (
        args.cache_ratio if args.cache_ratio is not None else DEFAULT_CACHE_RATIO
    )
    prefetch_depth = (
        args.prefetch_depth
        if args.prefetch_depth is not None
        else DEFAULT_PREFETCH_DEPTH
    )
    host_tier_ratio = (
        args.host_tier_ratio
        if args.host_tier_ratio is not None
        else DEFAULT_HOST_TIER_RATIO
    )
    hbm_budget = (
        int(args.hbm_budget_mb * 2**20)
        if args.hbm_budget_mb is not None
        else None
    )
    dataset = load_dataset(args.dataset, scale=args.scale)
    device = get_device(args.device)
    profiler = Profiler()
    with profiler.activate():
        serial, pipelined = run_pipeline_cell(
            args.algorithm,
            dataset,
            device=device,
            epochs=args.epochs,
            batch_size=args.batch_size,
            max_batches=args.max_batches,
            prefetch_depth=prefetch_depth,
            cache_ratio=cache_ratio,
            profiler=profiler,
            feature_tiers=args.feature_tiers,
            host_tier_ratio=host_tier_ratio,
            hbm_budget=hbm_budget,
            prefetch=not args.no_prefetch,
        )

    reduction = (
        1.0 - pipelined.total_seconds / serial.total_seconds
        if serial.total_seconds
        else 0.0
    )
    rows = [
        ["serial epoch time (simulated ms)", f"{serial.total_seconds * 1e3:.4f}"],
        ["pipelined epoch time (simulated ms)",
         f"{pipelined.total_seconds * 1e3:.4f}"],
        ["reduction", f"{reduction:.1%}"],
        ["prefetch depth", prefetch_depth],
        ["loss parity",
         "bit-identical" if serial.final_loss == pipelined.final_loss
         else "DIVERGED"],
    ]
    cache = pipelined.cache_stats
    if cache is not None:
        rows += [
            ["cache ratio", f"{cache_ratio:.2f}"],
            ["cached rows", f"{cache.cached_rows} "
             f"({cache.cached_bytes // 1024} KiB)"],
            ["cache hit rate", f"{cache.hit_rate:.1%}"],
        ]
        if args.feature_tiers:
            rows.append(
                ["tier hit rates (dev/host/remote)",
                 " / ".join(
                     f"{cache.tier_rate(t):.1%}"
                     for t in ("device", "host", "remote")
                 )]
            )
            rows.append(
                ["prefetch", "async" if not args.no_prefetch else
                 "synchronous loader"]
            )
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=(
                f"Pipelined epochs — {args.algorithm} on {args.dataset} "
                f"({args.device}), {args.epochs} epoch(s)"
            ),
        )
    )
    print(
        format_table(
            ["Queue", "Device", "Busy (ms)", "End (ms)", "Launches", "Util"],
            [
                [
                    r.queue,
                    r.device,
                    f"{r.busy_seconds * 1e3:.4f}",
                    f"{r.end_seconds * 1e3:.4f}",
                    r.launches,
                    f"{r.utilization:.0%}",
                ]
                for r in pipelined.queue_reports
            ],
            title="Queue timelines",
        )
    )

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # Tiered runs get their own lane: their charging structure (UVA
    # host band + remote queue) is not comparable run-over-run with the
    # committed flat-cache pipeline trajectory.
    lane = "pipeline_tiered" if args.feature_tiers else "pipeline"
    tag = f"{lane}_{args.algorithm}_{args.dataset}_{args.device}"
    trace_path = (
        pathlib.Path(args.trace_out)
        if args.trace_out
        else out_dir / f"trace_{tag}.json"
    )
    write_chrome_trace(profiler, trace_path)
    print(f"\nchrome trace: {trace_path} ({len(profiler.spans)} spans)")

    metrics = {
        "sim_seconds": pipelined.total_seconds,
        "serial_sim_seconds": serial.total_seconds,
        "overlap_reduction": reduction,
        "launches": sum(r.launches for r in pipelined.queue_reports),
        "cache_hit_rate": cache.hit_rate if cache is not None else 0.0,
        "final_loss": pipelined.final_loss,
    }
    meta = {
        "algorithm": args.algorithm,
        "dataset": args.dataset,
        "device": args.device,
        "batch_size": args.batch_size,
        "scale": args.scale,
        "max_batches": args.max_batches,
        "epochs": args.epochs,
        "prefetch_depth": prefetch_depth,
        "cache_ratio": cache_ratio,
    }
    if args.feature_tiers:
        meta["feature_tiers"] = True
        meta["host_tier_ratio"] = host_tier_ratio
        meta["prefetch"] = not args.no_prefetch
        if args.hbm_budget_mb is not None:
            meta["hbm_budget_mb"] = args.hbm_budget_mb
    record_path = bench_path(out_dir, tag)
    record, previous = append_record(
        record_path, tag=tag, meta=meta, metrics=metrics
    )
    print(f"trajectory: {record_path} (run {record['run']})")
    if previous is None:
        print("no previous record; comparator skipped")
        return 0
    regressions = compare_metrics(
        previous["metrics"], record["metrics"], threshold=args.threshold
    )
    if not regressions:
        print(
            f"no regressions vs run {previous['run']} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0
    print(f"REGRESSIONS vs run {previous['run']}:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 3 if args.fail_on_regression else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` command: one online serving session + trajectory."""
    import pathlib

    from repro.cache import DEFAULT_CACHE_RATIO, DEFAULT_HOST_TIER_RATIO
    from repro.datasets import load_dataset
    from repro.device import get_device
    from repro.errors import GSamplerError
    from repro.profile import (
        Profiler,
        append_record,
        bench_path,
        compare_metrics,
        write_chrome_trace,
    )
    from repro.serve import (
        AutoscalePolicy,
        FailureEvent,
        FailureSpec,
        ServePolicy,
        WorkloadSpec,
        make_composer,
        run_cluster_session,
    )

    cache_ratio = (
        args.cache_ratio if args.cache_ratio is not None else DEFAULT_CACHE_RATIO
    )
    host_tier_ratio = (
        args.host_tier_ratio
        if args.host_tier_ratio is not None
        else DEFAULT_HOST_TIER_RATIO
    )
    hbm_budget = (
        int(args.hbm_budget_mb * 2**20)
        if args.hbm_budget_mb is not None
        else None
    )
    dataset = load_dataset(args.dataset, scale=args.scale)
    device = get_device(args.device)
    profiler = Profiler()
    partition = None if args.partition == "none" else args.partition
    try:
        failures = None
        if args.kill:
            events = []
            for kill in args.kill:
                try:
                    replica_part, _, when = kill.partition("@")
                    when, _, down = when.partition(":")
                    events.append(
                        FailureEvent(
                            time=float(when) * 1e-3,
                            replica=int(replica_part),
                            downtime=float(down) * 1e-3 if down else None,
                        )
                    )
                except ValueError:
                    print(
                        f"error: bad --kill spec {kill!r} "
                        "(expected R@MS or R@MS:DOWN_MS)",
                        file=sys.stderr,
                    )
                    return 2
            failures = FailureSpec(
                events=tuple(events),
                orphans=args.orphans,
                max_retries=args.max_retries,
                hedge=args.hedge,
                failover=not args.no_failover,
            )
        autoscale = None
        if args.autoscale:
            autoscale = AutoscalePolicy(
                min_replicas=args.min_replicas,
                max_replicas=args.max_replicas,
                interval=args.scale_interval_ms * 1e-3,
                high_p99=args.slo_ms * 1e-3,
                tune_batching=args.tune_batching,
                max_batch=max(64, args.max_batch),
            )
        spec = WorkloadSpec(
            num_requests=args.requests,
            arrival_rate=args.arrival_rate,
            process=args.arrival,
            seeds_per_request=args.seeds_per_request,
            max_seeds_per_request=args.max_seeds_per_request,
            skew=args.skew,
            seed=args.seed,
            task=args.task,
        )
        policy = ServePolicy.preset(
            args.policy,
            max_batch=args.max_batch,
            max_wait=args.max_wait_ms * 1e-3,
            queue_capacity=args.queue_capacity,
            slo=args.slo_ms * 1e-3,
        )
        composer = make_composer(
            args.composer, max_requests=args.superbatch_window
        )
        updates = None
        dynamic = None
        if args.ingest_rate is not None:
            from repro.dynamic import DynamicPolicy, UpdateSpec

            updates = UpdateSpec(
                num_edges=args.ingest_edges,
                rate=args.ingest_rate,
                delete_fraction=args.delete_fraction,
                seed=args.seed,
            )
            dynamic = DynamicPolicy(
                snapshot_every=args.snapshot_every_ms * 1e-3,
                compact_every=args.compact_every,
                repartition_threshold=args.repartition_threshold,
            )
        with profiler.activate():
            # A 1-replica round-robin cluster is bit-identical to the
            # classic single-replica session, so everything routes
            # through the cluster layer.
            simulator, report = run_cluster_session(
                dataset,
                algorithm=args.algorithm,
                device=device,
                spec=spec,
                policy=policy,
                num_replicas=args.replicas,
                router=args.router,
                partition=partition,
                link=args.link,
                composer=composer,
                cache_ratio=cache_ratio,
                seed=args.seed,
                profiler=profiler,
                failures=failures,
                autoscale=autoscale,
                feature_tiers=args.feature_tiers,
                host_tier_ratio=host_tier_ratio,
                p2p=args.p2p,
                hbm_budget=hbm_budget,
                updates=updates,
                dynamic=dynamic,
                task=args.task,
            )
    except GSamplerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    slo_ms = args.slo_ms
    rows = [
        ["requests (completed/shed)", f"{report.completed}/{report.shed}"],
        ["degraded requests", report.degraded],
        ["throughput (req/s, simulated)", f"{report.throughput_rps:,.0f}"],
        ["p50 latency (ms)", f"{report.p50_ms:.4f}"],
        ["p95 latency (ms)", f"{report.p95_ms:.4f}"],
        ["p99 latency (ms)", f"{report.p99_ms:.4f}"],
        ["p99 vs SLO", f"{report.p99_ms:.3f} / {slo_ms:.3f} "
         + ("OK" if report.p99_ms <= slo_ms else "BREACH")],
        ["mean queueing (ms)", f"{report.mean_queue_ms:.4f}"],
        ["mean batch size", f"{report.mean_batch:.2f}"],
        ["batch histogram",
         " ".join(f"{s}:{c}" for s, c in report.batch_histogram.items())],
    ]
    if report.task != "node":
        rows.append(
            ["pairs served",
             f"{report.pairs_served} "
             f"({report.compaction_saved_rows} frontier rows saved "
             "by endpoint compaction)"]
        )
    cache = report.cache
    if cache is not None:
        rows.append(
            ["cache hit rate",
             f"{cache.hit_rate:.1%} ({cache.cached_rows} rows pinned)"]
        )
    if report.feature_tiers and cache is not None:
        rows.append(
            ["tier hit rates (dev/p2p/host/remote)",
             " / ".join(
                 f"{cache.tier_rate(t):.1%}"
                 for t in ("device", "p2p", "host", "remote")
             )]
        )
        rows.append(
            ["tier residency",
             f"{cache.cached_rows} rows on device, "
             f"{cache.host_rows} pinned host"]
        )
        if report.p2p_rows:
            rows.append(
                ["p2p traffic",
                 f"{report.p2p_rows} rows / "
                 f"{report.p2p_bytes / 2**20:.2f} MiB / "
                 f"{report.p2p_seconds * 1e3:.4f} ms on the link"]
            )
    if report.composer != "fifo":
        rows.append(["composer", report.composer])
        rows.append(["padded seed slots", report.padding_seeds])
        if report.superbatch_batches:
            rows.append(
                ["super-batch fusion",
                 f"{report.superbatch_requests} requests / "
                 f"{report.superbatch_batches} fused runs "
                 f"(mean {report.superbatch_requests / report.superbatch_batches:.1f})"]
            )
            rows.append(["deduplicated feature rows", report.dedup_rows])
    if report.elastic:
        rows.append(
            ["availability",
             f"{report.availability:.2%} "
             f"({report.completed} answered, {report.lost} lost, "
             f"{report.shed} shed)"]
        )
        rows.append(
            ["failures / retried / hedged",
             f"{report.failures} / {report.retried} / "
             f"{report.hedged} ({report.hedge_wins} hedge wins)"]
        )
        if report.scale_ups or report.scale_downs or report.tune_moves:
            rows.append(
                ["scale ops (up/down/tune)",
                 f"{report.scale_ups} / {report.scale_downs} / "
                 f"{report.tune_moves}"]
            )
        rows.append(
            ["GPU-time (simulated ms)", f"{report.gpu_seconds * 1e3:.4f}"]
        )
        rows.append(
            ["re-replication",
             f"{report.reprovision_bytes / 2**20:.2f} MiB over the link"]
        )
    if report.dynamic:
        rows.append(
            ["ingested edges (insert/delete)",
             f"{report.ingested_edges} / {report.deleted_edges} "
             f"over {report.update_batches} batches"]
        )
        rows.append(
            ["graph installs (snapshot/compact)",
             f"{report.snapshots} / {report.compactions}"]
        )
        rows.append(
            ["update staleness (mean/max ms)",
             f"{report.mean_staleness_ms:.4f} / "
             f"{report.max_staleness_ms:.4f}"]
        )
        rows.append(
            ["delta refresh time (ms)", f"{report.refresh_ms:.4f}"]
        )
        if report.rebalances:
            rows.append(
                ["incremental rebalances",
                 f"{report.rebalances} "
                 f"({report.migrated_rows} rows / "
                 f"{report.migrated_bytes / 2**20:.2f} MiB migrated)"]
            )
    if report.replicas > 1:
        rows.append(["replicas / router", f"{report.replicas} / {report.router}"])
        if simulator.partition is not None:
            rows.append(
                ["partition",
                 f"{simulator.partition.method} "
                 f"(edge cut {simulator.partition.edge_cut:.1%}, "
                 f"link {simulator.link.name})"]
            )
            rows.append(
                ["cross-shard traffic",
                 f"{report.cross_shard_rows} rows / "
                 f"{report.cross_shard_bytes / 2**20:.2f} MiB / "
                 f"{report.link_seconds * 1e3:.4f} ms on the link"]
            )
    cluster_title = (
        f", {report.replicas} replicas ({report.router})"
        if report.replicas > 1
        else ""
    )
    if report.composer != "fifo":
        cluster_title += f", composer={report.composer}"
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=(
                f"Online serving — {args.algorithm} on {args.dataset} "
                f"({args.device}), {args.arrival} arrivals @ "
                f"{args.arrival_rate:,.0f} req/s, policy={args.policy}"
                f"{cluster_title}"
            ),
        )
    )
    if report.replicas > 1:
        headers = ["Replica", "Requests", "Done/Shed", "p50 (ms)",
                   "p99 (ms)", "Batch", "Remote rows", "Link (ms)"]
        replica_rows = [
            [
                stats.replica_id,
                stats.requests,
                f"{stats.completed}/{stats.shed}",
                f"{stats.p50_ms:.4f}",
                f"{stats.p99_ms:.4f}",
                f"{stats.mean_batch:.2f}",
                stats.cross_shard_rows,
                f"{stats.link_seconds * 1e3:.4f}",
            ]
            for stats in report.per_replica
        ]
        if report.elastic:
            headers += ["Up (ms)", "Kills"]
            for row, stats in zip(replica_rows, report.per_replica):
                row.append(f"{stats.uptime_seconds * 1e3:.4f}")
                row.append(stats.failures)
        print(
            format_table(
                headers,
                replica_rows,
                title="Per-replica breakdown",
            )
        )
    queue_rows = [
        [
            q.name,
            ctx_name,
            f"{q.busy_seconds * 1e3:.4f}",
            f"{q.ready * 1e3:.4f}",
            q.launches,
            f"{q.busy_seconds / q.ready:.0%}" if q.ready else "0%",
        ]
        for replica in simulator.replicas
        for ctx_name, ctx in (
            ("sampling", replica.sample_ctx),
            ("feature I/O", replica.io_ctx),
        )
        for q in ctx.queue_stats().values()
    ]
    print(
        format_table(
            ["Queue", "Context", "Busy (ms)", "End (ms)", "Launches", "Util"],
            queue_rows,
            title="Queue timelines",
        )
    )

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # Cluster sessions get their own trajectory file: their metrics
    # (replica count, router, cross-shard traffic) are not comparable
    # run-over-run with the single-replica serve trajectory.  Non-FIFO
    # composers likewise get their own lane — their batch shapes (and
    # extra metric keys) are not comparable with the FIFO trajectory.
    kind = "cluster" if args.replicas > 1 else "serve"
    if args.composer != "fifo":
        kind = f"{kind}_{args.composer}"
    if report.feature_tiers:
        # Tiered-store sessions carry per-tier keys and a different
        # charging structure, so they live in their own lane.
        kind = "tiered"
    if report.elastic:
        # Chaos/elastic sessions carry availability/scaling keys and a
        # perturbed timeline, so they live in their own lane.
        kind = "elastic"
    if report.dynamic:
        # Serve-while-ingesting sessions carry staleness/refresh keys
        # and a mutated graph, so they live in their own lane.
        kind = "dynamic"
    if args.task != "node":
        # Task-typed sessions (pair payloads, compaction counters) are
        # not comparable with the node-seed trajectories.
        kind = f"{args.task}_{kind}" if kind != "serve" else args.task
    tag = f"{kind}_{args.algorithm}_{args.dataset}_{args.device}"
    trace_path = (
        pathlib.Path(args.trace_out)
        if args.trace_out
        else out_dir / f"trace_{tag}.json"
    )
    write_chrome_trace(profiler, trace_path)
    print(f"\nchrome trace: {trace_path} ({len(profiler.spans)} spans)")

    metrics = dict(report.to_metrics())
    metrics["launches"] = sum(
        replica.sample_ctx.launch_count() + replica.io_ctx.launch_count()
        for replica in simulator.replicas
    )
    meta = {
        "algorithm": args.algorithm,
        "dataset": args.dataset,
        "device": args.device,
        "scale": args.scale,
        "arrival": args.arrival,
        "arrival_rate": args.arrival_rate,
        "requests": args.requests,
        "seeds_per_request": args.seeds_per_request,
        "skew": args.skew,
        "policy": args.policy,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "queue_capacity": args.queue_capacity,
        "slo_ms": args.slo_ms,
        "cache_ratio": cache_ratio,
        "seed": args.seed,
    }
    if args.composer != "fifo":
        meta["composer"] = args.composer
        if args.superbatch_window is not None:
            meta["superbatch_window"] = args.superbatch_window
    if args.replicas > 1:
        meta["replicas"] = args.replicas
        meta["router"] = args.router
        meta["partition"] = args.partition
        meta["link"] = simulator.link.name if simulator.link else "none"
        if args.max_seeds_per_request is not None:
            meta["max_seeds_per_request"] = args.max_seeds_per_request
    if args.feature_tiers:
        meta["feature_tiers"] = True
        meta["host_tier_ratio"] = host_tier_ratio
        meta["p2p"] = args.p2p
        if args.hbm_budget_mb is not None:
            meta["hbm_budget_mb"] = args.hbm_budget_mb
    if failures is not None:
        meta["kills"] = list(args.kill)
        meta["orphans"] = args.orphans
        meta["max_retries"] = args.max_retries
        meta["hedge"] = args.hedge
        meta["failover"] = not args.no_failover
    if autoscale is not None:
        meta["autoscale"] = True
        meta["min_replicas"] = args.min_replicas
        meta["max_replicas"] = args.max_replicas
        meta["scale_interval_ms"] = args.scale_interval_ms
        meta["tune_batching"] = args.tune_batching
    if updates is not None:
        meta["ingest_rate"] = args.ingest_rate
        meta["ingest_edges"] = args.ingest_edges
        meta["delete_fraction"] = args.delete_fraction
        meta["snapshot_every_ms"] = args.snapshot_every_ms
        meta["compact_every"] = args.compact_every
        if args.repartition_threshold is not None:
            meta["repartition_threshold"] = args.repartition_threshold
    if args.task != "node":
        meta["task"] = args.task
    if updates is not None or args.task != "node":
        # The determinism tripwire: two runs of the same dynamic or
        # task-typed session must print identical digests (CI diffs
        # this line).
        digest = hashlib.sha256(
            repr(report.fingerprint()).encode()
        ).hexdigest()
        print(f"session fingerprint: {digest}")
    record_path = bench_path(out_dir, tag)
    record, previous = append_record(
        record_path, tag=tag, meta=meta, metrics=metrics
    )
    print(f"trajectory: {record_path} (run {record['run']})")
    if args.min_availability is not None:
        gate = args.min_availability
        if report.availability < gate:
            print(
                f"AVAILABILITY GATE FAILED: {report.availability:.2%} "
                f"< {gate:.2%}"
            )
            return 4
        print(
            f"availability gate: {report.availability:.2%} >= {gate:.2%} OK"
        )
    if previous is None:
        print("no previous record; comparator skipped")
        return 0
    regressions = compare_metrics(
        previous["metrics"], record["metrics"], threshold=args.threshold
    )
    if not regressions:
        print(
            f"no regressions vs run {previous['run']} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0
    print(f"REGRESSIONS vs run {previous['run']}:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 3 if args.fail_on_regression else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import pathlib

    if args.sampler is not None:
        args.algorithm = args.sampler
    if args.algorithm is None:
        print(
            "error: profile needs an algorithm (positional or --sampler)",
            file=sys.stderr,
        )
        return 2

    if args.pipeline:
        return _cmd_profile_pipeline(args)

    from repro.ir.passes.base import PassStat
    from repro.profile import (
        Profiler,
        append_record,
        bench_path,
        build_text_report,
        compare_metrics,
        write_chrome_trace,
    )

    profiler = Profiler()
    stats = measure_cell(
        args.system,
        args.algorithm,
        args.dataset,
        device_name=args.device,
        batch_size=args.batch_size,
        scale=args.scale,
        max_batches=args.max_batches,
        profiler=profiler,
    )
    if stats is None:
        print(
            f"{args.system} does not support {args.algorithm} on "
            f"{args.dataset} (an N/A cell in the paper's figures)",
            file=sys.stderr,
        )
        return 1
    ctx = profiler.context
    assert ctx is not None
    tag = f"{args.system}_{args.algorithm}_{args.dataset}_{stats.device}"

    # Rebuild per-pass statistics from the recorded pass spans so the
    # report covers every compiled layer the epoch touched.
    pass_stats = [
        PassStat(
            name=span.name.removeprefix("pass:"),
            iteration=int(span.attrs.get("iteration", 1)),  # type: ignore[arg-type]
            changed=bool(span.attrs.get("changed", False)),
            wall_seconds=span.host_duration,
            nodes_before=int(span.attrs.get("nodes_before", 0)),  # type: ignore[arg-type]
            nodes_after=int(span.attrs.get("nodes_after", 0)),  # type: ignore[arg-type]
            edges_before=int(span.attrs.get("edges_before", 0)),  # type: ignore[arg-type]
            edges_after=int(span.attrs.get("edges_after", 0)),  # type: ignore[arg-type]
        )
        for span in profiler.spans_by_category("pass")
    ]
    print(
        build_text_report(
            ctx,
            title=(
                f"Profile — {args.algorithm} on {args.dataset} "
                f"({stats.device}), {stats.num_batches} batches"
            ),
            wall_seconds=stats.wall_seconds,
            pass_stats=pass_stats,
        )
    )

    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = (
        pathlib.Path(args.trace_out)
        if args.trace_out
        else out_dir / f"trace_{tag}.json"
    )
    write_chrome_trace(profiler, trace_path)
    print(f"\nchrome trace: {trace_path} ({len(profiler.spans)} spans)")

    compile_spans = profiler.spans_by_category("compile")
    metrics = {
        "sim_seconds": stats.sim_seconds,
        "wall_seconds": stats.wall_seconds,
        "launches": stats.launches,
        "peak_bytes": stats.peak_memory_bytes,
        "sm_percent": stats.sm_percent,
        "num_batches": stats.num_batches,
        "compile_wall_seconds": sum(
            s.host_duration for s in compile_spans if s.name == "compile"
        ),
        "time_by_kernel": ctx.time_by_kernel(),
    }
    meta = {
        "system": stats.system,
        "algorithm": args.algorithm,
        "dataset": args.dataset,
        "device": stats.device,
        "batch_size": args.batch_size,
        "scale": args.scale,
        "max_batches": args.max_batches,
    }
    record_path = bench_path(out_dir, tag)
    record, previous = append_record(
        record_path, tag=tag, meta=meta, metrics=metrics
    )
    print(f"trajectory: {record_path} (run {record['run']})")

    if previous is None:
        print("no previous record; comparator skipped")
        return 0
    regressions = compare_metrics(
        previous["metrics"], record["metrics"], threshold=args.threshold
    )
    if not regressions:
        print(
            f"no regressions vs run {previous['run']} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0
    print(f"REGRESSIONS vs run {previous['run']}:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 3 if args.fail_on_regression else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and tests."""
    args = _build_parser().parse_args(argv)
    if args.command == "sample":
        return _cmd_sample(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "datasets":
        print("\n".join(available_datasets()))
        return 0
    if args.command == "algorithms":
        print("\n".join(available_algorithms()))
        return 0
    if args.command == "systems":
        print("\n".join(_SYSTEMS))
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
