"""Serve-while-ingesting policy knobs.

:class:`DynamicPolicy` bundles the cluster-side decisions a dynamic
session needs: how *stale* the served graph may get before a fresh
snapshot is installed, how often the delta is compacted back into a
canonical base CSC, and when partition drift triggers an incremental
rebalance.  It deliberately mirrors :class:`~repro.serve.replica.ServePolicy`
— frozen, validated at construction, cheap to sweep in benchmarks.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ServeError

__all__ = ["DynamicPolicy"]


@dataclasses.dataclass(frozen=True)
class DynamicPolicy:
    """Knobs for a serve-while-ingesting session.

    The staleness-vs-latency tradeoff lives in ``snapshot_every``: a
    short epoch keeps served samples fresh but charges the merge to the
    sample queue more often (latency); a long epoch amortizes the merge
    but serves a staler graph.
    """

    #: Snapshot epoch in simulated seconds: a new overlay snapshot is
    #: installed once at least this much time passed since the last
    #: install (checked when an update batch lands).
    snapshot_every: float = 5e-4
    #: Compact (full canonical rebuild) every N applied update batches;
    #: 0 disables compaction and every install is an overlay snapshot.
    compact_every: int = 0
    #: Degree-balance drift that triggers an incremental rebalance
    #: (absolute increase of max/mean shard degree balance over the
    #: post-partition baseline).  ``None`` disables repartitioning.
    repartition_threshold: float | None = None
    #: Cap on rows moved per incremental rebalance.
    max_migrate_rows: int = 256
    #: Invalidate cached feature rows whose degree band changed when a
    #: snapshot/compaction installs (the satellite `invalidate()` path).
    invalidate_cache: bool = True

    def __post_init__(self) -> None:
        if self.snapshot_every < 0.0:
            raise ServeError(
                f"snapshot epoch must be >= 0, got {self.snapshot_every}"
            )
        if self.compact_every < 0:
            raise ServeError(
                f"compact cadence must be >= 0, got {self.compact_every}"
            )
        if (
            self.repartition_threshold is not None
            and self.repartition_threshold <= 0.0
        ):
            raise ServeError(
                "repartition threshold must be positive, got "
                f"{self.repartition_threshold}"
            )
        if self.max_migrate_rows <= 0:
            raise ServeError(
                f"migration cap must be positive, got {self.max_migrate_rows}"
            )
