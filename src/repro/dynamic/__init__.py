"""Dynamic graphs: delta-aware container + streaming update workloads.

Every other subsystem samples a frozen graph; production graphs mutate
under the very traffic being served.  This package adds the dynamic
axis:

* :mod:`repro.dynamic.delta` — :class:`DeltaGraph`, an immutable base
  CSC plus append-only edge insert/delete deltas with tombstone masks.
  ``snapshot()`` materializes an overlay the compiled samplers consume
  unmodified (per-column: surviving base neighbors first, appended
  inserts after); ``compact()`` rebuilds a canonical base CSC — charged
  to the device cost model like any other kernel — that is
  **bit-identical** to a fresh CSR built from the same edge set in
  canonical ``(dst, src)`` order;
* :mod:`repro.dynamic.stream` — a seeded streaming-update workload
  generator (:class:`UpdateSpec` / :func:`generate_update_stream`):
  Poisson edge-arrival batches with Zipf-skewed endpoints and an
  optional churn fraction deleting previously inserted edges, built on
  the same one-RNG determinism contract as the request workloads;
* :mod:`repro.dynamic.policy` — :class:`DynamicPolicy`, the
  serve-while-ingesting knobs (snapshot epoch, compaction cadence,
  incremental-repartition threshold) consumed by
  :class:`~repro.serve.cluster.ClusterSimulator`.

CLI: ``gsampler-repro serve --ingest-rate ... --compact-every ...
--repartition-threshold ...``.
"""

from repro.dynamic.delta import AppliedUpdate, DeltaGraph
from repro.dynamic.policy import DynamicPolicy
from repro.dynamic.stream import (
    UpdateBatch,
    UpdateSpec,
    generate_update_stream,
)

__all__ = [
    "AppliedUpdate",
    "DeltaGraph",
    "DynamicPolicy",
    "UpdateBatch",
    "UpdateSpec",
    "generate_update_stream",
]
