"""Deterministic streaming-update workloads for serve-while-ingesting.

The request side of a serving session is covered by
:mod:`repro.serve.workload`; this module generates the *update* side —
batches of edge inserts/deletes arriving on the same simulated clock, so
:class:`~repro.serve.cluster.ClusterSimulator` can interleave them with
the request stream.

Shape of the stream:

* batches arrive as a Poisson process whose mean edge rate is
  ``spec.rate`` (so inter-batch gaps are exponential with mean
  ``batch_edges / rate``) — memoryless, like the request baseline;
* destination endpoints are Zipf-skewed over hotness ranks using the
  same ``rank^-skew`` law the request generator uses (hot nodes gain
  edges fastest — exactly the drift that stresses degree-ordered caches
  and degree-balanced partitions);
* source endpoints are uniform, with self-loops nudged away;
* a ``delete_fraction`` of edges remove a previously *inserted* edge
  (uniformly chosen from the survivors), modelling churn without ever
  draining the base graph;
* every inserted edge carries a uniform(0, 1) weight, matching the
  synthetic datasets' weight law — :class:`~repro.dynamic.delta.DeltaGraph`
  uses it over weighted bases and ignores it over unweighted ones.

Everything is driven by one :class:`numpy.random.Generator` seeded from
the spec: equal specs produce bit-identical streams, which the CI
dynamic-smoke determinism tripwire diffs across two runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import new_rng
from repro.errors import ServeError

__all__ = ["UpdateBatch", "UpdateSpec", "generate_update_stream"]


@dataclasses.dataclass(frozen=True)
class UpdateBatch:
    """One batch of edge mutations arriving at simulated ``time``.

    ``delete[i]`` says whether edge ``i`` is a delete (tombstone one
    live occurrence of ``src[i] -> dst[i]``) or an insert.
    """

    uid: int
    time: float
    src: np.ndarray
    dst: np.ndarray
    delete: np.ndarray
    #: Per-edge insert weights (float32; zero at delete positions).
    #: Consumed only when the base graph is weighted.
    weights: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @property
    def num_deletes(self) -> int:
        return int(np.count_nonzero(self.delete))

    @property
    def num_inserts(self) -> int:
        return self.num_edges - self.num_deletes


@dataclasses.dataclass(frozen=True)
class UpdateSpec:
    """Everything needed to regenerate an update stream bit-for-bit."""

    #: Total streamed edges over the session (across all batches).
    num_edges: int = 256
    #: Mean ingest rate in edges per simulated second.
    rate: float = 200_000.0
    #: Edges per arriving batch (the ingest pipeline's micro-batch).
    batch_edges: int = 8
    #: Fraction of streamed edges that delete a previously inserted
    #: edge instead of adding a new one.
    delete_fraction: float = 0.0
    #: Zipf exponent over destination hotness ranks; 0 is uniform.
    skew: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_edges <= 0:
            raise ServeError(
                f"update stream needs at least one edge, got {self.num_edges}"
            )
        if self.rate <= 0.0:
            raise ServeError(
                f"ingest rate must be positive, got {self.rate}"
            )
        if self.batch_edges <= 0:
            raise ServeError(
                f"batch size must be positive, got {self.batch_edges}"
            )
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ServeError(
                "delete fraction must be in [0, 1), got "
                f"{self.delete_fraction}"
            )
        if self.skew < 0.0:
            raise ServeError(f"skew must be non-negative, got {self.skew}")

    @property
    def num_batches(self) -> int:
        return -(-self.num_edges // self.batch_edges)


def generate_update_stream(
    spec: UpdateSpec,
    *,
    num_nodes: int,
    hotness: np.ndarray | None = None,
) -> list[UpdateBatch]:
    """Generate the full update-batch stream for ``spec``.

    ``hotness`` maps popularity ranks to concrete node ids exactly like
    :func:`repro.serve.workload.generate_workload` — pass the same
    degree array so streamed edges land on the nodes request traffic
    hits.
    """
    # Deferred: repro.serve.cluster imports this package at module
    # scope, so a top-level serve import here would close a cycle.
    from repro.serve.workload import rank_probabilities

    if num_nodes < 2:
        raise ServeError(
            f"update stream needs at least two nodes, got {num_nodes}"
        )
    if hotness is None:
        hot_order = np.arange(num_nodes, dtype=np.int64)
    else:
        hotness = np.asarray(hotness)
        if hotness.shape != (num_nodes,):
            raise ServeError(
                f"hotness shape {hotness.shape} != nodes ({num_nodes},)"
            )
        hot_order = np.argsort(-hotness.astype(np.float64), kind="stable")
    rng = new_rng(spec.seed)
    probs = rank_probabilities(num_nodes, spec.skew)
    batches: list[UpdateBatch] = []
    # Live inserted edges available for churn deletes, in insert order.
    reservoir: list[tuple[int, int]] = []
    t = 0.0
    remaining = spec.num_edges
    uid = 0
    while remaining > 0:
        count = min(spec.batch_edges, remaining)
        t += rng.exponential(spec.batch_edges / spec.rate)
        src = np.empty(count, dtype=np.int64)
        dst = np.empty(count, dtype=np.int64)
        delete = np.zeros(count, dtype=bool)
        weights = np.zeros(count, dtype=np.float32)
        for i in range(count):
            if (
                spec.delete_fraction > 0.0
                and reservoir
                and rng.random() < spec.delete_fraction
            ):
                victim = int(rng.integers(len(reservoir)))
                u, v = reservoir.pop(victim)
                src[i], dst[i], delete[i] = u, v, True
                continue
            rank = int(rng.choice(num_nodes, p=probs))
            v = int(hot_order[rank])
            u = int(rng.integers(num_nodes))
            if u == v:
                u = (u + 1) % num_nodes
            src[i], dst[i] = u, v
            weights[i] = rng.random()
            reservoir.append((u, v))
        batches.append(
            UpdateBatch(
                uid=uid,
                time=float(t),
                src=src,
                dst=dst,
                delete=delete,
                weights=weights,
            )
        )
        uid += 1
        remaining -= count
    return batches
