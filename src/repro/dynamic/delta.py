"""Delta-aware graph container: immutable base CSC + edge deltas.

:class:`DeltaGraph` wraps a base-graph :class:`~repro.core.matrix.Matrix`
and accepts streaming edge inserts/deletes without touching the base
storage.  The base CSC arrays stay immutable; mutation state lives in

* a **tombstone mask** over the base edges (deletes), and
* **append-only insert buffers** with their own tombstone mask (an
  inserted edge can itself be deleted before it ever reaches a CSC).

Two materialization paths hand the mutated edge set back to the
compiled samplers, which consume any CSC ``Matrix`` unmodified:

* :meth:`snapshot` — a cheap *overlay* merge.  Per destination column,
  surviving base neighbors come first (in base-CSC order) followed by
  surviving inserts (in arrival order).  Used for periodic snapshot
  installs while serving; cost charged as a tombstone-filtered merge
  (no sort).
* :meth:`compact` — a full rebuild in **canonical order**: live edges
  sorted by ``(dst, src)``.  The result is bit-identical to
  :func:`repro.core.matrix.from_edges` over the same live edge set in
  canonical order, which is what the ``repro.verify`` dynamic check
  pins.  Cost includes the sort term, mirroring the COO→CSC
  conversion charge.

Both cost dicts (:meth:`merge_workload` / :meth:`compact_workload`) are
plain kwargs for :meth:`repro.device.context.ExecutionContext.record`,
so callers charge the rebuild to whichever queue installs the new
graph — the cluster charges every replica's sample queue, exactly like
any other kernel launch.

Weighted bases are supported: inserted edges then carry their own
weight (the update stream draws one per insert, matching the synthetic
datasets' uniform weights), so the samplers' probability mass stays
well-defined across mutation.  Unweighted bases stay unweighted —
streamed weights are ignored there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.matrix import Matrix, from_edges
from repro.device.context import NULL_CONTEXT, ExecutionContext
from repro.errors import ShapeError
from repro.sparse.formats import CSC, INDEX_DTYPE, VALUE_DTYPE, as_index_array

__all__ = ["AppliedUpdate", "DeltaGraph"]

_INDEX_BYTES = np.dtype(INDEX_DTYPE).itemsize


@dataclass(frozen=True)
class AppliedUpdate:
    """Outcome of applying one update batch to a :class:`DeltaGraph`."""

    inserted: int
    deleted: int
    missed_deletes: int

    @property
    def applied(self) -> int:
        return self.inserted + self.deleted


class DeltaGraph:
    """Immutable base CSC + append-only edge deltas with tombstones.

    Parameters
    ----------
    base:
        The starting graph.  Must be square and convertible to CSC
        (every base graph in the repo already is); weighted and
        unweighted bases are both supported.
    """

    def __init__(self, base: Matrix) -> None:
        csc = base.get("csc")
        if csc.shape[0] != csc.shape[1]:
            raise ShapeError(
                f"DeltaGraph needs a square graph, got shape {csc.shape}"
            )
        self.num_nodes = int(csc.shape[1])
        #: Whether edges carry weights; fixed by the base graph.
        self.weighted = csc.values is not None
        self._install_base(csc)
        # Insert-side state (append-only buffers + tombstones).
        self._extra_src: list[int] = []
        self._extra_dst: list[int] = []
        self._extra_val: list[float] = []
        self._extra_alive: list[bool] = []
        self._extra_index: dict[int, list[int]] = {}
        # Mutation counters (session-lifetime; compact() does not reset).
        self.inserted_edges = 0
        self.deleted_edges = 0
        self.missed_deletes = 0
        self.batches_applied = 0
        self.compactions = 0
        #: Bumped on every applied batch; lets consumers detect staleness.
        self.version = 0
        self._dirty: set[int] = set()

    # -- base-side bookkeeping ------------------------------------------

    def _install_base(self, csc: CSC) -> None:
        """Adopt ``csc`` as the (new) immutable base."""
        n = self.num_nodes
        self._base_indptr = csc.indptr
        self._base_src = csc.rows
        self._base_dst = csc.expand_cols()
        self._base_val = csc.values
        self._base_alive = np.ones(csc.nnz, dtype=bool)
        # Delete matching: base edges indexed by the scalar key
        # src * n + dst via one sorted permutation + searchsorted.
        keys = self._base_src * np.int64(n) + self._base_dst
        self._base_key_order = np.argsort(keys, kind="stable")
        self._base_sorted_keys = keys[self._base_key_order]
        self._degrees = np.diff(csc.indptr).astype(np.int64)

    # -- introspection ---------------------------------------------------

    @property
    def base_nnz(self) -> int:
        return int(self._base_src.shape[0])

    @property
    def num_live_edges(self) -> int:
        return int(np.count_nonzero(self._base_alive)) + sum(self._extra_alive)

    @property
    def delta_edges(self) -> int:
        """Pending delta size: insert buffer entries + base tombstones."""
        tombstones = self.base_nnz - int(np.count_nonzero(self._base_alive))
        return len(self._extra_src) + tombstones

    def degrees(self) -> np.ndarray:
        """Current live in-degree per node (copy; safe to mutate)."""
        return self._degrees.copy()

    def dirty_nodes(self) -> np.ndarray:
        """Nodes whose neighbor list changed since the last drain."""
        return np.array(sorted(self._dirty), dtype=INDEX_DTYPE)

    def drain_dirty(self) -> np.ndarray:
        """Return the dirty-node set and clear it (cache invalidation)."""
        dirty = self.dirty_nodes()
        self._dirty.clear()
        return dirty

    # -- mutation --------------------------------------------------------

    def _check_endpoints(self, src: np.ndarray, dst: np.ndarray) -> None:
        if src.shape != dst.shape:
            raise ShapeError(
                f"edge endpoint arrays disagree: {src.shape} vs {dst.shape}"
            )
        if src.size and (
            src.min() < 0
            or dst.min() < 0
            or src.max() >= self.num_nodes
            or dst.max() >= self.num_nodes
        ):
            raise ShapeError(
                f"edge endpoints out of range for {self.num_nodes} nodes"
            )

    def insert_edges(self, src, dst, weights=None) -> int:
        """Append edges to the insert buffer; returns the count.

        ``weights`` applies only over a weighted base (missing entries
        default to 1.0); it is ignored for unweighted bases so the
        graph's weightedness never flips mid-stream.
        """
        src = as_index_array(src)
        dst = as_index_array(dst)
        self._check_endpoints(src, dst)
        if self.weighted:
            if weights is None:
                vals = np.ones(src.size, dtype=VALUE_DTYPE)
            else:
                vals = np.asarray(weights, dtype=VALUE_DTYPE)
                if vals.shape != src.shape:
                    raise ShapeError(
                        f"weights shape {vals.shape} != edges {src.shape}"
                    )
        n = self.num_nodes
        for i, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
            idx = len(self._extra_src)
            self._extra_src.append(u)
            self._extra_dst.append(v)
            if self.weighted:
                self._extra_val.append(float(vals[i]))
            self._extra_alive.append(True)
            self._extra_index.setdefault(u * n + v, []).append(idx)
            self._degrees[v] += 1
            self._dirty.add(v)
        self.inserted_edges += int(src.size)
        return int(src.size)

    def delete_edges(self, src, dst) -> int:
        """Tombstone one live occurrence per requested edge.

        Matching is deterministic: the earliest surviving base edge
        first, then the earliest surviving insert.  Requests with no
        live match are counted in :attr:`missed_deletes` and ignored —
        a delete racing a delete is a no-op, not an error.
        """
        src = as_index_array(src)
        dst = as_index_array(dst)
        self._check_endpoints(src, dst)
        n = self.num_nodes
        applied = 0
        for u, v in zip(src.tolist(), dst.tolist()):
            key = u * n + v
            hit = False
            lo = int(np.searchsorted(self._base_sorted_keys, key, "left"))
            hi = int(np.searchsorted(self._base_sorted_keys, key, "right"))
            for pos in range(lo, hi):
                edge = int(self._base_key_order[pos])
                if self._base_alive[edge]:
                    self._base_alive[edge] = False
                    hit = True
                    break
            if not hit:
                for idx in self._extra_index.get(key, ()):
                    if self._extra_alive[idx]:
                        self._extra_alive[idx] = False
                        hit = True
                        break
            if hit:
                applied += 1
                self._degrees[v] -= 1
                self._dirty.add(v)
            else:
                self.missed_deletes += 1
        self.deleted_edges += applied
        return applied

    def apply(self, batch) -> AppliedUpdate:
        """Apply one :class:`~repro.dynamic.stream.UpdateBatch`."""
        delete = np.asarray(batch.delete, dtype=bool)
        src = as_index_array(batch.src)
        dst = as_index_array(batch.dst)
        weights = getattr(batch, "weights", None)
        missed_before = self.missed_deletes
        inserted = self.insert_edges(
            src[~delete],
            dst[~delete],
            weights=None if weights is None else weights[~delete],
        )
        deleted = self.delete_edges(src[delete], dst[delete])
        self.batches_applied += 1
        self.version += 1
        return AppliedUpdate(
            inserted=inserted,
            deleted=deleted,
            missed_deletes=self.missed_deletes - missed_before,
        )

    # -- edge-set views --------------------------------------------------

    def live_edges(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Live ``(src, dst, values)`` in overlay order (base, then
        inserts); ``values`` is ``None`` for an unweighted base."""
        extra_alive = np.array(self._extra_alive, dtype=bool)
        extra_src = as_index_array(self._extra_src)[extra_alive]
        extra_dst = as_index_array(self._extra_dst)[extra_alive]
        src = np.concatenate([self._base_src[self._base_alive], extra_src])
        dst = np.concatenate([self._base_dst[self._base_alive], extra_dst])
        if not self.weighted:
            return src, dst, None
        extra_val = np.asarray(self._extra_val, dtype=VALUE_DTYPE)[
            extra_alive
        ]
        val = np.concatenate(
            [self._base_val[self._base_alive], extra_val]
        ).astype(VALUE_DTYPE)
        return src, dst, val

    def canonical_edges(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Live edges in canonical ``(dst, src)`` order.

        This is the ordering :meth:`compact` rebuilds under and the one
        the bit-identity check feeds to :func:`from_edges` — the same
        multiset of edges in the same order yields array-identical CSC
        storage.
        """
        src, dst, val = self.live_edges()
        order = np.lexsort((src, dst))
        return src[order], dst[order], None if val is None else val[order]

    # -- cost model ------------------------------------------------------

    def _value_bytes(self, nnz: int) -> int:
        return nnz * np.dtype(VALUE_DTYPE).itemsize if self.weighted else 0

    def _bytes_base(self) -> int:
        return int(
            (self.num_nodes + 1 + 2 * self.base_nnz) * _INDEX_BYTES
            + self._value_bytes(self.base_nnz)
        )

    def _bytes_out(self, nnz: int) -> int:
        # indptr + rows + edge_ids (+ values) of the materialized CSC.
        return int(
            (self.num_nodes + 1 + 2 * nnz) * _INDEX_BYTES
            + self._value_bytes(nnz)
        )

    def merge_workload(self) -> dict:
        """`record()` kwargs for a tombstone-filtered overlay merge."""
        live = self.num_live_edges
        delta_bytes = 2 * len(self._extra_src) * _INDEX_BYTES + self.base_nnz
        return {
            "bytes_read": self._bytes_base() + delta_bytes,
            "bytes_written": self._bytes_out(live),
            # One counting-sort style pass: no comparison sort.
            "flops": live,
            "tasks": max(live, 1),
        }

    def compact_workload(self) -> dict:
        """`record()` kwargs for a canonical rebuild (includes the sort)."""
        workload = self.merge_workload()
        live = self.num_live_edges
        sort_flops = int(live * max(math.log2(live), 1.0)) if live else 0
        workload["flops"] = workload["flops"] + sort_flops
        return workload

    # -- materialization -------------------------------------------------

    def snapshot(self, *, ctx: ExecutionContext = NULL_CONTEXT) -> Matrix:
        """Overlay merge: per-column base survivors first, inserts after.

        Does not reset the delta buffers — the snapshot is a read-only
        view of the current state, and later deltas keep accumulating.
        """
        ctx.record("delta_snapshot", **self.merge_workload())
        src, dst, val = self.live_edges()
        # Edge ids: surviving base edges keep their base CSC position;
        # inserts are numbered past the base, in arrival order.
        base_ids = np.flatnonzero(self._base_alive).astype(INDEX_DTYPE)
        extra_alive = np.array(self._extra_alive, dtype=bool)
        extra_ids = (
            self.base_nnz + np.flatnonzero(extra_alive).astype(INDEX_DTYPE)
        )
        edge_ids = np.concatenate([base_ids, extra_ids])
        # Stable sort by destination preserves the overlay order within
        # each column: base-CSC order, then insert-arrival order.
        order = np.argsort(dst, kind="stable")
        counts = np.bincount(dst, minlength=self.num_nodes)
        indptr = np.zeros(self.num_nodes + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        csc = CSC(
            indptr=indptr,
            rows=src[order],
            values=None if val is None else val[order],
            shape=(self.num_nodes, self.num_nodes),
            edge_ids=edge_ids[order],
        )
        return Matrix(csc, ctx=ctx, is_base_graph=True)

    def compact(self, *, ctx: ExecutionContext = NULL_CONTEXT) -> Matrix:
        """Rebuild the base CSC from the live edge set, canonical order.

        Resets the delta state: the rebuilt CSC becomes the new
        immutable base, the insert buffers and tombstones are cleared.
        The returned :class:`Matrix` is bit-identical to
        ``from_edges(*self.canonical_edges(), num_nodes)``.
        """
        ctx.record("delta_compact", **self.compact_workload())
        src, dst, val = self.canonical_edges()
        matrix = from_edges(
            src,
            dst,
            self.num_nodes,
            weights=val,
            layout="csc",
            ctx=NULL_CONTEXT,
        )
        self._install_base(matrix.get("csc"))
        self._extra_src = []
        self._extra_dst = []
        self._extra_val = []
        self._extra_alive = []
        self._extra_index = {}
        self.compactions += 1
        return matrix
