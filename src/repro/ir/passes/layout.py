"""Data-layout selection pass (Section 4.3 of the paper).

Only the extract and select steps change graph structure; compute and
finalize operators simply adopt their upstream layout.  The pass therefore
searches an output layout (CSC/CSR/COO) — and, for extract operators, a
row-compaction decision — for every structure operator, choosing the
assignment that minimizes estimated total cost: the producer's conversion
cost *plus* every consumer's execution cost under that layout.  This is
the cost-aware strategy the paper contrasts with DGL's greedy per-operator
format choice, which ignores conversion overhead.

Costs are relative units scaled by the traced size estimates; the search
space is tiny (3 layouts x 2 compaction per structure node, and the nodes
are independent because consumers see exactly one producer layout), so
exhaustive enumeration is instant — matching the paper's "brute force
within 1 second, amortized over mini-batches".
"""

from __future__ import annotations

from repro.ir.graph import DataFlowGraph, Node, STRUCTURE_OPS
from repro.ir.passes.base import Pass

#: Relative per-edge execution cost of each consumer op per input layout.
#: Derived from the kernel implementations in ``repro.sparse.kernels``:
#: e.g. column slicing reads only the selected ranges on CSC but scans the
#: whole edge list on COO/CSR (Table 5's 1.32 / 18.42 / 14.13 ms pattern).
CONSUMER_COST: dict[str, dict[str, float]] = {
    "slice_cols": {"csc": 1.0, "coo": 12.0, "csr": 10.0},
    "slice_rows": {"csr": 1.0, "coo": 12.0, "csc": 10.0},
    "reduce_rows": {"csr": 1.0, "coo": 2.0, "csc": 2.6},
    "reduce_cols": {"csc": 1.0, "coo": 2.0, "csr": 2.6},
    "map_broadcast_rows": {"coo": 1.0, "csc": 1.0, "csr": 1.5},
    "map_broadcast_cols": {"coo": 1.0, "csr": 1.0, "csc": 1.5},
    "map_elementwise": {"coo": 1.0, "csr": 1.0, "csc": 1.0},
    "individual_sample": {"csc": 1.0, "coo": 3.5, "csr": 5.0},
    "collective_sample": {"csc": 1.0, "coo": 2.0, "csr": 3.0},
    "labor_sample": {"csc": 1.0, "coo": 3.0, "csr": 4.5},
    "spmm": {"coo": 1.0, "csr": 1.0, "csc": 1.3},
    "row": {"csr": 0.3, "coo": 1.0, "csc": 1.2},
    "default": {"csc": 1.0, "coo": 1.0, "csr": 1.0},
}

#: Extra cost of *producing* each layout, relative to the op's native
#: output format (CSC for all our structure kernels): decompressing to COO
#: is cheap, compressing to CSR needs a sort.
PRODUCTION_COST = {"csc": 0.0, "coo": 0.6, "csr": 3.5}

#: Cost charged per edge for the compaction relabel pass.
COMPACT_COST_PER_EDGE = 2.0
#: Benefit per eliminated isolated row per row-length consumer.
COMPACT_BENEFIT_PER_ROW = 1.0


def _consumer_kind(node: Node) -> str:
    if node.op == "reduce" or node.op == "fused_map_reduce":
        axis = node.attrs.get("axis", node.attrs.get("reduce_axis", 0))
        return "reduce_rows" if axis == 0 else "reduce_cols"
    if node.op == "map_broadcast":
        return "map_broadcast_rows" if node.attrs.get("axis") == 0 else (
            "map_broadcast_cols"
        )
    if node.op in ("map_scalar", "map_unary", "map_combine", "fused_map_chain"):
        return "map_elementwise"
    if node.op in CONSUMER_COST:
        return node.op
    return "default"


class LayoutSelectionPass(Pass):
    """Stamps ``layout`` / ``compact_rows`` decisions on structure nodes."""

    name = "layout_selection"

    def __init__(self, *, enable_compaction: bool = True) -> None:
        self.enable_compaction = enable_compaction

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in ir.nodes():
            if node.op not in STRUCTURE_OPS:
                continue
            layout = self._best_layout(ir, node)
            if node.layout != layout:
                node.layout = layout
                changed = True
            compact = self.enable_compaction and self._should_compact(ir, node)
            if node.compact_rows != compact:
                node.compact_rows = compact
                changed = True
        return changed

    # ------------------------------------------------------------------
    def _best_layout(self, ir: DataFlowGraph, node: Node) -> str:
        meta = node.attrs.get("_meta")
        nnz = max(getattr(meta, "est_nnz", 1.0), 1.0)
        consumers = ir.users(node.node_id)
        best_layout, best_cost = "csc", float("inf")
        for layout in ("csc", "coo", "csr"):
            cost = PRODUCTION_COST[layout] * nnz
            for consumer in consumers:
                kind = _consumer_kind(consumer)
                table = CONSUMER_COST.get(kind, CONSUMER_COST["default"])
                cost += table[layout] * nnz
            if cost < best_cost:
                best_layout, best_cost = layout, cost
        return best_layout

    # ------------------------------------------------------------------
    def _should_compact(self, ir: DataFlowGraph, node: Node) -> bool:
        """Compact extract outputs whose isolated rows burden consumers.

        Safety: compaction rewrites the matrix's row space to local ids,
        so any per-row reduce result changes length.  That is transparent
        to consumers *within the matrix's own lineage*, but a ``t_index``
        that gathers such a vector by original node ids (via ``row()``)
        would silently mis-index — so compaction is suppressed whenever
        the slice's reduce results escape into a ``t_index``.
        """
        if node.op not in ("slice_cols", "slice_rows", "sb_slice_cols"):
            return False
        meta = node.attrs.get("_meta")
        if meta is None:
            return False
        total_rows = meta.est_rows
        occupied = min(meta.est_nnz, total_rows)
        saved_rows = total_rows - occupied
        if saved_rows <= 0:
            return False
        if self._reduce_escapes_to_index(ir, node):
            return False
        row_consumers = sum(
            1
            for user in ir.users(node.node_id)
            if _consumer_kind(user) in ("reduce_rows", "collective_sample")
        )
        if row_consumers == 0:
            return False
        benefit = saved_rows * COMPACT_BENEFIT_PER_ROW * row_consumers
        cost = meta.est_nnz * COMPACT_COST_PER_EDGE
        return benefit > cost

    def _reduce_escapes_to_index(self, ir: DataFlowGraph, node: Node) -> bool:
        """True if a per-row reduce of this matrix feeds a t_index."""
        descendants = self._descendants(ir, node.node_id)
        for desc_id in descendants:
            desc = ir.node(desc_id)
            if desc.op == "t_index":
                # Either operand deriving from the slice is unsafe.
                return True
        return False

    def _descendants(self, ir: DataFlowGraph, root: int) -> set[int]:
        out: set[int] = set()
        frontier = [root]
        while frontier:
            cur = frontier.pop()
            for user in ir.users(cur):
                if user.node_id not in out:
                    out.add(user.node_id)
                    frontier.append(user.node_id)
        return out


class GreedyLayoutPass(Pass):
    """DGL-style greedy layout choice, for the ablation baseline.

    Picks each structure operator's *self-preferred* output format in
    isolation, ignoring consumer conversion costs — the strategy the
    paper attributes to DGL ("greedily select the optimal sparse format
    for each operator without considering the conversion overheads").
    """

    name = "layout_greedy"

    #: The format each op natively prefers for its own execution.
    SELF_PREF = {
        "slice_cols": "csc",
        "slice_rows": "csr",
        "individual_sample": "csc",
        "collective_sample": "csc",
        "labor_sample": "csc",
        "fused_extract_select": "csc",
        "sb_slice_cols": "csc",
        "sb_collective_sample": "csc",
    }

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in ir.nodes():
            if node.op not in STRUCTURE_OPS:
                continue
            # Greedy: give the *first* consumer its favourite format,
            # conversion costs be damned.
            consumers = ir.users(node.node_id)
            layout = self.SELF_PREF.get(node.op, "csc")
            if consumers:
                kind = _consumer_kind(consumers[0])
                table = CONSUMER_COST.get(kind, CONSUMER_COST["default"])
                layout = min(table, key=lambda fmt: table[fmt])
            if node.layout != layout:
                node.layout = layout
                changed = True
        return changed
