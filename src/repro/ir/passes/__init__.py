"""IR optimization passes: cleanup, fusion, pre-processing, layout, batch."""

from repro.ir.passes.base import (
    Pass,
    PassManager,
    PassReport,
    PassStat,
    run_measured_pass,
)
from repro.ir.passes.cleanup import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
)
from repro.ir.passes.fusion import (
    EdgeMapFusion,
    EdgeMapReduceFusion,
    ExtractReduceFusion,
    ExtractSelectFusion,
)
from repro.ir.passes.layout import GreedyLayoutPass, LayoutSelectionPass
from repro.ir.passes.preprocess import PreprocessPass
from repro.ir.passes.superbatch import SuperBatchPass, needs_block_diagonal

__all__ = [
    "CommonSubexpressionElimination",
    "DeadCodeElimination",
    "EdgeMapFusion",
    "EdgeMapReduceFusion",
    "ExtractReduceFusion",
    "ExtractSelectFusion",
    "GreedyLayoutPass",
    "LayoutSelectionPass",
    "Pass",
    "PassManager",
    "PassReport",
    "PassStat",
    "PreprocessPass",
    "run_measured_pass",
    "SuperBatchPass",
    "needs_block_diagonal",
]
