"""Pre-processing pass: hoist frontier-invariant compute out of sampling.

Section 4.2: gSampler pre-computes variables that do not change across
mini-batches.  Two patterns are recognized:

1. an operator applied *directly to the base graph* produces a constant
   (FastGCN's node degrees, SEAL's PPR scores) — evaluate it once at
   compile time and feed the result in as a pre-computed input;
2. an edge-local operator applied to an *extracted subgraph* produces the
   same per-edge result as if applied to the whole graph — evaluate it on
   the whole graph once, then replace ``op(A[:, f])`` with ``M[:, f]``
   where ``M`` is the pre-computed matrix (the paper's LADIES example:
   ``M = A ** 2``).

Only position-independent edge ops (scalar/unary maps) are hoisted; a
broadcast against a per-frontier vector is not frontier-invariant.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT
from repro.ir.graph import DataFlowGraph, Node
from repro.ir.passes.base import Pass
from repro.sparse import kernels as K

#: Ops whose per-edge result does not depend on which frontiers were sliced.
_HOISTABLE = frozenset({"map_scalar", "map_unary"})


class PreprocessPass(Pass):
    """Evaluates frontier-invariant subgraphs at compile time.

    The pass owns the concrete input graph and a ``precomputed`` dict; the
    compiler hands both to the interpreter so pre-computed inputs resolve
    at run time with zero cost (their one-time cost is paid here and
    amortized over every subsequent mini-batch).
    """

    name = "preprocess"

    def __init__(self, graph: Matrix, precomputed: dict[str, object]) -> None:
        self.graph = graph
        self.precomputed = precomputed
        self._counter = 0

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        if self._hoist_graph_constants(ir):
            changed = True
        if self._hoist_sliced_maps(ir):
            changed = True
        return changed

    # ------------------------------------------------------------------
    def _fresh_name(self) -> str:
        name = f"pre_{self._counter}"
        self._counter += 1
        return name

    def _is_base_graph_node(self, ir: DataFlowGraph, node_id: int) -> bool:
        node = ir.node(node_id)
        meta = node.attrs.get("_meta")
        return (
            node.op == "input_graph"
            and meta is not None
            and getattr(meta, "is_base_graph", False)
        )

    # ------------------------------------------------------------------
    def _hoist_graph_constants(self, ir: DataFlowGraph) -> bool:
        """Pattern 1: reduce/map applied directly to the base graph."""
        changed = False
        for node in list(ir.nodes()):
            if node.node_id not in ir:
                continue
            if node.op not in _HOISTABLE and node.op != "reduce":
                continue
            if not self._is_base_graph_node(ir, node.inputs[0]):
                continue
            value = self._evaluate_on_graph(node, self.graph)
            name = self._fresh_name()
            self.precomputed[name] = value
            pre = ir.insert_before(
                node.node_id,
                "input_precomputed",
                (),
                {"name": name, "_meta": node.attrs.get("_meta")},
                name=name,
            )
            ir.replace_all_uses(node.node_id, pre.node_id)
            ir.remove_node(node.node_id)
            changed = True
        return changed

    def _hoist_sliced_maps(self, ir: DataFlowGraph) -> bool:
        """Pattern 2: ``map(slice(G, f))`` becomes ``slice(map(G), f)``."""
        changed = False
        # Cache hoisted graph transforms so e.g. two maps of A ** 2 share
        # one pre-computed matrix.
        hoisted: dict[tuple, int] = {}
        for node in list(ir.nodes()):
            if node.node_id not in ir or node.op not in _HOISTABLE:
                continue
            slice_node = ir.node(node.inputs[0])
            if slice_node.op not in ("slice_cols", "slice_rows"):
                continue
            if not self._is_base_graph_node(ir, slice_node.inputs[0]):
                continue
            key = (node.op, _attr_key(node))
            if key in hoisted:
                pre_id = hoisted[key]
            else:
                value = self._evaluate_on_graph(node, self.graph)
                name = self._fresh_name()
                self.precomputed[name] = value
                pre = ir.insert_before(
                    slice_node.node_id,
                    "input_precomputed",
                    (),
                    {
                        "name": name,
                        "_meta": ir.node(slice_node.inputs[0]).attrs.get("_meta"),
                    },
                    name=name,
                )
                pre_id = pre.node_id
                hoisted[key] = pre_id
            new_slice = ir.insert_before(
                node.node_id,
                slice_node.op,
                (pre_id, slice_node.inputs[1]),
                {"_meta": node.attrs.get("_meta")},
                name=f"{slice_node.op}_pre",
            )
            ir.replace_all_uses(node.node_id, new_slice.node_id)
            ir.remove_node(node.node_id)
            changed = True
        return changed

    # ------------------------------------------------------------------
    def _evaluate_on_graph(self, node: Node, graph: Matrix) -> object:
        """Run one hoisted operator on the concrete graph, uncharged."""
        storage = graph.any_storage()
        if node.op == "map_scalar":
            out = K.map_edges_scalar(
                storage,
                node.attrs["op"],
                node.attrs["scalar"],
                NULL_CONTEXT,
                reverse=node.attrs.get("reverse", False),
            )
            return Matrix(out, is_base_graph=True)
        if node.op == "map_unary":
            out = K.map_edges_unary(storage, node.attrs["op"], NULL_CONTEXT)
            return Matrix(out, is_base_graph=True)
        if node.op == "reduce":
            if node.attrs["axis"] == 0:
                return K.reduce_rows(storage, node.attrs["op"], NULL_CONTEXT)
            return K.reduce_cols(storage, node.attrs["op"], NULL_CONTEXT)
        raise AssertionError(f"unexpected hoisted op {node.op}")


def _attr_key(node: Node) -> tuple:
    return tuple(
        (k, v)
        for k, v in sorted(node.attrs.items())
        if k != "_meta" and not isinstance(v, np.ndarray)
    )


@dataclasses.dataclass
class PreprocessReport:
    """How many values were hoisted (for logging/tests)."""

    count: int
