"""Super-batch rewriting pass (Section 4.4).

Transforms a one-batch sampling IR into its super-batched form:

* a ``_batch_ptr`` input is added (boundaries of each mini-batch within
  the concatenated frontier array);
* if the program aggregates across rows (per-row reduces or a collective
  sample), base-graph column slices become :func:`sb_slice_cols` (block-
  diagonal row spaces) and ``collective_sample`` becomes the segmented
  ``sb_collective_sample`` — keeping batches independent, per the paper;
* purely node-wise programs (GraphSAGE, walks) need no rewriting at all:
  per-column operators are naturally batch-oblivious, so concatenation
  alone is correct and the pass only records that fact.

Programs that update model state per batch (PASS) are rejected upstream;
the paper likewise excludes model-driven algorithms from super-batching.
"""

from __future__ import annotations

from repro.ir.graph import DataFlowGraph
from repro.ir.passes.base import Pass

#: Ops that aggregate across the row dimension and thus would mix batches
#: if row spaces were shared.
_ROW_MIXING = frozenset({"collective_sample"})


def needs_block_diagonal(ir: DataFlowGraph) -> bool:
    """Whether any operator would mix rows across batches."""
    for node in ir.nodes():
        if node.op in _ROW_MIXING:
            return True
        if node.op == "reduce" and node.attrs.get("axis") == 0:
            return True
        if node.op == "fused_map_reduce" and node.attrs.get("reduce_axis") == 0:
            return True
        if node.op == "fused_extract_reduce" and node.attrs.get("axis") == 0:
            return True
    return False


class SuperBatchPass(Pass):
    """Rewrite the IR for super-batched execution."""

    name = "superbatch"

    def __init__(self) -> None:
        self.block_diagonal = False

    def run(self, ir: DataFlowGraph) -> bool:
        if any(n.op == "sb_batch_ptr" for n in ir.nodes()):
            return False  # already rewritten
        self.block_diagonal = needs_block_diagonal(ir)
        if not self.block_diagonal:
            # Concatenation alone is correct; nothing to rewrite.
            return False
        first = ir.nodes()[0]
        ptr = ir.insert_before(
            first.node_id, "sb_batch_ptr", (), {"name": "_batch_ptr"}, "_batch_ptr"
        )
        changed = False
        for node in list(ir.nodes()):
            if node.op == "slice_cols" and self._slices_base_graph(ir, node):
                node.op = "sb_slice_cols"
                node.inputs = (*node.inputs, ptr.node_id)
                changed = True
            elif node.op == "collective_sample":
                node.op = "sb_collective_sample"
                matrix_input = node.inputs[0]
                probs = node.inputs[1:] if node.attrs.get("has_probs") else ()
                node.inputs = (matrix_input, ptr.node_id, *probs)
                changed = True
            elif (
                node.op == "fused_extract_reduce"
                and node.attrs.get("axis") == 0
                and self._slices_base_graph(ir, node)
            ):
                node.op = "sb_fused_extract_reduce"
                node.inputs = (*node.inputs, ptr.node_id)
                changed = True
        # The pointer node was inserted first, so ordering still holds;
        # but if nothing was rewired, drop it again.
        if not changed:
            ir.remove_node(ptr.node_id)
        return changed

    def _slices_base_graph(self, ir: DataFlowGraph, node) -> bool:
        src = ir.node(node.inputs[0])
        meta = src.attrs.get("_meta")
        return src.op in ("input_graph", "input_precomputed") and (
            meta is not None and getattr(meta, "is_base_graph", False)
        )
