"""Standard cleanup passes: dead code elimination and CSE.

These are the conventional compiler passes the paper lists under "other
computation passes" (Section 4.2): DCE removes operator nodes whose
results are never consumed, and CSE merges pure nodes that compute the
same value.  Sampling operators are random draws, so CSE never merges
them even when structurally identical.
"""

from __future__ import annotations

import numpy as np

from repro.ir.graph import IMPURE_OPS, DataFlowGraph
from repro.ir.passes.base import Pass


class DeadCodeElimination(Pass):
    """Remove nodes with no users that are not graph outputs."""

    name = "dce"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        while True:
            dead = [
                n.node_id
                for n in ir.nodes()
                if ir.use_count(n.node_id) == 0 and n.node_id not in ir.outputs
            ]
            # Keep declared inputs: removing them would change the calling
            # convention of the compiled sampler.
            dead = [d for d in dead if d not in ir.input_ids]
            if not dead:
                return changed
            for node_id in dead:
                ir.remove_node(node_id)
            changed = True


class CommonSubexpressionElimination(Pass):
    """Merge structurally identical pure nodes."""

    name = "cse"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        seen: dict[tuple, int] = {}
        for node in ir.nodes():
            if node.op in IMPURE_OPS or node.op.startswith("input"):
                continue
            key = self._key(node)
            if key is None:
                continue
            if key in seen:
                ir.replace_all_uses(node.node_id, seen[key])
                changed = True
            else:
                seen[key] = node.node_id
        return changed

    def _key(self, node) -> tuple | None:
        parts: list[object] = [node.op, node.inputs]
        for name, value in sorted(node.attrs.items()):
            if name == "_meta":
                continue
            if isinstance(value, np.ndarray):
                parts.append((name, value.dtype.str, value.shape, value.tobytes()))
            elif isinstance(value, (str, int, float, bool, tuple, type(None))):
                parts.append((name, value))
            elif isinstance(value, list):
                try:
                    parts.append((name, _freeze_list(value)))
                except TypeError:
                    return None
            else:
                return None  # unhashable attribute: skip CSE for this node
        return tuple(parts)


def _freeze_list(items: list) -> tuple:
    out = []
    for item in items:
        if isinstance(item, dict):
            out.append(tuple(sorted((k, v) for k, v in item.items())))
        else:
            out.append(item)
    return tuple(out)
