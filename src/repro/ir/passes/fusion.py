"""Operator fusion passes (Section 4.2 of the paper).

Three rules, tailored to the ECSF structure of sampling programs:

* **Extract-Select fusion** — ``A[:, frontiers]`` immediately consumed by
  an (un-probed) ``individual_sample`` is replaced by a single fused
  kernel that samples straight out of the graph, never materializing the
  extracted subgraph (Figure 5a).  This is the dominant optimization for
  GraphSAGE-style algorithms.
* **Edge-Map fusion** — consecutive edge-map operators over the same
  topology collapse into one kernel (Figure 5b; the PASS attention
  chain).
* **Edge-MapReduce fusion** — an edge-map chain feeding an edge-reduce
  collapses into a reduce that maps on the fly (Figure 5c; the LADIES
  bias computation).
"""

from __future__ import annotations

from repro.ir.graph import DataFlowGraph, Node
from repro.ir.passes.base import Pass

#: Edge-map ops eligible for chain fusion.
_MAP_OPS = frozenset(
    {"map_scalar", "map_unary", "map_broadcast", "map_combine", "map_tscalar"}
)


class ExtractSelectFusion(Pass):
    """Fuse ``individual_sample(slice_cols(G, f))`` into one kernel.

    Applies when the sliced matrix has no other consumer, the sample uses
    no externally computed probabilities (uniform or the graph's own edge
    weights), and ``G`` is the base input graph — the exact conditions
    under which the subgraph is a pure intermediate.
    """

    name = "extract_select_fusion"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in list(ir.nodes()):
            if node.op != "individual_sample" or node.attrs.get("has_probs"):
                continue
            if node.node_id not in ir:
                continue
            src = ir.node(node.inputs[0])
            if src.op != "slice_cols":
                continue
            if ir.use_count(src.node_id) != 1:
                continue
            graph_id, frontier_id = src.inputs
            graph_node = ir.node(graph_id)
            meta = graph_node.attrs.get("_meta")
            if graph_node.op != "input_graph" or meta is None or not meta.is_base_graph:
                continue
            fused = ir.insert_before(
                src.node_id,
                "fused_extract_select",
                (graph_id, frontier_id),
                {
                    "k": node.attrs["k"],
                    "replace": node.attrs.get("replace", False),
                    "has_probs": False,
                    "_meta": node.attrs.get("_meta"),
                },
                name="fused_extract_select",
            )
            ir.replace_all_uses(node.node_id, fused.node_id)
            ir.remove_node(node.node_id)
            ir.remove_node(src.node_id)
            changed = True
        return changed


def _step_of(node: Node, input_pos_of: dict[int, int]) -> dict | None:
    """Describe one map node as a fused-chain step, or None if ineligible."""
    if node.op == "map_scalar":
        if node.attrs.get("reverse"):
            return None  # reversed scalar ops stay standalone
        return {
            "op": node.attrs["op"],
            "operand_kind": "scalar",
            "value": node.attrs["scalar"],
            "axis": None,
        }
    if node.op == "map_unary":
        return {"op": node.attrs["op"], "operand_kind": "none", "axis": None}
    if node.op == "map_broadcast":
        return {
            "op": node.attrs["op"],
            "operand_kind": "tensor",
            "input_pos": input_pos_of[node.inputs[1]],
            "axis": node.attrs["axis"],
        }
    if node.op == "map_combine":
        return {
            "op": node.attrs["op"],
            "operand_kind": "matrix",
            "input_pos": input_pos_of[node.inputs[1]],
            "axis": -1,
        }
    if node.op == "map_tscalar":
        return {
            "op": node.attrs["op"],
            "operand_kind": "tensor_scalar",
            "input_pos": input_pos_of[node.inputs[1]],
            "index": node.attrs["index"],
            "axis": None,
        }
    return None


class EdgeMapFusion(Pass):
    """Collapse chains of >= 2 edge-map operators into one fused kernel."""

    name = "edge_map_fusion"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in list(ir.nodes()):
            if node.node_id not in ir or node.op not in _MAP_OPS:
                continue
            chain = self._chain_ending_at(ir, node)
            if len(chain) < 2:
                continue
            if self._build_fused_chain(ir, chain):
                changed = True
        return changed

    def _chain_ending_at(self, ir: DataFlowGraph, last: Node) -> list[Node]:
        """Longest chain of single-use map ops terminating at ``last``."""
        # Only start from chain *tails*: nodes whose (single) user is not
        # itself a map op extending the chain.
        users = ir.users(last.node_id)
        if len(users) == 1 and users[0].op in _MAP_OPS and users[0].inputs[0] == last.node_id:
            return []  # not a tail; handled when we reach the tail
        chain = [last]
        cur = last
        while True:
            prev_id = cur.inputs[0]
            prev = ir.node(prev_id)
            if prev.op not in _MAP_OPS:
                break
            if ir.use_count(prev_id) != 1:
                break
            chain.append(prev)
            cur = prev
        chain.reverse()
        return chain

    def _build_fused_chain(self, ir: DataFlowGraph, chain: list[Node]) -> bool:
        base_input = chain[0].inputs[0]
        inputs = [base_input]
        input_pos_of: dict[int, int] = {base_input: 0}
        steps = []
        for node in chain:
            for dep in node.inputs[1:]:
                if dep not in input_pos_of:
                    input_pos_of[dep] = len(inputs)
                    inputs.append(dep)
            step = _step_of(node, input_pos_of)
            if step is None:
                return False
            steps.append(step)
        tail = chain[-1]
        # Insert at the *tail*: operand inputs of later chain links may be
        # defined after the chain head, but all of them precede the tail.
        fused = ir.insert_before(
            tail.node_id,
            "fused_map_chain",
            tuple(inputs),
            {"steps": steps, "_meta": tail.attrs.get("_meta")},
            name="fused_map_chain",
        )
        ir.replace_all_uses(tail.node_id, fused.node_id)
        for node in reversed(chain):
            ir.remove_node(node.node_id)
        return True


class ExtractReduceFusion(Pass):
    """Fuse ``reduce(slice_cols(G, f))`` into one extract-reduce kernel.

    This is the payoff of the pre-processing pass on LADIES: once
    ``sub_A ** 2`` becomes ``M[:, f]``, the bias computation is a reduce
    over a freshly sliced matrix whose only consumer is the reduce — so
    the slice never needs to exist.
    """

    name = "extract_reduce_fusion"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in list(ir.nodes()):
            if node.node_id not in ir or node.op != "reduce":
                continue
            if node.attrs.get("op") != "sum":
                continue  # the fused kernel implements sums only
            src = ir.node(node.inputs[0])
            if src.op != "slice_cols" or ir.use_count(src.node_id) != 1:
                continue
            graph_node = ir.node(src.inputs[0])
            meta = graph_node.attrs.get("_meta")
            if graph_node.op not in ("input_graph", "input_precomputed"):
                continue
            if meta is None or not meta.is_base_graph:
                continue
            fused = ir.insert_before(
                src.node_id,
                "fused_extract_reduce",
                src.inputs,
                {
                    "op": node.attrs["op"],
                    "axis": node.attrs["axis"],
                    "_meta": node.attrs.get("_meta"),
                },
                name="fused_extract_reduce",
            )
            ir.replace_all_uses(node.node_id, fused.node_id)
            ir.remove_node(node.node_id)
            ir.remove_node(src.node_id)
            changed = True
        return changed


class EdgeMapReduceFusion(Pass):
    """Fuse a map (or fused map chain) feeding a reduce into one kernel."""

    name = "edge_mapreduce_fusion"

    def run(self, ir: DataFlowGraph) -> bool:
        changed = False
        for node in list(ir.nodes()):
            if node.node_id not in ir or node.op != "reduce":
                continue
            src = ir.node(node.inputs[0])
            # When the mapped matrix has other consumers it must still be
            # materialized, but the reduce can recompute the map inside
            # its own kernel instead of re-reading the materialized edge
            # values — a memory-traffic win either way.
            src_has_other_users = ir.use_count(src.node_id) != 1
            if src.op == "fused_map_chain":
                steps = src.attrs["steps"]
                inputs = src.inputs
            elif src.op in _MAP_OPS:
                input_pos_of = {src.inputs[0]: 0}
                extra = list(src.inputs[1:])
                for i, dep in enumerate(extra):
                    input_pos_of[dep] = 1 + i
                step = _step_of(src, input_pos_of)
                if step is None:
                    continue
                steps = [step]
                inputs = src.inputs
            else:
                continue
            fused = ir.insert_before(
                src.node_id,
                "fused_map_reduce",
                inputs,
                {
                    "steps": steps,
                    "reduce_op": node.attrs["op"],
                    "reduce_axis": node.attrs["axis"],
                    "_meta": node.attrs.get("_meta"),
                },
                name="fused_map_reduce",
            )
            ir.replace_all_uses(node.node_id, fused.node_id)
            ir.remove_node(node.node_id)
            if not src_has_other_users:
                ir.remove_node(src.node_id)
            changed = True
        return changed
