"""Pass infrastructure: the base class and the pass manager.

gSampler applies three families of IR passes (Section 4.1): computation
optimizations (fusion, pre-processing, DCE, CSE), data-layout selection,
and super-batch rewriting.  A :class:`PassManager` runs them in a fixed
order; each pass mutates the graph in place and reports whether it changed
anything, so the manager can re-run cleanup passes to a fixpoint.
"""

from __future__ import annotations

import abc
import dataclasses

from repro.ir.graph import DataFlowGraph


class Pass(abc.ABC):
    """One IR-to-IR transformation."""

    #: Human-readable pass name for reports.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, ir: DataFlowGraph) -> bool:
        """Transform ``ir`` in place; return True if anything changed."""


@dataclasses.dataclass
class PassReport:
    """What the pass manager did, for logs and the ablation benchmarks."""

    applied: list[str]
    iterations: int


class PassManager:
    """Runs a pipeline of passes, iterating cleanup passes to fixpoint.

    With ``debug=True`` every pass transition is additionally vetted by
    the full IR invariant checker (:mod:`repro.verify.invariants`):
    topological order, layout legality, operand-kind consistency, and
    super-batch pointer discipline.  A buggy pass then fails immediately,
    with the offending pass named in the error, instead of producing a
    silently skewed sampler.  The default (``debug=False``) keeps only
    the cheap structural ``validate`` on the hot compile path.
    """

    def __init__(
        self,
        passes: list[Pass],
        *,
        max_iterations: int = 8,
        debug: bool = False,
    ) -> None:
        self.passes = passes
        self.max_iterations = max_iterations
        self.debug = debug

    def _check(self, ir: DataFlowGraph, stage: str) -> None:
        if self.debug:
            from repro.verify.invariants import check_invariants

            check_invariants(ir, stage=stage)
        else:
            ir.validate()

    def run(self, ir: DataFlowGraph) -> PassReport:
        applied: list[str] = []
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            changed = False
            for p in self.passes:
                if p.run(ir):
                    applied.append(p.name)
                    changed = True
                self._check(ir, p.name)
            if not changed:
                break
        return PassReport(applied=applied, iterations=iterations)
