"""Pass infrastructure: the base class and the pass manager.

gSampler applies three families of IR passes (Section 4.1): computation
optimizations (fusion, pre-processing, DCE, CSE), data-layout selection,
and super-batch rewriting.  A :class:`PassManager` runs them in a fixed
order; each pass mutates the graph in place and reports whether it changed
anything, so the manager can re-run cleanup passes to a fixpoint.

Every pass execution is timed and measured (host wall seconds, IR
node/edge deltas) into a :class:`PassStat`; when a profiler is active
(:func:`repro.profile.spans.active_profiler`) each execution is also
recorded as a ``pass:<name>`` span nested under the surrounding
``compile`` span, so compile-time cost is attributable per pass.
"""

from __future__ import annotations

import abc
import dataclasses
import time

from repro.ir.graph import DataFlowGraph
from repro.profile.spans import active_profiler


class Pass(abc.ABC):
    """One IR-to-IR transformation."""

    #: Human-readable pass name for reports.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, ir: DataFlowGraph) -> bool:
        """Transform ``ir`` in place; return True if anything changed."""


def _edge_count(ir: DataFlowGraph) -> int:
    """Def-use edges in the IR (operand references across all nodes)."""
    return sum(len(node.inputs) for node in ir.nodes())


@dataclasses.dataclass
class PassStat:
    """One timed execution of one pass over the IR."""

    name: str
    iteration: int
    changed: bool
    wall_seconds: float
    nodes_before: int
    nodes_after: int
    edges_before: int
    edges_after: int

    @property
    def rewrites(self) -> int:
        """A coarse rewrite count: IR structure delta, floored at the
        changed flag (a pass can rewrite in place without resizing)."""
        structural = abs(self.nodes_after - self.nodes_before) + abs(
            self.edges_after - self.edges_before
        )
        return max(structural, 1 if self.changed else 0)


@dataclasses.dataclass
class PassReport:
    """What the pass manager did, for logs and the ablation benchmarks."""

    applied: list[str]
    iterations: int
    #: One entry per pass execution (every pass, every fixpoint
    #: iteration, including no-op runs), in execution order.
    stats: list[PassStat] = dataclasses.field(default_factory=list)

    @property
    def wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.stats)

    def rewrite_counts(self) -> dict[str, int]:
        """Total rewrites attributed to each pass name."""
        totals: dict[str, int] = {}
        for stat in self.stats:
            if stat.changed:
                totals[stat.name] = totals.get(stat.name, 0) + stat.rewrites
        return totals


def run_measured_pass(
    p: Pass, ir: DataFlowGraph, *, iteration: int = 1
) -> PassStat:
    """Run one pass, producing its :class:`PassStat` and profiler span."""
    profiler = active_profiler()
    nodes_before = len(ir)
    edges_before = _edge_count(ir)
    if profiler is not None:
        profiler.begin(f"pass:{p.name}", "pass", iteration=iteration)
    start = time.perf_counter()
    changed = p.run(ir)
    wall = time.perf_counter() - start
    stat = PassStat(
        name=p.name,
        iteration=iteration,
        changed=changed,
        wall_seconds=wall,
        nodes_before=nodes_before,
        nodes_after=len(ir),
        edges_before=edges_before,
        edges_after=_edge_count(ir),
    )
    if profiler is not None:
        profiler.end(
            changed=changed,
            nodes_before=stat.nodes_before,
            nodes_after=stat.nodes_after,
            edges_before=stat.edges_before,
            edges_after=stat.edges_after,
            rewrites=stat.rewrites,
        )
    return stat


class PassManager:
    """Runs a pipeline of passes, iterating cleanup passes to fixpoint.

    With ``debug=True`` every pass transition is additionally vetted by
    the full IR invariant checker (:mod:`repro.verify.invariants`):
    topological order, layout legality, operand-kind consistency, and
    super-batch pointer discipline.  A buggy pass then fails immediately,
    with the offending pass named in the error, instead of producing a
    silently skewed sampler.  The default (``debug=False``) keeps only
    the cheap structural ``validate`` on the hot compile path.
    """

    def __init__(
        self,
        passes: list[Pass],
        *,
        max_iterations: int = 8,
        debug: bool = False,
    ) -> None:
        self.passes = passes
        self.max_iterations = max_iterations
        self.debug = debug

    def _check(self, ir: DataFlowGraph, stage: str) -> None:
        if self.debug:
            from repro.verify.invariants import check_invariants

            check_invariants(ir, stage=stage)
        else:
            ir.validate()

    def run(self, ir: DataFlowGraph) -> PassReport:
        applied: list[str] = []
        stats: list[PassStat] = []
        iterations = 0
        for _ in range(self.max_iterations):
            iterations += 1
            changed = False
            for p in self.passes:
                stat = run_measured_pass(p, ir, iteration=iterations)
                stats.append(stat)
                if stat.changed:
                    applied.append(p.name)
                    changed = True
                self._check(ir, p.name)
            if not changed:
                break
        return PassReport(applied=applied, iterations=iterations, stats=stats)
