"""IR interpreter: executes an optimized data-flow graph on the device.

The interpreter walks the IR in topological order, executing each node
with the sparse/sampling kernels, honoring the layout decisions stamped by
the layout-selection pass (``node.layout`` / ``node.compact_rows``), and
accounting every intermediate's device memory in the context's pool —
freeing it after its last use, the way a stream-ordered caching allocator
would.  This is where fusion's memory saving and super-batching's
occupancy gain become measurable.
"""

from __future__ import annotations

import numpy as np

from repro.core import sampling
from repro.core.matrix import Matrix
from repro.device import ExecutionContext
from repro.errors import PassError
from repro.ir.graph import DataFlowGraph, Node
from repro.sparse import kernels as K


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


_T_BINOPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "pow": np.power,
}

_T_UNOPS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "softmax": _softmax,
    "exp": np.exp,
    "log": np.log,
}


class Interpreter:
    """Executes one IR graph per call, with per-run RNG and inputs."""

    def __init__(
        self,
        ir: DataFlowGraph,
        ctx: ExecutionContext,
        *,
        precomputed: dict[str, object] | None = None,
    ) -> None:
        self.ir = ir
        self.ctx = ctx
        self.precomputed = precomputed or {}
        self._last_use = self._compute_last_uses()

    def _compute_last_uses(self) -> dict[int, int]:
        """Map node id -> id of the last node that consumes it.

        Values still referenced by graph outputs never expire.
        """
        last: dict[int, int] = {}
        for node in self.ir.nodes():
            for dep in node.inputs:
                last[dep] = node.node_id
        for out in self.ir.outputs:
            last[out] = -1  # sentinel: lives to the end
        return last

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: dict[str, object],
        rng: np.random.Generator,
    ) -> list[object]:
        """Execute the graph; returns output values in order."""
        env: dict[int, object] = {}
        handles: dict[int, object] = {}
        for node in self.ir.nodes():
            value = self._execute(node, env, inputs, rng)
            env[node.node_id] = value
            self._account_alloc(node, value, handles)
            self._release_dead(node, env, handles)
        outputs = [env[i] for i in self.ir.outputs]
        for handle in handles.values():
            self.ctx.memory.free(handle)  # type: ignore[arg-type]
        return outputs

    def _account_alloc(
        self, node: Node, value: object, handles: dict[int, object]
    ) -> None:
        if node.op.startswith("input") or node.op == "const":
            return
        nbytes = _value_bytes(value)
        if nbytes > 0:
            handles[node.node_id] = self.ctx.memory.alloc(nbytes, tag=node.op)

    def _release_dead(
        self, node: Node, env: dict[int, object], handles: dict[int, object]
    ) -> None:
        for dep in node.inputs:
            if self._last_use.get(dep) == node.node_id and dep in handles:
                self.ctx.memory.free(handles.pop(dep))  # type: ignore[arg-type]
                env.pop(dep, None)

    # ------------------------------------------------------------------
    def _execute(
        self,
        node: Node,
        env: dict[int, object],
        inputs: dict[str, object],
        rng: np.random.Generator,
    ) -> object:
        args = [env[i] for i in node.inputs]
        handler = getattr(self, f"_op_{node.op}", None)
        if handler is None:
            raise PassError(f"interpreter has no handler for op {node.op!r}")
        value = handler(node, args, inputs, rng)
        value = self._apply_layout(node, value)
        return value

    def _apply_layout(self, node: Node, value: object) -> object:
        if not isinstance(value, Matrix):
            return value
        if node.layout is not None and node.layout not in value.available_layouts:
            storage = value.get(node.layout)
            value = Matrix(
                storage,
                row_ids=value.row_ids,
                col_ids=value.col_ids,
                ctx=self.ctx,
            )
        if node.compact_rows and value.row_ids is None:
            value = value.compact(axis=0)
        return value

    # ------------------------------------------------------------------
    # Inputs and constants
    # ------------------------------------------------------------------
    def _op_input_graph(self, node, args, inputs, rng):
        value = inputs[node.attrs["name"]]
        if not isinstance(value, Matrix):
            raise PassError(f"input {node.attrs['name']!r} must be a Matrix")
        return _with_ctx(value, self.ctx)

    def _op_input_tensor(self, node, args, inputs, rng):
        return np.asarray(inputs[node.attrs["name"]])

    def _op_input_precomputed(self, node, args, inputs, rng):
        value = self.precomputed[node.attrs["name"]]
        if isinstance(value, Matrix):
            return _with_ctx(value, self.ctx)
        return value

    def _op_const(self, node, args, inputs, rng):
        return node.attrs["_value"]

    # ------------------------------------------------------------------
    # Extract
    # ------------------------------------------------------------------
    def _op_slice_cols(self, node, args, inputs, rng):
        matrix, idx = args
        return matrix.slice_cols(np.asarray(idx))

    def _op_slice_rows(self, node, args, inputs, rng):
        matrix, idx = args
        return matrix.slice_rows(np.asarray(idx))

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def _op_map_scalar(self, node, args, inputs, rng):
        (matrix,) = args
        out = K.map_edges_scalar(
            matrix.any_storage(),
            node.attrs["op"],
            node.attrs["scalar"],
            self.ctx,
            reverse=node.attrs.get("reverse", False),
        )
        return matrix._spawn(out)

    def _op_map_unary(self, node, args, inputs, rng):
        (matrix,) = args
        out = K.map_edges_unary(matrix.any_storage(), node.attrs["op"], self.ctx)
        return matrix._spawn(out)

    def _op_map_combine(self, node, args, inputs, rng):
        a, b = args
        out = K.map_edges_combine(
            a.any_storage(), node.attrs["op"], b.any_storage(), self.ctx
        )
        return a._spawn(out)

    def _op_map_tscalar(self, node, args, inputs, rng):
        matrix, tensor = args
        value = float(np.asarray(tensor).reshape(-1)[node.attrs["index"]])
        out = K.map_edges_scalar(
            matrix.any_storage(), node.attrs["op"], value, self.ctx
        )
        return matrix._spawn(out)

    def _op_map_broadcast(self, node, args, inputs, rng):
        matrix, vector = args
        out = K.map_edges_broadcast(
            matrix.any_storage(),
            node.attrs["op"],
            np.asarray(vector),
            node.attrs["axis"],
            self.ctx,
        )
        return matrix._spawn(out)

    def _op_reduce(self, node, args, inputs, rng):
        (matrix,) = args
        return matrix._reduce(node.attrs["op"], node.attrs["axis"], None)

    def _op_spmm(self, node, args, inputs, rng):
        matrix, dense = args
        return matrix @ np.asarray(dense)

    def _op_sddmm(self, node, args, inputs, rng):
        matrix, rf, cf = args
        return matrix.sddmm(np.asarray(rf), np.asarray(cf))

    # ------------------------------------------------------------------
    # Select
    # ------------------------------------------------------------------
    def _op_individual_sample(self, node, args, inputs, rng):
        matrix = args[0]
        probs = args[1] if node.attrs.get("has_probs") else None
        return matrix.individual_sample(
            node.attrs["k"],
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
        )

    def _op_labor_sample(self, node, args, inputs, rng):
        matrix = args[0]
        return matrix.labor_sample(node.attrs["k"], rng=rng)

    def _op_collective_sample(self, node, args, inputs, rng):
        matrix = args[0]
        probs = np.asarray(args[1]) if node.attrs.get("has_probs") else None
        return matrix.collective_sample(
            node.attrs["k"],
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def _op_row(self, node, args, inputs, rng):
        return args[0].row()

    def _op_column(self, node, args, inputs, rng):
        return args[0].column()

    def _op_compact(self, node, args, inputs, rng):
        return args[0].compact(node.attrs["axis"])

    # ------------------------------------------------------------------
    # Fused operators (inserted by passes)
    # ------------------------------------------------------------------
    def _op_fused_extract_select(self, node, args, inputs, rng):
        graph, frontiers = args[0], np.asarray(args[1])
        probs = np.asarray(args[2]) if node.attrs.get("has_probs") else None
        out = sampling.fused_extract_individual_sample(
            graph.get("csc"),
            frontiers,
            node.attrs["k"],
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
            ctx=self.ctx,
        )
        return Matrix(out, col_ids=frontiers, ctx=self.ctx)

    def _fused_steps(self, node, args) -> list[tuple[str, object, int | None]]:
        steps = []
        for desc in node.attrs["steps"]:
            kind = desc["operand_kind"]
            if kind == "none":
                steps.append((desc["op"], None, None))
            elif kind == "scalar":
                steps.append((desc["op"], desc["value"], None))
            elif kind == "tensor":
                steps.append(
                    (desc["op"], np.asarray(args[desc["input_pos"]]), desc["axis"])
                )
            elif kind == "matrix":
                steps.append((desc["op"], args[desc["input_pos"]].any_storage(), -1))
            elif kind == "tensor_scalar":
                value = float(
                    np.asarray(args[desc["input_pos"]]).reshape(-1)[desc["index"]]
                )
                steps.append((desc["op"], value, None))
            else:
                raise PassError(f"unknown fused operand kind {kind!r}")
        return steps

    def _op_fused_extract_reduce(self, node, args, inputs, rng):
        graph, frontiers = args[0], np.asarray(args[1])
        return sampling.fused_extract_reduce(
            graph.get("csc"),
            frontiers,
            node.attrs["op"],
            node.attrs["axis"],
            ctx=self.ctx,
        )

    def _op_sb_fused_extract_reduce(self, node, args, inputs, rng):
        from repro.ir import superbatch_ops

        graph, frontiers, batch_ptr = args
        return superbatch_ops.sb_fused_extract_reduce(
            graph,
            np.asarray(frontiers),
            np.asarray(batch_ptr),
            node.attrs["op"],
            node.attrs["axis"],
            self.ctx,
        )

    def _op_fused_map_chain(self, node, args, inputs, rng):
        matrix = args[0]
        steps = self._fused_steps(node, args)
        out = K.fused_map_chain(matrix.any_storage(), steps, self.ctx)
        return matrix._spawn(out)

    def _op_fused_map_reduce(self, node, args, inputs, rng):
        matrix = args[0]
        steps = self._fused_steps(node, args)
        return K.fused_map_reduce(
            matrix.any_storage(),
            steps,
            node.attrs["reduce_op"],
            node.attrs["reduce_axis"],
            self.ctx,
        )

    # ------------------------------------------------------------------
    # Super-batch operators
    # ------------------------------------------------------------------
    def _op_sb_slice_cols(self, node, args, inputs, rng):
        from repro.ir import superbatch_ops

        matrix, frontiers, batch_ptr = args
        return superbatch_ops.sb_slice_cols(
            matrix, np.asarray(frontiers), np.asarray(batch_ptr), self.ctx
        )

    def _op_sb_collective_sample(self, node, args, inputs, rng):
        from repro.ir import superbatch_ops

        matrix = args[0]
        batch_ptr = np.asarray(args[1])
        probs = np.asarray(args[2]) if node.attrs.get("has_probs") else None
        return superbatch_ops.sb_collective_sample(
            matrix,
            node.attrs["k"],
            batch_ptr,
            probs,
            replace=node.attrs.get("replace", False),
            rng=rng,
            ctx=self.ctx,
        )

    def _op_sb_batch_ptr(self, node, args, inputs, rng):
        return np.asarray(inputs["_batch_ptr"])

    # ------------------------------------------------------------------
    # Dense tensor operators
    # ------------------------------------------------------------------
    def _op_t_binop(self, node, args, inputs, rng):
        a, b = (np.asarray(x) for x in args)
        # Super-batched programs put per-(batch, node) vectors (length
        # B*M) next to batch-invariant per-node vectors (length M); the
        # block-diagonal semantics is that the invariant vector repeats
        # per batch, so tile the shorter operand when lengths divide.
        if a.ndim == 1 and b.ndim == 1 and len(a) != len(b):
            if len(b) and len(a) % len(b) == 0:
                b = np.tile(b, len(a) // len(b))
            elif len(a) and len(b) % len(a) == 0:
                a = np.tile(a, len(b) // len(a))
        return _T_BINOPS[node.attrs["op"]](a, b)

    def _op_t_binop_scalar(self, node, args, inputs, rng):
        (a,) = args
        a = np.asarray(a)
        scalar = node.attrs["scalar"]
        fn = _T_BINOPS[node.attrs["op"]]
        return fn(scalar, a) if node.attrs.get("reverse") else fn(a, scalar)

    def _op_t_unop(self, node, args, inputs, rng):
        return _T_UNOPS[node.attrs["op"]](np.asarray(args[0]))

    def _op_t_sum(self, node, args, inputs, rng):
        return np.asarray(args[0]).sum()

    def _op_t_index(self, node, args, inputs, rng):
        base, idx = args
        return np.asarray(base)[np.asarray(idx)]

    def _op_t_matmul(self, node, args, inputs, rng):
        a, b = (np.asarray(x) for x in args)
        flops = 2.0 * a.size * (b.shape[-1] if b.ndim > 1 else 1)
        self.ctx.record(
            "dense_matmul",
            bytes_read=a.nbytes + b.nbytes,
            bytes_written=a.nbytes,
            flops=flops,
            tasks=max(a.shape[0], 1),
        )
        return a @ b


def _with_ctx(matrix: Matrix, ctx: ExecutionContext) -> Matrix:
    """Rebind a matrix to this run's context without copying storage."""
    clone = Matrix.__new__(Matrix)
    clone._storages = matrix._storages
    clone.shape = matrix.shape
    clone.row_ids = matrix.row_ids
    clone.col_ids = matrix.col_ids
    clone.ctx = ctx
    clone.is_base_graph = matrix.is_base_graph
    return clone


def _value_bytes(value: object) -> int:
    if isinstance(value, Matrix):
        return value.nbytes()
    if isinstance(value, np.ndarray):
        return value.nbytes
    return 0
