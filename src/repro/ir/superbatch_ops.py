"""Segmented (super-batch) operators.

Super-batch sampling (Section 4.4) runs several independent mini-batches
through one kernel launch sequence.  Correctness requires that batches do
not interfere, which gSampler guarantees by giving each mini-batch its own
row-id space: the extracted per-batch matrices are laid out as blocks of a
block-diagonal matrix, i.e. batch ``b``'s rows live in
``[b * M, (b + 1) * M)`` where ``M`` is the graph's node count.  Compute
operators then work unchanged (each batch's rows are disjoint), and only
the select step needs dedicated *segmented* variants — exactly the
division of labour the paper chooses ("a few dedicated super-batch
operators for the extract and select steps ... construct large batch
input for the compute operators").
"""

from __future__ import annotations

import numpy as np

from repro.core import random as rnd
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import ShapeError
from repro.sparse import CSC, INDEX_DTYPE
from repro.sparse.formats import gather_ranges

_ITEM = 8
_VAL = 4


def batch_of_columns(batch_ptr: np.ndarray, num_cols: int) -> np.ndarray:
    """Batch index of every column given the batch boundary pointer."""
    if batch_ptr[-1] != num_cols:
        raise ShapeError("batch_ptr must end at the total column count")
    return (
        np.searchsorted(batch_ptr, np.arange(num_cols), side="right") - 1
    ).astype(INDEX_DTYPE)


def sb_slice_cols(
    matrix: Matrix,
    frontiers: np.ndarray,
    batch_ptr: np.ndarray,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> Matrix:
    """Block-diagonal extract: slice all batches' frontiers in one launch.

    The output has shape ``(B * M, T_total)`` with batch ``b``'s edges
    offset into row block ``b`` — one kernel launch covering what eager
    execution would issue as ``B`` separate slices.
    """
    num_batches = len(batch_ptr) - 1
    csc = matrix.get("csc")
    starts = csc.indptr[frontiers]
    lengths = csc.indptr[frontiers + 1] - starts
    flat = gather_ranges(starts, lengths)
    indptr = np.zeros(len(frontiers) + 1, dtype=INDEX_DTYPE)
    np.cumsum(lengths, out=indptr[1:])
    col_batch = batch_of_columns(batch_ptr, len(frontiers))
    edge_batch = np.repeat(col_batch, lengths)
    rows = csc.rows[flat] + edge_batch * matrix.shape[0]
    out = CSC(
        indptr=indptr,
        rows=rows,
        values=None if csc.values is None else csc.values[flat],
        shape=(num_batches * matrix.shape[0], len(frontiers)),
        edge_ids=flat if csc.edge_ids is None else csc.edge_ids[flat],
    )
    read = len(frontiers) * 2 * _ITEM + out.nnz * (_ITEM + _VAL)
    ctx.record(
        "sb_slice_cols",
        bytes_read=read,
        bytes_written=out.nbytes(),
        flops=out.nnz * 2.0,
        tasks=max(out.nnz, 1),  # edge-parallel gather
        graph_bytes=read if matrix.is_base_graph else 0.0,
    )
    return Matrix(out, col_ids=np.asarray(frontiers, dtype=INDEX_DTYPE), ctx=ctx)


def sb_fused_extract_reduce(
    matrix: Matrix,
    frontiers: np.ndarray,
    batch_ptr: np.ndarray,
    op: str,
    axis: int,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> np.ndarray:
    """Super-batched Extract-Reduce fusion.

    Per-row reductions must not mix batches, so batch ``b``'s
    contributions land in row block ``b`` of a ``B * M`` output vector —
    the vector analogue of the block-diagonal matrix construction.
    """
    if op != "sum":
        raise ShapeError(f"fused extract-reduce supports sum, got {op!r}")
    csc = matrix.get("csc")
    frontiers = np.asarray(frontiers, dtype=INDEX_DTYPE)
    num_batches = len(batch_ptr) - 1
    starts = csc.indptr[frontiers]
    lengths = csc.indptr[frontiers + 1] - starts
    flat = gather_ranges(starts, lengths)
    vals = (
        np.ones(len(flat), dtype=np.float64)
        if csc.values is None
        else csc.values[flat].astype(np.float64)
    )
    if axis != 0:
        raise ShapeError("super-batched extract-reduce handles axis=0 only")
    col_batch = batch_of_columns(batch_ptr, len(frontiers))
    edge_batch = np.repeat(col_batch, lengths)
    offset_rows = csc.rows[flat] + edge_batch * matrix.shape[0]
    out = np.bincount(
        offset_rows, weights=vals, minlength=num_batches * matrix.shape[0]
    ).astype(np.float32)
    read = len(frontiers) * 2 * _ITEM + len(flat) * (_ITEM + _VAL)
    ctx.record(
        "sb_fused_extract_reduce",
        bytes_read=read,
        bytes_written=out.nbytes,
        flops=float(len(flat)) * 2.0,
        tasks=max(len(flat), 1),
        graph_bytes=read if matrix.is_base_graph else 0.0,
    )
    return out


def sb_collective_sample(
    matrix: Matrix,
    k: int,
    batch_ptr: np.ndarray,
    node_probs: np.ndarray | None = None,
    *,
    replace: bool = False,
    rng: np.random.Generator | None = None,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> Matrix:
    """Segmented collective sample: ``k`` row nodes per batch, jointly.

    ``matrix`` must be in block-diagonal row space (from
    :func:`sb_slice_cols`); row block ``b`` is segment ``b``.  Sampling is
    independent per segment, matching the paper's ``segmented collective
    sample`` replacement operator.
    """
    rng = rng if rng is not None else rnd.new_rng()
    num_batches = len(batch_ptr) - 1
    csc = matrix.get("csc")
    total_rows = csc.shape[0]
    if total_rows % num_batches != 0:
        raise ShapeError(
            f"row space {total_rows} is not divisible into {num_batches} batches"
        )
    rows_per_batch = total_rows // num_batches
    if node_probs is None:
        from repro.sparse import reduce_rows

        node_probs = reduce_rows(csc, "sum", ctx).astype(np.float64)
    else:
        node_probs = np.asarray(node_probs, dtype=np.float64)
        if node_probs.shape == (rows_per_batch,):
            # Batch-invariant probs (e.g. hoisted base-graph degrees or
            # learned per-node scores): lift into block-diagonal row
            # space by repeating the vector once per segment.
            node_probs = np.tile(node_probs, num_batches)
        if node_probs.shape != (total_rows,):
            raise ShapeError(
                f"node_probs shape {node_probs.shape} != rows ({total_rows},)"
            )
    # One exponential race across all rows, k winners per batch segment.
    keys = rnd.exponential_race_keys(node_probs, rng)
    seg_ptr = np.arange(num_batches + 1, dtype=INDEX_DTYPE) * rows_per_batch
    selected = rnd.segmented_race_select(keys, seg_ptr, k)
    selected = np.sort(selected).astype(INDEX_DTYPE)

    from repro.core.sampling import _restrict_rows_csc

    sub = _restrict_rows_csc(csc, selected)
    ctx.record(
        "sb_collective_sample",
        bytes_read=node_probs.nbytes
        + csc.nnz * (_ITEM + (_VAL if csc.values is not None else 0)),
        bytes_written=sub.nbytes() + selected.nbytes,
        flops=total_rows + csc.nnz,
        tasks=max(csc.nnz, 1),
    )
    # Internal row structure stays in block-diagonal space (that is what
    # keeps batches independent), but the *external* row ids fold back to
    # original node ids so downstream per-node indexing (e.g. the LADIES
    # and FastGCN debias steps) sees the same id space as eager runs.
    row_ids = (
        selected % rows_per_batch
        if matrix.row_ids is None
        else matrix.row_ids[selected]
    )
    return Matrix(sub, row_ids=row_ids, col_ids=matrix.col_ids, ctx=ctx)


def split_sample(
    matrix: Matrix,
    batch_ptr: np.ndarray,
    num_graph_rows: int,
    ctx: ExecutionContext = NULL_CONTEXT,
) -> list[Matrix]:
    """Split a super-batched sample back into per-batch matrices.

    Because the merged sample's columns are grouped by batch, each piece
    is a *contiguous segment* of the CSC arrays — splitting is mostly
    pointer arithmetic plus a per-piece row renumbering, charged as one
    lightweight kernel over the piece's own edges (not a full generic
    slice + compaction, which would eat the batching gains back).
    """
    csc = matrix.get("csc")
    out: list[Matrix] = []
    total_edges = 0
    for b in range(len(batch_ptr) - 1):
        lo, hi = int(batch_ptr[b]), int(batch_ptr[b + 1])
        e_lo, e_hi = int(csc.indptr[lo]), int(csc.indptr[hi])
        rows_b = csc.rows[e_lo:e_hi]
        uniq, inv = np.unique(rows_b, return_inverse=True)
        piece_csc = CSC(
            indptr=csc.indptr[lo : hi + 1] - e_lo,
            rows=inv.astype(INDEX_DTYPE),
            values=None if csc.values is None else csc.values[e_lo:e_hi],
            shape=(len(uniq), hi - lo),
            edge_ids=None if csc.edge_ids is None else csc.edge_ids[e_lo:e_hi],
        )
        merged_row_ids = (
            uniq if matrix.row_ids is None else matrix.row_ids[uniq]
        )
        piece_col_ids = (
            np.arange(lo, hi, dtype=INDEX_DTYPE)
            if matrix.col_ids is None
            else matrix.col_ids[lo:hi]
        )
        out.append(
            Matrix(
                piece_csc,
                row_ids=merged_row_ids % num_graph_rows,
                col_ids=piece_col_ids,
                ctx=ctx,
            )
        )
        total_edges += len(rows_b)
    ctx.record(
        "sb_split",
        bytes_read=total_edges * (_ITEM + _VAL),
        bytes_written=total_edges * _ITEM,
        flops=total_edges * max(1.0, np.log2(max(total_edges, 2))),
        tasks=max(total_edges, 1),
    )
    return out
