"""Symbolic tracer: records matrix-API programs into the data-flow IR.

This plays the role torch.fx plays in the original system (Section 4.5):
the user's sampling function is executed once with proxy objects standing
in for the graph matrix, the frontier tensor, and any auxiliary tensors;
every operator the function applies is appended to a
:class:`~repro.ir.graph.DataFlowGraph`.

Proxies carry *metadata estimates* (expected rows/cols/nnz) propagated
from the example inputs; the layout-selection pass prices candidate
layouts with them, mirroring how gSampler amortizes a brute-force search
over many mini-batches of similar size.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.core.matrix import Matrix
from repro.errors import TraceError
from repro.ir.graph import DataFlowGraph


@dataclasses.dataclass
class Meta:
    """Size/shape estimates attached to every traced value."""

    kind: str  # "matrix" | "tensor" | "index"
    est_rows: float = 0.0
    est_cols: float = 0.0
    est_nnz: float = 0.0
    is_base_graph: bool = False
    #: For matrices: whether rows are compacted (local id space).
    compacted: bool = False


class Proxy:
    """Base class: a traced value = (tracer, node id, metadata)."""

    def __init__(self, tracer: "Tracer", node_id: int, meta: Meta) -> None:
        self.tracer = tracer
        self.node_id = node_id
        self.meta = meta
        # Stamp the metadata onto the IR node so passes can see size
        # estimates and base-graph provenance without the proxy objects.
        tracer.graph.node(node_id).attrs["_meta"] = meta

    def __bool__(self) -> bool:
        raise TraceError(
            "data-dependent control flow cannot be traced; hoist the "
            "branch out of the sampling function"
        )


class TensorProxy(Proxy):
    """A traced dense vector/matrix or index array."""

    def _binop(self, op: str, other: object, reverse: bool = False) -> "TensorProxy":
        tracer = self.tracer
        if isinstance(other, TensorProxy):
            inputs = (other.node_id, self.node_id) if reverse else (
                self.node_id,
                other.node_id,
            )
            node = tracer.graph.add_node("t_binop", inputs, {"op": op})
        else:
            node = tracer.graph.add_node(
                "t_binop_scalar",
                (self.node_id,),
                {"op": op, "scalar": float(other), "reverse": reverse},  # type: ignore[arg-type]
            )
        return TensorProxy(tracer, node.node_id, Meta("tensor", self.meta.est_rows))

    def __add__(self, other: object) -> "TensorProxy":
        return self._binop("add", other)

    def __radd__(self, other: object) -> "TensorProxy":
        return self._binop("add", other, reverse=True)

    def __sub__(self, other: object) -> "TensorProxy":
        return self._binop("sub", other)

    def __rsub__(self, other: object) -> "TensorProxy":
        return self._binop("sub", other, reverse=True)

    def __mul__(self, other: object) -> "TensorProxy":
        return self._binop("mul", other)

    def __rmul__(self, other: object) -> "TensorProxy":
        return self._binop("mul", other, reverse=True)

    def __truediv__(self, other: object) -> "TensorProxy":
        return self._binop("div", other)

    def __rtruediv__(self, other: object) -> "TensorProxy":
        return self._binop("div", other, reverse=True)

    def __pow__(self, other: object) -> "TensorProxy":
        return self._binop("pow", other)

    def __getitem__(self, idx: object) -> "TensorProxy":
        if not isinstance(idx, TensorProxy):
            raise TraceError("tensor indexing in a trace requires a traced index")
        node = self.tracer.graph.add_node(
            "t_index", (self.node_id, idx.node_id), {}
        )
        return TensorProxy(
            self.tracer, node.node_id, Meta("tensor", idx.meta.est_rows)
        )

    def sum(self) -> "TensorProxy":
        node = self.tracer.graph.add_node("t_sum", (self.node_id,), {})
        return TensorProxy(self.tracer, node.node_id, Meta("tensor", 1.0))

    def relu(self) -> "TensorProxy":
        node = self.tracer.graph.add_node("t_unop", (self.node_id,), {"op": "relu"})
        return TensorProxy(self.tracer, node.node_id, self.meta)

    def softmax(self) -> "TensorProxy":
        node = self.tracer.graph.add_node("t_unop", (self.node_id,), {"op": "softmax"})
        return TensorProxy(self.tracer, node.node_id, self.meta)

    def __matmul__(self, other: object) -> "TensorProxy":
        other_p = self.tracer.lift(other)
        node = self.tracer.graph.add_node(
            "t_matmul", (self.node_id, other_p.node_id), {}
        )
        return TensorProxy(self.tracer, node.node_id, Meta("tensor", self.meta.est_rows))


class MatrixProxy(Proxy):
    """A traced :class:`~repro.core.matrix.Matrix`."""

    # -- extract -------------------------------------------------------
    def __getitem__(self, key: object) -> "MatrixProxy":
        if not isinstance(key, tuple) or len(key) != 2:
            raise TraceError("matrix slicing requires A[rows, cols] syntax")
        row_key, col_key = key
        result: MatrixProxy = self
        if not _is_full_slice(col_key):
            result = result._slice("slice_cols", col_key)
        if not _is_full_slice(row_key):
            result = result._slice("slice_rows", row_key)
        return result

    def _slice(self, op: str, idx: object) -> "MatrixProxy":
        idx_proxy = self.tracer.lift(idx)
        node = self.tracer.graph.add_node(op, (self.node_id, idx_proxy.node_id), {})
        count = idx_proxy.meta.est_rows or 1.0
        avg_deg = self.meta.est_nnz / max(
            self.meta.est_cols if op == "slice_cols" else self.meta.est_rows, 1.0
        )
        if op == "slice_cols":
            meta = Meta(
                "matrix",
                est_rows=self.meta.est_rows,
                est_cols=count,
                est_nnz=avg_deg * count,
            )
        else:
            meta = Meta(
                "matrix",
                est_rows=count,
                est_cols=self.meta.est_cols,
                est_nnz=avg_deg * count,
            )
        return MatrixProxy(self.tracer, node.node_id, meta)

    # -- compute -------------------------------------------------------
    def _map_scalar(self, op: str, other: object, reverse: bool = False) -> "MatrixProxy":
        if isinstance(other, MatrixProxy):
            node = self.tracer.graph.add_node(
                "map_combine", (self.node_id, other.node_id), {"op": op}
            )
        else:
            node = self.tracer.graph.add_node(
                "map_scalar",
                (self.node_id,),
                {"op": op, "scalar": float(other), "reverse": reverse},  # type: ignore[arg-type]
            )
        return MatrixProxy(self.tracer, node.node_id, dataclasses.replace(self.meta, is_base_graph=False))

    def __add__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("add", other)

    def __sub__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("sub", other)

    def __mul__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("mul", other)

    def __rmul__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("mul", other, reverse=True)

    def __truediv__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("div", other)

    def __pow__(self, other: object) -> "MatrixProxy":
        return self._map_scalar("pow", other)

    def _broadcast(self, op: str, vector: object, axis: int) -> "MatrixProxy":
        vec = self.tracer.lift(vector)
        node = self.tracer.graph.add_node(
            "map_broadcast", (self.node_id, vec.node_id), {"op": op, "axis": axis}
        )
        return MatrixProxy(self.tracer, node.node_id, dataclasses.replace(self.meta, is_base_graph=False))

    def add(self, vector: object, axis: int = 0) -> "MatrixProxy":
        return self._broadcast("add", vector, axis)

    def sub(self, vector: object, axis: int = 0) -> "MatrixProxy":
        return self._broadcast("sub", vector, axis)

    def mul(self, vector: object, axis: int = 0) -> "MatrixProxy":
        return self._broadcast("mul", vector, axis)

    def div(self, vector: object, axis: int = 0) -> "MatrixProxy":
        return self._broadcast("div", vector, axis)

    def _reduce(self, op: str, axis: int) -> TensorProxy:
        node = self.tracer.graph.add_node(
            "reduce", (self.node_id,), {"op": op, "axis": axis}
        )
        length = self.meta.est_rows if axis == 0 else self.meta.est_cols
        return TensorProxy(self.tracer, node.node_id, Meta("tensor", length))

    def sum(self, axis: int = 0) -> TensorProxy:
        return self._reduce("sum", axis)

    def mean(self, axis: int = 0) -> TensorProxy:
        return self._reduce("mean", axis)

    def max(self, axis: int = 0) -> TensorProxy:
        return self._reduce("max", axis)

    def min(self, axis: int = 0) -> TensorProxy:
        return self._reduce("min", axis)

    def __matmul__(self, dense: object) -> TensorProxy:
        dense_p = self.tracer.lift(dense)
        node = self.tracer.graph.add_node(
            "spmm", (self.node_id, dense_p.node_id), {}
        )
        return TensorProxy(self.tracer, node.node_id, Meta("tensor", self.meta.est_rows))

    def sddmm(self, row_feats: object, col_feats: object) -> "MatrixProxy":
        rf = self.tracer.lift(row_feats)
        cf = self.tracer.lift(col_feats)
        node = self.tracer.graph.add_node(
            "sddmm", (self.node_id, rf.node_id, cf.node_id), {}
        )
        return MatrixProxy(self.tracer, node.node_id, dataclasses.replace(self.meta, is_base_graph=False))

    def relu(self) -> "MatrixProxy":
        return self._unary("relu")

    def exp(self) -> "MatrixProxy":
        return self._unary("exp")

    def log(self) -> "MatrixProxy":
        return self._unary("log")

    def _unary(self, op: str) -> "MatrixProxy":
        node = self.tracer.graph.add_node("map_unary", (self.node_id,), {"op": op})
        return MatrixProxy(self.tracer, node.node_id, dataclasses.replace(self.meta, is_base_graph=False))

    def scale(self, tensor: object, index: int, op: str = "mul") -> "MatrixProxy":
        """Combine every edge with one element of a traced tensor.

        Used by model-driven algorithms (PASS) that weight whole
        attention matrices by entries of a learned softmax vector.
        """
        t = self.tracer.lift(tensor)
        node = self.tracer.graph.add_node(
            "map_tscalar", (self.node_id, t.node_id), {"op": op, "index": int(index)}
        )
        return MatrixProxy(self.tracer, node.node_id, dataclasses.replace(self.meta, is_base_graph=False))

    # -- select --------------------------------------------------------
    def individual_sample(
        self,
        k: int,
        probs: object = None,
        *,
        replace: bool = False,
    ) -> "MatrixProxy":
        inputs = [self.node_id]
        if probs is not None:
            inputs.append(self.tracer.lift(probs).node_id)
        node = self.tracer.graph.add_node(
            "individual_sample",
            tuple(inputs),
            {"k": int(k), "replace": bool(replace), "has_probs": probs is not None},
        )
        est_nnz = min(self.meta.est_nnz, float(k) * max(self.meta.est_cols, 1.0))
        meta = Meta(
            "matrix",
            est_rows=self.meta.est_rows,
            est_cols=self.meta.est_cols,
            est_nnz=est_nnz,
        )
        return MatrixProxy(self.tracer, node.node_id, meta)

    def labor_sample(self, k: int) -> "MatrixProxy":
        node = self.tracer.graph.add_node(
            "labor_sample", (self.node_id,), {"k": int(k)}
        )
        # Expected kept edges per column equal individual_sample's; the
        # correlation shrinks the row *union*, not the edge count.
        est_nnz = min(self.meta.est_nnz, float(k) * max(self.meta.est_cols, 1.0))
        meta = Meta(
            "matrix",
            est_rows=self.meta.est_rows,
            est_cols=self.meta.est_cols,
            est_nnz=est_nnz,
        )
        return MatrixProxy(self.tracer, node.node_id, meta)

    def collective_sample(
        self,
        k: int,
        node_probs: object = None,
        *,
        replace: bool = False,
    ) -> "MatrixProxy":
        inputs = [self.node_id]
        if node_probs is not None:
            inputs.append(self.tracer.lift(node_probs).node_id)
        node = self.tracer.graph.add_node(
            "collective_sample",
            tuple(inputs),
            {"k": int(k), "replace": bool(replace), "has_probs": node_probs is not None},
        )
        density = self.meta.est_nnz / max(self.meta.est_rows, 1.0)
        meta = Meta(
            "matrix",
            est_rows=float(k),
            est_cols=self.meta.est_cols,
            est_nnz=density * k,
            compacted=True,
        )
        return MatrixProxy(self.tracer, node.node_id, meta)

    # -- finalize ------------------------------------------------------
    def row(self) -> TensorProxy:
        node = self.tracer.graph.add_node("row", (self.node_id,), {})
        return TensorProxy(
            self.tracer,
            node.node_id,
            Meta("index", est_rows=min(self.meta.est_nnz, self.meta.est_rows)),
        )

    def column(self) -> TensorProxy:
        node = self.tracer.graph.add_node("column", (self.node_id,), {})
        return TensorProxy(
            self.tracer, node.node_id, Meta("index", est_rows=self.meta.est_cols)
        )

    def compact(self, axis: int = 0) -> "MatrixProxy":
        node = self.tracer.graph.add_node("compact", (self.node_id,), {"axis": axis})
        rows = min(self.meta.est_nnz, self.meta.est_rows) if axis == 0 else self.meta.est_rows
        cols = self.meta.est_cols if axis == 0 else min(self.meta.est_nnz, self.meta.est_cols)
        return MatrixProxy(
            self.tracer,
            node.node_id,
            Meta("matrix", rows, cols, self.meta.est_nnz, compacted=True),
        )


class Tracer:
    """Records one execution of a sampling function into IR."""

    def __init__(self) -> None:
        self.graph = DataFlowGraph()
        self._consts: dict[int, object] = {}

    # ------------------------------------------------------------------
    def add_graph_input(self, name: str, example: Matrix) -> MatrixProxy:
        node = self.graph.add_node("input_graph", (), {"name": name}, name=name)
        meta = Meta(
            "matrix",
            est_rows=float(example.shape[0]),
            est_cols=float(example.shape[1]),
            est_nnz=float(example.nnz),
            is_base_graph=example.is_base_graph,
        )
        return MatrixProxy(self, node.node_id, meta)

    def add_tensor_input(self, name: str, example: np.ndarray) -> TensorProxy:
        node = self.graph.add_node("input_tensor", (), {"name": name}, name=name)
        kind = "index" if np.issubdtype(np.asarray(example).dtype, np.integer) else "tensor"
        return TensorProxy(self, node.node_id, Meta(kind, float(len(example))))

    def lift(self, value: object) -> Proxy:
        """Wrap a literal ndarray/scalar as a const node; pass proxies through."""
        if isinstance(value, Proxy):
            return value
        if isinstance(value, Matrix):
            raise TraceError(
                "concrete Matrix objects cannot enter a trace; pass them "
                "as graph inputs"
            )
        arr = np.asarray(value)
        node = self.graph.add_node("const", (), {"_value": arr})
        self._consts[node.node_id] = arr
        kind = "index" if np.issubdtype(arr.dtype, np.integer) else "tensor"
        length = float(arr.shape[0]) if arr.ndim >= 1 else 1.0
        return TensorProxy(self, node.node_id, Meta(kind, length))

    # ------------------------------------------------------------------
    def finish(self, result: object) -> DataFlowGraph:
        """Register the function's return value as graph outputs."""
        self.graph.outputs = [p.node_id for p in _flatten_proxies(result)]
        self.graph.validate()
        return self.graph


def _flatten_proxies(result: object) -> list[Proxy]:
    if isinstance(result, Proxy):
        return [result]
    if isinstance(result, (tuple, list)):
        out: list[Proxy] = []
        for item in result:
            out.extend(_flatten_proxies(item))
        return out
    raise TraceError(
        f"sampling functions must return proxies or tuples of proxies, "
        f"got {type(result).__name__}"
    )


def _is_full_slice(key: object) -> bool:
    return isinstance(key, slice) and key == slice(None)


def trace(
    fn: Callable,
    graph: Matrix,
    example_frontiers: np.ndarray,
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
) -> tuple[DataFlowGraph, dict]:
    """Trace ``fn(A, frontiers, **constants, **tensors)`` into IR.

    Returns the IR graph and the structure of the function's return value
    (``"pair"`` for the common ``(matrix, next_frontiers)`` shape,
    ``"single"`` otherwise) so the runtime can re-assemble results.
    """
    tracer = Tracer()
    a_proxy = tracer.add_graph_input("A", graph)
    f_proxy = tracer.add_tensor_input("frontiers", np.asarray(example_frontiers))
    tensor_proxies = {
        name: tracer.add_tensor_input(name, arr)
        for name, arr in (tensors or {}).items()
    }
    result = fn(a_proxy, f_proxy, **(constants or {}), **tensor_proxies)
    structure = _structure_of(result)
    ir = tracer.finish(result)
    return ir, {"structure": structure}


def _structure_of(result: object) -> object:
    if isinstance(result, Proxy):
        return "leaf"
    if isinstance(result, (tuple, list)):
        return tuple(_structure_of(r) for r in result)
    raise TraceError(f"untraceable return value of type {type(result).__name__}")
