"""Data-flow intermediate representation for sampling programs.

A user program written against the matrix-centric API is parsed into a
data-flow graph whose nodes are operators and whose edges are data
dependencies (Section 4.1).  The IR is deliberately small: a node has an
``op`` name, input node ids, and a dict of static attributes.  Insertion
order is a topological order (the tracer appends nodes as the program
executes), and passes must preserve that invariant.

Stochastic operators (the two sample ops) are marked impure: CSE must not
merge them and DCE must still drop them if unused (sampling has no side
effects beyond its result).
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterable

from repro.errors import PassError

#: Operators whose results are random draws; never CSE-merge these.
IMPURE_OPS = frozenset(
    {
        "individual_sample",
        "collective_sample",
        "labor_sample",
        "fused_extract_select",
        "sb_collective_sample",
    }
)

#: Operators that produce a sparse matrix (layout selection applies).
MATRIX_OPS = frozenset(
    {
        "input_graph",
        "slice_cols",
        "slice_rows",
        "map_scalar",
        "map_unary",
        "map_combine",
        "map_broadcast",
        "sddmm",
        "individual_sample",
        "collective_sample",
        "labor_sample",
        "compact",
        "with_values",
        "fused_extract_select",
        "fused_map_chain",
        "sb_slice_cols",
        "sb_collective_sample",
    }
)

#: Structure-changing operators: only these get layout decisions
#: (Section 4.3: compute/finalize ops adopt their upstream layout).
STRUCTURE_OPS = frozenset(
    {
        "slice_cols",
        "slice_rows",
        "individual_sample",
        "collective_sample",
        "labor_sample",
        "fused_extract_select",
        "sb_slice_cols",
        "sb_collective_sample",
    }
)


@dataclasses.dataclass
class Node:
    """One IR operator."""

    node_id: int
    op: str
    inputs: tuple[int, ...]
    attrs: dict
    name: str = ""
    #: Output layout decided by the layout-selection pass (matrices only).
    layout: str | None = None
    #: Whether to compact isolated rows out of the output.
    compact_rows: bool = False

    def key(self) -> tuple:
        """Structural hash key for CSE (valid only for pure ops)."""
        return (self.op, self.inputs, _freeze(self.attrs))


def _freeze(obj: object) -> object:
    if isinstance(obj, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in obj.items()))
    if isinstance(obj, (list, tuple)):
        return tuple(_freeze(v) for v in obj)
    return obj


class DataFlowGraph:
    """An ordered DAG of :class:`Node` objects."""

    def __init__(self) -> None:
        self._nodes: dict[int, Node] = {}
        self._counter = itertools.count()
        self.outputs: list[int] = []
        self.input_ids: list[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        op: str,
        inputs: Iterable[int] = (),
        attrs: dict | None = None,
        name: str = "",
    ) -> Node:
        inputs = tuple(inputs)
        for dep in inputs:
            if dep not in self._nodes:
                raise PassError(f"node input {dep} does not exist")
        node = Node(
            node_id=next(self._counter),
            op=op,
            inputs=inputs,
            attrs=dict(attrs or {}),
            name=name or op,
        )
        self._nodes[node.node_id] = node
        if op.startswith("input"):
            self.input_ids.append(node.node_id)
        return node

    def insert_before(
        self,
        anchor: int,
        op: str,
        inputs: Iterable[int] = (),
        attrs: dict | None = None,
        name: str = "",
    ) -> Node:
        """Add a node ordered immediately before ``anchor``.

        Needed by passes that materialize helper nodes (e.g. hoisted
        pre-computation) whose results feed existing nodes.
        """
        node = self.add_node(op, inputs, attrs, name)
        # Re-order: rebuild the dict with the new node moved before anchor.
        items = [(k, v) for k, v in self._nodes.items() if k != node.node_id]
        rebuilt: dict[int, Node] = {}
        for key, value in items:
            if key == anchor:
                rebuilt[node.node_id] = node
            rebuilt[key] = value
        self._nodes = rebuilt
        return node

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self._nodes[node_id]

    def nodes(self) -> list[Node]:
        """All nodes in topological (insertion) order."""
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def users(self, node_id: int) -> list[Node]:
        """Nodes that consume ``node_id`` (outputs count as one use each)."""
        return [n for n in self._nodes.values() if node_id in n.inputs]

    def use_count(self, node_id: int) -> int:
        uses = sum(n.inputs.count(node_id) for n in self._nodes.values())
        uses += self.outputs.count(node_id)
        return uses

    def positions(self) -> dict[int, int]:
        """Map node id -> topological position (insertion order index)."""
        return {node_id: i for i, node_id in enumerate(self._nodes)}

    # ------------------------------------------------------------------
    # Mutation (for passes)
    # ------------------------------------------------------------------
    def replace_all_uses(self, old: int, new: int) -> None:
        if old == new:
            return
        for node in self._nodes.values():
            if old in node.inputs:
                node.inputs = tuple(new if i == old else i for i in node.inputs)
        self.outputs = [new if i == old else i for i in self.outputs]

    def remove_node(self, node_id: int) -> None:
        if self.users(node_id):
            raise PassError(f"cannot remove node {node_id}: it still has users")
        if node_id in self.outputs:
            raise PassError(f"cannot remove node {node_id}: it is an output")
        self._nodes.pop(node_id)
        if node_id in self.input_ids:
            self.input_ids.remove(node_id)

    def validate(self) -> None:
        """Check topological ordering, key consistency, input existence."""
        seen: set[int] = set()
        for key, node in self._nodes.items():
            if key != node.node_id:
                raise PassError(
                    f"node table key {key} disagrees with node id "
                    f"{node.node_id} ({node.op})"
                )
            for dep in node.inputs:
                if dep not in seen:
                    raise PassError(
                        f"node {node.node_id} ({node.op}) uses {dep} "
                        "before definition"
                    )
            seen.add(node.node_id)
        for inp in self.input_ids:
            if inp not in self._nodes:
                raise PassError(f"registered input {inp} does not exist")
        for out in self.outputs:
            if out not in self._nodes:
                raise PassError(f"output {out} does not exist")

    def clone(self) -> "DataFlowGraph":
        """Deep-ish copy: nodes are copied, attribute values are shared."""
        other = DataFlowGraph()
        other._nodes = {
            node_id: Node(
                node_id=node.node_id,
                op=node.op,
                inputs=node.inputs,
                attrs=dict(node.attrs),
                name=node.name,
                layout=node.layout,
                compact_rows=node.compact_rows,
            )
            for node_id, node in self._nodes.items()
        }
        other._counter = itertools.count(
            max(self._nodes, default=-1) + 1
        )
        other.outputs = list(self.outputs)
        other.input_ids = list(self.input_ids)
        return other

    # ------------------------------------------------------------------
    # Debugging
    # ------------------------------------------------------------------
    def pretty(self) -> str:
        """Readable multi-line rendering of the IR."""
        lines = []
        for node in self._nodes.values():
            attrs = ", ".join(
                f"{k}={v!r}"
                for k, v in node.attrs.items()
                if not k.startswith("_")
            )
            deps = ", ".join(f"%{i}" for i in node.inputs)
            layout = f" [{node.layout}{'+compact' if node.compact_rows else ''}]" \
                if node.layout else ""
            lines.append(
                f"%{node.node_id} = {node.op}({deps}"
                + (f"; {attrs}" if attrs else "")
                + f"){layout}"
            )
        lines.append("outputs: " + ", ".join(f"%{i}" for i in self.outputs))
        return "\n".join(lines)
