"""Data-flow IR: tracing, optimization passes, and interpretation."""

from repro.ir.graph import (
    IMPURE_OPS,
    MATRIX_OPS,
    STRUCTURE_OPS,
    DataFlowGraph,
    Node,
)
from repro.ir.interpreter import Interpreter
from repro.ir.trace import MatrixProxy, Meta, TensorProxy, Tracer, trace

__all__ = [
    "IMPURE_OPS",
    "MATRIX_OPS",
    "STRUCTURE_OPS",
    "DataFlowGraph",
    "Interpreter",
    "MatrixProxy",
    "Meta",
    "Node",
    "TensorProxy",
    "Tracer",
    "trace",
]
