"""Failure injection for the serving cluster: who dies, when, and what
happens to the requests they were holding.

A :class:`FailureSpec` is a *schedule*, not a process: every kill (and
optional revival) is a concrete ``(time, replica)`` pair, so a fixed
spec names exactly one deterministic chaos experiment — the same
property the workload specs have.  The seeded constructor
(:meth:`FailureSpec.random`) draws a schedule from its own
:class:`numpy.random.Generator` stream once, up front; after that the
spec is as reproducible as a hand-written one.

Failure semantics (executed by
:class:`~repro.serve.cluster.ClusterSimulator`):

* a **kill** at time ``t`` removes the replica from service instantly:
  its waiting queue is orphaned and every in-flight batch whose
  completion lies after ``t`` dies with the device (the simulated time
  those batches burned stays burned — the work was really done, the
  answer just never made it out);
* **orphans** are either ``"retry"``-ed — re-routed through the router
  at time ``t`` with a bounded per-request retry budget, optionally
  *hedged* (a duplicate sent to a second replica; the first completion
  wins and the loser is cancelled in accounting) — or ``"shed"``
  (dropped on the floor and counted as lost);
* with ``failover`` enabled the routers stop selecting dead replicas;
  without it the router stays blind and every request sent to a dead
  replica is lost — the baseline the availability benchmark contrasts;
* a kill with a ``downtime`` **revives**: at ``t + downtime`` the
  replacement process starts, pays the spec's ``spinup`` plus a
  re-replication transfer (its shard — or its warm feature-cache rows —
  stream back over the interconnect), and only then becomes routable.
"""

from __future__ import annotations

import dataclasses

from repro.core import new_rng
from repro.errors import ServeError

#: What happens to a dead replica's queued + in-flight requests.
ORPHAN_POLICIES = ("retry", "shed")


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """One scheduled replica kill (and optional revival)."""

    #: Simulated second the replica dies.
    time: float
    #: Replica id to kill.
    replica: int
    #: Seconds until a replacement process starts; ``None`` = never.
    downtime: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0.0:
            raise ServeError(
                f"failure time must be non-negative, got {self.time}"
            )
        if self.replica < 0:
            raise ServeError(
                f"failure replica id must be non-negative, got {self.replica}"
            )
        if self.downtime is not None and self.downtime <= 0.0:
            raise ServeError(
                "failure downtime must be positive (or None for a "
                f"permanent kill), got {self.downtime}"
            )


@dataclasses.dataclass(frozen=True)
class FailureSpec:
    """A deterministic chaos schedule plus the failover policy knobs."""

    events: tuple[FailureEvent, ...]
    #: ``"retry"`` re-routes orphaned requests, ``"shed"`` drops them.
    orphans: str = "retry"
    #: Re-route attempts per request before it is declared lost.
    max_retries: int = 2
    #: Send retried requests to *two* replicas; first completion wins.
    hedge: bool = False
    #: Mask dead replicas from the routers.  ``False`` keeps the
    #: routers blind (requests sent to a corpse are lost) — the
    #: no-failover baseline.
    failover: bool = True
    #: Process-start latency a revived replica pays before its
    #: re-replication transfer even begins.
    spinup: float = 1e-3

    def __post_init__(self) -> None:
        if self.orphans not in ORPHAN_POLICIES:
            raise ServeError(
                f"unknown orphan policy {self.orphans!r}; available: "
                f"{list(ORPHAN_POLICIES)}"
            )
        if self.max_retries < 0:
            raise ServeError(
                f"max retries must be non-negative, got {self.max_retries}"
            )
        if self.spinup < 0.0:
            raise ServeError(
                f"spin-up delay must be non-negative, got {self.spinup}"
            )
        # Tuple-ify so hand-built lists validate too.
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def single_kill(
        cls,
        replica: int,
        time: float,
        *,
        downtime: float | None = None,
        **kwargs: object,
    ) -> "FailureSpec":
        """The one-kill schedule the chaos smoke test runs."""
        return cls(
            events=(
                FailureEvent(time=time, replica=replica, downtime=downtime),
            ),
            **kwargs,
        )

    @classmethod
    def random(
        cls,
        *,
        num_kills: int,
        num_replicas: int,
        horizon: float,
        seed: int = 0,
        downtime: float | None = None,
        **kwargs: object,
    ) -> "FailureSpec":
        """A seeded schedule: ``num_kills`` uniform over ``(0, horizon)``.

        Victims are drawn uniformly over replica ids; the schedule is
        fixed once drawn, so two specs built from equal arguments are
        identical (the chaos determinism test's contract).
        """
        if num_kills < 1:
            raise ServeError(
                f"a chaos schedule needs at least one kill, got {num_kills}"
            )
        if num_replicas < 1:
            raise ServeError(
                f"need at least one replica to kill, got {num_replicas}"
            )
        if horizon <= 0.0:
            raise ServeError(
                f"chaos horizon must be positive, got {horizon}"
            )
        rng = new_rng(seed)
        times = sorted(float(t) for t in rng.uniform(0.0, horizon, num_kills))
        victims = [int(v) for v in rng.integers(0, num_replicas, num_kills)]
        return cls(
            events=tuple(
                FailureEvent(time=t, replica=v, downtime=downtime)
                for t, v in zip(times, victims)
            ),
            **kwargs,
        )
