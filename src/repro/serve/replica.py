"""One serving replica: batcher, admission, ladder, device contexts.

This is the single-replica serving loop extracted from the original
monolithic ``ServeSimulator`` so a cluster can run N of them side by
side.  A :class:`Replica` owns everything one serving process would:

* its own pair of :class:`~repro.device.ExecutionContext`\\ s (sampling
  on the ``sample`` queue, host-resident feature I/O on ``transfer``),
* its own :class:`~repro.cache.FeatureCache` charged to its own pool,
* the dynamic batcher (max_batch/max_wait), bounded-queue admission,
  and the SLO-aware degradation ladder,
* optionally a :class:`~repro.partition.ShardView` plus a
  :class:`~repro.device.LinkSpec`: the shard of the graph this replica
  owns, and the interconnect over which frontier nodes sampled outside
  that shard are fetched from their owners.

Unlike the old monolith, the replica exposes an *incremental* event
API — :meth:`offer` (admit or shed one arrival), :meth:`advance_until`
(fire every batch due strictly before a timestamp), and :meth:`drain`
(fire everything left) — so a cluster simulator can interleave N
replicas in global simulated-time order.  Driving a single replica with
that API replays the exact decision sequence of the original loop, which
is what keeps the 1-replica cluster bit-identical to the pre-refactor
simulator (the fingerprint-compat test).
"""

from __future__ import annotations

import contextlib
import dataclasses
import math

import numpy as np

from repro.cache import (
    DEFAULT_CACHE_RATIO,
    DEFAULT_HOST_TIER_RATIO,
    FeatureCache,
    TieredFeatureStore,
    plan_gather,
)
from repro.datasets import Dataset
from repro.device import (
    DeviceSpec,
    ExecutionContext,
    LinkSpec,
    MemoryPool,
    default_link_for,
)
from repro.errors import ServeError
from repro.partition import ShardView
from repro.profile.spans import Profiler
from repro.serve.compose import BatchComposer, make_composer
from repro.serve.metrics import RequestLog
from repro.serve.workload import (
    WORKLOAD_TASKS,
    Request,
    WorkloadSpec,
    generate_workload,
)
from repro.tasks import edge_endpoints_of, unique_and_compact_node_pairs
from repro.stats import SlidingWindow

#: Degradation-ladder depth: 0 = full fidelity, 1 = reduced fanout,
#: 2 = reduced fanout + cached-only features.
MAX_DEGRADE_LEVEL = 2

#: Algorithm configurations the serving simulator knows how to build,
#: mapping to ``make_algorithm`` kwargs at full fidelity.  The degraded
#: variant is derived by :func:`degraded_kwargs`.
SERVE_CONFIGS: dict[str, dict] = {
    "graphsage": dict(fanouts=(5, 10)),
    "ladies": dict(layer_width=256, num_layers=2),
}

#: Admission/degradation presets selectable from the CLI ``--policy``
#: flag; each maps to (bounded queue?, SLO ladder?).
POLICY_PRESETS: dict[str, tuple[bool, bool]] = {
    "none": (False, False),
    "shed": (True, False),
    "degrade": (False, True),
    "full": (True, True),
}


def degraded_kwargs(kwargs: dict) -> dict:
    """The reduced-fidelity variant of an algorithm config.

    Fanouts are halved (floored at 1), layer widths halved — the ladder
    step the issue's K=10 -> 5 example describes.
    """
    out = dict(kwargs)
    if "fanouts" in out:
        out["fanouts"] = tuple(max(1, k // 2) for k in out["fanouts"])
    if "layer_width" in out:
        out["layer_width"] = max(1, out["layer_width"] // 2)
    return out


def build_pipelines(dataset: Dataset, algorithm: str) -> list:
    """Compile the full-fidelity and degraded pipelines for ``algorithm``.

    Both are compiled up front so ladder moves cost nothing at serve
    time.  Pipelines are stateless with respect to the execution context
    (``sample_batch`` takes ``ctx=``), so a cluster compiles once and
    shares the pair across all replicas.
    """
    from repro.algorithms import make_algorithm

    if algorithm not in SERVE_CONFIGS:
        raise ServeError(
            f"no serving config for {algorithm!r}; "
            f"available: {sorted(SERVE_CONFIGS)}"
        )
    example = dataset.train_ids[: min(256, len(dataset.train_ids))]
    kwargs = SERVE_CONFIGS[algorithm]
    return [
        make_algorithm(algorithm, **kwargs).build(dataset.graph, example),
        make_algorithm(algorithm, **degraded_kwargs(kwargs)).build(
            dataset.graph, example
        ),
    ]


def replica_rng(seed: int, replica_id: int) -> np.random.Generator:
    """Replica ``i``'s sampling RNG, derived from the session seed.

    Replica 0 uses the session seed's stream directly — bit-identical to
    the pre-refactor single-replica simulator.  Higher replicas spawn
    independent streams off the same entropy via the seed-sequence spawn
    key, so no two replicas share draws and no ``numpy.random`` global
    state is ever touched.
    """
    if replica_id == 0:
        return np.random.default_rng(seed)
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(replica_id,))
    )


@dataclasses.dataclass(frozen=True)
class ServePolicy:
    """Batching + admission + degradation knobs for one serving session."""

    max_batch: int = 8
    #: Longest a batch head may wait before firing, in simulated seconds.
    max_wait: float = 2e-3
    #: Bound on the waiting queue; ``None`` disables shedding.
    queue_capacity: int | None = 64
    #: p99 latency target in simulated seconds; ``None`` disables the
    #: degradation ladder.
    slo: float | None = None
    #: Sliding-window length (completed requests) for the p99 monitor.
    window: int = 64
    #: Samples required in the window before the ladder may move.
    min_samples: int = 32
    #: The ladder steps back up once windowed p99 < recover_margin * slo.
    recover_margin: float = 0.7

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(
                f"max batch must be at least 1, got {self.max_batch}"
            )
        if self.max_wait < 0.0:
            raise ServeError(
                f"max wait must be non-negative, got {self.max_wait}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ServeError(
                "queue capacity must be at least 1 (or None for "
                f"unbounded), got {self.queue_capacity}"
            )
        if self.slo is not None and self.slo <= 0.0:
            raise ServeError(f"SLO must be positive, got {self.slo}")
        if not 0.0 < self.recover_margin < 1.0:
            raise ServeError(
                f"recover margin must be in (0, 1), got {self.recover_margin}"
            )
        if self.window < 1 or self.min_samples < 1:
            raise ServeError("p99 window and min_samples must be positive")

    @classmethod
    def preset(
        cls,
        name: str,
        *,
        max_batch: int = 8,
        max_wait: float = 2e-3,
        queue_capacity: int = 64,
        slo: float | None = None,
    ) -> "ServePolicy":
        """Build a policy from a ``--policy`` preset name."""
        try:
            shed, degrade = POLICY_PRESETS[name]
        except KeyError:
            raise ServeError(
                f"unknown policy {name!r}; available: "
                f"{sorted(POLICY_PRESETS)}"
            ) from None
        if degrade and slo is None:
            raise ServeError(
                f"policy {name!r} needs an SLO target (--slo-ms)"
            )
        return cls(
            max_batch=max_batch,
            max_wait=max_wait,
            queue_capacity=queue_capacity if shed else None,
            slo=slo if degrade else None,
        )


class Replica:
    """One serving replica with its own device contexts and cache.

    Parameters
    ----------
    dataset:
        The graph being served; seeds index its nodes.
    algorithm:
        A :data:`SERVE_CONFIGS` key (used when ``pipelines`` is omitted).
    device:
        Device spec for sampling *and* feature transfer.  The feature
        table itself is host-resident (the serving deployment), so cache
        misses cross PCIe; the cache's pinned rows are charged to the
        I/O context's memory pool.
    policy:
        Batching/admission/degradation knobs.
    cache_ratio:
        Fraction of nodes whose feature rows are pinned on device.
    seed:
        Session seed; replica ``replica_id`` derives its own RNG stream
        from it (:func:`replica_rng`).
    replica_id:
        Position of this replica in its cluster (0 for standalone).
    pipelines:
        Pre-compiled ``[full, degraded]`` pipeline pair shared across a
        cluster; compiled here when omitted.
    composer:
        Batch-composition policy — a :data:`~repro.serve.compose.COMPOSER_POLICIES`
        name or a pre-built :class:`~repro.serve.compose.BatchComposer`.
        ``"fifo"`` (the default) replays the pre-composer batcher
        bit-identically; ``"superbatch"`` requires the algorithm's
        pipelines to support super-batched execution.
    queue_prefix:
        Prefix for the device queue names (``"r1:"`` in a cluster), so
        each replica's timelines render as its own thread-row group in
        the Chrome trace.  Empty for standalone/1-replica use, keeping
        the original ``sample``/``transfer`` names.
    shard:
        The :class:`~repro.partition.ShardView` this replica owns, when
        the cluster is graph-partitioned.
    link:
        Interconnect over which frontier nodes sampled outside ``shard``
        are fetched from the owning replica's device.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "graphsage",
        device: DeviceSpec,
        policy: ServePolicy | None = None,
        cache_ratio: float = DEFAULT_CACHE_RATIO,
        seed: int = 0,
        profiler: Profiler | None = None,
        replica_id: int = 0,
        pipelines: list | None = None,
        composer: str | BatchComposer = "fifo",
        queue_prefix: str = "",
        shard: ShardView | None = None,
        link: LinkSpec | None = None,
        task: str = "node",
        active: bool = True,
        feature_tiers: bool = False,
        host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
        p2p: bool = False,
        hbm_budget: int | None = None,
        fleet_size: int = 1,
    ) -> None:
        if shard is not None and link is None:
            raise ServeError(
                "a sharded replica needs an interconnect link to fetch "
                "remote frontier rows over"
            )
        if p2p and not feature_tiers:
            raise ServeError(
                "p2p feature fetch needs the tiered store (feature_tiers)"
            )
        if task not in WORKLOAD_TASKS:
            raise ServeError(
                f"unknown serving task {task!r}; "
                f"available: {list(WORKLOAD_TASKS)}"
            )
        self.dataset = dataset
        self.algorithm = algorithm
        self.device = device
        #: Workload task: how request payloads decode into sampler
        #: seeds.  ``"node"`` (the default) treats them as seed nodes —
        #: byte-identical to the pre-task replica; ``"linkpred"``
        #: compacts flattened endpoint pairs to a unique node set first.
        self.task = task
        self.policy = policy if policy is not None else ServePolicy()
        self.profiler = profiler
        self.replica_id = replica_id
        self.shard = shard
        self.link = link
        self._rng = replica_rng(seed, replica_id)
        self._pipelines = (
            pipelines
            if pipelines is not None
            else build_pipelines(dataset, algorithm)
        )
        self.composer = make_composer(composer)
        if self.composer.requires_superbatch and not all(
            pipeline.supports_superbatch for pipeline in self._pipelines
        ):
            raise ServeError(
                f"composer {self.composer.name!r} needs a super-batch "
                f"capable algorithm; {algorithm!r} excludes super-batching"
            )
        self._sample_queue = f"{queue_prefix}sample"
        self._transfer_queue = f"{queue_prefix}transfer"
        self._remote_queue = f"{queue_prefix}remote"
        self._p2p_queue = f"{queue_prefix}p2p"
        #: True when part of a multi-replica cluster; batch spans then
        #: carry the replica id (standalone spans stay byte-identical to
        #: the pre-refactor trace).
        self._labelled = bool(queue_prefix)
        self.feature_tiers = feature_tiers
        self.sample_ctx = ExecutionContext(
            device,
            graph_on_device=dataset.graph_on_device,
            queues=(self._sample_queue,),
        )
        # Feature fetches run on their own context with a host-resident
        # "graph" (= the feature table), so misses are priced over PCIe.
        # The tiered store adds two more wires: the remote tier and the
        # p2p band each get their own queue, so a batch's tier fetches
        # overlap (completion is their max, not their sum).  The flat
        # path declares only ``transfer`` — its contexts, queue stats,
        # and trace rows stay byte-identical to the pre-tier subsystem.
        io_queues = (
            (self._transfer_queue, self._remote_queue, self._p2p_queue)
            if feature_tiers
            else (self._transfer_queue,)
        )
        self.io_ctx = ExecutionContext(
            device,
            graph_on_device=False,
            queues=io_queues,
            memory=MemoryPool(hbm_budget) if hbm_budget is not None else None,
        )
        if profiler is not None:
            # The first replica's sampling ledger doubles as the
            # profiler's simulated clock (the pre-refactor behavior);
            # later replicas just mirror their launches into spans.
            if profiler.context is None:
                profiler.attach(self.sample_ctx)
            else:
                self.sample_ctx.profiler = profiler
            self.io_ctx.profiler = profiler
        self.cache: FeatureCache | TieredFeatureStore | None = None
        if cache_ratio > 0.0:
            if feature_tiers:
                # p2p needs a wire even in unpartitioned clusters; fall
                # back to the device's native link when none was given.
                p2p_link = link
                if p2p and p2p_link is None:
                    p2p_link = default_link_for(device.name)
                self.cache = TieredFeatureStore.from_dataset(
                    dataset,
                    pool=self.io_ctx.memory,
                    device_ratio=cache_ratio,
                    host_ratio=host_tier_ratio,
                    link=p2p_link,
                    device=device,
                    replica_id=replica_id,
                    num_replicas=fleet_size,
                    p2p=p2p,
                )
            else:
                # Sharded replicas score by owned rows (shard-affinity
                # routing sends them owned-shard traffic); shardless
                # replicas keep the global-degree ranking.
                self.cache = FeatureCache.from_dataset(
                    dataset,
                    ratio=cache_ratio,
                    pool=self.io_ctx.memory,
                    owned_mask=shard.mask if shard is not None else None,
                )
        feats = dataset.features
        self._row_bytes = int(feats.shape[1]) * feats.dtype.itemsize
        # Degradation-ladder state.
        self._level = 0
        self._latency_window = SlidingWindow(self.policy.window)
        # Batcher state (the incremental event API's working set).
        self._pending: list[Request] = []
        self._by_rid: dict[int, RequestLog] = {}
        self._batch_id = 0
        # Fired-but-unfinished requests as (completion, request) pairs:
        # the load-balancing signal (:meth:`outstanding`) counts them,
        # and a kill replays the ones whose completion lies after the
        # failure.  Pruned on every batch completion, so the list stays
        # bounded by concurrent in-service work — not session length.
        self._in_flight: list[tuple[float, Request]] = []
        # Lifecycle state (the cluster control plane's working set).
        #: False once a failure event killed this replica.
        self.alive = True
        #: False for autoscaler standbys and scaled-down replicas;
        #: inactive replicas receive no traffic.
        self.active = active
        #: Simulated time this replica becomes routable (revived or
        #: newly activated replicas sit out spin-up + re-replication).
        self.available_from = 0.0
        #: Accumulated in-service seconds (the GPU-hours meter).
        self.up_seconds = 0.0
        self._up_since: float | None = 0.0 if active else None
        self._deactivated_at: float | None = None
        #: Latest completion this replica produced (meter close-out).
        self.last_completion = 0.0
        #: Kills this replica absorbed.
        self.failures = 0
        # Cross-shard accounting (stays zero without a shard).
        self.cross_shard_rows = 0
        self.cross_shard_bytes = 0
        self.link_seconds = 0.0
        # Peer-to-peer tier accounting (stays zero without the tiered
        # store's p2p band) — charged on the interconnect exactly like
        # cross-shard frontier fetches.
        self.p2p_rows = 0
        self.p2p_bytes = 0
        self.p2p_seconds = 0.0
        # Composition accounting.  ``padding_seeds`` models a padded
        # deployment: each joint batch is charged (max member seed count
        # - member seed count) summed over members — what size-binning
        # minimizes.  ``dedup_rows`` counts feature rows the super-batch
        # path avoided re-fetching by deduplicating across fused
        # requests; ``superbatch_requests`` counts requests served
        # through the fused path.
        self.padding_seeds = 0
        self.dedup_rows = 0
        self.superbatch_requests = 0
        self.superbatch_batches = 0
        # Pair-task accounting (stays zero for node workloads).
        #: Candidate pairs (positive + negative) this replica scored.
        self.pairs_served = 0
        #: Raw endpoint slots the per-batch compaction collapsed away
        #: (raw pair endpoints minus unique seed nodes) — the sampling
        #: and feature-fetch work the compaction avoided.
        self.compaction_saved_rows = 0

    # ------------------------------------------------------------------
    def degree_hotness(self) -> np.ndarray:
        """Per-node in-degree, the hotness ranking requests are drawn by."""
        return np.diff(self.dataset.graph.get("csc").indptr)

    def build_workload(self, spec: WorkloadSpec) -> list[Request]:
        """Generate the spec's request stream over this graph's nodes."""
        return generate_workload(
            spec,
            num_nodes=self.dataset.num_nodes,
            hotness=self.degree_hotness(),
            edges=(
                edge_endpoints_of(self.dataset.graph)
                if spec.task == "linkpred"
                else None
            ),
        )

    def superbatch_window(
        self,
        example_requests: list[Request],
        *,
        memory_fraction: float = 0.25,
        max_size: int = 64,
    ) -> int:
        """Largest fusion window fitting the sampling memory budget.

        Reuses :meth:`~repro.sampler.CompiledSampler.choose_superbatch_size`
        with ``memory_fraction`` of this device's capacity as the
        budget, probing each compiled layer of *both* pipelines — full
        fidelity and degraded — against the representative request mix
        and keeping the most conservative answer.  Probing only the
        full-fidelity pipeline was a bug: when the degradation ladder is
        engaged the fused window executes the degraded pipeline, whose
        layers may admit a *different* window under the same budget, so
        the window must fit whichever pipeline the ladder picks.
        """
        if not example_requests:
            raise ServeError(
                "superbatch window sizing needs at least one example request"
            )
        budget = int(self.device.memory_capacity * memory_fraction)
        seed_sets = [r.seeds for r in example_requests]
        sizes = []
        for pipeline in self._pipelines:
            samplers = getattr(pipeline, "samplers", None)
            if not samplers:
                raise ServeError(
                    f"{self.algorithm!r} has no compiled layers to probe a "
                    "super-batch window against"
                )
            sizes.extend(
                sampler.choose_superbatch_size(
                    seed_sets, memory_budget=budget, max_size=max_size
                )
                for sampler in samplers
            )
        return min(sizes)

    # ------------------------------------------------------------------
    def begin_session(self) -> None:
        """Per-session reset: clear the cache's hit/miss tally.

        A replica reused across serving sessions (two ``advance_until``
        streams on one simulator) would otherwise merge both sessions'
        tallies into one :class:`~repro.cache.CacheStats`; the cluster
        loop calls this at every session start so each report covers
        exactly its own session.
        """
        if self.cache is not None:
            self.cache.reset_epoch()

    # ------------------------------------------------------------------
    def _span(self, name: str, category: str, **attrs: object):
        if self.profiler is None:
            return contextlib.nullcontext()
        return self.profiler.span(name, category, **attrs)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in this replica's batcher queue."""
        return len(self._pending)

    def outstanding(self, now: float) -> int:
        """Requests queued *or in service* at ``now`` — the load signal.

        Batches fire ahead of the arrival being routed, so the batcher
        queue alone is a stale signal (usually zero everywhere); what a
        real balancer tracks is outstanding requests — dispatched but
        not yet answered.  Counts the waiting queue plus every fired
        request whose batch completes after ``now``.
        """
        if self._in_flight:
            self._in_flight = [
                (t, r) for (t, r) in self._in_flight if t > now
            ]
        return len(self._pending) + len(self._in_flight)

    # ------------------------------------------------------------------
    # Lifecycle (the cluster control plane's surface)
    # ------------------------------------------------------------------
    def routable(self, now: float) -> bool:
        """May the router send traffic here at ``now``?"""
        return self.active and self.alive and now >= self.available_from

    def kill(self, now: float) -> list[tuple[Request, RequestLog, bool]]:
        """Die at ``now``; return the orphaned requests.

        Each orphan is ``(request, log, was_in_flight)``: the waiting
        queue in arrival order first, then the in-flight requests whose
        batches would have completed after ``now`` (their device time
        stays charged — the work was burned, the answer died with the
        node).  The caller decides replay-vs-shed per the failure spec.
        """
        orphans: list[tuple[Request, RequestLog, bool]] = []
        for request in self._pending:
            orphans.append((request, self._by_rid.pop(request.rid), False))
        self._pending.clear()
        for completion, request in self._in_flight:
            if completion > now:
                log = self._by_rid.pop(request.rid, None)
                if log is not None:
                    # The batch already "ran" in simulation (logs fill at
                    # fire time), but its answer dies here: scrub the
                    # completion so the request counts as lost, not done.
                    log.start = math.nan
                    log.completion = math.nan
                    log.batch_id = -1
                    log.batch_size = 0
                    orphans.append((request, log, True))
        self._in_flight = []
        self.alive = False
        self.failures += 1
        self._close_meter(now)
        return orphans

    def revive(self, now: float, *, available_from: float) -> None:
        """Come back from the dead; routable from ``available_from``."""
        self.alive = True
        self.available_from = available_from
        self._up_since = now

    def activate(self, now: float, *, available_from: float) -> None:
        """Autoscaler scale-up: standby (or drained replica) rejoins."""
        self.active = True
        self.available_from = available_from
        self._deactivated_at = None
        if self._up_since is None:
            self._up_since = now

    def deactivate(self, now: float) -> None:
        """Autoscaler scale-down: stop receiving traffic and drain.

        The GPU-time meter closes immediately when the replica is idle;
        otherwise it stays open until the drain finishes and the
        end-of-session :meth:`close_meter` charges through the last
        completion instead of the whole makespan.
        """
        self.active = False
        if not self._pending and not self._in_flight:
            self._close_meter(now)
        else:
            self._deactivated_at = now

    def _close_meter(self, now: float) -> None:
        if self._up_since is not None:
            self.up_seconds += max(0.0, now - self._up_since)
            self._up_since = None
        self._deactivated_at = None

    def close_meter(self, end: float) -> None:
        """End-of-session GPU-time close-out.

        Replicas still in the fleet at session end are charged through
        ``end`` (the session makespan); a scaled-down replica that was
        still draining is charged only through its last completion.
        """
        if self._up_since is None:
            return
        if self._deactivated_at is not None:
            self._close_meter(max(self._deactivated_at, self.last_completion))
        else:
            self._close_meter(max(end, self.last_completion))

    def offer(self, request: Request) -> RequestLog:
        """Admit ``request`` into the waiting queue, or shed it.

        Returns the request's log either way, so the caller (the cluster
        or the single-replica loop) can keep one global-arrival-order
        log list across replicas.
        """
        capacity = self.policy.queue_capacity
        if capacity is not None and len(self._pending) >= capacity:
            return RequestLog(
                rid=request.rid,
                arrival=request.arrival,
                admitted=False,
                level=self._level,
                replica=self.replica_id,
                seeds=int(request.seeds.size),
            )
        log = RequestLog(
            rid=request.rid,
            arrival=request.arrival,
            admitted=True,
            replica=self.replica_id,
            seeds=int(request.seeds.size),
        )
        self._pending.append(request)
        self._by_rid[request.rid] = log
        return log

    def _plan(self):
        """The composer's next batch plan over the current queue state."""
        return self.composer.plan(
            self._pending,
            self.policy,
            self.sample_ctx.queue(self._sample_queue).ready,
        )

    def next_fire_time(self) -> float | None:
        """When the next batch would fire; ``None`` with an empty queue.

        Delegated to the composer, which causality-clamps the time to
        the composed batch's own members: never before the sampling
        queue is free, never before the youngest member arrived, and a
        partial batch waits out ``max_wait`` from its oldest member
        (see :func:`~repro.serve.compose.clamp_fire`).
        """
        plan = self._plan()
        return None if plan is None else plan.fire

    def fire_next_batch(self) -> float:
        """Compose and serve the next batch; returns its fire time."""
        plan = self._plan()
        if plan is None:
            raise ServeError("no pending requests to fire")
        batch = [self._pending[i] for i in plan.indices]
        for i in sorted(plan.indices, reverse=True):
            del self._pending[i]
        if plan.superbatch:
            self._serve_superbatch(batch, plan.fire, self._batch_id)
        else:
            self._serve_batch(batch, plan.fire, self._batch_id)
        self._batch_id += 1
        return plan.fire

    def advance_until(self, now: float) -> None:
        """Fire every batch due strictly before ``now``.

        Strict inequality matters: an arrival landing exactly at a fire
        time joins the queue first (and the batch, if it has room) —
        the original monolithic loop's tie-break, preserved so the
        1-replica cluster is decision-for-decision identical.
        """
        while True:
            fire = self.next_fire_time()
            if fire is None or fire >= now:
                return
            self.fire_next_batch()

    def drain(self) -> None:
        """Fire every remaining batch (end of the arrival stream)."""
        while self._pending:
            self.fire_next_batch()

    # ------------------------------------------------------------------
    def _observe(self, latency: float) -> None:
        """Feed one completion into the SLO monitor and move the ladder.

        The window is fed even without an SLO: the autoscaler reads the
        same signal.  On every ladder transition the window is cleared —
        samples measured at the old fidelity level would otherwise keep
        driving the p99 judgement and double-step or flap the ladder, so
        each level's verdict waits for ``min_samples`` completions served
        *at* that level.
        """
        window = self._latency_window
        window.push(latency)
        slo = self.policy.slo
        if slo is None:
            return
        if len(window) < self.policy.min_samples:
            return
        p99 = window.percentile(99.0)
        if p99 > slo and self._level < MAX_DEGRADE_LEVEL:
            self._level += 1
            window.clear()
        elif p99 < self.policy.recover_margin * slo and self._level > 0:
            self._level -= 1
            window.clear()

    def _compact_pairs(self, flat_pairs: np.ndarray) -> np.ndarray:
        """Compact flattened endpoint pairs to the unique seed-node set.

        The graphbolt-style compaction step of the link-prediction path:
        a batch's candidate pairs collapse to one sorted unique node
        array the sampler (and the feature fetch) runs over once, no
        matter how many pairs share an endpoint.
        """
        pairs = flat_pairs.reshape(-1, 2)
        seeds, _, _ = unique_and_compact_node_pairs(pairs)
        self.pairs_served += len(pairs)
        self.compaction_saved_rows += int(flat_pairs.size) - int(seeds.size)
        return seeds

    def _serve_batch(
        self, batch: list[Request], fire: float, batch_id: int
    ) -> None:
        """Run one coalesced sampler invocation and complete its requests."""
        level = self._level
        pipeline = self._pipelines[1 if level >= 1 else 0]
        seeds = np.concatenate([r.seeds for r in batch])
        if self.task == "linkpred":
            seeds = self._compact_pairs(seeds)
        sizes = [int(r.seeds.size) for r in batch]
        self.padding_seeds += max(sizes) * len(sizes) - sum(sizes)
        attrs: dict[str, object] = dict(
            requests=len(batch), seeds=int(seeds.size), level=level
        )
        if self._labelled:
            attrs["replica"] = self.replica_id
        with self._span(f"serve_batch[{batch_id}]", "serve", **attrs):
            with self.sample_ctx.on_queue(self._sample_queue, not_before=fire):
                sample = pipeline.sample_batch(
                    seeds, ctx=self.sample_ctx, rng=self._rng
                )
            sampled_at = self.sample_ctx.queue(self._sample_queue).ready
            completion = self._fetch_features(sample.all_nodes, sampled_at, level)
        self._complete(batch, fire, completion, batch_id, level)

    def _serve_superbatch(
        self, batch: list[Request], fire: float, batch_id: int
    ) -> None:
        """Run one fused super-batch over the batch's per-request seeds.

        Unlike the joint path — which concatenates every member's seeds
        into one anonymous sample — each request is its own sampling
        instance inside a single :meth:`~repro.sampler.CompiledSampler.run_superbatch`
        launch sequence, and the per-request samples come back split
        out.  The feature fetch still happens once for the whole fused
        batch, over the *deduplicated* union of every request's nodes;
        the rows saved versus per-request fetches are the amortization
        the ``dedup_rows`` counter reports.
        """
        level = self._level
        pipeline = self._pipelines[1 if level >= 1 else 0]
        seed_batches = [
            self._compact_pairs(r.seeds) if self.task == "linkpred" else r.seeds
            for r in batch
        ]
        total_seeds = sum(int(s.size) for s in seed_batches)
        attrs: dict[str, object] = dict(
            requests=len(batch), seeds=total_seeds, level=level
        )
        if self._labelled:
            attrs["replica"] = self.replica_id
        with self._span(f"serve_superbatch[{batch_id}]", "serve", **attrs):
            with self.sample_ctx.on_queue(self._sample_queue, not_before=fire):
                samples = pipeline.sample_superbatch(
                    seed_batches, ctx=self.sample_ctx, rng=self._rng
                )
            sampled_at = self.sample_ctx.queue(self._sample_queue).ready
            per_request = [sample.all_nodes for sample in samples]
            nodes = np.unique(np.concatenate(per_request))
            self.dedup_rows += sum(n.size for n in per_request) - int(
                nodes.size
            )
            self.superbatch_requests += len(batch)
            self.superbatch_batches += 1
            completion = self._fetch_features(nodes, sampled_at, level)
        self._complete(batch, fire, completion, batch_id, level)

    def _fetch_features(
        self, nodes: np.ndarray, sampled_at: float, level: int
    ) -> float:
        """Feature I/O for one batch's node set; returns its completion.

        Shared tail of the joint and super-batched paths: cache lookup,
        cross-shard interconnect hop for remotely-owned frontier nodes,
        then the host feature read on the ``transfer`` queue.  With the
        tiered store, the host-tier read keeps the flat path's exact
        charge shape while the remote tier and the p2p band land on
        their own queues — the fetch completes at the *max* of the three
        wires, which is the tiered store's overlap win.
        """
        tiered = isinstance(self.cache, TieredFeatureStore)
        if self.cache is not None:
            plan = plan_gather(nodes, self.cache)
            hits = plan.device_rows
            misses = int(nodes.size) - hits
        else:
            plan = plan_gather(nodes, None)
            hits, misses = 0, int(nodes.size)
        cached_only = level >= MAX_DEGRADE_LEVEL and self.cache is not None
        # Sharded replica: frontier nodes owned by other shards must
        # hop the interconnect from their owner's device before the
        # local feature read.  Cached-only service skips the hop the
        # same way it skips PCIe — remote misses are answered from
        # stale/default embeddings.
        if self.shard is not None and not cached_only:
            remote = self.shard.remote_count(nodes)
            if remote > 0:
                remote_bytes = remote * self._row_bytes
                hop = self.link.transfer_time(remote_bytes)
                with self.io_ctx.on_queue(
                    self._transfer_queue, not_before=sampled_at
                ):
                    self.io_ctx.record(
                        f"cross_shard_fetch[{self.link.name}]",
                        tasks=remote,
                        fixed_seconds=hop,
                    )
                self.cross_shard_rows += remote
                self.cross_shard_bytes += remote_bytes
                self.link_seconds += hop
        # Cached-only service reads just the device-resident rows;
        # misses are answered from stale/default embeddings instead
        # of crossing PCIe — zero host traffic, smaller reads.
        # Only the pinned-host band crosses PCIe as UVA traffic (same
        # per-byte price as a flat miss).  With the tiered store, p2p
        # and remote rows are DMA'd straight into the staging buffer by
        # their own wires (charged below, on their own queues), so they
        # leave the transfer queue's local read/write entirely; with
        # both tiers empty (the full-budget default) the plan is
        # byte-identical to the flat path's.
        rows = hits if cached_only else plan.gathered
        host_rows = 0 if cached_only else plan.host_rows
        with self.io_ctx.on_queue(
            self._transfer_queue, not_before=sampled_at
        ):
            self.io_ctx.record(
                "serve_feature_fetch",
                bytes_read=rows * self._row_bytes,
                bytes_written=rows * self._row_bytes,
                tasks=max(rows, 1),
                graph_bytes=host_rows * self._row_bytes,
            )
        completion = self.io_ctx.queue(self._transfer_queue).ready
        if tiered and not cached_only:
            if plan.remote_rows > 0:
                remote_bytes = plan.remote_rows * self._row_bytes
                with self.io_ctx.on_queue(
                    self._remote_queue, not_before=sampled_at
                ):
                    self.io_ctx.record(
                        f"remote_tier_fetch[{self.cache.remote_tier.name}]",
                        tasks=plan.remote_rows,
                        fixed_seconds=self.cache.remote_tier.fetch_time(
                            remote_bytes
                        ),
                    )
                completion = max(
                    completion, self.io_ctx.queue(self._remote_queue).ready
                )
            if plan.p2p_rows > 0:
                link = self.cache.link
                p2p_bytes = plan.p2p_rows * self._row_bytes
                hop = link.transfer_time(p2p_bytes)
                with self.io_ctx.on_queue(
                    self._p2p_queue, not_before=sampled_at
                ):
                    self.io_ctx.record(
                        f"p2p_fetch[{link.name}]",
                        tasks=plan.p2p_rows,
                        fixed_seconds=hop,
                    )
                self.p2p_rows += plan.p2p_rows
                self.p2p_bytes += p2p_bytes
                self.p2p_seconds += hop
                completion = max(
                    completion, self.io_ctx.queue(self._p2p_queue).ready
                )
        return completion

    def _complete(
        self,
        batch: list[Request],
        fire: float,
        completion: float,
        batch_id: int,
        level: int,
    ) -> None:
        """Fill every member's log and feed the SLO monitor.

        Also prunes in-flight entries that completed at or before this
        batch's fire time: batches fire in global time order, so those
        entries can never be counted by a later :meth:`outstanding`
        call — and without the prune here, routers that never query
        load (round-robin, shard-affinity) would let the list grow one
        entry per request for the whole session.
        """
        if self._in_flight:
            self._in_flight = [
                (t, r) for (t, r) in self._in_flight if t > fire
            ]
        for request in batch:
            log = self._by_rid[request.rid]
            log.start = fire
            log.completion = completion
            log.batch_id = batch_id
            log.batch_size = len(batch)
            log.level = level
            self._in_flight.append((completion, request))
            self._observe(completion - request.arrival)
        self.last_completion = max(self.last_completion, completion)
