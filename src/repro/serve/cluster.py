"""The cluster layer: N replicas behind a router on one simulated clock.

A :class:`ClusterSimulator` owns N :class:`~repro.serve.replica.Replica`
instances (each with its own execution-context pair, memory pool, and
feature cache) and a :class:`~repro.serve.router.Router`.  Its event loop
advances the whole cluster in **global simulated-time order**:

1. arrivals are visited in ``(arrival, rid)`` order;
2. before routing an arrival at time ``t``, *every* replica fires the
   batches due strictly before ``t`` (so queue-depth policies observe
   the same state a real balancer would — not stale snapshots);
3. the router picks a replica; the replica admits or sheds;
4. after the last arrival, all replicas drain.

Replica timelines never interact through device queues — each replica is
its own device — so this ordering is exact, not an approximation: a
replica's batch outcomes depend only on the requests routed to it.

With a graph partition, replica ``i`` owns shard ``i``; frontier nodes a
replica samples outside its shard are fetched from their owners over the
configured :class:`~repro.device.LinkSpec` (NVLink for V100 clusters,
PCIe otherwise) and surface in the report as cross-shard traffic.

A 1-replica round-robin cluster replays the pre-refactor monolithic
simulator decision-for-decision — the fingerprint-compat test holds
``run_serve_session`` to that, bit-identically.
"""

from __future__ import annotations

import contextlib

from repro.cache import DEFAULT_CACHE_RATIO, CacheStats
from repro.datasets import Dataset
from repro.device import DeviceSpec, LinkSpec, default_link_for, get_link
from repro.errors import ServeError
from repro.partition import GraphPartition, make_partition
from repro.profile.spans import Profiler
from repro.serve.compose import BatchComposer, make_composer
from repro.serve.metrics import ServeReport, replica_breakdown, summarize
from repro.serve.replica import (
    Replica,
    ServePolicy,
    build_pipelines,
)
from repro.serve.router import Router, make_router
from repro.serve.workload import Request, WorkloadSpec, generate_workload


class ClusterSimulator:
    """N serving replicas behind a router, on one simulated clock.

    Parameters
    ----------
    dataset, algorithm, device, policy, cache_ratio, seed, profiler:
        As for :class:`~repro.serve.replica.Replica`; every replica gets
        the same policy and its own cache/contexts.  ``seed`` derives
        each replica's independent RNG stream (replica 0 keeps the
        session stream — the single-replica compatibility guarantee).
    num_replicas:
        Serving replicas to run (>= 1).
    router:
        A policy name from :data:`~repro.serve.router.ROUTER_POLICIES`
        or a pre-built :class:`~repro.serve.router.Router`.
    partition:
        ``None`` (unpartitioned: every replica holds the whole graph), a
        partitioner name (``hash``/``greedy``; one shard per replica),
        or a pre-built :class:`~repro.partition.GraphPartition` with
        ``num_shards == num_replicas``.
    link:
        Interconnect for cross-shard frontier fetches: a name
        (``nvlink``/``pcie``), a :class:`~repro.device.LinkSpec`, or
        ``None`` for the device's default wiring (V100 -> NVLink).
        Only meaningful with a partition.
    composer:
        Batch-composition policy, plumbed to every replica: a
        :data:`~repro.serve.compose.COMPOSER_POLICIES` name, a pre-built
        :class:`~repro.serve.compose.BatchComposer`, or a sequence of
        either with one entry per replica (heterogeneous clusters, e.g.
        an A/B lane comparing fifo vs super-batch under one router).
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "graphsage",
        device: DeviceSpec,
        policy: ServePolicy | None = None,
        num_replicas: int = 1,
        router: str | Router = "round_robin",
        partition: str | GraphPartition | None = None,
        link: str | LinkSpec | None = None,
        composer: str | BatchComposer | list | tuple = "fifo",
        cache_ratio: float = DEFAULT_CACHE_RATIO,
        seed: int = 0,
        profiler: Profiler | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ServeError(
                f"cluster needs at least one replica, got {num_replicas}"
            )
        self.dataset = dataset
        self.algorithm = algorithm
        self.device = device
        self.policy = policy if policy is not None else ServePolicy()
        self.profiler = profiler
        if isinstance(partition, str):
            partition = make_partition(
                partition, dataset.graph, num_replicas, seed=seed
            )
        if partition is not None and partition.num_shards != num_replicas:
            raise ServeError(
                f"partition has {partition.num_shards} shards but the "
                f"cluster has {num_replicas} replicas (one shard per "
                "replica)"
            )
        self.partition = partition
        if isinstance(link, str):
            link = get_link(link)
        if link is None and partition is not None:
            link = default_link_for(device.name)
        self.link = link
        self.router = (
            router
            if isinstance(router, Router)
            else make_router(router, seed=seed, partition=partition)
        )
        if isinstance(composer, (list, tuple)):
            if len(composer) != num_replicas:
                raise ServeError(
                    f"got {len(composer)} composers for {num_replicas} "
                    "replicas (one per replica)"
                )
            composers = [make_composer(c) for c in composer]
        else:
            composers = [make_composer(composer)] * num_replicas
        names = {c.name for c in composers}
        #: Session-level composer label: the shared policy name, or
        #: ``"mixed"`` for a heterogeneous cluster.
        self.composer_name = names.pop() if len(names) == 1 else "mixed"
        # One compile, shared by every replica: pipelines are stateless
        # with respect to the execution context.
        pipelines = build_pipelines(dataset, algorithm)
        self.replicas = [
            Replica(
                dataset,
                algorithm=algorithm,
                device=device,
                policy=self.policy,
                cache_ratio=cache_ratio,
                seed=seed,
                profiler=profiler,
                replica_id=i,
                pipelines=pipelines,
                composer=composers[i],
                queue_prefix=f"r{i}:" if num_replicas > 1 else "",
                shard=partition.view(i) if partition is not None else None,
                link=link if partition is not None else None,
            )
            for i in range(num_replicas)
        ]

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def sample_ctx(self):
        """Replica 0's sampling context (single-replica compatibility)."""
        return self.replicas[0].sample_ctx

    @property
    def io_ctx(self):
        """Replica 0's I/O context (single-replica compatibility)."""
        return self.replicas[0].io_ctx

    @property
    def cache(self):
        """Replica 0's feature cache (single-replica compatibility)."""
        return self.replicas[0].cache

    def build_workload(self, spec: WorkloadSpec) -> list[Request]:
        """Generate the spec's request stream over this graph's nodes."""
        return generate_workload(
            spec,
            num_nodes=self.dataset.num_nodes,
            hotness=self.replicas[0].degree_hotness(),
        )

    def _span(self, name: str, category: str, **attrs: object):
        if self.profiler is None:
            return contextlib.nullcontext()
        return self.profiler.span(name, category, **attrs)

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeReport:
        """Serve the whole stream across the cluster; aggregate report.

        The log list is kept in global arrival order (the order arrivals
        were routed), so the cluster fingerprint is the same shape as a
        single replica's and the 1-replica case is bit-identical to the
        pre-refactor monolith.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.rid))
        logs = []
        with self._span("serve_session", "serve", requests=len(ordered)):
            for request in ordered:
                for replica in self.replicas:
                    replica.advance_until(request.arrival)
                target = self.router.route(
                    request, self.replicas, request.arrival
                )
                if not 0 <= target < len(self.replicas):
                    raise ServeError(
                        f"router {self.router.name!r} returned replica "
                        f"{target} of {len(self.replicas)}"
                    )
                logs.append(self.replicas[target].offer(request))
            for replica in self.replicas:
                replica.drain()
        report = summarize(
            logs,
            cache=CacheStats.merged(
                [
                    r.cache.epoch_stats() if r.cache is not None else None
                    for r in self.replicas
                ]
            ),
        )
        report.replicas = self.num_replicas
        report.router = self.router.name
        report.per_replica = replica_breakdown(logs, self.replicas)
        report.cross_shard_rows = sum(
            r.cross_shard_rows for r in self.replicas
        )
        report.cross_shard_bytes = sum(
            r.cross_shard_bytes for r in self.replicas
        )
        report.link_seconds = sum(r.link_seconds for r in self.replicas)
        report.composer = self.composer_name
        report.padding_seeds = sum(r.padding_seeds for r in self.replicas)
        report.dedup_rows = sum(r.dedup_rows for r in self.replicas)
        report.superbatch_requests = sum(
            r.superbatch_requests for r in self.replicas
        )
        report.superbatch_batches = sum(
            r.superbatch_batches for r in self.replicas
        )
        return report


def run_cluster_session(
    dataset: Dataset,
    *,
    algorithm: str = "graphsage",
    device: DeviceSpec,
    spec: WorkloadSpec | None = None,
    policy: ServePolicy | None = None,
    num_replicas: int = 1,
    router: str | Router = "round_robin",
    partition: str | GraphPartition | None = None,
    link: str | LinkSpec | None = None,
    composer: str | BatchComposer | list | tuple = "fifo",
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
) -> tuple[ClusterSimulator, ServeReport]:
    """One-call cluster session: build, generate workload, serve, report.

    This is the cell the CLI, the cluster benchmark, and the determinism
    guards all go through, so a fixed (spec, policy, topology, seed)
    tuple names exactly one reproducible session.
    """
    cluster = ClusterSimulator(
        dataset,
        algorithm=algorithm,
        device=device,
        policy=policy,
        num_replicas=num_replicas,
        router=router,
        partition=partition,
        link=link,
        composer=composer,
        cache_ratio=cache_ratio,
        seed=seed,
        profiler=profiler,
    )
    workload = cluster.build_workload(
        spec if spec is not None else WorkloadSpec(seed=seed)
    )
    return cluster, cluster.run(workload)
