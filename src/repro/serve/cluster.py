"""The cluster layer: N replicas behind a router on one simulated clock.

A :class:`ClusterSimulator` owns N :class:`~repro.serve.replica.Replica`
instances (each with its own execution-context pair, memory pool, and
feature cache) and a :class:`~repro.serve.router.Router`.  Its event loop
advances the whole cluster in **global simulated-time order**:

1. arrivals are visited in ``(arrival, rid)`` order;
2. before routing an arrival at time ``t``, *every* replica fires the
   batches due strictly before ``t`` (so queue-depth policies observe
   the same state a real balancer would — not stale snapshots);
3. the router picks a replica; the replica admits or sheds;
4. after the last arrival, all replicas drain.

Replica timelines never interact through device queues — each replica is
its own device — so this ordering is exact, not an approximation: a
replica's batch outcomes depend only on the requests routed to it.

With a graph partition, replica ``i`` owns shard ``i``; frontier nodes a
replica samples outside its shard are fetched from their owners over the
configured :class:`~repro.device.LinkSpec` (NVLink for V100 clusters,
PCIe otherwise) and surface in the report as cross-shard traffic.

A 1-replica round-robin cluster replays the pre-refactor monolithic
simulator decision-for-decision — the fingerprint-compat test holds
``run_serve_session`` to that, bit-identically.

**The control plane.**  Two optional inputs extend the event loop past
arrivals: a :class:`~repro.serve.failures.FailureSpec` (scheduled
replica kills, orphan retry/hedging, optional revival) and an
:class:`~repro.serve.control.AutoscalePolicy` (periodic scale-up /
scale-down / batch-tuning ticks).  All control events merge into the
same global time-ordered walk the arrivals already take — kills before
revivals before ticks before arrivals at equal timestamps — so an
elastic chaos session is exactly as deterministic as a static one.
Without either input the event list contains only arrivals and the loop
degenerates to the original, which is what keeps failure-free,
autoscaler-off sessions bit-identical to their pinned fingerprints.
"""

from __future__ import annotations

import contextlib
import dataclasses
import math

import numpy as np

from repro.cache import (
    DEFAULT_CACHE_RATIO,
    DEFAULT_HOST_TIER_RATIO,
    CacheStats,
    FeatureCache,
)
from repro.datasets import Dataset
from repro.device import DeviceSpec, LinkSpec, default_link_for, get_link
from repro.dynamic import (
    DeltaGraph,
    DynamicPolicy,
    UpdateBatch,
    UpdateSpec,
    generate_update_stream,
)
from repro.errors import ServeError
from repro.partition import (
    GraphPartition,
    PartitionTracker,
    incremental_rebalance,
    make_partition,
)
from repro.profile.spans import Profiler
from repro.serve.compose import BatchComposer, make_composer
from repro.serve.control import AutoscalePolicy, Autoscaler
from repro.serve.failures import FailureEvent, FailureSpec
from repro.serve.metrics import (
    RequestLog,
    ServeReport,
    replica_breakdown,
    summarize,
)
from repro.serve.replica import (
    Replica,
    ServePolicy,
    build_pipelines,
)
from repro.serve.router import Router, make_router
from repro.serve.workload import Request, WorkloadSpec

#: Same-timestamp event ordering: failures land before revivals before
#: autoscale ticks before graph updates before arrivals, so an arrival
#: at the instant of a kill is routed by the post-kill fleet and an
#: arrival at the instant of an update samples the post-update graph
#: (once the snapshot epoch installs it).
_KILL, _REVIVE, _TICK, _UPDATE, _ARRIVAL = range(5)


class ClusterSimulator:
    """N serving replicas behind a router, on one simulated clock.

    Parameters
    ----------
    dataset, algorithm, device, policy, cache_ratio, seed, profiler:
        As for :class:`~repro.serve.replica.Replica`; every replica gets
        the same policy and its own cache/contexts.  ``seed`` derives
        each replica's independent RNG stream (replica 0 keeps the
        session stream — the single-replica compatibility guarantee).
    num_replicas:
        Serving replicas to run (>= 1).
    router:
        A policy name from :data:`~repro.serve.router.ROUTER_POLICIES`
        or a pre-built :class:`~repro.serve.router.Router`.
    partition:
        ``None`` (unpartitioned: every replica holds the whole graph), a
        partitioner name (``hash``/``greedy``; one shard per replica),
        or a pre-built :class:`~repro.partition.GraphPartition` with
        ``num_shards == num_replicas``.
    link:
        Interconnect for cross-shard frontier fetches: a name
        (``nvlink``/``pcie``), a :class:`~repro.device.LinkSpec`, or
        ``None`` for the device's default wiring (V100 -> NVLink).
        Only meaningful with a partition.
    composer:
        Batch-composition policy, plumbed to every replica: a
        :data:`~repro.serve.compose.COMPOSER_POLICIES` name, a pre-built
        :class:`~repro.serve.compose.BatchComposer`, or a sequence of
        either with one entry per replica (heterogeneous clusters, e.g.
        an A/B lane comparing fifo vs super-batch under one router).
    failures:
        Optional :class:`~repro.serve.failures.FailureSpec`: scheduled
        replica kills plus the orphan/failover policy.  Also flips the
        router's ``mask_dead`` from the spec's ``failover`` flag.
    autoscale:
        Optional :class:`~repro.serve.control.AutoscalePolicy` (or a
        pre-built :class:`~repro.serve.control.Autoscaler`).  The fleet
        is pre-built at ``max_replicas`` with replicas beyond
        ``num_replicas`` as inactive standbys, so scale-ups never
        construct state mid-run (determinism).  Incompatible with a
        graph partition: sharding ties the fleet size to the shard
        count.
    updates:
        Optional streaming-update side of the session: an
        :class:`~repro.dynamic.UpdateSpec` (generated here over this
        graph's degree hotness) or a pre-built batch sequence.  Update
        batches merge into the same global event walk as arrivals;
        each applies to a :class:`~repro.dynamic.DeltaGraph` between
        request batches, and the served graph refreshes on the
        ``dynamic`` policy's snapshot/compaction cadence.  ``None``
        (the default) builds no delta state at all, keeping static
        sessions bit-identical to their pinned fingerprints.
    dynamic:
        :class:`~repro.dynamic.DynamicPolicy` knobs for the update
        side; defaults to ``DynamicPolicy()`` when ``updates`` is set.
        A ``repartition_threshold`` requires a graph partition.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "graphsage",
        device: DeviceSpec,
        policy: ServePolicy | None = None,
        num_replicas: int = 1,
        router: str | Router = "round_robin",
        partition: str | GraphPartition | None = None,
        link: str | LinkSpec | None = None,
        composer: str | BatchComposer | list | tuple = "fifo",
        cache_ratio: float = DEFAULT_CACHE_RATIO,
        seed: int = 0,
        profiler: Profiler | None = None,
        failures: FailureSpec | None = None,
        autoscale: AutoscalePolicy | Autoscaler | None = None,
        feature_tiers: bool = False,
        host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
        p2p: bool = False,
        hbm_budget: int | None = None,
        updates: UpdateSpec | list | tuple | None = None,
        dynamic: DynamicPolicy | None = None,
        task: str = "node",
    ) -> None:
        if num_replicas < 1:
            raise ServeError(
                f"cluster needs at least one replica, got {num_replicas}"
            )
        if isinstance(autoscale, AutoscalePolicy):
            autoscale = Autoscaler(autoscale)
        self.autoscaler = autoscale
        self.failures = failures
        fleet = num_replicas
        if autoscale is not None:
            if partition is not None:
                raise ServeError(
                    "autoscaling is incompatible with a graph partition: "
                    "sharding ties the fleet size to the shard count"
                )
            bounds = autoscale.policy
            if not (
                bounds.min_replicas <= num_replicas <= bounds.max_replicas
            ):
                raise ServeError(
                    f"initial fleet of {num_replicas} lies outside the "
                    f"autoscaler's [{bounds.min_replicas}, "
                    f"{bounds.max_replicas}] bounds"
                )
            fleet = bounds.max_replicas
        if failures is not None:
            for event in failures.events:
                if event.replica >= fleet:
                    raise ServeError(
                        f"failure schedule kills replica {event.replica} "
                        f"but the fleet has {fleet} replicas"
                    )
        self.dataset = dataset
        self.algorithm = algorithm
        self.device = device
        #: Workload task every replica serves (``"node"`` or
        #: ``"linkpred"``); validated by the replicas.
        self.task = task
        self.policy = policy if policy is not None else ServePolicy()
        self.profiler = profiler
        if isinstance(partition, str):
            partition = make_partition(
                partition, dataset.graph, num_replicas, seed=seed
            )
        if partition is not None and partition.num_shards != num_replicas:
            raise ServeError(
                f"partition has {partition.num_shards} shards but the "
                f"cluster has {num_replicas} replicas (one shard per "
                "replica)"
            )
        self.partition = partition
        if isinstance(link, str):
            link = get_link(link)
        if link is None and partition is not None:
            link = default_link_for(device.name)
        self.link = link
        self.router = (
            router
            if isinstance(router, Router)
            else make_router(router, seed=seed, partition=partition)
        )
        if failures is not None:
            self.router.mask_dead = failures.failover
        if isinstance(composer, (list, tuple)):
            if len(composer) != fleet:
                raise ServeError(
                    f"got {len(composer)} composers for {fleet} "
                    "replicas (one per replica)"
                )
            composers = [make_composer(c) for c in composer]
        else:
            composers = [make_composer(composer)] * fleet
        names = {c.name for c in composers}
        #: Session-level composer label: the shared policy name, or
        #: ``"mixed"`` for a heterogeneous cluster.
        self.composer_name = names.pop() if len(names) == 1 else "mixed"
        self.feature_tiers = feature_tiers
        # --- dynamic-graph state (serve-while-ingesting) --------------
        if isinstance(updates, UpdateSpec):
            updates = generate_update_stream(
                updates,
                num_nodes=dataset.num_nodes,
                hotness=np.diff(dataset.graph.get("csc").indptr),
            )
        self._updates: list[UpdateBatch] = (
            [] if updates is None else sorted(
                updates, key=lambda b: (b.time, b.uid)
            )
        )
        self.dynamic = (
            dynamic
            if dynamic is not None
            else (DynamicPolicy() if self._updates else None)
        )
        if (
            self.dynamic is not None
            and self.dynamic.repartition_threshold is not None
            and partition is None
        ):
            raise ServeError(
                "a repartition threshold needs a graph partition whose "
                "drift it can track"
            )
        self._delta = DeltaGraph(dataset.graph) if self._updates else None
        self._tracker = (
            PartitionTracker(partition)
            if self._delta is not None and partition is not None
            else None
        )
        #: Most recently installed graph (what the samplers currently
        #: bind); starts as the immutable base.
        self._current_graph = dataset.graph
        # One compile, shared by every replica: pipelines are stateless
        # with respect to the execution context.
        pipelines = build_pipelines(dataset, algorithm)
        #: Kept so snapshot installs can rebind every compiled layer's
        #: graph once (the pipelines are shared across the fleet).
        self._pipelines = pipelines
        self.replicas = [
            Replica(
                dataset,
                algorithm=algorithm,
                device=device,
                policy=self.policy,
                cache_ratio=cache_ratio,
                seed=seed,
                profiler=profiler,
                replica_id=i,
                pipelines=pipelines,
                composer=composers[i],
                queue_prefix=f"r{i}:" if fleet > 1 else "",
                shard=partition.view(i) if partition is not None else None,
                link=link if partition is not None else None,
                task=task,
                active=i < num_replicas,
                feature_tiers=feature_tiers,
                host_tier_ratio=host_tier_ratio,
                p2p=p2p,
                hbm_budget=hbm_budget,
                fleet_size=fleet,
            )
            for i in range(fleet)
        ]
        # Control-plane session counters (reset per run()).
        self._kills_executed = 0
        self._hedge_wins = 0
        self._reprovision_bytes = 0
        # Dynamic-session counters (reset per run()).
        self._reset_dynamic_counters()

    def _reset_dynamic_counters(self) -> None:
        self._dyn_snapshots = 0
        self._dyn_rebalances = 0
        self._dyn_migrated_rows = 0
        self._dyn_migrated_bytes = 0
        self._dyn_refresh_seconds = 0.0
        self._dyn_staleness_sum = 0.0
        self._dyn_staleness_max = 0.0
        self._dyn_staleness_edges = 0
        #: (arrival time, edge count) of applied-but-not-yet-installed
        #: update batches — the staleness ledger.
        self._dyn_pending: list[tuple[float, int]] = []
        self._dyn_last_install = 0.0

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def sample_ctx(self):
        """Replica 0's sampling context (single-replica compatibility)."""
        return self.replicas[0].sample_ctx

    @property
    def io_ctx(self):
        """Replica 0's I/O context (single-replica compatibility)."""
        return self.replicas[0].io_ctx

    @property
    def cache(self):
        """Replica 0's feature cache (single-replica compatibility)."""
        return self.replicas[0].cache

    def build_workload(self, spec: WorkloadSpec) -> list[Request]:
        """Generate the spec's request stream over this graph's nodes."""
        return self.replicas[0].build_workload(spec)

    def _span(self, name: str, category: str, **attrs: object):
        if self.profiler is None:
            return contextlib.nullcontext()
        return self.profiler.span(name, category, **attrs)

    # ------------------------------------------------------------------
    # Control-plane execution
    # ------------------------------------------------------------------
    def _build_events(self, ordered: list[Request]) -> list[tuple]:
        """Merge arrivals, kills, revivals, autoscale ticks, and graph
        updates into one time-ordered walk (ties broken by the
        event-kind priority, then by schedule position / rid / uid —
        fully deterministic)."""
        events: list[tuple] = [
            (request.arrival, _ARRIVAL, request.rid, request)
            for request in ordered
        ]
        for batch in self._updates:
            events.append((batch.time, _UPDATE, batch.uid, batch))
        if self.failures is not None:
            for idx, event in enumerate(self.failures.events):
                events.append((event.time, _KILL, idx, event))
                if event.downtime is not None:
                    events.append(
                        (event.time + event.downtime, _REVIVE, idx, event)
                    )
        if self.autoscaler is not None and ordered:
            horizon = ordered[-1].arrival
            interval = self.autoscaler.policy.interval
            tick = 1
            while tick * interval <= horizon:
                events.append((tick * interval, _TICK, tick, None))
                tick += 1
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return events

    def _append_log(self, rid: int, log: RequestLog) -> None:
        self._log_index[rid] = len(self._logs)
        self._logs.append(log)

    def _lost_log(
        self, request: Request, replica: int
    ) -> RequestLog:
        """An admitted-but-never-answered record (cluster-level loss)."""
        return RequestLog(
            rid=request.rid,
            arrival=request.arrival,
            admitted=True,
            replica=replica,
            seeds=int(request.seeds.size),
        )

    def _route_arrival(self, now: float, request: Request) -> None:
        """Route one arrival through the (possibly reduced) fleet."""
        if not self.router.eligible(self.replicas, now):
            # Nobody to ask: admitted by the cluster, never answered.
            self._append_log(request.rid, self._lost_log(request, -1))
            return
        target = self.router.route(request, self.replicas, now)
        if not 0 <= target < len(self.replicas):
            raise ServeError(
                f"router {self.router.name!r} returned replica "
                f"{target} of {len(self.replicas)}"
            )
        replica = self.replicas[target]
        if not replica.routable(now):
            # The no-failover baseline: a blind router keeps sending
            # arrivals to the corpse, and they die with it.
            self._append_log(request.rid, self._lost_log(request, target))
            return
        self._append_log(request.rid, replica.offer(request))

    def _reprovision(
        self, replica: Replica, now: float, not_before: float
    ) -> float:
        """Charge a replica's state re-replication stream; its seconds.

        A revived or newly activated replica does not start cold: its
        shard (partitioned cluster) or its warm feature-cache rows
        (unpartitioned) stream back from a peer over the cluster
        interconnect, on the replica's transfer queue — so its first
        post-recovery batches also queue behind the stream.
        """
        if replica.shard is not None:
            rows = replica.shard.num_nodes
        elif replica.cache is not None:
            rows = replica.cache.cached_rows
        else:
            rows = 0
        nbytes = rows * replica._row_bytes
        if nbytes == 0:
            return 0.0
        link = (
            self.link
            if self.link is not None
            else default_link_for(self.device.name)
        )
        seconds = link.bulk_transfer_time(nbytes)
        with replica.io_ctx.on_queue(
            replica._transfer_queue, not_before=not_before
        ):
            replica.io_ctx.record(
                f"reprovision[{link.name}]",
                tasks=rows,
                fixed_seconds=seconds,
            )
        self._reprovision_bytes += nbytes
        return seconds

    def _execute_kill(self, now: float, event: FailureEvent) -> None:
        replica = self.replicas[event.replica]
        if not replica.alive:
            return
        orphans = replica.kill(now)
        self._kills_executed += 1
        if self.failures.orphans == "shed":
            # Orphaned logs stay admitted-but-incomplete: lost.
            return
        for request, log, _was_in_flight in orphans:
            self._reroute(now, request, log)

    def _reroute(self, now: float, request: Request, log: RequestLog) -> None:
        """Re-route one orphaned request, hedging if the spec asks."""
        spec = self.failures
        candidates = self._hedges.get(request.rid)
        if candidates is not None:
            # One copy of a hedged request died; the survivor (if any)
            # carries on and this copy is simply cancelled.
            remaining = [c for c in candidates if c is not log]
            if remaining:
                self._hedges[request.rid] = remaining
                return
            del self._hedges[request.rid]
        if log.retries >= spec.max_retries:
            return  # retry budget exhausted: lost
        eligible = self.router.eligible(self.replicas, now)
        if not eligible:
            return  # nowhere to go: lost
        # The retry re-enters the batcher *now*; its log keeps the
        # original arrival so the measured latency includes the failure.
        retry = dataclasses.replace(request, arrival=now)
        target = self.router.route(retry, self.replicas, now)
        primary = self.replicas[target]
        if not primary.routable(now):
            return  # blind router picked a corpse: lost
        new_log = primary.offer(retry)
        if not new_log.admitted:
            return  # target queue full — admitted once, never answered
        new_log.arrival = log.arrival
        new_log.retries = log.retries + 1
        self._logs[self._log_index[request.rid]] = new_log
        if spec.hedge:
            others = [
                i
                for i in eligible
                if i != target and self.replicas[i].routable(now)
            ]
            if others:
                hedge_log = self.replicas[others[0]].offer(retry)
                if hedge_log.admitted:
                    hedge_log.arrival = log.arrival
                    hedge_log.retries = new_log.retries
                    new_log.hedged = True
                    hedge_log.hedged = True
                    self._hedges[request.rid] = [new_log, hedge_log]

    def _execute_revive(self, now: float, event: FailureEvent) -> None:
        replica = self.replicas[event.replica]
        if replica.alive:
            return
        spinup = self.failures.spinup
        transfer = self._reprovision(replica, now, now + spinup)
        replica.revive(now, available_from=now + spinup + transfer)

    def _autoscale_tick(self, now: float) -> None:
        scaler = self.autoscaler
        policy = scaler.policy
        decision = scaler.decide(now, self.replicas)
        if decision == "up":
            standby = next(
                (r for r in self.replicas if not r.active and r.alive), None
            )
            if standby is not None:
                transfer = self._reprovision(
                    standby, now, now + policy.spinup
                )
                standby.activate(
                    now, available_from=now + policy.spinup + transfer
                )
                scaler.record(
                    now,
                    "up",
                    standby.replica_id,
                    sum(1 for r in self.replicas if r.active),
                )
        elif decision == "down":
            actives = [r for r in self.replicas if r.active and r.alive]
            if len(actives) > policy.min_replicas:
                victim = actives[-1]
                victim.deactivate(now)
                scaler.record(
                    now,
                    "down",
                    victim.replica_id,
                    sum(1 for r in self.replicas if r.active),
                )
        scaler.tune(now, self.replicas)

    # ------------------------------------------------------------------
    # Dynamic-graph execution (serve-while-ingesting)
    # ------------------------------------------------------------------
    def _execute_update(self, now: float, batch: UpdateBatch) -> None:
        """Apply one update batch; install/compact/rebalance per policy.

        Updates apply *between* request batches: the event loop fires
        every batch due strictly before ``now`` first, so a snapshot
        installed here is what the next fired batch samples.
        """
        self._delta.apply(batch)
        self._dyn_pending.append((now, batch.num_edges))
        if self._tracker is not None:
            self._tracker.apply_updates(batch.src, batch.dst, batch.delete)
        policy = self.dynamic
        compact = (
            policy.compact_every > 0
            and self._delta.batches_applied % policy.compact_every == 0
        )
        if compact:
            self._install_graph(now, compact=True)
        elif now - self._dyn_last_install >= policy.snapshot_every:
            self._install_graph(now, compact=False)
        if (
            self._tracker is not None
            and policy.repartition_threshold is not None
            and self._tracker.needs_rebalance(policy.repartition_threshold)
        ):
            self._rebalance(now)

    def _install_graph(self, now: float, *, compact: bool) -> None:
        """Materialize the delta and swap it under the compiled layers.

        The rebuild is charged to *every* replica's sample queue (each
        device merges its own copy, so in-flight sampling queues behind
        the refresh — the latency half of the staleness-vs-latency
        trade).  The compiled pipelines are shared across the fleet, so
        the graph rebinds once.
        """
        delta = self._delta
        workload = (
            delta.compact_workload() if compact else delta.merge_workload()
        )
        dirty = delta.drain_dirty()
        name = "graph_compact" if compact else "graph_snapshot"
        for replica in self.replicas:
            with replica.sample_ctx.on_queue(
                replica._sample_queue, not_before=now
            ):
                replica.sample_ctx.record(name, **workload)
            self._dyn_refresh_seconds += self.device.kernel_time(
                bytes_moved=workload["bytes_read"] + workload["bytes_written"],
                flops=workload["flops"],
                tasks=workload["tasks"],
            )
        matrix = delta.compact() if compact else delta.snapshot()
        self._current_graph = matrix
        for pipeline in self._pipelines:
            for sampler in pipeline.samplers:
                sampler.graph = matrix
        if not compact:
            self._dyn_snapshots += 1
        self._dyn_last_install = now
        # Staleness: each pending batch was invisible from its arrival
        # until this install.
        for arrived, edges in self._dyn_pending:
            lag = now - arrived
            self._dyn_staleness_sum += lag * edges
            self._dyn_staleness_max = max(self._dyn_staleness_max, lag)
            self._dyn_staleness_edges += edges
        self._dyn_pending = []
        if self.dynamic.invalidate_cache and dirty.size:
            for replica in self.replicas:
                if replica.cache is None:
                    continue
                replica.cache.invalidate(dirty)
                if compact and isinstance(replica.cache, FeatureCache):
                    # A compaction is the natural re-admission point:
                    # refill the tombstoned slots against live degrees.
                    replica.cache.rerank(delta.degrees())

    def _rebalance(self, now: float) -> None:
        """Bounded shard migration when degree balance drifts too far.

        Moves at most ``max_migrate_rows`` nodes from the most to the
        least loaded shard (affinity-scored, see
        :func:`~repro.partition.incremental_rebalance`), charges each
        receiving replica's feature-row stream over the interconnect on
        its transfer queue — the same wire re-replication uses — and
        rebases the drift tracker so the next trigger measures fresh
        drift.
        """
        policy = self.dynamic
        tracker = self._tracker
        plan = incremental_rebalance(
            self._current_graph,
            self.partition.assignment,
            self.num_replicas,
            target_balance=max(tracker.baseline_balance, 1.0),
            max_moves=policy.max_migrate_rows,
        )
        if plan.num_moved == 0:
            # Nothing movable under the overshoot guard: rebase so the
            # trigger does not refire on every subsequent batch.
            tracker.rebase(self.partition)
            return
        self.partition = dataclasses.replace(
            self.partition,
            assignment=plan.assignment,
            edge_cut=plan.edge_cut,
            shard_degrees=plan.shard_degrees,
        )
        link = (
            self.link
            if self.link is not None
            else default_link_for(self.device.name)
        )
        for i, replica in enumerate(self.replicas):
            replica.shard = self.partition.view(i)
            incoming = plan.rows_into(i)
            if incoming.size == 0:
                continue
            nbytes = int(incoming.size) * replica._row_bytes
            seconds = link.bulk_transfer_time(nbytes)
            with replica.io_ctx.on_queue(
                replica._transfer_queue, not_before=now
            ):
                replica.io_ctx.record(
                    f"shard_migration[{link.name}]",
                    tasks=int(incoming.size),
                    fixed_seconds=seconds,
                )
            self._dyn_migrated_bytes += nbytes
        if hasattr(self.router, "partition"):
            self.router.partition = self.partition
        if policy.invalidate_cache:
            # Moved rows change owners, so every replica's residency
            # verdict for them is stale.
            for replica in self.replicas:
                if replica.cache is not None:
                    replica.cache.invalidate(plan.moved_nodes)
        self._dyn_rebalances += 1
        self._dyn_migrated_rows += plan.num_moved
        tracker.rebase(self.partition)

    def _resolve_hedges(self) -> None:
        """First completion wins; the duplicate is cancelled in
        accounting (its device time stays burned, its log is dropped)."""
        for rid, candidates in self._hedges.items():
            done = [c for c in candidates if c.completed]
            if not done:
                continue  # both copies died: the log in place stays lost
            winner = min(done, key=lambda c: c.completion)
            if winner is not candidates[0]:
                self._hedge_wins += 1
            self._logs[self._log_index[rid]] = winner

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeReport:
        """Serve the whole stream across the cluster; aggregate report.

        The log list is kept in global arrival order (the order arrivals
        were routed), so the cluster fingerprint is the same shape as a
        single replica's and the 1-replica case is bit-identical to the
        pre-refactor monolith.  Without a failure spec or autoscaler the
        event list holds only arrivals and this loop replays the
        pre-control-plane walk exactly.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.rid))
        control = self.failures is not None or self.autoscaler is not None
        self._logs: list[RequestLog] = []
        self._log_index: dict[int, int] = {}
        self._hedges: dict[int, list[RequestLog]] = {}
        self._kills_executed = 0
        self._hedge_wins = 0
        self._reprovision_bytes = 0
        self._reset_dynamic_counters()
        events = self._build_events(ordered)
        # Session-scoped cache accounting: a simulator reused across
        # sessions must not bleed one session's hit/miss tally into the
        # next report.
        for replica in self.replicas:
            replica.begin_session()
        with self._span("serve_session", "serve", requests=len(ordered)):
            for time, kind, _seq, payload in events:
                for replica in self.replicas:
                    replica.advance_until(time)
                if kind == _ARRIVAL:
                    self._route_arrival(time, payload)
                elif kind == _UPDATE:
                    self._execute_update(time, payload)
                elif kind == _KILL:
                    self._execute_kill(time, payload)
                elif kind == _REVIVE:
                    self._execute_revive(time, payload)
                else:
                    self._autoscale_tick(time)
            for replica in self.replicas:
                replica.drain()
            if self.feature_tiers:
                # One summary span per replica so the Chrome trace shows
                # where each replica's gathered rows actually lived.
                for replica in self.replicas:
                    if replica.cache is None:
                        continue
                    stats = replica.cache.epoch_stats()
                    with self._span(
                        f"tiered_cache[r{replica.replica_id}]",
                        "cache",
                        device_hits=stats.hits,
                        p2p_hits=stats.p2p_hits,
                        host_hits=stats.host_hits,
                        remote_hits=stats.remote_hits,
                        device_rows=stats.cached_rows,
                        host_rows=stats.host_rows,
                    ):
                        pass
        self._resolve_hedges()
        logs = self._logs
        if control:
            end = max(
                (r.last_completion for r in self.replicas), default=0.0
            )
            for replica in self.replicas:
                replica.close_meter(end)
        report = summarize(
            logs,
            cache=CacheStats.merged(
                [
                    r.cache.epoch_stats() if r.cache is not None else None
                    for r in self.replicas
                ]
            ),
        )
        report.replicas = self.num_replicas
        report.router = self.router.name
        report.per_replica = replica_breakdown(logs, self.replicas)
        report.cross_shard_rows = sum(
            r.cross_shard_rows for r in self.replicas
        )
        report.cross_shard_bytes = sum(
            r.cross_shard_bytes for r in self.replicas
        )
        report.link_seconds = sum(r.link_seconds for r in self.replicas)
        report.composer = self.composer_name
        if self.task != "node":
            report.task = self.task
            report.pairs_served = sum(r.pairs_served for r in self.replicas)
            report.compaction_saved_rows = sum(
                r.compaction_saved_rows for r in self.replicas
            )
        report.padding_seeds = sum(r.padding_seeds for r in self.replicas)
        report.dedup_rows = sum(r.dedup_rows for r in self.replicas)
        report.superbatch_requests = sum(
            r.superbatch_requests for r in self.replicas
        )
        report.superbatch_batches = sum(
            r.superbatch_batches for r in self.replicas
        )
        if self.feature_tiers:
            report.feature_tiers = True
            report.p2p_rows = sum(r.p2p_rows for r in self.replicas)
            report.p2p_bytes = sum(r.p2p_bytes for r in self.replicas)
            report.p2p_seconds = sum(r.p2p_seconds for r in self.replicas)
        if control:
            report.elastic = True
            report.failures = self._kills_executed
            report.hedge_wins = self._hedge_wins
            report.gpu_seconds = sum(r.up_seconds for r in self.replicas)
            report.reprovision_bytes = self._reprovision_bytes
            if self.autoscaler is not None:
                actions = [e.action for e in self.autoscaler.events]
                report.scale_ups = actions.count("up")
                report.scale_downs = actions.count("down")
                report.tune_moves = actions.count("tune")
        if self._delta is not None:
            # Updates still pending at session end stayed invisible for
            # the rest of the session; they count as stale to the end.
            end = max(
                max((r.last_completion for r in self.replicas), default=0.0),
                events[-1][0] if events else 0.0,
            )
            for arrived, edges in self._dyn_pending:
                lag = end - arrived
                self._dyn_staleness_sum += lag * edges
                self._dyn_staleness_max = max(self._dyn_staleness_max, lag)
                self._dyn_staleness_edges += edges
            self._dyn_pending = []
            delta = self._delta
            report.dynamic = True
            report.ingested_edges = delta.inserted_edges
            report.deleted_edges = delta.deleted_edges
            report.update_batches = delta.batches_applied
            report.snapshots = self._dyn_snapshots
            report.compactions = delta.compactions
            report.mean_staleness_ms = (
                self._dyn_staleness_sum / self._dyn_staleness_edges * 1e3
                if self._dyn_staleness_edges
                else 0.0
            )
            report.max_staleness_ms = self._dyn_staleness_max * 1e3
            report.refresh_ms = self._dyn_refresh_seconds * 1e3
            report.rebalances = self._dyn_rebalances
            report.migrated_rows = self._dyn_migrated_rows
            report.migrated_bytes = self._dyn_migrated_bytes
        return report


def run_cluster_session(
    dataset: Dataset,
    *,
    algorithm: str = "graphsage",
    device: DeviceSpec,
    spec: WorkloadSpec | None = None,
    policy: ServePolicy | None = None,
    num_replicas: int = 1,
    router: str | Router = "round_robin",
    partition: str | GraphPartition | None = None,
    link: str | LinkSpec | None = None,
    composer: str | BatchComposer | list | tuple = "fifo",
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
    failures: FailureSpec | None = None,
    autoscale: AutoscalePolicy | Autoscaler | None = None,
    feature_tiers: bool = False,
    host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
    p2p: bool = False,
    hbm_budget: int | None = None,
    updates: UpdateSpec | list | tuple | None = None,
    dynamic: DynamicPolicy | None = None,
    task: str = "node",
) -> tuple[ClusterSimulator, ServeReport]:
    """One-call cluster session: build, generate workload, serve, report.

    This is the cell the CLI, the cluster benchmark, and the determinism
    guards all go through, so a fixed (spec, policy, topology, seed,
    failure schedule, autoscale policy) tuple names exactly one
    reproducible session.
    """
    cluster = ClusterSimulator(
        dataset,
        algorithm=algorithm,
        device=device,
        policy=policy,
        num_replicas=num_replicas,
        router=router,
        partition=partition,
        link=link,
        composer=composer,
        cache_ratio=cache_ratio,
        seed=seed,
        profiler=profiler,
        failures=failures,
        autoscale=autoscale,
        feature_tiers=feature_tiers,
        host_tier_ratio=host_tier_ratio,
        p2p=p2p,
        hbm_budget=hbm_budget,
        updates=updates,
        dynamic=dynamic,
        task=task,
    )
    if spec is None:
        spec = WorkloadSpec(seed=seed, task=task)
    elif spec.task != task:
        raise ServeError(
            f"workload spec task {spec.task!r} does not match the "
            f"session task {task!r}"
        )
    workload = cluster.build_workload(spec)
    return cluster, cluster.run(workload)
