"""Batch composition policies for the serving replica.

Admission (may this request join the queue?) and *composition* (which
queued requests form the next sampler invocation, and when does it
fire?) are separate decisions.  Admission stays on the replica — it is
where the bounded queue and the shed/degrade ladder live — while
composition is delegated to a pluggable :class:`BatchComposer`:

* :class:`FifoComposer` — the classic dynamic batcher: the oldest
  ``max_batch`` requests coalesce into one joint sampler call.  This is
  the pre-composer replica path, decision-for-decision (the FIFO
  fingerprint pin holds it to the PR 5 value bit-identically).
* :class:`SizeBinnedComposer` — requests are grouped into power-of-two
  seed-count bins and batches never mix bins, so a padded deployment
  wastes no slots padding a 1-seed lookup up to a 64-seed scan.
* :class:`SuperbatchComposer` — every pending request (up to an
  optional window cap) is taken at once and executed as one
  super-batched compiled run (``sampler.run_superbatch``): independent
  per-request sampling instances fused into a single launch sequence,
  then split back per request.  This generalizes the paper's
  super-batch optimization (Table 7) from training epochs to the
  serving hot loop — kernel-launch overhead is amortized over the whole
  window instead of one dynamic batch.

The composer contract:

* ``plan(pending, policy, queue_ready)`` is **pure**: it never mutates
  the queue and the same inputs always produce the same plan (the
  serving fingerprints depend on this).
* ``pending`` is in arrival order; the returned indices are strictly
  increasing positions into it, and every index appears in at most one
  plan because the replica pops planned members before re-planning —
  together these give the exactly-once batching invariant the property
  tests fuzz.
* The fire time is **causality-clamped by the composed members**: a
  batch can never fire before the sampling queue is free nor before its
  own youngest member arrived, and a partial batch waits out
  ``max_wait`` from its oldest member.  Computing this from the members
  (not from global queue positions) is the contract fix for the latent
  FIFO bug where the fire time indexed ``pending[max_batch - 1]`` — the
  wrong request entirely once composition is non-prefix.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Sequence

from repro.errors import ServeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.replica import ServePolicy
    from repro.serve.workload import Request

__all__ = [
    "COMPOSER_POLICIES",
    "BatchComposer",
    "BatchPlan",
    "FifoComposer",
    "SizeBinnedComposer",
    "SuperbatchComposer",
    "clamp_fire",
    "make_composer",
]

#: Composition policies selectable from the CLI ``--composer`` flag.
COMPOSER_POLICIES: tuple[str, ...] = ("fifo", "binned", "superbatch")


@dataclasses.dataclass(frozen=True)
class BatchPlan:
    """One composed batch: which pending requests, when, and how."""

    #: Strictly increasing positions into the pending queue.
    indices: tuple[int, ...]
    #: Simulated time the batch fires (causality-clamped, see module doc).
    fire: float
    #: True when the batch executes through the super-batched compiled
    #: path (one fused run, per-request unflattened results) instead of
    #: the joint concatenated sampler call.
    superbatch: bool = False


def clamp_fire(
    members: Sequence["Request"],
    queue_ready: float,
    *,
    full: bool,
    policy: "ServePolicy",
) -> float:
    """Causality-clamped fire time for a composed batch.

    A batch fires as soon as the sampling queue is free — but no earlier
    than its youngest member arrived (the request that completed the
    batch may have landed after the device went idle).  A partial batch
    additionally waits out ``max_wait`` from its *oldest* member.

    ``members`` must be in arrival order (a subsequence of the pending
    queue), so the youngest member is the last one.  For the FIFO
    prefix-of-the-queue composition this reduces exactly to the legacy
    formula — ``max(queue_ready, pending[max_batch - 1].arrival)`` for a
    full batch, ``max(queue_ready, head.arrival + max_wait)`` for a
    partial one — which is what keeps the FIFO fingerprint pinned.
    """
    if not members:
        raise ServeError("cannot compute a fire time for an empty batch")
    fire = max(queue_ready, members[-1].arrival)
    if not full:
        fire = max(fire, members[0].arrival + policy.max_wait)
    return fire


class BatchComposer(abc.ABC):
    """Strategy deciding which pending requests form the next batch."""

    #: CLI / report name of the policy.
    name: str = ""
    #: True when the composed batches execute through the replica's
    #: super-batched path (requires ``pipeline.supports_superbatch``).
    requires_superbatch: bool = False

    @abc.abstractmethod
    def plan(
        self,
        pending: Sequence["Request"],
        policy: "ServePolicy",
        queue_ready: float,
    ) -> BatchPlan | None:
        """The next batch to fire, or ``None`` with an empty queue.

        Must be pure (no queue mutation, no hidden state) and must
        return a plan whenever ``pending`` is non-empty, so the
        replica's drain loop always makes progress.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class FifoComposer(BatchComposer):
    """The legacy dynamic batcher: oldest ``max_batch`` requests, FIFO.

    Bit-identical to the pre-composer replica: same members, same fire
    times, same joint concatenated sampler call (the pinned-fingerprint
    test holds this path to the PR 5 value).
    """

    name = "fifo"

    def plan(
        self,
        pending: Sequence["Request"],
        policy: "ServePolicy",
        queue_ready: float,
    ) -> BatchPlan | None:
        if not pending:
            return None
        members = list(pending[: policy.max_batch])
        full = len(pending) >= policy.max_batch
        fire = clamp_fire(members, queue_ready, full=full, policy=policy)
        return BatchPlan(indices=tuple(range(len(members))), fire=fire)


def seed_bin(num_seeds: int) -> int:
    """Power-of-two seed-count bin: sizes ``[2**(b-1), 2**b)`` share bin
    ``b`` (1 -> bin 1, 2-3 -> bin 2, 4-7 -> bin 3, ...)."""
    return max(1, int(num_seeds)).bit_length()


class SizeBinnedComposer(BatchComposer):
    """Batches never mix seed-count bins, minimizing padding waste.

    Pending requests are grouped into power-of-two seed-count bins; each
    bin behaves like its own FIFO batcher (oldest ``max_batch`` members,
    full when the bin holds ``max_batch``, ``max_wait`` from the bin
    head otherwise) and the bin whose batch fires earliest wins.  Ties
    break toward the older head, then the smaller bin — both total
    orders, so planning stays deterministic.
    """

    name = "binned"

    def plan(
        self,
        pending: Sequence["Request"],
        policy: "ServePolicy",
        queue_ready: float,
    ) -> BatchPlan | None:
        if not pending:
            return None
        bins: dict[int, list[int]] = {}
        for pos, request in enumerate(pending):
            bins.setdefault(seed_bin(request.seeds.size), []).append(pos)
        best: tuple[float, float, int, tuple[int, ...]] | None = None
        for key in sorted(bins):
            positions = bins[key]
            indices = tuple(positions[: policy.max_batch])
            members = [pending[i] for i in indices]
            full = len(positions) >= policy.max_batch
            fire = clamp_fire(members, queue_ready, full=full, policy=policy)
            candidate = (fire, members[0].arrival, key, indices)
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return BatchPlan(indices=best[3], fire=best[0])


class SuperbatchComposer(BatchComposer):
    """All pending requests fused into one super-batched compiled run.

    Fires on the same triggers as the FIFO batcher — ``max_batch``
    requests pending, or the oldest has waited ``max_wait`` — but takes
    the *entire* pending queue (up to ``max_requests``) when it does,
    executing it as one ``run_superbatch`` launch sequence with
    per-request results split back out.  Under load this amortizes the
    per-launch overhead over the whole window instead of one dynamic
    batch: the serving analogue of the paper's super-batch optimization.

    ``max_requests`` caps the fusion window (e.g. from
    ``choose_superbatch_size`` under a sampling memory budget); ``None``
    leaves the window bounded only by the admission queue capacity.
    """

    name = "superbatch"
    requires_superbatch = True

    def __init__(self, max_requests: int | None = None) -> None:
        if max_requests is not None and max_requests < 1:
            raise ServeError(
                "super-batch window must be at least 1 request (or None "
                f"for unbounded), got {max_requests}"
            )
        self.max_requests = max_requests

    def plan(
        self,
        pending: Sequence["Request"],
        policy: "ServePolicy",
        queue_ready: float,
    ) -> BatchPlan | None:
        if not pending:
            return None
        cap = self.max_requests
        members = list(pending if cap is None else pending[:cap])
        full = len(pending) >= policy.max_batch or (
            cap is not None and len(pending) >= cap
        )
        fire = clamp_fire(members, queue_ready, full=full, policy=policy)
        return BatchPlan(
            indices=tuple(range(len(members))), fire=fire, superbatch=True
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SuperbatchComposer(max_requests={self.max_requests})"


def make_composer(
    composer: str | BatchComposer, *, max_requests: int | None = None
) -> BatchComposer:
    """Build a composer from a policy name (passes instances through).

    ``max_requests`` applies to the super-batch policy only (its fusion
    window); naming any other policy with a window set is an error, not
    a silent ignore.
    """
    if isinstance(composer, BatchComposer):
        return composer
    if composer == "fifo":
        made: BatchComposer = FifoComposer()
    elif composer == "binned":
        made = SizeBinnedComposer()
    elif composer == "superbatch":
        return SuperbatchComposer(max_requests=max_requests)
    else:
        raise ServeError(
            f"unknown composer {composer!r}; available: "
            f"{sorted(COMPOSER_POLICIES)}"
        )
    if max_requests is not None:
        raise ServeError(
            f"composer {composer!r} takes no super-batch window "
            "(--superbatch-window applies to --composer superbatch)"
        )
    return made
