"""The serving control plane: elastic autoscaling and batch autotuning.

The degradation ladder (PR 4) already computes a sliding-window p99 per
replica; this module turns that signal — plus queue occupancy — into
*replica lifecycle* decisions instead of fidelity ones.  An
:class:`Autoscaler` is evaluated by the cluster at a fixed simulated
interval, between arrivals:

* **scale up** when the pooled windowed p99 breaches ``high_p99`` or
  mean outstanding-per-replica exceeds ``high_occupancy``: the lowest-id
  standby replica is activated, pays the spin-up latency plus a
  re-replication transfer over the interconnect (its shard, or its warm
  cache rows, must stream in before it is routable);
* **scale down** when p99 sits below ``low_p99`` *and* occupancy below
  ``low_occupancy``: the highest-id active replica stops receiving
  traffic and drains what it holds.  GPU-time accounting
  (``ServeReport.gpu_seconds``) closes its meter when the drain ends,
  so "elastic vs static at equal GPU-hours" is an honest comparison;
* a **cooldown** separates consecutive scale operations, the standard
  guard against control-loop flapping.

The same controller optionally *autotunes batching* per replica
(``tune_batching``): a deterministic hill-climber doubles or halves
``max_batch`` (scaling ``max_wait`` with it) and keeps the direction
while the replica's windowed p99 improves, reversing when it worsens —
the knee-finding loop from the batching benchmark, run online.

Everything here is deterministic: decisions are pure functions of the
simulated clock and the replicas' windowed signals, so an elastic
session fingerprints as reproducibly as a static one.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ServeError
from repro.stats import percentile

__all__ = ["AutoscalePolicy", "Autoscaler", "ScaleEvent"]


@dataclasses.dataclass(frozen=True)
class AutoscalePolicy:
    """Control-law knobs for the elastic autoscaler."""

    #: Active-replica bounds the controller must respect.
    min_replicas: int = 1
    max_replicas: int = 4
    #: Seconds between controller evaluations (simulated).
    interval: float = 1e-3
    #: Windowed completions required before latency signals are trusted.
    min_samples: int = 16
    #: Pooled windowed p99 (seconds) above which the fleet grows.
    high_p99: float = 2e-3
    #: p99 below which (together with low occupancy) the fleet shrinks.
    #: Defaults to half the high threshold.
    low_p99: float | None = None
    #: Mean outstanding requests per active replica to scale up at.
    high_occupancy: float = 8.0
    #: Occupancy below which scale-down is allowed.
    low_occupancy: float = 1.0
    #: Minimum seconds between consecutive scale operations.
    cooldown: float = 2e-3
    #: Process-start latency a newly activated replica pays before its
    #: re-replication transfer begins.
    spinup: float = 1e-3
    #: Hill-climb ``max_batch``/``max_wait`` per replica on the same
    #: evaluation ticks.
    tune_batching: bool = False
    #: Bounds for the tuner's ``max_batch`` hill-climb.
    min_batch: int = 1
    max_batch: int = 64

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ServeError(
                f"min replicas must be at least 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise ServeError(
                f"max replicas ({self.max_replicas}) must be >= min "
                f"replicas ({self.min_replicas})"
            )
        if self.interval <= 0.0:
            raise ServeError(
                f"autoscale interval must be positive, got {self.interval}"
            )
        if self.high_p99 <= 0.0:
            raise ServeError(
                f"high p99 threshold must be positive, got {self.high_p99}"
            )
        if self.low_p99 is not None and not (
            0.0 < self.low_p99 < self.high_p99
        ):
            raise ServeError(
                f"low p99 threshold must lie in (0, high_p99), got "
                f"{self.low_p99}"
            )
        if self.low_occupancy < 0.0 or self.high_occupancy <= self.low_occupancy:
            raise ServeError(
                "occupancy thresholds must satisfy 0 <= low < high, got "
                f"low={self.low_occupancy} high={self.high_occupancy}"
            )
        if self.cooldown < 0.0:
            raise ServeError(
                f"cooldown must be non-negative, got {self.cooldown}"
            )
        if self.spinup < 0.0:
            raise ServeError(
                f"spin-up delay must be non-negative, got {self.spinup}"
            )
        if self.min_samples < 1:
            raise ServeError(
                f"min samples must be positive, got {self.min_samples}"
            )
        if not 1 <= self.min_batch <= self.max_batch:
            raise ServeError(
                "tuner batch bounds must satisfy 1 <= min <= max, got "
                f"min={self.min_batch} max={self.max_batch}"
            )

    @property
    def scale_in_p99(self) -> float:
        """The effective low-p99 threshold (default ``high_p99 / 2``)."""
        return self.low_p99 if self.low_p99 is not None else self.high_p99 / 2.0


@dataclasses.dataclass(frozen=True)
class ScaleEvent:
    """One executed control action, for the report's scale log."""

    time: float
    #: ``"up"``, ``"down"``, or ``"tune"``.
    action: str
    #: Replica the action targeted.
    replica: int
    #: Active replicas *after* the action (tune: the new max_batch).
    detail: int


class _TunerState:
    """Per-replica hill-climber memory (direction + last observed p99)."""

    __slots__ = ("direction", "last_p99")

    def __init__(self) -> None:
        self.direction = 1  # start optimistic: grow the batch
        self.last_p99: float | None = None


class Autoscaler:
    """Evaluates the control law over the cluster's live replicas.

    The cluster owns replica lifecycle (activation, reprovision charges,
    uptime meters); the autoscaler owns the *decision*: given the
    simulated clock and the replica list, should the fleet grow, shrink,
    or hold — and how should each replica's batching knobs move.  Keeping
    the decision pure (no side effects beyond its own cooldown/tuner
    memory) is what keeps elastic sessions deterministic.
    """

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self._last_scale_at = -float("inf")
        self._tuners: dict[int, _TunerState] = {}
        self.events: list[ScaleEvent] = []

    # ------------------------------------------------------------------
    def pooled_p99(self, replicas: list) -> tuple[float, int]:
        """Pooled windowed p99 over the active replicas' SLO monitors.

        Returns ``(p99_seconds, sample_count)``; the caller treats the
        latency signal as untrusted below ``min_samples``.
        """
        samples: list[float] = []
        for replica in replicas:
            if replica.active and replica.alive:
                samples.extend(replica._latency_window.values())
        return percentile(samples, 99.0), len(samples)

    def occupancy(self, replicas: list, now: float) -> float:
        """Mean outstanding requests per *routable* active replica."""
        live = [
            r for r in replicas if r.active and r.alive
            and now >= r.available_from
        ]
        if not live:
            return float("inf")
        return sum(r.outstanding(now) for r in live) / len(live)

    def decide(self, now: float, replicas: list) -> str | None:
        """``"up"``, ``"down"``, or ``None`` for this evaluation tick."""
        policy = self.policy
        active = sum(1 for r in replicas if r.active and r.alive)
        if now - self._last_scale_at < policy.cooldown:
            return None
        p99, samples = self.pooled_p99(replicas)
        occupancy = self.occupancy(replicas, now)
        latency_hot = samples >= policy.min_samples and p99 > policy.high_p99
        latency_cold = samples >= policy.min_samples and p99 < policy.scale_in_p99
        if (
            (latency_hot or occupancy > policy.high_occupancy)
            and active < policy.max_replicas
        ):
            return "up"
        if (
            latency_cold
            and occupancy < policy.low_occupancy
            and active > policy.min_replicas
        ):
            return "down"
        return None

    def record(self, now: float, action: str, replica: int, detail: int) -> None:
        """Log an executed action and start the cooldown clock."""
        if action in ("up", "down"):
            self._last_scale_at = now
        self.events.append(
            ScaleEvent(time=now, action=action, replica=replica, detail=detail)
        )

    # ------------------------------------------------------------------
    def tune(self, now: float, replicas: list) -> int:
        """One hill-climbing step of each active replica's batching knobs.

        Doubles or halves ``max_batch`` (scaling ``max_wait``
        proportionally, floored at 50 simulated microseconds) in the
        direction that last improved the replica's windowed p99,
        reversing on regression.  Returns the number of replicas whose
        policy actually moved.
        """
        if not self.policy.tune_batching:
            return 0
        moved = 0
        for replica in replicas:
            if not (replica.active and replica.alive):
                continue
            window = replica._latency_window
            if len(window) < self.policy.min_samples:
                continue
            p99 = window.percentile(99.0)
            state = self._tuners.setdefault(replica.replica_id, _TunerState())
            if state.last_p99 is not None and p99 > state.last_p99:
                state.direction = -state.direction
            state.last_p99 = p99
            old = replica.policy.max_batch
            new = old * 2 if state.direction > 0 else old // 2
            new = max(self.policy.min_batch, min(self.policy.max_batch, new))
            if new == old:
                continue
            scale = new / old
            replica.policy = dataclasses.replace(
                replica.policy,
                max_batch=new,
                max_wait=max(5e-5, replica.policy.max_wait * scale),
            )
            self.record(now, "tune", replica.replica_id, new)
            moved += 1
        return moved
