"""Online serving subsystem: request queues, dynamic batching, SLOs.

The offline pipeline (``repro.pipeline``) amortizes per-launch overhead
by construction — every epoch is a fixed batch schedule.  An online
service must make the same trade *dynamically*: coalesce enough queued
requests to keep the device busy without letting the oldest request's
latency blow through its SLO.  This package simulates that loop on the
device simulator's clock:

* :mod:`repro.serve.workload` — seeded arrival processes (Poisson,
  bursty, diurnal) and skew-drawn per-request seed sets;
* :mod:`repro.serve.simulator` — the dynamic batcher
  (max-batch/max-wait), bounded-queue admission control, the SLO-aware
  degradation ladder (reduced fanout, then cached-only features), and
  batch service on the ``sample``/``transfer`` device queues;
* :mod:`repro.serve.metrics` — the per-request log and the aggregate
  report (throughput, p50/p95/p99, batch histogram, shed/degraded
  counts, cache hit rate).

CLI: ``gsampler-repro serve --arrival-rate ... --slo-ms ... --max-batch
... --policy full``.  Every observable is deterministic in the workload
spec and simulator seed.
"""

from repro.serve.metrics import (
    LATENCY_PERCENTILES,
    RequestLog,
    ServeReport,
    summarize,
)
from repro.serve.simulator import (
    MAX_DEGRADE_LEVEL,
    POLICY_PRESETS,
    SERVE_CONFIGS,
    ServePolicy,
    ServeSimulator,
    degraded_kwargs,
    run_serve_session,
)
from repro.serve.workload import (
    ARRIVAL_PROCESSES,
    Request,
    WorkloadSpec,
    arrival_times,
    generate_workload,
    rank_probabilities,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "LATENCY_PERCENTILES",
    "MAX_DEGRADE_LEVEL",
    "POLICY_PRESETS",
    "Request",
    "RequestLog",
    "SERVE_CONFIGS",
    "ServePolicy",
    "ServeReport",
    "ServeSimulator",
    "WorkloadSpec",
    "arrival_times",
    "degraded_kwargs",
    "generate_workload",
    "rank_probabilities",
    "run_serve_session",
    "summarize",
]
