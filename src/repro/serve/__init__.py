"""Online serving subsystem: replicas, routers, clusters, SLOs.

The offline pipeline (``repro.pipeline``) amortizes per-launch overhead
by construction — every epoch is a fixed batch schedule.  An online
service must make the same trade *dynamically*: coalesce enough queued
requests to keep the device busy without letting the oldest request's
latency blow through its SLO.  This package simulates that loop on the
device simulator's clock, for one replica or a routed cluster of them:

* :mod:`repro.serve.workload` — seeded arrival processes (Poisson,
  bursty, diurnal) and skew-drawn per-request seed sets;
* :mod:`repro.serve.compose` — pluggable batch composition: the classic
  FIFO dynamic batcher, a size-binned variant that never mixes
  seed-count bins, and the cross-request super-batch composer that
  fuses every pending request into one compiled ``run_superbatch``
  launch sequence (the paper's Table 7 optimization, generalized from
  training epochs to the serving hot loop);
* :mod:`repro.serve.replica` — one replica: the dynamic batcher
  (max-batch/max-wait), bounded-queue admission control, the SLO-aware
  degradation ladder (reduced fanout, then cached-only features), batch
  service on the ``sample``/``transfer`` device queues, and optionally
  a graph shard + interconnect for cross-shard frontier fetches;
* :mod:`repro.serve.router` — request routing across replicas
  (round-robin, join-shortest-queue, power-of-two-choices,
  shard-affinity), all deterministic under the session seed;
* :mod:`repro.serve.cluster` — N replicas advanced in global
  simulated-time order behind one router, aggregated into a cluster
  report with per-replica and cross-shard-traffic breakdowns;
* :mod:`repro.serve.failures` — deterministic chaos schedules: scheduled
  replica kills, orphan retry/shed policy, hedged duplicates, optional
  revival with re-replication charged over the interconnect;
* :mod:`repro.serve.control` — the elastic control plane: a windowed
  p99/occupancy-driven autoscaler (scale-up/down between arrivals, with
  spin-up and re-replication charges) plus an online hill-climbing
  tuner for each replica's ``max_batch``/``max_wait``;
* :mod:`repro.serve.simulator` — the classic single-replica surface
  (:class:`ServeSimulator`, :func:`run_serve_session`), kept
  bit-identical to the pre-cluster subsystem;
* :mod:`repro.serve.metrics` — the per-request log and the aggregate
  report (throughput, p50/p95/p99, batch histogram, shed/degraded
  counts, cache hit rate, cross-shard link traffic).

CLI: ``gsampler-repro serve --arrival-rate ... --slo-ms ... --replicas 4
--router jsq --partition greedy``.  Every observable is deterministic in
the workload spec, topology, and simulator seed.
"""

from repro.serve.cluster import ClusterSimulator, run_cluster_session
from repro.serve.control import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.serve.failures import (
    ORPHAN_POLICIES,
    FailureEvent,
    FailureSpec,
)
from repro.serve.compose import (
    COMPOSER_POLICIES,
    BatchComposer,
    BatchPlan,
    FifoComposer,
    SizeBinnedComposer,
    SuperbatchComposer,
    clamp_fire,
    make_composer,
)
from repro.serve.metrics import (
    LATENCY_PERCENTILES,
    ReplicaStats,
    RequestLog,
    ServeReport,
    replica_breakdown,
    summarize,
)
from repro.serve.replica import (
    MAX_DEGRADE_LEVEL,
    POLICY_PRESETS,
    SERVE_CONFIGS,
    Replica,
    ServePolicy,
    build_pipelines,
    degraded_kwargs,
    replica_rng,
)
from repro.serve.router import (
    ROUTER_POLICIES,
    JoinShortestQueueRouter,
    PowerOfTwoRouter,
    RoundRobinRouter,
    Router,
    ShardAffinityRouter,
    make_router,
)
from repro.serve.simulator import ServeSimulator, run_serve_session
from repro.serve.workload import (
    ARRIVAL_PROCESSES,
    Request,
    WorkloadSpec,
    arrival_times,
    generate_workload,
    rank_probabilities,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "COMPOSER_POLICIES",
    "LATENCY_PERCENTILES",
    "MAX_DEGRADE_LEVEL",
    "POLICY_PRESETS",
    "ORPHAN_POLICIES",
    "ROUTER_POLICIES",
    "AutoscalePolicy",
    "Autoscaler",
    "BatchComposer",
    "BatchPlan",
    "ClusterSimulator",
    "FailureEvent",
    "FailureSpec",
    "FifoComposer",
    "JoinShortestQueueRouter",
    "PowerOfTwoRouter",
    "Replica",
    "ReplicaStats",
    "Request",
    "RequestLog",
    "RoundRobinRouter",
    "Router",
    "SERVE_CONFIGS",
    "ScaleEvent",
    "ServePolicy",
    "ServeReport",
    "ServeSimulator",
    "ShardAffinityRouter",
    "SizeBinnedComposer",
    "SuperbatchComposer",
    "WorkloadSpec",
    "arrival_times",
    "build_pipelines",
    "clamp_fire",
    "degraded_kwargs",
    "generate_workload",
    "make_composer",
    "make_router",
    "rank_probabilities",
    "replica_breakdown",
    "replica_rng",
    "run_cluster_session",
    "run_serve_session",
    "summarize",
]
