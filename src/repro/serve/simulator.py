"""The single-replica serving simulator (compatibility surface).

The serving subsystem is layered now:

* :mod:`repro.serve.replica` — one replica's batcher, admission ladder,
  device contexts, and the incremental event API;
* :mod:`repro.serve.router` — routing policies across replicas;
* :mod:`repro.serve.cluster` — N replicas on one simulated clock.

This module keeps the original single-replica entry points alive on top
of those layers.  :class:`ServeSimulator` is a :class:`Replica` with the
classic whole-stream :meth:`~ServeSimulator.run` loop bolted back on,
and :func:`run_serve_session` is a thin wrapper over a 1-replica
round-robin cluster.  Both replay the pre-refactor monolithic event loop
decision-for-decision — the fingerprint-compat test pins
``run_serve_session`` to the committed pre-refactor fingerprint,
bit-identically.

The event-loop shape (unchanged semantics, now phrased through the
replica's incremental API):

1. **Dynamic batcher** — queued requests coalesce into one sampler
   invocation.  A batch fires when it is full (``max_batch`` requests),
   or when the oldest queued request has waited ``max_wait`` seconds,
   whichever comes first — but never before the sampling queue is free.
   Requests arriving before the fire time join the queue (and the batch,
   if it has room), so a busy server naturally accumulates larger
   batches: exactly the utilization/latency trade the knee plot shows.
2. **Admission control** — a bounded waiting queue; arrivals beyond
   ``queue_capacity`` are shed.
3. **Graceful degradation** — the SLO-aware ladder over a sliding p99
   window (level 1 halves fanouts, level 2 serves cached-only).
4. **Service** — sampling on the ``sample`` queue, feature fetch on the
   ``transfer`` queue of a host-resident I/O context; batch ``i+1``'s
   sampling overlaps batch ``i``'s transfer.

Everything observable — request log, latency percentiles, shed and
degradation counts — is a deterministic function of the workload spec
and the simulator seed.
"""

from __future__ import annotations

from repro.cache import DEFAULT_CACHE_RATIO, DEFAULT_HOST_TIER_RATIO
from repro.datasets import Dataset
from repro.device import DeviceSpec
from repro.profile.spans import Profiler
from repro.serve.metrics import ServeReport, summarize
from repro.serve.replica import (
    MAX_DEGRADE_LEVEL,
    POLICY_PRESETS,
    SERVE_CONFIGS,
    Replica,
    ServePolicy,
    degraded_kwargs,
)
from repro.serve.workload import Request, WorkloadSpec

__all__ = [
    "MAX_DEGRADE_LEVEL",
    "POLICY_PRESETS",
    "SERVE_CONFIGS",
    "ServePolicy",
    "ServeSimulator",
    "degraded_kwargs",
    "run_serve_session",
]


class ServeSimulator(Replica):
    """One standalone serving replica with the whole-stream loop.

    Exactly a :class:`~repro.serve.replica.Replica` (unprefixed queue
    names, replica id 0, no shard) plus :meth:`run`, which drives the
    incremental event API over a full arrival stream and folds the log
    into a :class:`~repro.serve.metrics.ServeReport`.
    """

    def run(self, requests: list[Request]) -> ServeReport:
        """Serve the whole stream; returns the aggregate report.

        Arrivals are visited in ``(arrival, rid)`` order; before each is
        admitted, every batch due strictly *before* it fires (an arrival
        landing exactly at a fire time joins the queue first — the
        original loop's tie-break).  After the last arrival the queue
        drains.  This is the same alternation the monolithic loop
        performed, so the decision sequence — hence the fingerprint — is
        unchanged.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.rid))
        logs = []
        with self._span("serve_session", "serve", requests=len(ordered)):
            for request in ordered:
                self.advance_until(request.arrival)
                logs.append(self.offer(request))
            self.drain()
        report = summarize(
            logs,
            cache=self.cache.epoch_stats() if self.cache is not None else None,
        )
        report.composer = self.composer.name
        report.padding_seeds = self.padding_seeds
        report.dedup_rows = self.dedup_rows
        report.superbatch_requests = self.superbatch_requests
        report.superbatch_batches = self.superbatch_batches
        return report


def run_serve_session(
    dataset: Dataset,
    *,
    algorithm: str = "graphsage",
    device: DeviceSpec,
    spec: WorkloadSpec | None = None,
    policy: ServePolicy | None = None,
    composer: str = "fifo",
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
    feature_tiers: bool = False,
    host_tier_ratio: float = DEFAULT_HOST_TIER_RATIO,
    hbm_budget: int | None = None,
):
    """One-call serving session: build, generate workload, serve, report.

    Backward-compat wrapper over a 1-replica round-robin
    :class:`~repro.serve.cluster.ClusterSimulator` — which reproduces
    the pre-refactor single-replica session bit-identically (the
    fingerprint-compat test).  The returned cluster exposes
    ``sample_ctx``/``io_ctx``/``cache`` of its only replica, so existing
    callers keep working unchanged.
    """
    from repro.serve.cluster import run_cluster_session

    return run_cluster_session(
        dataset,
        algorithm=algorithm,
        device=device,
        spec=spec,
        policy=policy,
        num_replicas=1,
        router="round_robin",
        composer=composer,
        cache_ratio=cache_ratio,
        seed=seed,
        profiler=profiler,
        feature_tiers=feature_tiers,
        host_tier_ratio=host_tier_ratio,
        hbm_budget=hbm_budget,
    )
