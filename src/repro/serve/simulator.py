"""The online serving simulator: dynamic batching under an SLO.

The simulator replays a generated request stream against a compiled
sampling pipeline on the device simulator's clock.  Its event loop is
the standard inference-server shape (Triton/Clipper-style dynamic
batching, the trade gSampler's super-batching makes statically):

1. **Dynamic batcher** — queued requests coalesce into one sampler
   invocation.  A batch fires when it is full (``max_batch`` requests),
   or when the oldest queued request has waited ``max_wait`` seconds,
   whichever comes first — but never before the sampling queue is free.
   Requests arriving before the fire time join the queue (and the batch,
   if it has room), so a busy server naturally accumulates larger
   batches: exactly the utilization/latency trade the knee plot shows.
2. **Admission control** — a bounded waiting queue.  A request arriving
   while ``queue_capacity`` requests wait is *shed* (refused) instead of
   queued; shed requests never acquire a latency, only an availability
   loss.
3. **Graceful degradation** — an SLO-aware ladder watched over a sliding
   window of completed-request latencies.  When the window's p99
   breaches ``slo``, the server steps down one level; when it recovers
   below ``recover_margin x slo``, it steps back up.  Level 1 halves the
   sampling fanout (K=10 -> 5: cheaper neighborhoods, same contract);
   level 2 additionally serves features *cached-only* (device-resident
   rows only — misses are skipped rather than fetched over PCIe).
4. **Service** — each batch concatenates its requests' seed sets into
   one frontier and runs the compiled pipeline on the ``sample`` queue
   of the sampling context, then charges the feature fetch on the
   ``transfer`` queue of an I/O context whose feature table is
   host-resident (the serving deployment: the full embedding/feature
   table lives in host memory, only the cache's hot rows on device).
   Batch ``i+1``'s sampling overlaps batch ``i``'s transfer — the same
   queue overlap the pipelined trainer exploits.

Everything observable — request log, latency percentiles, shed and
degradation counts — is a deterministic function of the workload spec
and the simulator seed.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

from repro.cache import DEFAULT_CACHE_RATIO, FeatureCache
from repro.core import new_rng
from repro.datasets import Dataset
from repro.device import DeviceSpec, ExecutionContext
from repro.errors import ServeError
from repro.profile.spans import Profiler
from repro.serve.metrics import RequestLog, ServeReport, summarize
from repro.serve.workload import Request, WorkloadSpec, generate_workload

#: Degradation-ladder depth: 0 = full fidelity, 1 = reduced fanout,
#: 2 = reduced fanout + cached-only features.
MAX_DEGRADE_LEVEL = 2

#: Algorithm configurations the serving simulator knows how to build,
#: mapping to ``make_algorithm`` kwargs at full fidelity.  The degraded
#: variant is derived by :func:`degraded_kwargs`.
SERVE_CONFIGS: dict[str, dict] = {
    "graphsage": dict(fanouts=(5, 10)),
    "ladies": dict(layer_width=256, num_layers=2),
}

#: Admission/degradation presets selectable from the CLI ``--policy``
#: flag; each maps to (bounded queue?, SLO ladder?).
POLICY_PRESETS: dict[str, tuple[bool, bool]] = {
    "none": (False, False),
    "shed": (True, False),
    "degrade": (False, True),
    "full": (True, True),
}


def degraded_kwargs(kwargs: dict) -> dict:
    """The reduced-fidelity variant of an algorithm config.

    Fanouts are halved (floored at 1), layer widths halved — the ladder
    step the issue's K=10 -> 5 example describes.
    """
    out = dict(kwargs)
    if "fanouts" in out:
        out["fanouts"] = tuple(max(1, k // 2) for k in out["fanouts"])
    if "layer_width" in out:
        out["layer_width"] = max(1, out["layer_width"] // 2)
    return out


@dataclasses.dataclass(frozen=True)
class ServePolicy:
    """Batching + admission + degradation knobs for one serving session."""

    max_batch: int = 8
    #: Longest a batch head may wait before firing, in simulated seconds.
    max_wait: float = 2e-3
    #: Bound on the waiting queue; ``None`` disables shedding.
    queue_capacity: int | None = 64
    #: p99 latency target in simulated seconds; ``None`` disables the
    #: degradation ladder.
    slo: float | None = None
    #: Sliding-window length (completed requests) for the p99 monitor.
    window: int = 64
    #: Samples required in the window before the ladder may move.
    min_samples: int = 32
    #: The ladder steps back up once windowed p99 < recover_margin * slo.
    recover_margin: float = 0.7

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(
                f"max batch must be at least 1, got {self.max_batch}"
            )
        if self.max_wait < 0.0:
            raise ServeError(
                f"max wait must be non-negative, got {self.max_wait}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ServeError(
                "queue capacity must be at least 1 (or None for "
                f"unbounded), got {self.queue_capacity}"
            )
        if self.slo is not None and self.slo <= 0.0:
            raise ServeError(f"SLO must be positive, got {self.slo}")
        if not 0.0 < self.recover_margin < 1.0:
            raise ServeError(
                f"recover margin must be in (0, 1), got {self.recover_margin}"
            )
        if self.window < 1 or self.min_samples < 1:
            raise ServeError("p99 window and min_samples must be positive")

    @classmethod
    def preset(
        cls,
        name: str,
        *,
        max_batch: int = 8,
        max_wait: float = 2e-3,
        queue_capacity: int = 64,
        slo: float | None = None,
    ) -> "ServePolicy":
        """Build a policy from a ``--policy`` preset name."""
        try:
            shed, degrade = POLICY_PRESETS[name]
        except KeyError:
            raise ServeError(
                f"unknown policy {name!r}; available: "
                f"{sorted(POLICY_PRESETS)}"
            ) from None
        if degrade and slo is None:
            raise ServeError(
                f"policy {name!r} needs an SLO target (--slo-ms)"
            )
        return cls(
            max_batch=max_batch,
            max_wait=max_wait,
            queue_capacity=queue_capacity if shed else None,
            slo=slo if degrade else None,
        )


class ServeSimulator:
    """Replays a request stream against a compiled sampling pipeline.

    Parameters
    ----------
    dataset:
        The graph being served; seeds index its nodes.
    algorithm:
        A :data:`SERVE_CONFIGS` key.  Both the full-fidelity and the
        degraded pipeline are compiled up front, so ladder moves cost
        nothing at serve time (the compile is off the request path).
    device:
        Device spec for sampling *and* feature transfer.  The feature
        table itself is host-resident (the serving deployment), so cache
        misses cross PCIe; the cache's pinned rows are charged to the
        I/O context's memory pool.
    policy:
        Batching/admission/degradation knobs.
    cache_ratio:
        Fraction of nodes whose feature rows are pinned on device.
    seed:
        Seeds the sampling RNG.  The workload carries its own seed in
        its spec; together they fix every observable of the run.
    """

    def __init__(
        self,
        dataset: Dataset,
        *,
        algorithm: str = "graphsage",
        device: DeviceSpec,
        policy: ServePolicy | None = None,
        cache_ratio: float = DEFAULT_CACHE_RATIO,
        seed: int = 0,
        profiler: Profiler | None = None,
    ) -> None:
        from repro.algorithms import make_algorithm

        if algorithm not in SERVE_CONFIGS:
            raise ServeError(
                f"no serving config for {algorithm!r}; "
                f"available: {sorted(SERVE_CONFIGS)}"
            )
        self.dataset = dataset
        self.algorithm = algorithm
        self.device = device
        self.policy = policy if policy is not None else ServePolicy()
        self.profiler = profiler
        self._rng = new_rng(seed)
        example = dataset.train_ids[: min(256, len(dataset.train_ids))]
        kwargs = SERVE_CONFIGS[algorithm]
        self._pipelines = [
            make_algorithm(algorithm, **kwargs).build(dataset.graph, example),
            make_algorithm(algorithm, **degraded_kwargs(kwargs)).build(
                dataset.graph, example
            ),
        ]
        self.sample_ctx = ExecutionContext(
            device,
            graph_on_device=dataset.graph_on_device,
            queues=("sample",),
        )
        # Feature fetches run on their own context with a host-resident
        # "graph" (= the feature table), so misses are priced over PCIe.
        self.io_ctx = ExecutionContext(
            device, graph_on_device=False, queues=("transfer",)
        )
        if profiler is not None:
            profiler.attach(self.sample_ctx)
            self.io_ctx.profiler = profiler
        self.cache: FeatureCache | None = None
        if cache_ratio > 0.0:
            self.cache = FeatureCache.from_dataset(
                dataset, ratio=cache_ratio, pool=self.io_ctx.memory
            )
        feats = dataset.features
        self._row_bytes = int(feats.shape[1]) * feats.dtype.itemsize
        # Degradation-ladder state.
        self._level = 0
        self._latency_window: list[float] = []

    # ------------------------------------------------------------------
    def degree_hotness(self) -> np.ndarray:
        """Per-node in-degree, the hotness ranking requests are drawn by."""
        return np.diff(self.dataset.graph.get("csc").indptr)

    def build_workload(self, spec: WorkloadSpec) -> list[Request]:
        """Generate the spec's request stream over this graph's nodes."""
        return generate_workload(
            spec,
            num_nodes=self.dataset.num_nodes,
            hotness=self.degree_hotness(),
        )

    # ------------------------------------------------------------------
    def _span(self, name: str, category: str, **attrs: object):
        if self.profiler is None:
            return contextlib.nullcontext()
        return self.profiler.span(name, category, **attrs)

    def _arrive(
        self,
        request: Request,
        pending: list[Request],
        logs: list[RequestLog],
        by_rid: dict[int, RequestLog],
    ) -> None:
        """Admit ``request`` into the waiting queue, or shed it."""
        capacity = self.policy.queue_capacity
        if capacity is not None and len(pending) >= capacity:
            logs.append(
                RequestLog(
                    rid=request.rid,
                    arrival=request.arrival,
                    admitted=False,
                    level=self._level,
                )
            )
            return
        log = RequestLog(
            rid=request.rid, arrival=request.arrival, admitted=True
        )
        pending.append(request)
        logs.append(log)
        by_rid[request.rid] = log

    def _observe(self, latency: float) -> None:
        """Feed one completion into the SLO monitor and move the ladder."""
        slo = self.policy.slo
        if slo is None:
            return
        window = self._latency_window
        window.append(latency)
        if len(window) > self.policy.window:
            del window[0]
        if len(window) < self.policy.min_samples:
            return
        p99 = float(np.percentile(np.asarray(window), 99.0))
        if p99 > slo and self._level < MAX_DEGRADE_LEVEL:
            self._level += 1
        elif p99 < self.policy.recover_margin * slo and self._level > 0:
            self._level -= 1

    def _serve_batch(
        self,
        batch: list[Request],
        fire: float,
        batch_id: int,
        by_rid: dict[int, RequestLog],
    ) -> None:
        """Run one coalesced sampler invocation and complete its requests."""
        level = self._level
        pipeline = self._pipelines[1 if level >= 1 else 0]
        seeds = np.concatenate([r.seeds for r in batch])
        with self._span(
            f"serve_batch[{batch_id}]",
            "serve",
            requests=len(batch),
            seeds=int(seeds.size),
            level=level,
        ):
            with self.sample_ctx.on_queue("sample", not_before=fire):
                sample = pipeline.sample_batch(
                    seeds, ctx=self.sample_ctx, rng=self._rng
                )
            sampled_at = self.sample_ctx.queue("sample").ready
            nodes = sample.all_nodes
            if self.cache is not None:
                hits, misses = self.cache.record_gather(nodes)
            else:
                hits, misses = 0, int(nodes.size)
            cached_only = level >= MAX_DEGRADE_LEVEL and self.cache is not None
            # Cached-only service reads just the device-resident rows;
            # misses are answered from stale/default embeddings instead
            # of crossing PCIe — zero host traffic, smaller reads.
            rows = hits if cached_only else int(nodes.size)
            host_rows = 0 if cached_only else misses
            with self.io_ctx.on_queue("transfer", not_before=sampled_at):
                self.io_ctx.record(
                    "serve_feature_fetch",
                    bytes_read=rows * self._row_bytes,
                    bytes_written=rows * self._row_bytes,
                    tasks=max(rows, 1),
                    graph_bytes=host_rows * self._row_bytes,
                )
            completion = self.io_ctx.queue("transfer").ready
        for request in batch:
            log = by_rid[request.rid]
            log.start = fire
            log.completion = completion
            log.batch_id = batch_id
            log.batch_size = len(batch)
            log.level = level
            self._observe(completion - request.arrival)

    # ------------------------------------------------------------------
    def run(self, requests: list[Request]) -> ServeReport:
        """Serve the whole stream; returns the aggregate report.

        The loop is event-driven on the simulated clock: it alternates
        between admitting the next arrival (when it lands before the
        current batch would fire) and firing the batch at the head of
        the queue.  Each path consumes an arrival or drains queued
        requests, so it terminates after exactly
        ``len(requests) + num_batches`` iterations.
        """
        ordered = sorted(requests, key=lambda r: (r.arrival, r.rid))
        pending: list[Request] = []
        logs: list[RequestLog] = []
        by_rid: dict[int, RequestLog] = {}
        idx = 0
        batch_id = 0
        policy = self.policy
        sample_q = self.sample_ctx.queue("sample")
        with self._span(
            "serve_session", "serve", requests=len(ordered)
        ):
            while idx < len(ordered) or pending:
                if not pending:
                    self._arrive(ordered[idx], pending, logs, by_rid)
                    idx += 1
                    continue
                head = pending[0]
                earliest = max(sample_q.ready, head.arrival)
                if len(pending) >= policy.max_batch:
                    # A full batch fires as soon as the device is free —
                    # but no earlier than its youngest member arrived
                    # (the member that completed the batch may have
                    # landed after the device went idle).
                    fire = max(
                        earliest, pending[policy.max_batch - 1].arrival
                    )
                else:
                    fire = max(earliest, head.arrival + policy.max_wait)
                if idx < len(ordered) and ordered[idx].arrival <= fire:
                    self._arrive(ordered[idx], pending, logs, by_rid)
                    idx += 1
                    continue
                batch = pending[: policy.max_batch]
                del pending[: len(batch)]
                self._serve_batch(batch, fire, batch_id, by_rid)
                batch_id += 1
        return summarize(
            logs,
            cache=self.cache.epoch_stats() if self.cache is not None else None,
        )


def run_serve_session(
    dataset: Dataset,
    *,
    algorithm: str = "graphsage",
    device: DeviceSpec,
    spec: WorkloadSpec | None = None,
    policy: ServePolicy | None = None,
    cache_ratio: float = DEFAULT_CACHE_RATIO,
    seed: int = 0,
    profiler: Profiler | None = None,
) -> tuple[ServeSimulator, ServeReport]:
    """One-call serving session: build, generate workload, serve, report.

    This is the cell the CLI, the benchmark sweep, and the determinism
    guard all go through, so a fixed ``(spec, policy, seed)`` triple
    names exactly one reproducible session.
    """
    simulator = ServeSimulator(
        dataset,
        algorithm=algorithm,
        device=device,
        policy=policy,
        cache_ratio=cache_ratio,
        seed=seed,
        profiler=profiler,
    )
    workload = simulator.build_workload(
        spec if spec is not None else WorkloadSpec(seed=seed)
    )
    return simulator, simulator.run(workload)
