"""Request routers: which replica answers which arrival.

The cluster simulator consults a :class:`Router` once per arrival, in
global simulated-time order, *after* every replica has fired the batches
due before that instant — so queue-depth-based policies observe exactly
the state a real load balancer would.  All policies are deterministic
under the session seed: the only randomness (power-of-two-choices) draws
from its own seeded :class:`numpy.random.Generator` stream, never the
``numpy.random`` globals, which is what the router-determinism tests
pin.

Policies:

* **round_robin** — arrival ``i`` goes to replica ``i mod N``; the
  baseline every queueing comparison starts from.
* **jsq** — join-shortest-queue: the replica with the fewest waiting
  requests (ties toward the lower replica id).  The optimal-ish policy
  the cluster benchmark locates the crossover for.
* **po2** — power-of-two-choices: sample two distinct replicas from the
  seeded stream, keep the shorter queue.  Most of JSQ's benefit at a
  fraction of the (real-world) state-synchronization cost.
* **shard** — shard-affinity: route to the replica owning the request's
  dominant seed shard (majority vote over the request's seed nodes,
  ties toward the lower shard).  Keeps sampling local to the owner at
  the price of ignoring queue imbalance.

Routing is upstream of batch *composition*: the router only picks a
replica, and the replica's own :class:`~repro.serve.compose.BatchComposer`
decides how the requests it was given coalesce into sampler runs.  The
two policies compose freely (the cluster layer plumbs a composer per
replica, so a heterogeneous A/B cluster can sit behind any router), and
the load signal stays the same either way: ``outstanding`` counts
requests queued or in service, whether they will fire as one joint
batch or one fused super-batch window.
"""

from __future__ import annotations

import numpy as np

from repro.core import new_rng
from repro.errors import ServeError
from repro.partition import GraphPartition
from repro.serve.replica import Replica
from repro.serve.workload import Request

#: Router policy names understood by :func:`make_router`.
ROUTER_POLICIES = ("round_robin", "jsq", "po2", "shard")


class Router:
    """Base router: maps one arrival to a replica index."""

    name = "base"

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order, ignoring their state."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        target = self._next % len(replicas)
        self._next += 1
        return target


class JoinShortestQueueRouter(Router):
    """Send each arrival to the replica with the fewest outstanding
    requests (queued plus in service — the
    :meth:`~repro.serve.replica.Replica.outstanding` signal; the batcher
    queue alone is stale by routing time, since due batches have already
    fired).

    Ties break toward the lower replica id, so the choice is a pure
    function of the observed loads — the invariant the JSQ correctness
    test asserts (never a strictly more loaded replica than any
    alternative).
    """

    name = "jsq"

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        loads = [replica.outstanding(now) for replica in replicas]
        return min(range(len(replicas)), key=lambda i: (loads[i], i))


class PowerOfTwoRouter(Router):
    """Sample two distinct replicas, keep the shorter queue.

    The classic load-balancing result: two random choices close most of
    the gap to full JSQ.  Draws come from this router's own seeded
    generator, so a fixed seed fixes the whole routing sequence.
    """

    name = "po2"

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = new_rng(seed)

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        n = len(replicas)
        if n == 1:
            return 0
        first, second = self._rng.choice(n, size=2, replace=False)
        a, b = int(first), int(second)
        load_a = replicas[a].outstanding(now)
        load_b = replicas[b].outstanding(now)
        if load_a == load_b:
            return min(a, b)
        return a if load_a < load_b else b


class ShardAffinityRouter(Router):
    """Route each request to the replica owning its dominant seed shard.

    The dominant shard is the one holding the most of the request's seed
    nodes (ties toward the lower shard id — deterministic).  Shard ``s``
    maps onto replica ``s mod N``, which is the identity in the intended
    deployment (one shard per replica).
    """

    name = "shard"

    def __init__(self, partition: GraphPartition) -> None:
        self.partition = partition

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        shards = self.partition.shard_of(request.seeds)
        counts = np.bincount(shards, minlength=self.partition.num_shards)
        return int(counts.argmax()) % len(replicas)


def make_router(
    name: str,
    *,
    seed: int = 0,
    partition: GraphPartition | None = None,
) -> Router:
    """Build a router by policy name.

    ``seed`` feeds only the policies that draw randomness (``po2``);
    ``partition`` is required by (and only by) ``shard``.
    """
    if name == "round_robin":
        return RoundRobinRouter()
    if name == "jsq":
        return JoinShortestQueueRouter()
    if name == "po2":
        return PowerOfTwoRouter(seed=seed)
    if name == "shard":
        if partition is None:
            raise ServeError(
                "the shard-affinity router needs a graph partition "
                "(--partition hash|greedy)"
            )
        return ShardAffinityRouter(partition)
    raise ServeError(
        f"unknown router policy {name!r}; available: {list(ROUTER_POLICIES)}"
    )
