"""Request routers: which replica answers which arrival.

The cluster simulator consults a :class:`Router` once per arrival, in
global simulated-time order, *after* every replica has fired the batches
due before that instant — so queue-depth-based policies observe exactly
the state a real load balancer would.  All policies are deterministic
under the session seed: the only randomness (power-of-two-choices) draws
from its own seeded :class:`numpy.random.Generator` stream, never the
``numpy.random`` globals, which is what the router-determinism tests
pin.

Policies:

* **round_robin** — arrival ``i`` goes to replica ``i mod N``; the
  baseline every queueing comparison starts from.
* **jsq** — join-shortest-queue: the replica with the fewest waiting
  requests (ties toward the lower replica id).  The optimal-ish policy
  the cluster benchmark locates the crossover for.
* **po2** — power-of-two-choices: sample two distinct replicas from the
  seeded stream, keep the shorter queue.  Most of JSQ's benefit at a
  fraction of the (real-world) state-synchronization cost.
* **shard** — shard-affinity: route to the replica owning the request's
  dominant seed shard (majority vote over the request's seed nodes,
  ties toward the lower shard).  Keeps sampling local to the owner at
  the price of ignoring queue imbalance.

Routing is upstream of batch *composition*: the router only picks a
replica, and the replica's own :class:`~repro.serve.compose.BatchComposer`
decides how the requests it was given coalesce into sampler runs.  The
two policies compose freely (the cluster layer plumbs a composer per
replica, so a heterogeneous A/B cluster can sit behind any router), and
the load signal stays the same either way: ``outstanding`` counts
requests queued or in service, whether they will fire as one joint
batch or one fused super-batch window.

**Fleet membership vs failover.**  Every router sees only the replicas
currently *in* the fleet: autoscaler standbys, scaled-down replicas, and
replicas still inside their spin-up window are never selected —
membership changes are control-plane actions a real balancer is told
about.  Death is different: a crash is only visible through health
checks, so masking dead replicas is opt-in via ``mask_dead`` (set by the
cluster from ``FailureSpec.failover``).  With it off the router stays
blind and keeps sending arrivals to the corpse — the no-failover
baseline the availability benchmark contrasts.  When every replica is
eligible, each policy takes a fast path that replays the pre-failover
code exactly, which is what keeps failure-free sessions bit-identical
to their pins.
"""

from __future__ import annotations

import numpy as np

from repro.core import new_rng
from repro.errors import ServeError
from repro.partition import GraphPartition
from repro.serve.replica import Replica
from repro.serve.workload import Request

#: Router policy names understood by :func:`make_router`.
ROUTER_POLICIES = ("round_robin", "jsq", "po2", "shard")


class Router:
    """Base router: maps one arrival to a replica index."""

    name = "base"

    #: Skip replicas a failure event killed.  Set by the cluster from
    #: ``FailureSpec.failover``; off, the router stays blind to deaths
    #: (the no-failover baseline) but still respects fleet membership.
    mask_dead = True

    def eligible(self, replicas: list[Replica], now: float) -> list[int]:
        """Replica indices this router may select at ``now``.

        Fleet membership (``active``, spin-up complete) always gates;
        liveness gates only under ``mask_dead``.
        """
        out = []
        for i, replica in enumerate(replicas):
            if not replica.active or now < replica.available_from:
                continue
            if self.mask_dead and not replica.alive:
                continue
            out.append(i)
        return out

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order, ignoring their load."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        eligible = self.eligible(replicas, now)
        if len(eligible) == len(replicas):
            # Full fleet: the original modular walk, bit-identical.
            target = self._next % len(replicas)
        else:
            target = eligible[self._next % len(eligible)]
        self._next += 1
        return target


class JoinShortestQueueRouter(Router):
    """Send each arrival to the replica with the fewest outstanding
    requests (queued plus in service — the
    :meth:`~repro.serve.replica.Replica.outstanding` signal; the batcher
    queue alone is stale by routing time, since due batches have already
    fired).

    Ties break toward the lower replica id, so the choice is a pure
    function of the observed loads — the invariant the JSQ correctness
    test asserts (never a strictly more loaded replica than any
    alternative).
    """

    name = "jsq"

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        eligible = self.eligible(replicas, now)
        loads = {i: replicas[i].outstanding(now) for i in eligible}
        return min(eligible, key=lambda i: (loads[i], i))


class PowerOfTwoRouter(Router):
    """Sample two distinct replicas, keep the shorter queue.

    The classic load-balancing result: two random choices close most of
    the gap to full JSQ.  Draws come from this router's own seeded
    generator, so a fixed seed fixes the whole routing sequence.  With a
    reduced fleet the two draws come from the eligible subset (one
    eligible replica short-circuits without consuming a draw, so the
    post-recovery stream realigns with the full-fleet one).
    """

    name = "po2"

    def __init__(self, *, seed: int = 0) -> None:
        self._rng = new_rng(seed)

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        eligible = self.eligible(replicas, now)
        if len(eligible) == 1:
            return eligible[0]
        if len(eligible) == len(replicas):
            # Full fleet: draw over raw indices, bit-identical to the
            # pre-failover stream.
            first, second = self._rng.choice(
                len(replicas), size=2, replace=False
            )
            a, b = int(first), int(second)
        else:
            first, second = self._rng.choice(
                len(eligible), size=2, replace=False
            )
            a, b = eligible[int(first)], eligible[int(second)]
        load_a = replicas[a].outstanding(now)
        load_b = replicas[b].outstanding(now)
        if load_a == load_b:
            return min(a, b)
        return a if load_a < load_b else b


class ShardAffinityRouter(Router):
    """Route each request to the replica owning its dominant seed shard.

    The dominant shard is the one holding the most of the request's seed
    nodes (ties toward the lower shard id — deterministic; a request
    with *no* seeds degenerates to shard 0 by the same rule).  Shard
    ``s`` maps onto replica ``s mod N``, which is the identity in the
    intended deployment (one shard per replica).  When the owner is not
    eligible, failover walks the remaining shards in descending seed
    count (ties toward the lower shard id) and falls back to the
    lowest-id eligible replica — the deterministic spill order the
    failover tests pin.
    """

    name = "shard"

    def __init__(self, partition: GraphPartition) -> None:
        self.partition = partition

    def route(
        self, request: Request, replicas: list[Replica], now: float
    ) -> int:
        shards = self.partition.shard_of(request.seeds)
        counts = np.bincount(shards, minlength=self.partition.num_shards)
        eligible = self.eligible(replicas, now)
        if len(eligible) == len(replicas):
            return int(counts.argmax()) % len(replicas)
        eligible_set = set(eligible)
        by_count = sorted(
            range(len(counts)), key=lambda s: (-int(counts[s]), s)
        )
        for shard in by_count:
            target = shard % len(replicas)
            if target in eligible_set:
                return target
        return eligible[0]


def make_router(
    name: str,
    *,
    seed: int = 0,
    partition: GraphPartition | None = None,
) -> Router:
    """Build a router by policy name.

    ``seed`` feeds only the policies that draw randomness (``po2``);
    ``partition`` is required by (and only by) ``shard``.
    """
    if name == "round_robin":
        return RoundRobinRouter()
    if name == "jsq":
        return JoinShortestQueueRouter()
    if name == "po2":
        return PowerOfTwoRouter(seed=seed)
    if name == "shard":
        if partition is None:
            raise ServeError(
                "the shard-affinity router needs a graph partition "
                "(--partition hash|greedy)"
            )
        return ShardAffinityRouter(partition)
    raise ServeError(
        f"unknown router policy {name!r}; available: {list(ROUTER_POLICIES)}"
    )
