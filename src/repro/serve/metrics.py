"""Serving metrics: the per-request log and its aggregate report.

Latency accounting follows the standard serving decomposition:

* ``queue`` time — from a request's arrival to its batch's service start
  (dynamic-batching wait plus head-of-line blocking behind earlier
  batches);
* ``service`` time — from service start to the batch's last queue
  finishing (sampling on the ``sample`` queue, then the feature fetch on
  the ``transfer`` queue);
* end-to-end latency = queue + service, reported as p50/p95/p99 over
  completed requests only.  Shed requests never enter the percentiles —
  a refused request is an availability loss (counted separately), not a
  latency sample.

All percentile math lives in :mod:`repro.stats` (shared with the bench
scripts and the replicas' SLO monitors), applied here over the
deterministic request log, so a fixed seed reproduces every percentile
bit-for-bit (the determinism guard's second half).  The same
:func:`summarize` fold serves both a single replica's log and the
cluster's merged, arrival-ordered log; :func:`replica_breakdown` slices
the merged log back into per-replica :class:`ReplicaStats`.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

import numpy as np

from repro.cache import CacheStats
from repro.stats import LATENCY_PERCENTILES, percentile_ms

__all__ = [
    "LATENCY_PERCENTILES",
    "ReplicaStats",
    "RequestLog",
    "ServeReport",
    "percentile_ms",
    "replica_breakdown",
    "summarize",
]


@dataclasses.dataclass
class RequestLog:
    """Lifecycle record of one request through the serving simulator."""

    rid: int
    arrival: float
    admitted: bool
    start: float = math.nan
    completion: float = math.nan
    batch_id: int = -1
    batch_size: int = 0
    #: Degradation-ladder level the request was served at (0 = full
    #: fidelity); for shed requests, the level in force when refused.
    level: int = 0
    #: Replica the router sent the request to (0 for single-replica
    #: sessions).  Deliberately outside :meth:`key`: the fingerprint
    #: predates the cluster layer and must stay comparable across it.
    replica: int = 0
    #: Seed count of the request (padding accounting / size-binning
    #: diagnostics).  Outside :meth:`key` for the same reason as
    #: ``replica``: the fingerprint predates the composer layer.
    seeds: int = 0
    #: Times this request was re-routed after its replica died.  Outside
    #: :meth:`key` (the fingerprint predates the failure layer; the
    #: failure-free path always has 0 here).
    retries: int = 0
    #: True when a retry was duplicated to a second replica (the
    #: surviving log is the winning copy).  Outside :meth:`key` likewise.
    hedged: bool = False

    @property
    def completed(self) -> bool:
        return self.admitted and not math.isnan(self.completion)

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queue_seconds(self) -> float:
        return self.start - self.arrival

    def key(self) -> tuple:
        """Hashable identity used by the determinism guard."""
        return (
            self.rid,
            self.arrival,
            self.admitted,
            self.start,
            self.completion,
            self.batch_id,
            self.batch_size,
            self.level,
        )


@dataclasses.dataclass
class ReplicaStats:
    """One replica's share of a cluster serving session."""

    replica_id: int
    requests: int
    completed: int
    shed: int
    degraded: int
    p50_ms: float
    p99_ms: float
    mean_batch: float
    #: Frontier rows this replica pulled from other shards' devices.
    cross_shard_rows: int
    cross_shard_bytes: int
    #: Simulated seconds spent on the interconnect for those rows.
    link_seconds: float
    cache: CacheStats | None
    #: In-service simulated seconds (the per-replica GPU-time meter).
    uptime_seconds: float = 0.0
    #: Kills this replica absorbed during the session.
    failures: int = 0


@dataclasses.dataclass
class ServeReport:
    """Aggregate outcome of one serving session (replica or cluster)."""

    requests: int
    completed: int
    shed: int
    #: Requests served below full fidelity (ladder level >= 1).
    degraded: int
    #: Simulated seconds from t=0 to the last completion.
    makespan: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_queue_ms: float
    mean_batch: float
    #: ``batch size -> number of batches`` histogram.
    batch_histogram: dict[int, int]
    cache: CacheStats | None
    logs: list[RequestLog]
    #: Cluster shape: 1 for the classic single-replica session.  The
    #: fields below stay at their defaults there, so the report (and its
    #: fingerprint) is unchanged from the pre-cluster subsystem.
    replicas: int = 1
    router: str = ""
    per_replica: list[ReplicaStats] = dataclasses.field(default_factory=list)
    cross_shard_rows: int = 0
    cross_shard_bytes: int = 0
    link_seconds: float = 0.0
    #: Workload task the session served.  ``"node"`` (the default) keeps
    #: the report — and :meth:`to_metrics` — identical to the pre-task
    #: subsystem; the pair fields below stay zero there.
    task: str = "node"
    #: Candidate pairs (positive + negative) scored across the fleet.
    pairs_served: int = 0
    #: Raw pair-endpoint slots the per-batch compaction collapsed away.
    compaction_saved_rows: int = 0
    #: Batch-composition policy the session ran under.  ``"fifo"`` (the
    #: default) keeps the report — and :meth:`to_metrics` — identical to
    #: the pre-composer subsystem; the fields below stay zero there.
    composer: str = "fifo"
    #: Seed slots a padded deployment would waste: per joint batch,
    #: (max member seed count - member seed count) summed over members.
    padding_seeds: int = 0
    #: Feature rows the super-batch path avoided re-fetching by
    #: deduplicating the fused requests' node sets.
    dedup_rows: int = 0
    #: Requests served through the fused super-batch path, and the
    #: number of fused runs they amortized into.
    superbatch_requests: int = 0
    superbatch_batches: int = 0
    #: True when the session ran under the control plane (failure
    #: injection and/or the autoscaler).  All fields below stay at their
    #: defaults otherwise, so classic reports — and :meth:`to_metrics` —
    #: are unchanged from the pre-control-plane subsystem.
    elastic: bool = False
    #: Replica kills executed by the failure schedule.
    failures: int = 0
    #: Admitted requests that never completed (died with a replica, ran
    #: out of retries, or found no routable replica).  Distinct from
    #: ``shed``, which counts requests *refused* at admission.
    lost: int = 0
    #: Completed requests that survived at least one re-route.
    retried: int = 0
    #: Completed requests whose retry was duplicated to a second replica.
    hedged: int = 0
    #: Hedged requests where the duplicate (not the primary retry) won.
    hedge_wins: int = 0
    #: Autoscaler actions executed.
    scale_ups: int = 0
    scale_downs: int = 0
    #: Batching-knob moves the online tuner made.
    tune_moves: int = 0
    #: Summed per-replica in-service simulated seconds — the GPU-hours
    #: denominator of the elastic-vs-static comparison.
    gpu_seconds: float = 0.0
    #: Shard / warm-cache bytes streamed to revived or newly activated
    #: replicas over the interconnect.
    reprovision_bytes: int = 0
    #: True when the session served features through the multi-tier
    #: store (HBM -> peer HBM -> pinned host -> remote).  All fields
    #: below stay at their defaults for the flat cache, so classic
    #: reports — and :meth:`to_metrics` — are unchanged from the
    #: single-tier subsystem.
    feature_tiers: bool = False
    #: Rows fetched from sibling replicas' HBM over the interconnect.
    p2p_rows: int = 0
    p2p_bytes: int = 0
    #: Simulated seconds spent on the interconnect for those rows.
    p2p_seconds: float = 0.0
    #: True when the session served while ingesting graph updates
    #: (:mod:`repro.dynamic`).  All fields below stay at their defaults
    #: for static sessions, so classic reports — and :meth:`to_metrics`
    #: — are unchanged from the frozen-graph subsystem.
    dynamic: bool = False
    #: Edge inserts / tombstoned deletes applied over the session.
    ingested_edges: int = 0
    deleted_edges: int = 0
    #: Update batches applied between request batches.
    update_batches: int = 0
    #: Overlay-snapshot installs and canonical compactions executed.
    snapshots: int = 0
    compactions: int = 0
    #: Edge-weighted mean / max time an applied update waited before a
    #: snapshot made it visible to the samplers (the staleness half of
    #: the staleness-vs-latency trade).
    mean_staleness_ms: float = 0.0
    max_staleness_ms: float = 0.0
    #: Simulated device time the fleet spent merging/compacting deltas
    #: on the sample queues (the latency half).
    refresh_ms: float = 0.0
    #: Incremental-repartition actions and the feature rows / bytes they
    #: migrated across the interconnect.
    rebalances: int = 0
    migrated_rows: int = 0
    migrated_bytes: int = 0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Fraction of offered requests that were answered."""
        return self.completed / self.requests if self.requests else 1.0

    def slo_attainment(self, slo: float) -> float:
        """Fraction of offered requests answered within ``slo`` seconds.

        Shed and lost requests count as misses — an unanswered request
        can't have met its deadline — which is what makes attainment the
        honest elastic-vs-static scoreboard (a fleet can't win it by
        shedding its way to a clean p99).
        """
        if not self.requests:
            return 1.0
        within = sum(
            1 for log in self.logs if log.completed and log.latency <= slo
        )
        return within / self.requests

    def fingerprint(self) -> tuple:
        """Order-sensitive digest of the full request log + percentiles.

        Two serve runs with equal seeds must produce equal fingerprints;
        this is what the determinism test compares.
        """
        return (
            tuple(log.key() for log in self.logs),
            (self.p50_ms, self.p95_ms, self.p99_ms, self.throughput_rps),
        )

    def to_metrics(self) -> dict[str, float]:
        """Flat metric dict for the ``BENCH_serve_*`` trajectory record.

        Cluster sessions append their own keys; the single-replica dict
        is byte-for-byte what the pre-cluster subsystem recorded, so the
        committed ``BENCH_serve_*`` trajectory stays comparable.
        """
        metrics = {
            "sim_seconds": self.makespan,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_queue_ms": self.mean_queue_ms,
            "mean_batch": self.mean_batch,
            "completed": float(self.completed),
            "shed": float(self.shed),
            "degraded": float(self.degraded),
            "cache_hit_rate": self.cache.hit_rate if self.cache else 0.0,
        }
        if self.replicas > 1:
            metrics["replicas"] = float(self.replicas)
            metrics["cross_shard_rows"] = float(self.cross_shard_rows)
            metrics["cross_shard_bytes"] = float(self.cross_shard_bytes)
            metrics["link_ms"] = self.link_seconds * 1e3
        if self.task != "node":
            # Pair-task lanes get their own trajectory tag, so new keys
            # here never perturb the committed node-task lanes' schema.
            metrics["pairs_served"] = float(self.pairs_served)
            metrics["compaction_saved_rows"] = float(
                self.compaction_saved_rows
            )
        if self.composer != "fifo":
            # Composer lanes get their own trajectory tag, so new keys
            # here never perturb the committed FIFO lanes' schema.
            metrics["padding_seeds"] = float(self.padding_seeds)
            metrics["dedup_rows"] = float(self.dedup_rows)
            metrics["superbatch_requests"] = float(self.superbatch_requests)
            metrics["mean_fused"] = (
                self.superbatch_requests / self.superbatch_batches
                if self.superbatch_batches
                else 0.0
            )
        if self.feature_tiers:
            # Tiered-store sessions append to their own BENCH_tiered_*
            # trajectory, so these keys never perturb the classic lanes.
            cache = self.cache
            for tier in ("device", "p2p", "host", "remote"):
                metrics[f"tier_{tier}_rate"] = (
                    cache.tier_rate(tier) if cache else 0.0
                )
            metrics["p2p_rows"] = float(self.p2p_rows)
            metrics["p2p_bytes"] = float(self.p2p_bytes)
            metrics["p2p_ms"] = self.p2p_seconds * 1e3
        if self.elastic:
            # Elastic/chaos sessions append to their own BENCH_elastic_*
            # trajectory, so these keys never perturb the classic lanes.
            metrics["availability"] = self.availability
            metrics["lost"] = float(self.lost)
            metrics["retried"] = float(self.retried)
            metrics["hedged"] = float(self.hedged)
            metrics["failures"] = float(self.failures)
            metrics["scale_ups"] = float(self.scale_ups)
            metrics["scale_downs"] = float(self.scale_downs)
            metrics["tune_moves"] = float(self.tune_moves)
            metrics["gpu_seconds"] = self.gpu_seconds
            metrics["reprovision_bytes"] = float(self.reprovision_bytes)
        if self.dynamic:
            # Dynamic sessions append to their own BENCH_dynamic_*
            # trajectory, so these keys never perturb the classic lanes.
            metrics["ingested_edges"] = float(self.ingested_edges)
            metrics["deleted_edges"] = float(self.deleted_edges)
            metrics["update_batches"] = float(self.update_batches)
            metrics["snapshots"] = float(self.snapshots)
            metrics["compactions"] = float(self.compactions)
            metrics["mean_staleness_ms"] = self.mean_staleness_ms
            metrics["max_staleness_ms"] = self.max_staleness_ms
            metrics["refresh_ms"] = self.refresh_ms
            metrics["rebalances"] = float(self.rebalances)
            metrics["migrated_rows"] = float(self.migrated_rows)
            metrics["migrated_bytes"] = float(self.migrated_bytes)
            metrics["invalidated_rows"] = float(
                self.cache.invalidated_rows if self.cache else 0
            )
        return metrics


def summarize(
    logs: list[RequestLog], *, cache: CacheStats | None = None
) -> ServeReport:
    """Fold a request log into a :class:`ServeReport`."""
    done = [log for log in logs if log.completed]
    latencies = np.array([log.latency for log in done], dtype=np.float64)
    queue_waits = np.array(
        [log.queue_seconds for log in done], dtype=np.float64
    )
    makespan = max((log.completion for log in done), default=0.0)
    # Per-batch histogram: each batch contributes once, not once per
    # member request.  Batch ids are per-replica, so the batch identity
    # is the (replica, batch_id) pair.
    batches: Counter[int] = Counter()
    seen: set[tuple[int, int]] = set()
    for log in done:
        if log.batch_id >= 0 and (log.replica, log.batch_id) not in seen:
            seen.add((log.replica, log.batch_id))
            batches[log.batch_size] += 1
    total_batches = sum(batches.values())
    return ServeReport(
        requests=len(logs),
        completed=len(done),
        shed=sum(1 for log in logs if not log.admitted),
        degraded=sum(1 for log in done if log.level > 0),
        makespan=makespan,
        throughput_rps=len(done) / makespan if makespan > 0.0 else 0.0,
        p50_ms=percentile_ms(latencies, 50.0),
        p95_ms=percentile_ms(latencies, 95.0),
        p99_ms=percentile_ms(latencies, 99.0),
        mean_ms=float(latencies.mean()) * 1e3 if latencies.size else 0.0,
        max_ms=float(latencies.max()) * 1e3 if latencies.size else 0.0,
        mean_queue_ms=(
            float(queue_waits.mean()) * 1e3 if queue_waits.size else 0.0
        ),
        mean_batch=(
            sum(size * count for size, count in batches.items())
            / total_batches
            if total_batches
            else 0.0
        ),
        batch_histogram=dict(sorted(batches.items())),
        cache=cache,
        logs=logs,
        lost=sum(1 for log in logs if log.admitted and not log.completed),
        retried=sum(1 for log in logs if log.completed and log.retries > 0),
        hedged=sum(1 for log in logs if log.completed and log.hedged),
    )


def replica_breakdown(
    logs: list[RequestLog], replicas: list
) -> list[ReplicaStats]:
    """Per-replica stats from the cluster's merged request log.

    ``replicas`` supplies the non-log state (cross-shard counters and
    cache snapshots); the latency columns come from slicing the merged
    log by the router's assignments and reusing the shared percentile
    helpers, so the cluster table and the aggregate report can never
    disagree about the math.
    """
    out = []
    for replica in replicas:
        rid = replica.replica_id
        mine = [log for log in logs if log.replica == rid]
        done = [log for log in mine if log.completed]
        latencies = np.array([log.latency for log in done], dtype=np.float64)
        batch_sizes = {
            (log.batch_id, log.batch_size) for log in done if log.batch_id >= 0
        }
        out.append(
            ReplicaStats(
                replica_id=rid,
                requests=len(mine),
                completed=len(done),
                shed=sum(1 for log in mine if not log.admitted),
                degraded=sum(1 for log in done if log.level > 0),
                p50_ms=percentile_ms(latencies, 50.0),
                p99_ms=percentile_ms(latencies, 99.0),
                mean_batch=(
                    sum(size for _, size in batch_sizes) / len(batch_sizes)
                    if batch_sizes
                    else 0.0
                ),
                cross_shard_rows=replica.cross_shard_rows,
                cross_shard_bytes=replica.cross_shard_bytes,
                link_seconds=replica.link_seconds,
                cache=(
                    replica.cache.epoch_stats()
                    if replica.cache is not None
                    else None
                ),
                uptime_seconds=replica.up_seconds,
                failures=replica.failures,
            )
        )
    return out
