"""Serving metrics: the per-request log and its aggregate report.

Latency accounting follows the standard serving decomposition:

* ``queue`` time — from a request's arrival to its batch's service start
  (dynamic-batching wait plus head-of-line blocking behind earlier
  batches);
* ``service`` time — from service start to the batch's last queue
  finishing (sampling on the ``sample`` queue, then the feature fetch on
  the ``transfer`` queue);
* end-to-end latency = queue + service, reported as p50/p95/p99 over
  completed requests only.  Shed requests never enter the percentiles —
  a refused request is an availability loss (counted separately), not a
  latency sample.

Everything here is pure NumPy over the deterministic request log, so a
fixed seed reproduces every percentile bit-for-bit (the determinism
guard's second half).
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter

import numpy as np

from repro.cache import CacheStats

#: Percentiles reported by :func:`summarize`.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


@dataclasses.dataclass
class RequestLog:
    """Lifecycle record of one request through the serving simulator."""

    rid: int
    arrival: float
    admitted: bool
    start: float = math.nan
    completion: float = math.nan
    batch_id: int = -1
    batch_size: int = 0
    #: Degradation-ladder level the request was served at (0 = full
    #: fidelity); for shed requests, the level in force when refused.
    level: int = 0

    @property
    def completed(self) -> bool:
        return self.admitted and not math.isnan(self.completion)

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queue_seconds(self) -> float:
        return self.start - self.arrival

    def key(self) -> tuple:
        """Hashable identity used by the determinism guard."""
        return (
            self.rid,
            self.arrival,
            self.admitted,
            self.start,
            self.completion,
            self.batch_id,
            self.batch_size,
            self.level,
        )


@dataclasses.dataclass
class ServeReport:
    """Aggregate outcome of one serving session."""

    requests: int
    completed: int
    shed: int
    #: Requests served below full fidelity (ladder level >= 1).
    degraded: int
    #: Simulated seconds from t=0 to the last completion.
    makespan: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    mean_queue_ms: float
    mean_batch: float
    #: ``batch size -> number of batches`` histogram.
    batch_histogram: dict[int, int]
    cache: CacheStats | None
    logs: list[RequestLog]

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def fingerprint(self) -> tuple:
        """Order-sensitive digest of the full request log + percentiles.

        Two serve runs with equal seeds must produce equal fingerprints;
        this is what the determinism test compares.
        """
        return (
            tuple(log.key() for log in self.logs),
            (self.p50_ms, self.p95_ms, self.p99_ms, self.throughput_rps),
        )

    def to_metrics(self) -> dict[str, float]:
        """Flat metric dict for the ``BENCH_serve_*`` trajectory record."""
        return {
            "sim_seconds": self.makespan,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_queue_ms": self.mean_queue_ms,
            "mean_batch": self.mean_batch,
            "completed": float(self.completed),
            "shed": float(self.shed),
            "degraded": float(self.degraded),
            "cache_hit_rate": self.cache.hit_rate if self.cache else 0.0,
        }


def percentile_ms(latencies: np.ndarray, q: float) -> float:
    """The ``q``-th percentile of ``latencies`` (seconds), in ms."""
    if latencies.size == 0:
        return 0.0
    return float(np.percentile(latencies, q)) * 1e3


def summarize(
    logs: list[RequestLog], *, cache: CacheStats | None = None
) -> ServeReport:
    """Fold a request log into a :class:`ServeReport`."""
    done = [log for log in logs if log.completed]
    latencies = np.array([log.latency for log in done], dtype=np.float64)
    queue_waits = np.array(
        [log.queue_seconds for log in done], dtype=np.float64
    )
    makespan = max((log.completion for log in done), default=0.0)
    # Per-batch histogram: each batch contributes once, not once per
    # member request.
    batches: Counter[int] = Counter()
    seen: set[int] = set()
    for log in done:
        if log.batch_id >= 0 and log.batch_id not in seen:
            seen.add(log.batch_id)
            batches[log.batch_size] += 1
    total_batches = sum(batches.values())
    return ServeReport(
        requests=len(logs),
        completed=len(done),
        shed=sum(1 for log in logs if not log.admitted),
        degraded=sum(1 for log in done if log.level > 0),
        makespan=makespan,
        throughput_rps=len(done) / makespan if makespan > 0.0 else 0.0,
        p50_ms=percentile_ms(latencies, 50.0),
        p95_ms=percentile_ms(latencies, 95.0),
        p99_ms=percentile_ms(latencies, 99.0),
        mean_ms=float(latencies.mean()) * 1e3 if latencies.size else 0.0,
        max_ms=float(latencies.max()) * 1e3 if latencies.size else 0.0,
        mean_queue_ms=(
            float(queue_waits.mean()) * 1e3 if queue_waits.size else 0.0
        ),
        mean_batch=(
            sum(size * count for size, count in batches.items())
            / total_batches
            if total_batches
            else 0.0
        ),
        batch_histogram=dict(sorted(batches.items())),
        cache=cache,
        logs=logs,
    )
