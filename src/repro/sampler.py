"""The gSampler front door: compile a sampling function, then run batches.

Workflow (Figure 4 of the paper): a user program written against the
matrix-centric API is traced into a data-flow IR, optimization passes are
applied (computation optimization, data-layout selection, super-batch
rewriting), and the optimized IR is executed per mini-batch by the
interpreter under the device simulator.

Example::

    def sage_layer(A, frontiers, K):
        sub_A = A[:, frontiers]
        sample_A = sub_A.individual_sample(K)
        return sample_A, sample_A.row()

    sampler = compile_sampler(
        sage_layer, graph, example_frontiers=seeds, constants={"K": 10}
    )
    sample_A, next_frontiers = sampler.run(seeds, ctx=ctx)
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
from collections.abc import Callable, Iterator, Sequence

import numpy as np

from repro.core import new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.errors import MemoryBudgetError, TraceError
from repro.ir.graph import DataFlowGraph
from repro.ir.interpreter import Interpreter
from repro.ir.passes import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
    EdgeMapFusion,
    EdgeMapReduceFusion,
    ExtractReduceFusion,
    ExtractSelectFusion,
    GreedyLayoutPass,
    LayoutSelectionPass,
    PassManager,
    PreprocessPass,
    SuperBatchPass,
)
from repro.ir.passes.base import PassStat, run_measured_pass
from repro.ir.trace import trace
from repro.ir import superbatch_ops
from repro.profile.spans import active_profiler


def _span(name: str, category: str, **attrs: object):
    """A profiler span when one is active, else a free null context."""
    profiler = active_profiler()
    if profiler is None:
        return contextlib.nullcontext()
    return profiler.span(name, category, **attrs)


@dataclasses.dataclass(frozen=True)
class OptimizationConfig:
    """Which optimization families to apply (the Figure 10 knobs).

    ``computation`` is the "C" bar (fusion + pre-processing + DCE/CSE),
    ``layout`` the "D" bar (cost-aware layout selection; when off, the
    DGL-style greedy choice is used), and ``superbatch`` the "B" bar.
    """

    computation: bool = True
    layout: bool = True
    superbatch: bool = True

    @classmethod
    def plain(cls) -> "OptimizationConfig":
        return cls(computation=False, layout=False, superbatch=False)

    @classmethod
    def all_combinations(cls) -> tuple["OptimizationConfig", ...]:
        """Every on/off combination of the three knobs (the 8-point grid
        the verification subsystem sweeps)."""
        return tuple(
            cls(computation=c, layout=d, superbatch=b)
            for c, d, b in itertools.product((False, True), repeat=3)
        )

    def label(self) -> str:
        """Short knob string matching the paper's bars: C=computation,
        D=data layout, B=super-batch."""
        return (
            f"C{int(self.computation)}"
            f"D{int(self.layout)}"
            f"B{int(self.superbatch)}"
        )


class CompiledSampler:
    """A traced, optimized, executable sampling program."""

    def __init__(
        self,
        ir: DataFlowGraph,
        graph: Matrix,
        *,
        structure: object,
        precomputed: dict[str, object],
        config: OptimizationConfig,
        pass_log: list[str],
        debug: bool = False,
        pass_stats: list[PassStat] | None = None,
    ) -> None:
        self.ir = ir
        self.graph = graph
        self.structure = structure
        self.precomputed = precomputed
        self.config = config
        self.pass_log = pass_log
        self.debug = debug
        #: Per-pass compile measurements (wall time, IR deltas), in
        #: execution order; extended when the super-batch rewrite runs.
        self.pass_stats: list[PassStat] = list(pass_stats or [])
        self._superbatch_ir: DataFlowGraph | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        frontiers: np.ndarray,
        *,
        tensors: dict[str, np.ndarray] | None = None,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
        queue: str | None = None,
        not_before: float = 0.0,
    ) -> object:
        """Execute one mini-batch; returns values shaped like the trace.

        ``queue`` routes every launch of this batch onto the named
        simulated queue (see :meth:`ExecutionContext.on_queue`), with
        ``not_before`` as the dependency edge — the hook the pipelined
        executor uses to overlap sampling with transfer and compute.
        """
        rng = rng if rng is not None else new_rng(None)
        routed = (
            ctx.on_queue(queue, not_before=not_before)
            if queue is not None
            else contextlib.nullcontext()
        )
        with routed, _span(
            "sampler.run", "exec", batch_size=int(np.size(frontiers))
        ):
            interp = Interpreter(self.ir, ctx, precomputed=self.precomputed)
            inputs: dict[str, object] = {
                "A": self.graph,
                "frontiers": np.asarray(frontiers),
            }
            inputs.update(tensors or {})
            outputs = interp.run(inputs, rng)
            return _unflatten(self.structure, outputs)

    # ------------------------------------------------------------------
    def superbatch_ir(self) -> DataFlowGraph:
        """The IR rewritten for super-batched execution (cached)."""
        if self._superbatch_ir is None:
            cloned = self.ir.clone()
            self.pass_stats.append(run_measured_pass(SuperBatchPass(), cloned))
            if self.debug:
                from repro.verify.invariants import check_invariants

                check_invariants(cloned, stage="superbatch")
            else:
                cloned.validate()
            self._superbatch_ir = cloned
        return self._superbatch_ir

    def run_superbatch(
        self,
        frontier_batches: Sequence[np.ndarray],
        *,
        tensors: dict[str, np.ndarray] | None = None,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
        queue: str | None = None,
        not_before: float = 0.0,
    ) -> list[tuple[Matrix, np.ndarray]]:
        """Sample several independent mini-batches in one launch sequence.

        The compiled program must follow the standard one-layer contract
        ``(sample_matrix, next_frontiers)``; each batch's results are
        split back out and returned in order.  ``queue``/``not_before``
        route the whole super-batch onto a simulated queue, as in
        :meth:`run`.
        """
        if self.structure != ("leaf", "leaf"):
            raise TraceError(
                "super-batching requires the (matrix, next_frontiers) "
                "one-layer contract"
            )
        if not frontier_batches:
            # An empty fusion window is a no-op, not a concatenate error
            # (the serving composer may legitimately plan zero batches).
            return []
        rng = rng if rng is not None else new_rng(None)
        routed = (
            ctx.on_queue(queue, not_before=not_before)
            if queue is not None
            else contextlib.nullcontext()
        )
        total_seeds = sum(int(np.size(b)) for b in frontier_batches)
        with routed, _span(
            "sampler.superbatch",
            "exec",
            num_batches=len(frontier_batches),
            total_seeds=total_seeds,
        ):
            concat = np.concatenate([np.asarray(b) for b in frontier_batches])
            batch_ptr = np.zeros(len(frontier_batches) + 1, dtype=np.int64)
            np.cumsum([len(b) for b in frontier_batches], out=batch_ptr[1:])
            ir = self.superbatch_ir()
            interp = Interpreter(ir, ctx, precomputed=self.precomputed)
            inputs: dict[str, object] = {
                "A": self.graph,
                "frontiers": concat,
                "_batch_ptr": batch_ptr,
            }
            inputs.update(tensors or {})
            outputs = interp.run(inputs, rng)
            matrix = outputs[0]
            assert isinstance(matrix, Matrix)
            pieces = superbatch_ops.split_sample(
                matrix, batch_ptr, self.graph.shape[0], ctx
            )
            return [(piece, piece.row()) for piece in pieces]

    # ------------------------------------------------------------------
    def choose_superbatch_size(
        self,
        example_batch: np.ndarray | Sequence[np.ndarray],
        *,
        memory_budget: int,
        tensors: dict[str, np.ndarray] | None = None,
        max_size: int = 64,
    ) -> int:
        """Grid-search the largest super-batch fitting the memory budget.

        Mirrors the paper: the user gives a sampling memory budget and
        gSampler probes batch multiples, measuring the simulated peak
        memory of each, and keeps the largest that fits.

        ``example_batch`` may also be a sequence of heterogeneous seed
        sets (a representative serving request mix): the probe then
        cycles through them, so the chosen window reflects the actual
        per-request size distribution rather than one uniform batch.
        """
        if isinstance(example_batch, np.ndarray):
            examples: list[np.ndarray] = [example_batch]
        else:
            examples = [np.asarray(b) for b in example_batch]
            if not examples:
                raise TraceError(
                    "choose_superbatch_size needs at least one example batch"
                )
        best = 1
        size = 2
        while size <= max_size:
            probe_ctx = ExecutionContext()
            try:
                self.run_superbatch(
                    [examples[i % len(examples)] for i in range(size)],
                    tensors=tensors,
                    ctx=probe_ctx,
                    rng=new_rng(0),
                )
            except (TraceError, MemoryBudgetError):
                break
            if probe_ctx.memory.peak_bytes > memory_budget:
                break
            best = size
            size *= 2
        return best


def compile_sampler(
    fn: Callable,
    graph: Matrix,
    example_frontiers: np.ndarray,
    *,
    constants: dict | None = None,
    tensors: dict[str, np.ndarray] | None = None,
    config: OptimizationConfig | None = None,
    debug: bool = False,
) -> CompiledSampler:
    """Trace ``fn`` and apply the configured optimization passes.

    ``debug=True`` validates the full IR invariant set (see
    :mod:`repro.verify.invariants`) after every pass transition and on
    the final compiled program, instead of only the cheap structural
    check — the mode every verification test compiles under.
    """
    config = config if config is not None else OptimizationConfig()
    with _span("compile", "compile", config=config.label()):
        with _span("trace", "compile"):
            ir, info = trace(
                fn, graph, example_frontiers, constants=constants, tensors=tensors
            )
        precomputed: dict[str, object] = {}
        pass_log: list[str] = []
        pass_stats: list[PassStat] = []
        if config.computation:
            manager = PassManager(
                [
                    DeadCodeElimination(),
                    CommonSubexpressionElimination(),
                    PreprocessPass(graph, precomputed),
                    ExtractSelectFusion(),
                    ExtractReduceFusion(),
                    EdgeMapFusion(),
                    EdgeMapReduceFusion(),
                ],
                debug=debug,
            )
            report = manager.run(ir)
            pass_log.extend(report.applied)
            pass_stats.extend(report.stats)
        layout_pass = (
            LayoutSelectionPass() if config.layout else GreedyLayoutPass()
        )
        layout_stat = run_measured_pass(layout_pass, ir)
        pass_stats.append(layout_stat)
        if layout_stat.changed:
            pass_log.append(layout_pass.name)
        if debug:
            from repro.verify.invariants import check_invariants

            check_invariants(ir, stage=layout_pass.name)
        else:
            ir.validate()
        return CompiledSampler(
            ir,
            graph,
            structure=info["structure"],
            precomputed=precomputed,
            config=config,
            pass_log=pass_log,
            debug=debug,
            pass_stats=pass_stats,
        )


def _unflatten(structure: object, flat: list[object]) -> object:
    """Rebuild the traced return structure from flat output values.

    Raises :class:`TraceError` when the flat outputs do not exactly fill
    the structure — leftover values mean the IR's output list no longer
    matches the traced return shape, which must never pass silently.
    """
    def build(s: object, it: Iterator[object]) -> object:
        if s == "leaf":
            try:
                return next(it)
            except StopIteration:
                raise TraceError(
                    "not enough outputs to rebuild the traced return "
                    f"structure {structure!r}"
                ) from None
        assert isinstance(s, tuple)
        return tuple(build(child, it) for child in s)

    iterator = iter(flat)
    result = build(structure, iterator)
    leftover = sum(1 for _ in iterator)
    if leftover:
        raise TraceError(
            f"{leftover} traced output(s) left unconsumed after rebuilding "
            f"the return structure {structure!r} from {len(flat)} value(s)"
        )
    return result
