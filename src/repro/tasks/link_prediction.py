"""Link prediction: positive edges + seeded negatives, compacted pairs.

The workload follows graphbolt's ``LinkPredictionBlock`` flow: a
mini-batch of *positive* edges is drawn from the live edge set, one
negative pair is forged per positive by corrupting the destination
(rejection-sampled so no negative is a live edge), the union of
endpoints is compacted via :func:`unique_and_compact_node_pairs`, the
sampler runs over the unique seed set, and a binary edge scorer (dot
product of seed embeddings, BCE loss) trains on the compacted pairs.

All randomness flows through the caller's generator, so a fixed seed
reproduces the exact positive/negative stream — the property the
serving fingerprints and the verify suite both lean on.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecsf import GraphSample
from repro.datasets import Dataset
from repro.errors import GSamplerError
from repro.tasks.base import Task, TaskBatch, unique_and_compact_node_pairs

__all__ = [
    "LinkPredictionTask",
    "edge_endpoints_of",
    "edge_keys",
    "negative_sample",
    "pair_auc",
]


def edge_endpoints_of(graph) -> tuple[np.ndarray, np.ndarray]:
    """``(src, dst)`` int64 endpoint arrays of a graph Matrix.

    Convention: ``src`` is the column (the node whose neighborhood the
    sampler expands), ``dst`` the row (its in-neighbor).
    """
    csc = graph.get("csc")
    src = np.repeat(
        np.arange(csc.shape[1], dtype=np.int64), np.diff(csc.indptr)
    )
    dst = csc.rows.astype(np.int64)
    return src, dst


def edge_keys(src: np.ndarray, dst: np.ndarray, num_nodes: int) -> np.ndarray:
    """Collision-free int64 key per directed edge."""
    return src.astype(np.int64) * np.int64(num_nodes) + dst.astype(np.int64)


def negative_sample(
    src: np.ndarray,
    num_nodes: int,
    live_keys: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rounds: int = 64,
) -> np.ndarray:
    """One corrupted destination per source, never a live edge.

    ``live_keys`` must be the **sorted** key array of the live edge set.
    Destinations are redrawn (vectorized) until every ``(src, dst)``
    pair is absent from it and free of self-loops; the draw sequence is
    fully determined by ``rng``, so a fixed seed reproduces the exact
    negatives.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = rng.integers(0, num_nodes, size=len(src), dtype=np.int64)
    for _ in range(max_rounds):
        keys = edge_keys(src, dst, num_nodes)
        pos = np.searchsorted(live_keys, keys)
        pos = np.minimum(pos, len(live_keys) - 1) if len(live_keys) else pos
        is_live = (
            live_keys[pos] == keys if len(live_keys) else np.zeros(len(keys), bool)
        )
        bad = is_live | (dst == src)
        if not bad.any():
            return dst
        dst = dst.copy()
        dst[bad] = rng.integers(0, num_nodes, size=int(bad.sum()), dtype=np.int64)
    raise GSamplerError(
        "negative sampling failed to converge; graph too dense for "
        f"rejection sampling over {num_nodes} nodes"
    )


def pair_auc(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Rank-based AUC of positive-vs-negative score separation."""
    if len(pos_scores) == 0 or len(neg_scores) == 0:
        return 0.5
    scores = np.concatenate([pos_scores, neg_scores])
    ranks = scores.argsort().argsort().astype(np.float64) + 1.0
    pos_ranks = ranks[: len(pos_scores)]
    u = pos_ranks.sum() - len(pos_scores) * (len(pos_scores) + 1) / 2.0
    return float(u / (len(pos_scores) * len(neg_scores)))


class LinkPredictionTask(Task):
    """Binary edge scoring over compacted positive/negative node pairs."""

    name = "linkpred"

    def __init__(self, *, embedding_dim: int = 16) -> None:
        self.embedding_dim = embedding_dim
        self._src: np.ndarray | None = None
        self._dst: np.ndarray | None = None
        self._live_keys: np.ndarray | None = None
        self._num_nodes = 0

    # ------------------------------------------------------------------
    def prepare(self, dataset: Dataset) -> None:
        self._src, self._dst = edge_endpoints_of(dataset.graph)
        self._num_nodes = dataset.num_nodes
        self._live_keys = np.sort(
            edge_keys(self._src, self._dst, self._num_nodes)
        )

    def _require_prepared(self) -> None:
        if self._live_keys is None:
            raise GSamplerError(
                "LinkPredictionTask.prepare(dataset) must run first"
            )

    def train_units(self, dataset: Dataset) -> np.ndarray:
        self._require_prepared()
        assert self._src is not None
        return np.arange(len(self._src), dtype=np.int64)

    def materialize(
        self, units: np.ndarray, rng: np.random.Generator
    ) -> TaskBatch:
        self._require_prepared()
        assert self._src is not None and self._dst is not None
        assert self._live_keys is not None
        edge_ids = np.asarray(units, dtype=np.int64)
        pos_src = self._src[edge_ids]
        pos_dst = self._dst[edge_ids]
        neg_dst = negative_sample(
            pos_src, self._num_nodes, self._live_keys, rng
        )
        pos = np.stack([pos_src, pos_dst], axis=1)
        neg = np.stack([pos_src, neg_dst], axis=1)
        nodes, cpos, cneg = unique_and_compact_node_pairs(pos, neg)
        return TaskBatch(nodes=nodes, pos_pairs=cpos, neg_pairs=cneg)

    def output_dim(self, dataset: Dataset) -> int:
        return self.embedding_dim

    # ------------------------------------------------------------------
    def loss_and_metric(
        self,
        model,
        sample: GraphSample,
        features: np.ndarray,
        batch: TaskBatch,
        dataset: Dataset,
    ) -> tuple[float, np.ndarray, float]:
        """BCE over dot-product pair scores; metric is rank AUC.

        ``model.forward`` yields one embedding per seed (the compacted
        unique node set), so pair indices address its rows directly.
        """
        assert batch.pos_pairs is not None and batch.neg_pairs is not None
        emb = model.forward(sample, features)
        pairs = np.concatenate([batch.pos_pairs, batch.neg_pairs])
        labels = np.concatenate(
            [
                np.ones(len(batch.pos_pairs)),
                np.zeros(len(batch.neg_pairs)),
            ]
        )
        left, right = pairs[:, 0], pairs[:, 1]
        scores = np.einsum("ij,ij->i", emb[left], emb[right])
        # Numerically stable BCE-with-logits.
        loss = float(
            np.mean(
                np.maximum(scores, 0.0)
                - scores * labels
                + np.log1p(np.exp(-np.abs(scores)))
            )
        )
        sig = 1.0 / (1.0 + np.exp(-scores))
        dscore = ((sig - labels) / len(pairs)).astype(np.float32)
        grad_emb = np.zeros_like(emb, dtype=np.float32)
        np.add.at(grad_emb, left, dscore[:, None] * emb[right])
        np.add.at(grad_emb, right, dscore[:, None] * emb[left])
        auc = pair_auc(
            scores[: len(batch.pos_pairs)], scores[len(batch.pos_pairs):]
        )
        return loss, grad_emb, auc

    # ------------------------------------------------------------------
    def verify_check(self, *, trials: int = 200, alpha: float = 0.01,
                     seed: int = 0):
        from repro.verify.linkpred import check_linkpred_equivalence

        return check_linkpred_equivalence(trials=trials, alpha=alpha, seed=seed)
