"""Default task: node classification, bit-identical to the legacy path.

This class exists so the trainer/serve refactor has a seam, not to
change behaviour: ``train_units`` returns the *same* ``train_ids``
array, ``materialize`` passes the mini-batch through untouched (no copy,
no RNG draw), and ``loss_and_metric`` performs exactly the float
operations the pre-task trainer inlined — so losses, accuracies, and
every pinned serve/cluster fingerprint stay bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.core.ecsf import GraphSample
from repro.datasets import Dataset
from repro.tasks.base import Task, TaskBatch


class NodeClassificationTask(Task):
    """Cross-entropy over class logits at each seed node."""

    name = "node"

    def prepare(self, dataset: Dataset) -> None:
        pass  # everything needed lives on the dataset already

    def train_units(self, dataset: Dataset) -> np.ndarray:
        return dataset.train_ids

    def materialize(
        self, units: np.ndarray, rng: np.random.Generator
    ) -> TaskBatch:
        # Pass-through: seeds ARE the units; sharing the array (no copy)
        # keeps the sampler's input object identical to the legacy path.
        return TaskBatch(nodes=units)

    def output_dim(self, dataset: Dataset) -> int:
        return dataset.num_classes

    def loss_and_metric(
        self,
        model,
        sample: GraphSample,
        features: np.ndarray,
        batch: TaskBatch,
        dataset: Dataset,
    ) -> tuple[float, np.ndarray, float]:
        # Imported here, not at module level: the trainer imports this
        # task while ``repro.learning`` is itself mid-import.
        from repro.learning.nn import accuracy, softmax_cross_entropy

        labels = dataset.labels[sample.seeds]
        logits = model.forward(sample, features)
        loss, grad = softmax_cross_entropy(logits, labels)
        return loss, grad, accuracy(logits, labels)
