"""Task abstraction: what a workload *is*, decoupled from how it samples.

Every layer of the stack historically assumed node classification over
node-id seeds.  A :class:`Task` owns the three places that assumption
leaked:

* **seed generation** — which ids an epoch iterates (node ids for
  classification, positive-edge ids for link prediction) and how a
  mini-batch of them becomes sampler seeds;
* **minibatch materialization** — graphbolt-style
  :func:`unique_and_compact_node_pairs` compaction from raw node pairs
  to a unique seed set plus local-index pairs;
* **model head + loss** — softmax cross-entropy over class logits
  versus binary scoring of compacted node pairs.

The trainer, pipelined executor, and serving replica all consume this
protocol; the default :class:`~repro.tasks.NodeClassificationTask`
reproduces the historical behaviour bit-for-bit (same arrays, same
float ops, zero extra RNG draws), so every pinned fingerprint holds.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from repro.core.ecsf import GraphSample
from repro.datasets import Dataset


@dataclasses.dataclass(frozen=True)
class TaskBatch:
    """One materialized mini-batch in task-defined units.

    ``nodes`` is what the sampling pipeline seeds from: unique int64
    node ids.  For pair tasks, ``pos_pairs`` / ``neg_pairs`` are
    ``(P, 2)`` arrays of *local* indices into ``nodes`` (the compacted
    id space), so the model head never touches global ids.
    """

    nodes: np.ndarray
    pos_pairs: np.ndarray | None = None
    neg_pairs: np.ndarray | None = None

    @property
    def num_pairs(self) -> int:
        pos = 0 if self.pos_pairs is None else len(self.pos_pairs)
        neg = 0 if self.neg_pairs is None else len(self.neg_pairs)
        return pos + neg


def unique_and_compact_node_pairs(
    pos_pairs: np.ndarray,
    neg_pairs: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Compact raw node pairs to a unique seed set plus local indices.

    Mirrors graphbolt's ``unique_and_compact_node_pairs``: the union of
    all endpoint ids becomes the (sorted, unique, int64) seed array, and
    each pair is rewritten to positions within it.  Round-trip contract:
    ``seeds[compacted] == original`` for both pair sets.
    """
    pos_pairs = np.asarray(pos_pairs, dtype=np.int64).reshape(-1, 2)
    endpoints = [pos_pairs.ravel()]
    if neg_pairs is not None:
        neg_pairs = np.asarray(neg_pairs, dtype=np.int64).reshape(-1, 2)
        endpoints.append(neg_pairs.ravel())
    seeds = np.unique(np.concatenate(endpoints))
    compacted_pos = np.searchsorted(seeds, pos_pairs)
    compacted_neg = (
        None if neg_pairs is None else np.searchsorted(seeds, neg_pairs)
    )
    return seeds, compacted_pos, compacted_neg


class Task(abc.ABC):
    """Workload protocol threaded through training, pipeline, and serve."""

    #: Registry name; also the ``--task`` CLI value and ``WorkloadSpec.task``.
    name: str = ""

    @abc.abstractmethod
    def prepare(self, dataset: Dataset) -> None:
        """Bind task state derived from the dataset (edge sets, caches)."""

    @abc.abstractmethod
    def train_units(self, dataset: Dataset) -> np.ndarray:
        """Ids an epoch iterates (node ids, positive-edge ids, ...)."""

    @abc.abstractmethod
    def materialize(
        self, units: np.ndarray, rng: np.random.Generator
    ) -> TaskBatch:
        """Turn one mini-batch of train units into sampler seeds."""

    @abc.abstractmethod
    def output_dim(self, dataset: Dataset) -> int:
        """Width of the model's final layer for this task."""

    @abc.abstractmethod
    def loss_and_metric(
        self,
        model,
        sample: GraphSample,
        features: np.ndarray,
        batch: TaskBatch,
        dataset: Dataset,
    ) -> tuple[float, np.ndarray, float]:
        """Forward + loss; returns ``(loss, grad_wrt_logits, metric)``.

        The caller owns ``zero_grad``/``backward``/``step`` so optimizer
        mechanics stay task-agnostic.
        """

    # ------------------------------------------------------------------
    def verify_check(self, *, trials: int = 200, alpha: float = 0.01,
                     seed: int = 0):
        """Oracle hook: the statistical check guarding this task's path.

        Node classification is covered by the per-algorithm equivalence
        sweep; pair tasks override this with their bespoke check.
        """
        from repro.verify import verify_algorithm

        return verify_algorithm(
            "graphsage", trials=trials, alpha=alpha, seed=seed
        )
