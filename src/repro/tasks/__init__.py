"""Task-pluggable workload layer (node classification, link prediction)."""

from __future__ import annotations

from repro.errors import GSamplerError
from repro.tasks.base import Task, TaskBatch, unique_and_compact_node_pairs
from repro.tasks.link_prediction import (
    LinkPredictionTask,
    edge_endpoints_of,
    edge_keys,
    negative_sample,
    pair_auc,
)
from repro.tasks.node_classification import NodeClassificationTask

__all__ = [
    "Task",
    "TaskBatch",
    "NodeClassificationTask",
    "LinkPredictionTask",
    "available_tasks",
    "edge_endpoints_of",
    "edge_keys",
    "make_task",
    "negative_sample",
    "pair_auc",
    "unique_and_compact_node_pairs",
]

_TASKS: dict[str, type[Task]] = {
    NodeClassificationTask.name: NodeClassificationTask,
    LinkPredictionTask.name: LinkPredictionTask,
}


def available_tasks() -> tuple[str, ...]:
    """Registered task names, sorted (the ``--task`` CLI choices)."""
    return tuple(sorted(_TASKS))


def make_task(name: str, **kwargs) -> Task:
    """Instantiate a registered task by name (kwargs to its ctor)."""
    try:
        cls = _TASKS[name]
    except KeyError:
        raise GSamplerError(
            f"unknown task {name!r}; available: {', '.join(available_tasks())}"
        ) from None
    return cls(**kwargs)
