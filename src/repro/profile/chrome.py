"""Chrome-trace / Perfetto export of a recorded span tree.

The `Trace Event Format`_ is the JSON schema understood by
``chrome://tracing`` and https://ui.perfetto.dev: a flat list of complete
("X"-phase) events with microsecond timestamps, grouped into processes
and threads.  We emit two synthetic processes:

* **pid 1 — host**: every span, on the host wall clock (what the Python
  process actually spent);
* **pid 2 — device (simulated)**: spans that accumulated simulated
  device seconds (epoch/batch/kernel), on the ledger clock — the
  reproduction's stand-in for a CUDA timeline.

Nesting is conveyed positionally, exactly as Chrome renders native
traces: a child's interval lies inside its parent's, so the viewer stacks
them.  All durations are clamped non-negative.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import pathlib

from repro.profile.spans import Profiler, Span

#: Trace timestamps are integer-ish microseconds.
_US = 1e6

HOST_PID = 1
DEVICE_PID = 2


def _event(
    span: Span, *, pid: int, start: float, duration: float, tid: int = 1
) -> dict[str, object]:
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": round(start * _US, 3),
        "dur": round(max(0.0, duration) * _US, 3),
        "pid": pid,
        "tid": tid,
        "args": {k: v for k, v in span.attrs.items()},
    }


def to_chrome_trace(profiler: Profiler) -> dict[str, object]:
    """Build the trace-event dictionary for ``profiler``'s spans."""
    events: list[dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": HOST_PID,
            "args": {"name": "host (wall clock)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": DEVICE_PID,
            "args": {"name": "device (simulated)"},
        },
    ]
    # Device queues map to threads of the simulated-device process, so
    # overlapping queue timelines render as parallel tracks (exactly how
    # Chrome shows real CUDA streams).  The serial/implicit queue is
    # tid 1; named queues get stable tids in order of first appearance.
    queue_tids: dict[str, int] = {"default": 1}
    for span in profiler.spans:
        queue = span.attrs.get("queue")
        if isinstance(queue, str) and queue not in queue_tids:
            tid = len(queue_tids) + 1
            queue_tids[queue] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": DEVICE_PID,
                    "tid": tid,
                    "args": {"name": f"queue:{queue}"},
                }
            )
    for span in profiler.spans:
        events.append(
            _event(
                span,
                pid=HOST_PID,
                start=span.host_start,
                duration=span.host_duration,
            )
        )
        if span.sim_duration > 0.0 or span.category == "kernel":
            queue = span.attrs.get("queue")
            tid = queue_tids.get(queue, 1) if isinstance(queue, str) else 1
            events.append(
                _event(
                    span,
                    pid=DEVICE_PID,
                    start=span.sim_start,
                    duration=span.sim_duration,
                    tid=tid,
                )
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(profiler: Profiler, path: str | pathlib.Path) -> pathlib.Path:
    """Serialize the trace to ``path`` and return it."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(profiler), indent=1))
    return path
