"""Table-9-style text report of one profiled run.

The paper's resource tables attribute an epoch's cost to kernels (time,
launches), the device (SM utilization), and the allocator (peak pool
bytes).  :func:`build_text_report` renders the same columns from a live
:class:`~repro.device.ExecutionContext` ledger, and appends the per-pass
compile breakdown when a :class:`~repro.ir.passes.base.PassReport` with
statistics is supplied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.device.context import ExecutionContext
    from repro.ir.passes.base import PassStat


def _format_table(header: list[str], rows: list[list[object]], title: str = "") -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def kernel_table(ctx: "ExecutionContext", title: str = "") -> str:
    """Per-kernel simulated time, launch counts, and share of the epoch."""
    totals = ctx.time_by_kernel()
    counts: dict[str, int] = {}
    for launch in ctx.launches:
        counts[launch.name] = counts.get(launch.name, 0) + 1
    total = sum(totals.values()) or 1.0
    rows = [
        [
            name,
            counts[name],
            f"{seconds * 1e3:.4f}",
            f"{100.0 * seconds / total:.1f}",
        ]
        for name, seconds in sorted(
            totals.items(), key=lambda kv: kv[1], reverse=True
        )
    ]
    return _format_table(
        ["Kernel", "Launches", "Sim ms", "%"], rows, title=title
    )


def pass_table(stats: "list[PassStat]", title: str = "") -> str:
    """Per-pass compile cost and IR size deltas."""
    rows = [
        [
            s.name,
            s.iteration,
            "yes" if s.changed else "no",
            f"{s.wall_seconds * 1e3:.3f}",
            f"{s.nodes_before}->{s.nodes_after}",
            f"{s.edges_before}->{s.edges_after}",
            s.rewrites,
        ]
        for s in stats
    ]
    return _format_table(
        ["Pass", "Iter", "Changed", "Wall ms", "Nodes", "Edges", "Rewrites"],
        rows,
        title=title,
    )


def build_text_report(
    ctx: "ExecutionContext",
    *,
    title: str = "Profile",
    wall_seconds: float | None = None,
    pass_stats: "list[PassStat] | None" = None,
) -> str:
    """The full text report: kernels, totals, and the pass pipeline."""
    pool = ctx.memory.stats()
    summary_rows: list[list[object]] = [
        ["simulated time (ms)", f"{ctx.elapsed * 1e3:.4f}"],
        ["kernel launches", ctx.launch_count()],
        ["SM utilization (%)", f"{ctx.sm_utilization():.1f}"],
        ["pool peak (KiB)", pool["peak_bytes"] // 1024],
        ["pool live (KiB)", pool["live_bytes"] // 1024],
        ["allocations", pool["alloc_count"]],
        ["recycled allocations", pool["recycle_count"]],
        ["bytes moved (MiB)", f"{ctx.total_bytes() / 2**20:.2f}"],
    ]
    if wall_seconds is not None:
        summary_rows.append(["host wall time (s)", f"{wall_seconds:.3f}"])
    parts = [
        kernel_table(ctx, title=title),
        "",
        _format_table(["Metric", "Value"], summary_rows),
    ]
    if pass_stats:
        parts += ["", pass_table(pass_stats, title="Pass pipeline")]
    return "\n".join(parts)
