"""Profiling & trace subsystem: span tracer, exports, and trajectories.

Four layers turn the flat kernel-launch ledger into attributable cost:

* :mod:`repro.profile.spans` — a nested span tracer on two clocks (host
  wall time and simulated device time), fed by
  :class:`~repro.device.ExecutionContext`,
  :class:`~repro.ir.passes.base.PassManager`, and
  :class:`~repro.sampler.CompiledSampler`;
* :mod:`repro.profile.chrome` — Chrome-trace/Perfetto JSON export;
* :mod:`repro.profile.report` — the Table-9-style text report
  (time-by-kernel, launches, SM%, pool peak, pass pipeline);
* :mod:`repro.profile.trajectory` — persisted ``BENCH_<tag>.json``
  records with a regression comparator.

CLI: ``gsampler-repro profile <algorithm> --device <spec>``.

Profiling is opt-in; with no active profiler every hook is one ``is not
None`` check and simulated times are bit-identical to an uninstrumented
run.
"""

from repro.profile.chrome import to_chrome_trace, write_chrome_trace
from repro.profile.report import build_text_report, kernel_table, pass_table
from repro.profile.spans import Profiler, Span, active_profiler
from repro.profile.trajectory import (
    FLAGGED_METRICS,
    Regression,
    append_record,
    bench_path,
    compare_latest,
    compare_metrics,
    load_trajectory,
)

__all__ = [
    "FLAGGED_METRICS",
    "Profiler",
    "Regression",
    "Span",
    "active_profiler",
    "append_record",
    "bench_path",
    "build_text_report",
    "compare_latest",
    "compare_metrics",
    "kernel_table",
    "load_trajectory",
    "pass_table",
    "to_chrome_trace",
    "write_chrome_trace",
]
