"""Benchmark trajectory records (``BENCH_<tag>.json``) and the comparator.

A trajectory file accumulates one record per profiled run of the same
(algorithm, dataset, device) cell, so the repository's history answers
"did this change make the hot path faster or slower?" with data instead
of guesswork.  The comparator diffs the newest record against the one
before it and flags any *deterministic* metric (simulated seconds, launch
count, pool peak, per-kernel seconds) that regressed beyond a relative
threshold — host wall time is recorded but never flagged, because it
varies with machine load.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time

#: Metrics compared by :func:`compare_metrics`; all are deterministic
#: under the simulator, so any change is a real behavioural change.
#: ``p99_ms`` only appears in serving trajectories (``BENCH_serve_*``);
#: absent metrics are skipped, so other tags are unaffected.
FLAGGED_METRICS = ("sim_seconds", "launches", "peak_bytes", "p99_ms")

#: Per-kernel times below this (seconds) are ignored by the comparator:
#: a 10% swing on a nanosecond kernel is noise amplification, not signal.
KERNEL_FLOOR_SECONDS = 1e-9

SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Regression:
    """One metric that got worse beyond the threshold."""

    metric: str
    old: float
    new: float

    @property
    def ratio(self) -> float:
        return self.new / self.old if self.old else float("inf")

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.old:.6g} -> {self.new:.6g} "
            f"({(self.ratio - 1.0) * 100.0:+.1f}%)"
        )


def bench_path(directory: str | pathlib.Path, tag: str) -> pathlib.Path:
    """The trajectory file for ``tag`` under ``directory``."""
    return pathlib.Path(directory) / f"BENCH_{tag}.json"


def load_trajectory(path: str | pathlib.Path) -> dict:
    """Read a trajectory file; an empty skeleton if it does not exist."""
    path = pathlib.Path(path)
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "tag": "", "records": []}
    data = json.loads(path.read_text())
    data.setdefault("records", [])
    return data


def append_record(
    path: str | pathlib.Path,
    *,
    tag: str,
    meta: dict[str, object],
    metrics: dict[str, object],
) -> tuple[dict, dict | None]:
    """Append one run record; returns ``(new_record, previous_record)``."""
    path = pathlib.Path(path)
    data = load_trajectory(path)
    data["schema"] = SCHEMA_VERSION
    data["tag"] = tag
    previous = data["records"][-1] if data["records"] else None
    record = {
        "run": len(data["records"]) + 1,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "meta": dict(meta),
        "metrics": dict(metrics),
    }
    data["records"].append(record)
    path.write_text(json.dumps(data, indent=1))
    return record, previous


def compare_metrics(
    old: dict[str, object],
    new: dict[str, object],
    *,
    threshold: float = 0.10,
) -> list[Regression]:
    """Regressions in ``new`` relative to ``old`` beyond ``threshold``.

    A metric regresses when it *grows* by more than ``threshold``
    (relative).  Metrics absent from either side are skipped, so records
    written by older schema versions still compare.
    """
    regressions: list[Regression] = []
    for name in FLAGGED_METRICS:
        if name not in old or name not in new:
            continue
        a, b = float(old[name]), float(new[name])  # type: ignore[arg-type]
        if a >= 0 and b > a * (1.0 + threshold):
            regressions.append(Regression(metric=name, old=a, new=b))
    old_kernels = old.get("time_by_kernel")
    new_kernels = new.get("time_by_kernel")
    if isinstance(old_kernels, dict) and isinstance(new_kernels, dict):
        for kernel, seconds in sorted(old_kernels.items()):
            if kernel not in new_kernels:
                continue
            a, b = float(seconds), float(new_kernels[kernel])
            if a > KERNEL_FLOOR_SECONDS and b > a * (1.0 + threshold):
                regressions.append(
                    Regression(metric=f"kernel:{kernel}", old=a, new=b)
                )
    return regressions


def compare_latest(
    path: str | pathlib.Path, *, threshold: float = 0.10
) -> list[Regression]:
    """Compare the last two records of a trajectory file."""
    records = load_trajectory(path)["records"]
    if len(records) < 2:
        return []
    return compare_metrics(
        records[-2]["metrics"], records[-1]["metrics"], threshold=threshold
    )
