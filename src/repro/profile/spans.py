"""Span-based tracer: the core of the profiling subsystem.

A :class:`Profiler` records a tree of :class:`Span` objects on two clocks
at once:

* **host wall time** — ``time.perf_counter`` seconds spent in the Python
  process (tracing, pass pipeline, NumPy kernels);
* **simulated device time** — the :class:`~repro.device.ExecutionContext`
  ledger's ``elapsed`` seconds, the reproduction's stand-in for the GPU
  wall clock.

Spans nest (``compile → pass:<name>``, ``epoch → batch → kernel:<name>``)
through an explicit stack, so an exported trace shows *where inside the
pipeline* every simulated second was charged, not just flat per-kernel
aggregates.

Profiling is strictly opt-in.  The module-level active profiler defaults
to ``None`` and every instrumentation site guards with a single ``is not
None`` check; pricing of kernel launches is never touched, so simulated
times with profiling off (and on) are bit-identical to an uninstrumented
run.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time
from collections.abc import Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.device.context import ExecutionContext, KernelLaunch


@dataclasses.dataclass
class Span:
    """One timed region of the pipeline.

    ``host_start``/``host_end`` are ``perf_counter`` seconds relative to
    the profiler's creation; ``sim_start``/``sim_end`` are simulated
    device seconds read from the attached execution context's ledger
    (both zero for spans recorded while no context is attached, e.g.
    compile-time spans).  ``parent`` is the index of the enclosing span
    in :attr:`Profiler.spans`, or ``-1`` for roots.
    """

    name: str
    category: str
    index: int
    parent: int
    depth: int
    host_start: float
    host_end: float = 0.0
    sim_start: float = 0.0
    sim_end: float = 0.0
    attrs: dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def host_duration(self) -> float:
        return max(0.0, self.host_end - self.host_start)

    @property
    def sim_duration(self) -> float:
        return max(0.0, self.sim_end - self.sim_start)


class Profiler:
    """Collects a span tree across compile and execution.

    Use as::

        profiler = Profiler()
        with profiler.activate():          # pass/compile spans
            sampler = compile_sampler(...)
        ctx = ExecutionContext(V100, profiler=profiler)  # kernel spans
        with profiler.activate(), profiler.span("epoch"):
            sampler.run(seeds, ctx=ctx)

    ``activate()`` publishes the profiler through the module-level
    hook consulted by :class:`~repro.ir.passes.base.PassManager` and
    :func:`~repro.sampler.compile_sampler`, which cannot be reached with
    an explicit argument from the benchmark harness without threading it
    through every algorithm constructor.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._epoch = time.perf_counter()
        self._ctx: "ExecutionContext | None" = None

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    def host_now(self) -> float:
        """Host seconds since the profiler was created."""
        return time.perf_counter() - self._epoch

    def sim_now(self) -> float:
        """Simulated seconds on the attached context's ledger (0 if none)."""
        return self._ctx.elapsed if self._ctx is not None else 0.0

    def attach(self, ctx: "ExecutionContext") -> None:
        """Bind ``ctx`` as the simulated clock and kernel-span source."""
        ctx.profiler = self
        self._ctx = ctx

    @property
    def context(self) -> "ExecutionContext | None":
        """The attached execution context, if any."""
        return self._ctx

    # ------------------------------------------------------------------
    # Span recording
    # ------------------------------------------------------------------
    def begin(self, name: str, category: str = "span", **attrs: object) -> Span:
        """Open a nested span; pair with :meth:`end`."""
        parent = self._stack[-1] if self._stack else -1
        span = Span(
            name=name,
            category=category,
            index=len(self.spans),
            parent=parent,
            depth=len(self._stack),
            host_start=self.host_now(),
            sim_start=self.sim_now(),
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span.index)
        return span

    def end(self, **attrs: object) -> Span:
        """Close the innermost open span, merging ``attrs`` into it."""
        index = self._stack.pop()
        span = self.spans[index]
        span.host_end = self.host_now()
        span.sim_end = self.sim_now()
        span.attrs.update(attrs)
        return span

    @contextlib.contextmanager
    def span(
        self, name: str, category: str = "span", **attrs: object
    ) -> Iterator[Span]:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        span = self.begin(name, category, **attrs)
        try:
            yield span
        finally:
            self.end()

    def on_kernel(self, launch: "KernelLaunch") -> None:
        """Record one kernel launch as a leaf span under the open span.

        Called by :meth:`ExecutionContext.record` after the launch has
        been priced and placed on its queue timeline; the simulated
        interval is the launch's own ``[sim_start, sim_end]``, which on
        the serial path equals ``[elapsed - seconds, elapsed]`` and on
        a named queue reflects that queue's (possibly overlapping)
        timeline.
        """
        now = self.host_now()
        parent = self._stack[-1] if self._stack else -1
        self.spans.append(
            Span(
                name=f"kernel:{launch.name}",
                category="kernel",
                index=len(self.spans),
                parent=parent,
                depth=len(self._stack),
                host_start=now,
                host_end=now,
                sim_start=launch.sim_start,
                sim_end=launch.sim_end,
                attrs={
                    "bytes_read": launch.bytes_read,
                    "bytes_written": launch.bytes_written,
                    "flops": launch.flops,
                    "tasks": launch.tasks,
                    "uva_bytes": launch.uva_bytes,
                    "queue": launch.queue,
                },
            )
        )

    # ------------------------------------------------------------------
    # Activation (module-level hook)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def activate(self) -> Iterator["Profiler"]:
        """Publish this profiler as the process-wide active one."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def open_spans(self) -> int:
        """Number of spans still open (0 after a balanced run)."""
        return len(self._stack)

    def spans_by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.index]


#: The process-wide active profiler; ``None`` keeps every hook on its
#: zero-overhead path.
_ACTIVE: Profiler | None = None


def active_profiler() -> Profiler | None:
    """The profiler published by :meth:`Profiler.activate`, if any."""
    return _ACTIVE
