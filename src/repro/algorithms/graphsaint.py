"""GraphSAINT random-walk sampler (Zeng et al., ICLR 2020).

Table 2 row: node-wise, uniform — "conduct vanilla random walk and induce
subgraph according to sampled nodes".  A batch of root nodes each runs a
short walk; the union of visited nodes induces the training subgraph, and
per-node/per-edge sampling probabilities yield the normalization
coefficients GraphSAINT uses to debias its estimator.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import Algorithm, AlgorithmInfo, Pipeline
from repro.core import new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig


@dataclasses.dataclass
class SaintSample:
    """A GraphSAINT training subgraph with normalization weights."""

    roots: np.ndarray
    nodes: np.ndarray
    matrix: Matrix
    #: Per-node inclusion counts over the walk batch: the basis of
    #: GraphSAINT's loss/aggregation normalization.
    node_counts: np.ndarray

    @property
    def num_edges(self) -> int:
        return self.matrix.nnz


class GraphSAINTPipeline(Pipeline):
    """Walk batch -> visited-node pool -> induced subgraph."""

    supports_superbatch = False

    def __init__(self, graph: Matrix, walk_length: int) -> None:
        self.graph = graph
        self.walk_length = walk_length

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> SaintSample:
        rng = rng if rng is not None else new_rng(None)
        result = walks.uniform_walk(
            self.graph, seeds, self.walk_length, ctx=ctx, rng=rng
        )
        flat = result.trace[result.trace >= 0]
        nodes, counts = np.unique(flat, return_counts=True)
        induced = walks.induce_subgraph(self.graph, nodes, ctx=ctx)
        return SaintSample(
            roots=np.asarray(seeds),
            nodes=nodes,
            matrix=induced,
            node_counts=counts,
        )


class GraphSAINT(Algorithm):
    """GraphSAINT (random-walk variant) algorithm factory."""

    info = AlgorithmInfo(
        name="graphsaint",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=False,
        description="Random-walk pooling plus induced training subgraph",
    )

    def __init__(self, walk_length: int = 4) -> None:
        self.walk_length = walk_length

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> GraphSAINTPipeline:
        return GraphSAINTPipeline(graph, self.walk_length)
