"""ShaDow-GNN: decoupled subgraph sampling (Zeng et al., NeurIPS 2021).

Table 2 row: node-wise, static bias — "each frontier samples neighbors
with uniform or PPR bias and then induce a subgraph using all the sampled
nodes".  The experiments use depth 2 with fanout 10.

The pipeline runs a GraphSAGE-style expansion to collect each batch's
node pool, then *induces* the subgraph over the pooled nodes — the
finalize-step pattern the paper says requires a global graph view (and
which vertex-centric systems cannot express).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import (
    Algorithm,
    AlgorithmInfo,
    Pipeline,
    compile_layer,
)
from repro.algorithms.graphsage import graphsage_layer
from repro.core import GraphSample, new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import CompiledSampler, OptimizationConfig


@dataclasses.dataclass
class ShadowSample:
    """An induced, localized subgraph around a batch of seeds."""

    seeds: np.ndarray
    nodes: np.ndarray
    matrix: Matrix  # induced adjacency over ``nodes`` (local x local)
    expansion: GraphSample  # the fanout expansion that chose the nodes

    @property
    def num_edges(self) -> int:
        return self.matrix.nnz


class ShaDowPipeline(Pipeline):
    """Fanout (or PPR) expansion + induced subgraph.

    ``bias="uniform"`` expands by stacked uniform fanout layers;
    ``bias="ppr"`` selects each seed's top-k personalized-PageRank
    neighborhood instead — the two variants Table 2 names for ShaDow.
    """

    supports_superbatch = False  # induction couples the whole batch

    def __init__(
        self,
        graph: Matrix,
        samplers: list[CompiledSampler],
        *,
        bias: str = "uniform",
        ppr_k: int = 20,
    ) -> None:
        self.graph = graph
        self.samplers = samplers
        self.bias = bias
        self.ppr_k = ppr_k

    def _expand_uniform(
        self,
        seeds: np.ndarray,
        ctx: ExecutionContext,
        rng: np.random.Generator,
    ) -> GraphSample:
        from repro.core import SampledLayer

        frontiers = np.asarray(seeds)
        layers = []
        for sampler in self.samplers:
            matrix, nxt = sampler.run(frontiers, ctx=ctx, rng=rng)
            layers.append(
                SampledLayer(matrix=matrix, input_nodes=frontiers, output_nodes=nxt)
            )
            frontiers = nxt
        return GraphSample(seeds=np.asarray(seeds), layers=layers)

    def _expand_ppr(self, seeds: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        from repro.core.ppr import topk_ppr_neighbors

        pools = [np.asarray(seeds)]
        for seed in np.asarray(seeds):
            pools.append(
                topk_ppr_neighbors(self.graph, int(seed), self.ppr_k, ctx=ctx)
            )
        return np.unique(np.concatenate(pools))

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> ShadowSample:
        rng = rng if rng is not None else new_rng(None)
        if self.bias == "ppr":
            nodes = self._expand_ppr(seeds, ctx)
            expansion = GraphSample(seeds=np.asarray(seeds), layers=[])
        else:
            expansion = self._expand_uniform(seeds, ctx, rng)
            nodes = expansion.all_nodes
        induced = walks.induce_subgraph(self.graph, nodes, ctx=ctx)
        return ShadowSample(
            seeds=np.asarray(seeds),
            nodes=nodes,
            matrix=induced,
            expansion=expansion,
        )


class ShaDow(Algorithm):
    """ShaDow-GNN algorithm factory."""

    info = AlgorithmInfo(
        name="shadow",
        category="node-wise",
        bias="static",
        fanout_gt_one=True,
        description="Fanout expansion then per-batch induced subgraph",
    )

    def __init__(
        self,
        fanout: int = 10,
        depth: int = 2,
        bias: str = "uniform",
        ppr_k: int = 20,
    ) -> None:
        if bias not in ("uniform", "ppr"):
            raise ValueError(f"ShaDow bias must be 'uniform' or 'ppr', got {bias!r}")
        self.fanout = fanout
        self.depth = depth
        self.bias = bias
        self.ppr_k = ppr_k

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> ShaDowPipeline:
        samplers = [
            compile_layer(
                graphsage_layer,
                graph,
                example_seeds,
                constants={"K": self.fanout},
                config=config,
            )
            for _ in range(self.depth)
        ]
        return ShaDowPipeline(
            graph, samplers, bias=self.bias, ppr_k=self.ppr_k
        )
