"""Bandit-driven neighbor sampling: GCN-BS and Thanos.

Table 2 rows: node-wise, dynamic bias — "sampling bias of edges are
updated with reward computed by bandit solvers".  Both algorithms keep a
per-edge weight table; each batch samples neighbors proportionally to the
current weights, training computes a reward per used edge (how much that
neighbor reduced the aggregation variance), and a bandit update adjusts
the weights:

* **GCN-BS** uses a UCB-style additive update,
* **Thanos** uses an EXP3-style multiplicative update.

The shared machinery lives in :class:`BanditPipeline`; the two algorithms
differ only in their ``update`` rule.  Because the weight table changes
between batches, these algorithms are excluded from super-batching.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import Algorithm, AlgorithmInfo, Pipeline
from repro.core import GraphSample, SampledLayer, new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig


class BanditPipeline(Pipeline):
    """Weight-table-driven fanout sampling with a pluggable update rule."""

    supports_superbatch = False

    def __init__(
        self,
        graph: Matrix,
        fanouts: tuple[int, ...],
        update_rule: str,
        *,
        lr: float = 0.1,
    ) -> None:
        self.graph = graph
        self.fanouts = fanouts
        self.update_rule = update_rule
        self.lr = lr
        #: The bandit state: one positive weight per graph edge.
        self.edge_weights = np.ones(graph.nnz, dtype=np.float64)

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> GraphSample:
        rng = rng if rng is not None else new_rng(None)
        frontiers = np.asarray(seeds)
        layers: list[SampledLayer] = []
        base = Matrix(
            self.graph.any_storage(), ctx=ctx, is_base_graph=True
        )
        for k in self.fanouts:
            if len(frontiers) == 0:
                break
            sub = base.slice_cols(frontiers)
            probs = self.edge_weights[sub.edge_ids()]
            sampled = sub.individual_sample(k, probs, rng=rng)
            layers.append(
                SampledLayer(
                    matrix=sampled,
                    input_nodes=frontiers,
                    output_nodes=sampled.row(),
                )
            )
            frontiers = sampled.row()
        return GraphSample(seeds=np.asarray(seeds), layers=layers)

    def apply_rewards(self, sample: GraphSample, rewards_per_layer: list[np.ndarray]) -> None:
        """Bandit update: adjust the used edges' weights by their reward."""
        for layer, rewards in zip(sample.layers, rewards_per_layer):
            eids = layer.matrix.edge_ids()
            if len(eids) != len(rewards):
                raise ValueError(
                    f"rewards length {len(rewards)} != sampled edges {len(eids)}"
                )
            if self.update_rule == "ucb":
                # GCN-BS: additive update toward high-reward arms.
                np.add.at(self.edge_weights, eids, self.lr * rewards)
                np.clip(self.edge_weights, 1e-6, None, out=self.edge_weights)
            elif self.update_rule == "exp3":
                # Thanos: multiplicative-weights (EXP3) update.
                factor = np.exp(np.clip(self.lr * rewards, -5.0, 5.0))
                np.multiply.at(self.edge_weights, eids, factor)
                np.clip(self.edge_weights, 1e-6, 1e6, out=self.edge_weights)
            else:
                raise ValueError(f"unknown bandit rule {self.update_rule!r}")


class GCNBS(Algorithm):
    """GCN-BS: bandit sampling with UCB-style additive updates."""

    info = AlgorithmInfo(
        name="gcn_bs",
        category="node-wise",
        bias="dynamic",
        fanout_gt_one=True,
        description="Bandit fanout sampling, additive (UCB) weight updates",
    )

    def __init__(self, fanouts: tuple[int, ...] = (5, 10)) -> None:
        self.fanouts = fanouts

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> BanditPipeline:
        return BanditPipeline(graph, self.fanouts, "ucb")


class Thanos(Algorithm):
    """Thanos: bandit sampling with EXP3-style multiplicative updates."""

    info = AlgorithmInfo(
        name="thanos",
        category="node-wise",
        bias="dynamic",
        fanout_gt_one=True,
        description="Bandit fanout sampling, multiplicative (EXP3) updates",
    )

    def __init__(self, fanouts: tuple[int, ...] = (5, 10)) -> None:
        self.fanouts = fanouts

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> BanditPipeline:
        return BanditPipeline(graph, self.fanouts, "exp3")
