"""PinSAGE: importance-based neighborhoods via random walks (Ying et al., 2018).

Table 2 row: node-wise, uniform walks with restarts — "random walks ...
using restarts, select top-k visited neighbors as sampled nodes".  Each
frontier launches short restarting walks; the most-visited nodes become
its neighborhood, with visit counts as importance weights (PinSAGE's
importance pooling).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import walks
from repro.algorithms.base import Algorithm, AlgorithmInfo, Pipeline
from repro.core import GraphSample, SampledLayer, new_rng
from repro.core.matrix import Matrix
from repro.device import NULL_CONTEXT, ExecutionContext
from repro.sampler import OptimizationConfig
from repro.sparse import COO, INDEX_DTYPE, to_csc


class PinSAGEPipeline(Pipeline):
    """Restart-walk visit counting with top-T neighbor selection."""

    supports_superbatch = False

    def __init__(
        self,
        graph: Matrix,
        *,
        num_walks: int,
        walk_length: int,
        restart_prob: float,
        top_t: int,
        num_layers: int,
    ) -> None:
        self.graph = graph
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.restart_prob = restart_prob
        self.top_t = top_t
        self.num_layers = num_layers

    def _one_layer(
        self,
        frontiers: np.ndarray,
        ctx: ExecutionContext,
        rng: np.random.Generator,
    ) -> SampledLayer:
        owner, node, count = walks.restart_walk_visit_counts(
            self.graph,
            frontiers,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            restart_prob=self.restart_prob,
            ctx=ctx,
            rng=rng,
        )
        keep = walks.top_k_per_segment(owner, count.astype(np.float64), self.top_t)
        owner, node, count = owner[keep], node[keep], count[keep]
        # Bipartite importance matrix: visited node -> frontier, weighted
        # by normalized visit count.
        coo = COO(
            rows=node,
            cols=owner,
            values=count.astype(np.float32),
            shape=(self.graph.shape[0], len(frontiers)),
        )
        matrix = Matrix(
            to_csc(coo),
            col_ids=np.asarray(frontiers, dtype=INDEX_DTYPE),
            ctx=ctx,
        )
        matrix = matrix.div(matrix.sum(axis=1), axis=1)
        return SampledLayer(
            matrix=matrix,
            input_nodes=np.asarray(frontiers),
            output_nodes=np.unique(node),
        )

    def sample_batch(
        self,
        seeds: np.ndarray,
        *,
        ctx: ExecutionContext = NULL_CONTEXT,
        rng: np.random.Generator | None = None,
    ) -> GraphSample:
        rng = rng if rng is not None else new_rng(None)
        frontiers = np.asarray(seeds)
        layers = []
        for _ in range(self.num_layers):
            if len(frontiers) == 0:
                break
            layer = self._one_layer(frontiers, ctx, rng)
            layers.append(layer)
            frontiers = layer.output_nodes
        return GraphSample(seeds=np.asarray(seeds), layers=layers)


class PinSAGE(Algorithm):
    """PinSAGE algorithm factory."""

    info = AlgorithmInfo(
        name="pinsage",
        category="node-wise",
        bias="uniform",
        fanout_gt_one=False,
        description="Restart walks, top-T visited nodes as neighbors",
    )

    def __init__(
        self,
        num_walks: int = 10,
        walk_length: int = 3,
        restart_prob: float = 0.5,
        top_t: int = 10,
        num_layers: int = 2,
    ) -> None:
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.restart_prob = restart_prob
        self.top_t = top_t
        self.num_layers = num_layers

    def build(
        self,
        graph: Matrix,
        example_seeds: np.ndarray,
        *,
        features: np.ndarray | None = None,
        config: OptimizationConfig | None = None,
    ) -> PinSAGEPipeline:
        return PinSAGEPipeline(
            graph,
            num_walks=self.num_walks,
            walk_length=self.walk_length,
            restart_prob=self.restart_prob,
            top_t=self.top_t,
            num_layers=self.num_layers,
        )
